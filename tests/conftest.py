"""Shared fixtures: small lattices and gauge configurations.

Session-scoped fixtures are treated as immutable by every test; anything
that needs to mutate a field makes its own copy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice import Geometry, GaugeField, SpinorField


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def geom44() -> Geometry:
    """The smallest asqtad-capable lattice: 4^4."""
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="session")
def geom448() -> Geometry:
    """An asymmetric lattice (nx=ny=4, nz=4, nt=8) for partition tests."""
    return Geometry((4, 4, 4, 8))


@pytest.fixture(scope="session")
def geom_mixed() -> Geometry:
    """Distinct extents in every direction to catch axis-order bugs."""
    return Geometry((4, 6, 8, 10))


@pytest.fixture(scope="session")
def weak_gauge(geom44) -> GaugeField:
    return GaugeField.weak(geom44, epsilon=0.3, rng=101)


@pytest.fixture(scope="session")
def weak_gauge448(geom448) -> GaugeField:
    return GaugeField.weak(geom448, epsilon=0.3, rng=202)


@pytest.fixture(scope="session")
def hot_gauge(geom44) -> GaugeField:
    return GaugeField.hot(geom44, rng=303)


@pytest.fixture()
def wilson_vec(geom44, rng) -> np.ndarray:
    return SpinorField.random(geom44, rng=rng).data


@pytest.fixture()
def staggered_vec(geom44, rng) -> np.ndarray:
    return SpinorField.random(geom44, nspin=1, rng=rng).data


def random_wilson(geometry: Geometry, seed: int = 7) -> np.ndarray:
    return SpinorField.random(geometry, rng=seed).data


def random_staggered(geometry: Geometry, seed: int = 7) -> np.ndarray:
    return SpinorField.random(geometry, nspin=1, rng=seed).data
