"""SpinorField and GaugeField containers."""

import numpy as np
import pytest

from repro.lattice import Geometry, GaugeField, SpinorField


class TestSpinorField:
    def test_zeros_shape_wilson(self, geom44):
        f = SpinorField.zeros(geom44)
        assert f.data.shape == geom44.shape + (4, 3)
        assert f.norm2() == 0.0

    def test_zeros_shape_staggered(self, geom44):
        f = SpinorField.zeros(geom44, nspin=1)
        assert f.data.shape == geom44.shape + (3,)

    def test_invalid_nspin(self, geom44):
        with pytest.raises(ValueError):
            SpinorField.zeros(geom44, nspin=2)

    def test_data_shape_validation(self, geom44):
        with pytest.raises(ValueError):
            SpinorField(geom44, np.zeros((2, 2)))

    def test_random_is_reproducible(self, geom44):
        a = SpinorField.random(geom44, rng=5)
        b = SpinorField.random(geom44, rng=5)
        assert np.array_equal(a.data, b.data)

    def test_point_source_wilson(self, geom44):
        f = SpinorField.point_source(geom44, (1, 2, 3, 0), spin=2, color=1)
        assert f.norm2() == 1.0
        assert f.data[0, 3, 2, 1, 2, 1] == 1.0

    def test_point_source_staggered(self, geom44):
        f = SpinorField.point_source(geom44, (0, 0, 0, 3), color=2, nspin=1)
        assert f.norm2() == 1.0
        assert f.data[3, 0, 0, 0, 2] == 1.0

    def test_arithmetic(self, geom44):
        a = SpinorField.random(geom44, rng=1)
        b = SpinorField.random(geom44, rng=2)
        c = a + b - a
        assert np.allclose(c.data, b.data)
        d = 2.0 * a
        assert np.allclose(d.data, 2 * a.data)
        assert np.allclose((-a).data, -a.data)

    def test_dot_conjugate_symmetry(self, geom44):
        a = SpinorField.random(geom44, rng=1)
        b = SpinorField.random(geom44, rng=2)
        assert a.dot(b) == pytest.approx(np.conj(b.dot(a)))

    def test_norm2_matches_dot(self, geom44):
        a = SpinorField.random(geom44, rng=1)
        assert a.norm2() == pytest.approx(a.dot(a).real)

    def test_copy_is_independent(self, geom44):
        a = SpinorField.random(geom44, rng=1)
        b = a.copy()
        b.data[...] = 0
        assert a.norm2() > 0

    def test_reals_per_site(self, geom44):
        assert SpinorField.zeros(geom44).reals_per_site == 24
        assert SpinorField.zeros(geom44, nspin=1).reals_per_site == 6

    def test_ghost_face_reals(self, geom44):
        f = SpinorField.zeros(geom44)
        # Fig. 2 layout: T face has volume/nt sites, 24 reals each.
        assert f.ghost_face_reals(3) == 24 * geom44.volume // 4
        assert f.ghost_face_reals(3, depth=3) == 3 * 24 * geom44.volume // 4


class TestGaugeField:
    def test_unit_field(self, geom44):
        u = GaugeField.unit(geom44)
        assert u.data.shape == (4,) + geom44.shape + (3, 3)
        assert u.unitarity_error() < 1e-15
        assert u.plaquette() == pytest.approx(1.0)

    def test_hot_field_is_unitary_but_disordered(self, geom44):
        u = GaugeField.hot(geom44, rng=1)
        assert u.unitarity_error() < 1e-12
        assert abs(u.plaquette()) < 0.2

    def test_weak_field_plaquette_between(self, geom44):
        u = GaugeField.weak(geom44, epsilon=0.3, rng=2)
        assert u.unitarity_error() < 1e-12
        assert 0.3 < u.plaquette() < 0.99

    def test_weak_epsilon_ordering(self, geom44):
        tame = GaugeField.weak(geom44, epsilon=0.1, rng=3).plaquette()
        wild = GaugeField.weak(geom44, epsilon=0.6, rng=3).plaquette()
        assert tame > wild

    def test_link_accessor(self, geom44):
        u = GaugeField.hot(geom44, rng=4)
        assert u.link(2).shape == geom44.shape + (3, 3)
        assert np.shares_memory(u.link(2), u.data)

    def test_copy_independent(self, geom44):
        u = GaugeField.hot(geom44, rng=5)
        v = u.copy()
        v.data[...] = 0
        assert u.unitarity_error() < 1e-12

    def test_shape_validation(self, geom44):
        with pytest.raises(ValueError):
            GaugeField(geom44, np.zeros((4, 2, 2, 2, 2, 3, 3)))
