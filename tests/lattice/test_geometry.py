"""Geometry: indexing conventions, parity, shifts, faces."""

import numpy as np
import pytest

from repro.lattice import Geometry, X, Y, Z, T
from repro.lattice.geometry import axis_of_mu


class TestConstruction:
    def test_shape_is_reversed_dims(self):
        g = Geometry((4, 6, 8, 10))
        assert g.dims == (4, 6, 8, 10)
        assert g.shape == (10, 8, 6, 4)

    def test_volume(self):
        g = Geometry((4, 6, 8, 10))
        assert g.volume == 4 * 6 * 8 * 10
        assert g.half_volume == g.volume // 2

    def test_rejects_wrong_rank(self):
        with pytest.raises(ValueError):
            Geometry((4, 4, 4))

    def test_rejects_odd_extent(self):
        with pytest.raises(ValueError):
            Geometry((4, 4, 4, 5))

    def test_rejects_tiny_extent(self):
        with pytest.raises(ValueError):
            Geometry((0, 4, 4, 4))

    def test_equality_and_hash(self):
        assert Geometry((4, 4, 4, 8)) == Geometry((4, 4, 4, 8))
        assert Geometry((4, 4, 4, 8)) != Geometry((4, 4, 8, 4))
        assert hash(Geometry((4, 4, 4, 8))) == hash(Geometry((4, 4, 4, 8)))


class TestCoordinatesAndParity:
    def test_axis_of_mu(self):
        assert axis_of_mu(X) == 3
        assert axis_of_mu(Y) == 2
        assert axis_of_mu(Z) == 1
        assert axis_of_mu(T) == 0
        with pytest.raises(ValueError):
            axis_of_mu(4)

    def test_coordinate_ranges(self):
        g = Geometry((4, 6, 8, 10))
        for mu, extent in enumerate(g.dims):
            c = g.coordinate(mu)
            assert c.shape == g.shape
            assert c.min() == 0 and c.max() == extent - 1

    def test_coordinate_varies_on_correct_axis(self):
        g = Geometry((4, 6, 8, 10))
        cx = g.coordinate(X)
        # x coordinate varies along the last axis only
        assert np.all(cx[0, 0, 0, :] == np.arange(4))
        assert np.all(cx[:, 0, 0, 1] == 1)

    def test_parity_definition(self):
        g = Geometry((4, 4, 4, 4))
        p = g.parity
        assert p[0, 0, 0, 0] == 0
        assert p[0, 0, 0, 1] == 1
        assert p[0, 0, 1, 1] == 0
        assert p[1, 1, 1, 1] == 0

    def test_parity_masks_partition_lattice(self):
        g = Geometry((4, 4, 4, 8))
        assert g.even_mask.sum() == g.half_volume
        assert g.odd_mask.sum() == g.half_volume
        assert not np.any(g.even_mask & g.odd_mask)

    def test_parity_mask_accessor(self):
        g = Geometry((4, 4, 4, 4))
        assert np.array_equal(g.parity_mask(0), g.even_mask)
        assert np.array_equal(g.parity_mask(1), g.odd_mask)
        with pytest.raises(ValueError):
            g.parity_mask(2)

    def test_neighbors_have_opposite_parity(self):
        g = Geometry((4, 4, 4, 4))
        p = g.parity.astype(np.float64)
        for mu in range(4):
            shifted = g.shift(p, mu, 1)
            assert np.all(shifted != p)


class TestShift:
    def test_periodic_shift_moves_data(self):
        g = Geometry((4, 4, 4, 4))
        a = g.coordinate(X).astype(float)
        fwd = g.shift(a, X, 1)
        # result[x] = a[x+1] = (x+1) mod 4
        assert np.all(fwd[0, 0, 0, :] == np.array([1, 2, 3, 0]))

    def test_shift_roundtrip(self, rng=np.random.default_rng(0)):
        g = Geometry((4, 4, 4, 8))
        a = rng.standard_normal(g.shape + (3,))
        for mu in range(4):
            assert np.array_equal(g.shift(g.shift(a, mu, 1), mu, -1), a)

    def test_shift_full_cycle_is_identity(self, rng=np.random.default_rng(1)):
        g = Geometry((4, 6, 8, 10))
        a = rng.standard_normal(g.shape)
        for mu, extent in enumerate(g.dims):
            assert np.allclose(g.shift(a, mu, extent), a)

    def test_zero_boundary_kills_wrapped_slab(self):
        g = Geometry((4, 4, 4, 4))
        a = np.ones(g.shape)
        out = g.shift(a, X, 1, boundary="zero")
        # sites with x = 3 read x = 4 (outside): zero
        assert np.all(out[..., 3] == 0)
        assert np.all(out[..., :3] == 1)

    def test_zero_boundary_backward(self):
        g = Geometry((4, 4, 4, 4))
        a = np.ones(g.shape)
        out = g.shift(a, T, -1, boundary="zero")
        assert np.all(out[0] == 0)
        assert np.all(out[1:] == 1)

    def test_antiperiodic_flips_wrapped_slab(self):
        g = Geometry((4, 4, 4, 4))
        a = np.ones(g.shape)
        out = g.shift(a, T, 1, boundary="antiperiodic")
        assert np.all(out[-1] == -1)
        assert np.all(out[:-1] == 1)

    def test_zero_boundary_multihop(self):
        g = Geometry((8, 4, 4, 4))
        a = np.ones(g.shape)
        out = g.shift(a, X, 3, boundary="zero")
        assert np.all(out[..., 5:] == 0)
        assert np.all(out[..., :5] == 1)

    def test_zero_boundary_full_extent(self):
        g = Geometry((4, 4, 4, 4))
        a = np.ones(g.shape)
        assert np.all(g.shift(a, X, 4, boundary="zero") == 0)

    def test_antiperiodic_overlong_shift_rejected(self):
        g = Geometry((4, 4, 4, 4))
        with pytest.raises(ValueError):
            g.shift(np.ones(g.shape), X, 4, boundary="antiperiodic")

    def test_unknown_boundary_rejected(self):
        g = Geometry((4, 4, 4, 4))
        with pytest.raises(ValueError):
            g.shift(np.ones(g.shape), X, 1, boundary="reflect")

    def test_shape_mismatch_rejected(self):
        g = Geometry((4, 4, 4, 4))
        with pytest.raises(ValueError):
            g.shift(np.ones((4, 4, 4, 8)), X, 1)

    def test_shift_preserves_trailing_axes(self, rng=np.random.default_rng(2)):
        g = Geometry((4, 4, 4, 4))
        a = rng.standard_normal(g.shape + (4, 3))
        out = g.shift(a, Z, 1)
        assert out.shape == a.shape


class TestFaces:
    def test_face_slice_selects_slab(self):
        g = Geometry((4, 4, 4, 8))
        a = np.zeros(g.shape)
        a[g.face_slice(T, +1, depth=2)] = 1
        assert a[6:, ...].sum() == a.sum()
        assert a.sum() == 2 * 4 * 4 * 4

    def test_face_slice_sides_disjoint(self):
        g = Geometry((4, 4, 4, 8))
        a = np.zeros(g.shape)
        a[g.face_slice(Z, +1)] += 1
        a[g.face_slice(Z, -1)] += 1
        assert a.max() == 1

    def test_face_volume(self):
        g = Geometry((4, 6, 8, 10))
        assert g.face_volume(X) == g.volume // 4
        assert g.face_volume(T, depth=3) == 3 * g.volume // 10

    def test_face_slice_validation(self):
        g = Geometry((4, 4, 4, 4))
        with pytest.raises(ValueError):
            g.face_slice(X, 0)
        with pytest.raises(ValueError):
            g.face_slice(X, +1, depth=5)

    def test_surface_to_volume_grows_with_partitioning(self):
        g = Geometry((8, 8, 8, 8))
        r1 = g.surface_to_volume((T,))
        r2 = g.surface_to_volume((Z, T))
        r4 = g.surface_to_volume((X, Y, Z, T))
        assert r1 < r2 < r4
