"""Field memory layout (Figs. 2-3)."""

import pytest

from repro.lattice import Geometry
from repro.lattice.layout import FieldLayout, gauge_layout, spinor_layout


@pytest.fixture(scope="module")
def geom():
    return Geometry((8, 8, 8, 16))


class TestSpinorLayout:
    def test_body_is_half_volume(self, geom):
        lay = spinor_layout(geom)
        assert lay.body_sites == geom.volume // 2
        assert lay.body_reals == 24 * geom.volume // 2

    def test_staggered_reals(self, geom):
        assert spinor_layout(geom, nspin=1).reals_per_site == 6

    def test_no_ghosts_when_unpartitioned(self, geom):
        lay = spinor_layout(geom)
        assert lay.ghost_segments() == []
        assert lay.ghost_reals == 0
        assert lay.ghost_fraction == 0.0

    def test_ghosts_only_for_partitioned_dims(self, geom):
        """"Allocation of ghost zones ... only takes place when that
        dimension is partitioned"."""
        lay = spinor_layout(geom, partitioned=(2, 3))
        dims = {s.mu for s in lay.ghost_segments()}
        assert dims == {2, 3}
        assert len(lay.ghost_segments()) == 4  # two faces per dim

    def test_ghosts_packed_after_body_and_pad(self, geom):
        lay = spinor_layout(geom, partitioned=(3,), pad_sites=16)
        segs = lay.ghost_segments()
        assert segs[0].offset_reals == lay.body_reals + lay.pad_reals
        assert segs[1].offset_reals == segs[0].end

    def test_segments_non_overlapping_and_exhaustive(self, geom):
        lay = spinor_layout(geom, partitioned=(0, 1, 2, 3))
        segs = lay.ghost_segments()
        for a, b in zip(segs, segs[1:]):
            assert b.offset_reals == a.end
        assert segs[-1].end == lay.total_reals

    def test_face_sites_per_parity(self, geom):
        lay = spinor_layout(geom, partitioned=(3,))
        # T face of 8x8x8x16: 8^3 sites, half per parity.
        assert lay.ghost_face_sites(3) == 8**3 // 2

    def test_depth3_ghosts_triple(self, geom):
        d1 = spinor_layout(geom, nspin=1, partitioned=(3,), ghost_depth=1)
        d3 = spinor_layout(geom, nspin=1, partitioned=(3,), ghost_depth=3)
        assert d3.ghost_reals == 3 * d1.ghost_reals

    def test_total_bytes_by_precision(self, geom):
        single = spinor_layout(geom, partitioned=(3,), precision_name="single")
        half = spinor_layout(geom, partitioned=(3,), precision_name="half")
        assert single.total_bytes == 2 * half.total_bytes

    def test_segment_lookup(self, geom):
        lay = spinor_layout(geom, partitioned=(1, 3))
        seg = lay.segment_for(3, +1)
        assert seg.mu == 3 and seg.sign == +1
        with pytest.raises(KeyError):
            lay.segment_for(0, +1)

    def test_ghost_fraction_grows_with_partitioning(self, geom):
        f1 = spinor_layout(geom, partitioned=(3,)).ghost_fraction
        f4 = spinor_layout(geom, partitioned=(0, 1, 2, 3)).ghost_fraction
        assert f4 > f1 > 0


class TestGaugeLayout:
    def test_reals_per_site(self, geom):
        assert gauge_layout(geom, reconstruct=18).reals_per_site == 72
        assert gauge_layout(geom, reconstruct=12).reals_per_site == 48

    def test_matches_halo_message_sizes(self, geom):
        """Cross-check against the real halo engine: one exchanged spinor
        face (both parities) carries exactly 2x the per-parity ghost
        segment, in the working precision."""
        from repro.comm import CommLog, ProcessGrid
        from repro.lattice import SpinorField
        from repro.multigpu import BlockPartition, HaloExchanger

        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        log = CommLog()
        ex = HaloExchanger(part, depth=1, log=log)
        ex.exchange_spinor(part.split(SpinorField.random(geom, rng=1).data))
        per_message = log.events[0].nbytes
        lay = spinor_layout(
            part.local_geometry, partitioned=(3,), precision_name="double"
        )
        expected = 2 * lay.segment_for(3, +1).length_reals * 8
        assert per_message == expected
