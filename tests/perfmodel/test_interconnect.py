"""The PCI-E / host-copy / InfiniBand pipeline model."""

import pytest

from repro.perfmodel.interconnect import InterconnectSpec


@pytest.fixture()
def net():
    return InterconnectSpec()


class TestFaceTransfer:
    def test_monotone_in_size(self, net):
        assert net.face_transfer_time(1 << 20) > net.face_transfer_time(1 << 10)

    def test_off_node_costs_more(self, net):
        s = 1 << 20
        assert net.face_transfer_time(s, off_node=True) > net.face_transfer_time(
            s, off_node=False
        )

    def test_latency_floor(self, net):
        assert net.face_transfer_time(0) > 0

    def test_average_between_extremes(self, net):
        s = 1 << 18
        on = net.face_transfer_time(s, off_node=False)
        off = net.face_transfer_time(s, off_node=True)
        avg = net.average_face_time(s)
        assert on < avg < off

    def test_host_copies_included(self, net):
        """The two extra host memcpys of Sec. 6.3 are a visible fraction of
        the pipeline (the GPU-Direct motivation)."""
        s = 1 << 20
        with_copies = net.face_transfer_time(s, off_node=True)
        no_copies = InterconnectSpec(host_copy_GBs=1e9).face_transfer_time(
            s, off_node=True
        )
        assert with_copies > 1.2 * no_copies


class TestAllreduce:
    def test_grows_with_ranks(self, net):
        times = [net.allreduce_time(n) for n in (1, 2, 16, 256)]
        assert times == sorted(times)

    def test_logarithmic_scaling(self, net):
        t256 = net.allreduce_time(256)
        t16 = net.allreduce_time(16)
        assert t256 < 4 * t16  # log tree, not linear
