"""Replaying measured runs through the performance model."""

import numpy as np
import pytest

from repro.comm import CommLog, ProcessGrid
from repro.comm.traffic import CommEvent
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import DistributedOperator, DistributedSpace
from repro.perfmodel.device import M2050
from repro.perfmodel.interconnect import InterconnectSpec
from repro.perfmodel.kernels import KernelModel, OperatorKind
from repro.perfmodel.replay import ReplayedSolve, replay_comm, replay_solve
from repro.precision import SINGLE
from repro.util.counters import tally

NET = InterconnectSpec()


class TestReplayComm:
    def _log(self, sizes_by_src):
        log = CommLog()
        for src, nbytes in sizes_by_src:
            log.add(CommEvent(src=src, dst=(src + 1) % 4, mu=3, sign=1,
                              nbytes=nbytes))
        return log

    def test_empty_log(self):
        assert replay_comm(CommLog(), NET, 4) == 0.0

    def test_busiest_rank_sets_time(self):
        balanced = self._log([(0, 1 << 20), (1, 1 << 20)])
        skewed = self._log([(0, 1 << 20), (0, 1 << 20)])
        assert replay_comm(skewed, NET, 4) > replay_comm(balanced, NET, 4)

    def test_monotone_in_bytes(self):
        small = self._log([(0, 1 << 10)])
        big = self._log([(0, 1 << 22)])
        assert replay_comm(big, NET, 4) > replay_comm(small, NET, 4)

    def test_kind_filter(self):
        log = CommLog()
        log.add(CommEvent(0, 1, 3, 1, 1 << 20, kind="gauge"))
        assert replay_comm(log, NET, 2, kind="spinor") == 0.0
        assert replay_comm(log, NET, 2, kind=None) > 0.0

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            replay_comm(CommLog(), NET, 0)


class TestReplaySolve:
    @pytest.fixture(scope="class")
    def measured(self):
        """A real distributed solve with full instrumentation."""
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=717)
        log = CommLog()
        grid = ProcessGrid((1, 1, 2, 2))
        dist = DistributedOperator.wilson_clover(gauge, 0.2, 1.0, grid, log=log)
        space = DistributedSpace(dist.partition, site_axes=2)
        b = space.scatter(SpinorField.random(geom, rng=5).data)
        from repro.solvers import gcr

        with tally() as t:
            res = gcr(dist.apply, b, tol=1e-6, maxiter=300, space=space)
        assert res.converged
        return t, log, geom

    def test_replay_produces_breakdown(self, measured):
        t, log, geom = measured
        kernel = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)
        local_sites = 32**3 * 256 // 4  # modeled deployment: 4 Edge GPUs
        out = replay_solve(
            t, kernel, M2050, NET, local_sites, n_ranks=4, log=log,
            operator_names=("dist_wilson_clover",),
        )
        assert isinstance(out, ReplayedSolve)
        assert out.operator_time > 0
        assert out.reduction_time > 0
        assert out.comm_time > 0
        assert out.total == pytest.approx(
            out.operator_time + out.blas_time + out.reduction_time
            + out.comm_time
        )

    def test_operator_time_dominates_at_large_local_volume(self, measured):
        t, log, geom = measured
        kernel = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)
        out = replay_solve(
            t, kernel, M2050, NET, 32**3 * 32, n_ranks=4, log=log,
            operator_names=("dist_wilson_clover",),
        )
        assert out.operator_time > out.reduction_time

    def test_scales_with_local_volume(self, measured):
        t, log, geom = measured
        kernel = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)
        small = replay_solve(t, kernel, M2050, NET, 1 << 15, 4,
                             operator_names=("dist_wilson_clover",))
        large = replay_solve(t, kernel, M2050, NET, 1 << 20, 4,
                             operator_names=("dist_wilson_clover",))
        assert large.operator_time > 10 * small.operator_time
