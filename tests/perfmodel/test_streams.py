"""The Fig.-4 stream-overlap timeline."""

import pytest

from repro.perfmodel.device import M2050
from repro.perfmodel.interconnect import InterconnectSpec
from repro.perfmodel.kernels import KernelModel, OperatorKind
from repro.perfmodel.streams import model_dslash_time
from repro.precision import SINGLE

NET = InterconnectSpec()
KERNEL = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)


def timeline(local_dims, partitioned):
    return model_dslash_time(KERNEL, M2050, NET, local_dims, partitioned)


class TestTimeline:
    def test_serial_has_no_comm(self):
        tl = timeline((8, 8, 8, 16), ())
        assert tl.comm_time == 0.0
        assert tl.gather_time == 0.0
        assert tl.exterior_total == 0.0
        assert tl.idle_time == 0.0

    def test_total_at_least_interior(self):
        tl = timeline((8, 8, 8, 8), (3,))
        assert tl.total_time >= tl.interior_time

    def test_idle_appears_for_small_subvolumes(self):
        """Fig. 4's GPU-idle interval: at small local volume the total
        communication time exceeds the interior kernel."""
        big = timeline((32, 32, 32, 32), (3,))
        small = timeline((8, 8, 8, 8), (0, 1, 2, 3))
        assert big.idle_time == 0.0
        assert small.idle_time > 0.0

    def test_partitioning_more_dims_adds_gathers_and_exteriors(self):
        one = timeline((16, 16, 16, 16), (3,))
        four = timeline((16, 16, 16, 16), (0, 1, 2, 3))
        assert four.gather_time > one.gather_time
        assert len(four.exterior_times) == 4
        assert four.exterior_total > one.exterior_total

    def test_t_face_skips_gather_kernel(self):
        t_only = timeline((16, 16, 16, 16), (3,))
        x_only = timeline((16, 16, 16, 16), (0,))
        assert x_only.gather_time > t_only.gather_time

    def test_interior_fraction_shrinks_with_cuts(self):
        full = timeline((8, 8, 8, 8), ())
        cut = timeline((8, 8, 8, 8), (0, 1, 2, 3))
        assert cut.interior_time < full.interior_time

    def test_gflops_per_gpu(self):
        tl = timeline((16, 16, 16, 16), (3,))
        gf = tl.gflops_per_gpu(1824)
        assert 10 < gf < 300

    def test_asqtad_pays_three_slab_faces(self):
        asqtad = KernelModel(OperatorKind.ASQTAD, SINGLE, 18)
        wilson = KernelModel(OperatorKind.STAGGERED, SINGLE, 18)
        t3 = model_dslash_time(asqtad, M2050, NET, (16, 16, 16, 16), (3,))
        t1 = model_dslash_time(wilson, M2050, NET, (16, 16, 16, 16), (3,))
        # Faces are 3 slabs instead of 1 (fixed per-face overheads dilute
        # the pure 3x byte ratio).
        assert t3.comm_time > 1.5 * t1.comm_time


class TestStrongScalingShape:
    def test_gflops_per_gpu_decreases_with_cuts(self):
        """The headline strong-scaling behaviour: per-GPU rate falls as the
        local volume shrinks (Figs. 5-6)."""
        series = []
        for lt in (64, 32, 16, 8, 4, 2):
            tl = timeline((32, 32, 32, lt), (3,))
            series.append(tl.gflops_per_gpu(1824))
        assert series == sorted(series, reverse=True)

    def test_multi_dim_wins_at_small_local_volume(self):
        """The Fig. 6 crossover: at strong-scaling extremes, partitioning
        more dimensions (better surface-to-volume) beats fewer."""
        # Same 64^3x192 global volume on 256 GPUs, decomposed as the
        # partitioning policy would.
        from repro.comm.grid import choose_grid

        vol = (64, 64, 64, 192)
        results = {}
        for dims, label in [((3, 2), "ZT"), ((3, 2, 1, 0), "XYZT")]:
            g = choose_grid(256, dims, vol)
            local = tuple(v // d for v, d in zip(vol, g.dims))
            tl = model_dslash_time(
                KernelModel(OperatorKind.ASQTAD, SINGLE, 18),
                M2050, NET, local, g.partitioned_dims,
            )
            results[label] = tl.gflops_per_gpu(1146)
        assert results["XYZT"] > results["ZT"]
