"""Whole-solver time models and the scaling studies built on them."""

import pytest

from repro.core.scaling import (
    DslashScalingStudy,
    MultishiftScalingStudy,
    WilsonSolverScalingStudy,
    default_gcr_outer_iterations,
)
from repro.perfmodel.kernels import OperatorKind
from repro.perfmodel.solver_model import (
    BiCGstabModel,
    GCRDDModel,
    GCRDDWorkload,
    SolverWorkload,
)
from repro.perfmodel.machines import EDGE
from repro.precision import DOUBLE, SINGLE, HALF

VOL = (32, 32, 32, 256)
GPU_COUNTS = [8, 16, 32, 64, 128, 256]


class TestIterationGrowth:
    def test_reference_point(self):
        assert default_gcr_outer_iterations(32) == 220

    def test_monotone_in_blocks(self):
        its = [default_gcr_outer_iterations(n) for n in (16, 32, 64, 256)]
        assert its == sorted(its)

    def test_single_block(self):
        assert default_gcr_outer_iterations(1) == 220


class TestWilsonStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return WilsonSolverScalingStudy()

    def test_bicgstab_stalls_while_gcr_scales(self, study):
        """Fig. 7's core claim: BiCGstab cannot effectively scale past ~32
        GPUs; GCR-DD keeps scaling to 256."""
        b32 = study.bicgstab_point(32)
        b256 = study.bicgstab_point(256)
        g32 = study.gcr_point(32)
        g256 = study.gcr_point(256)
        bicg_speedup = b32.seconds / b256.seconds
        gcr_speedup = g32.seconds / g256.seconds
        assert bicg_speedup < 2.0  # 8x GPUs, < 2x gain: stalled
        assert gcr_speedup > 1.8
        assert gcr_speedup > bicg_speedup

    def test_crossover_past_32(self, study):
        """BiCGstab is the better solver at small partitions; GCR-DD wins
        beyond the crossover (paper: superior at 32, loses at 64+)."""
        assert study.bicgstab_point(8).seconds < study.gcr_point(8).seconds
        assert study.bicgstab_point(64).seconds > study.gcr_point(64).seconds

    def test_fig8_speedup_band(self, study):
        """GCR-DD time-to-solution improvements at 64/128/256 GPUs in the
        neighborhood of the paper's 1.52x/1.63x/1.64x."""
        for gpus, target in [(64, 1.52), (128, 1.63), (256, 1.64)]:
            ratio = (
                study.bicgstab_point(gpus).seconds
                / study.gcr_point(gpus).seconds
            )
            assert ratio == pytest.approx(target, rel=0.25), gpus

    def test_gcr_exceeds_10_tflops_at_128(self, study):
        """Sec. 9.1: 'greater than 10 Tflops on partitions of 128 GPUs and
        above'."""
        assert study.gcr_point(128).tflops > 10.0
        assert study.gcr_point(256).tflops > 10.0

    def test_breakdown_components_positive(self, study):
        bd = study.gcr_point(64).breakdown
        assert bd.preconditioner > 0
        assert bd.matvec > 0
        assert bd.reductions > 0
        assert bd.total == pytest.approx(
            bd.matvec + bd.preconditioner + bd.blas + bd.reductions + bd.restarts
        )

    def test_gcr_precond_dominated_by_local_work(self, study):
        """The Schwarz solve is the bulk of GCR-DD's time but requires no
        communication — the trade the paper makes."""
        bd = study.gcr_point(128).breakdown
        assert bd.preconditioner > bd.reductions


class TestDslashStudy:
    def test_fig5_monotone_decline(self):
        study = DslashScalingStudy(VOL, OperatorKind.WILSON_CLOVER, SINGLE, 12)
        rates = [p.gflops_per_gpu for p in study.run(GPU_COUNTS)]
        assert rates == sorted(rates, reverse=True)

    def test_fig5_half_advantage_positive(self):
        sp = DslashScalingStudy(VOL, OperatorKind.WILSON_CLOVER, SINGLE, 12)
        hp = DslashScalingStudy(VOL, OperatorKind.WILSON_CLOVER, HALF, 12)
        for n in GPU_COUNTS:
            assert hp.point(n).gflops_per_gpu > sp.point(n).gflops_per_gpu

    def test_fig6_partitioning_crossover(self):
        """ZT wins (or ties) at 32 GPUs; XYZT wins at 256 (Fig. 6)."""
        vol = (64, 64, 64, 192)
        zt = DslashScalingStudy(vol, OperatorKind.ASQTAD, SINGLE, 18,
                                partition_dims=(3, 2))
        xyzt = DslashScalingStudy(vol, OperatorKind.ASQTAD, SINGLE, 18,
                                  partition_dims=(3, 2, 1, 0))
        assert zt.point(32).gflops_per_gpu >= 0.95 * xyzt.point(32).gflops_per_gpu
        assert xyzt.point(256).gflops_per_gpu > zt.point(256).gflops_per_gpu

    def test_total_tflops_property(self):
        study = DslashScalingStudy(VOL, OperatorKind.WILSON_CLOVER, SINGLE, 12)
        p = study.point(64)
        assert p.total_tflops == pytest.approx(p.gflops_per_gpu * 64 / 1e3)


class TestMultishiftStudy:
    def test_fig10_scaling_band(self):
        """64 -> 256 GPUs speedup in the neighborhood of the paper's 2.56x,
        and ~5.5 Tflops at 256 (XYZT/YZT)."""
        ms = MultishiftScalingStudy()
        best64 = max(
            ms.point(64, d).tflops for d in [(3, 2), (3, 2, 1), (3, 2, 1, 0)]
        )
        best256 = max(
            ms.point(256, d).tflops for d in [(3, 2), (3, 2, 1), (3, 2, 1, 0)]
        )
        assert best256 / best64 == pytest.approx(2.56, rel=0.2)
        assert best256 == pytest.approx(5.49, rel=0.2)

    def test_more_dims_win_at_256(self):
        ms = MultishiftScalingStudy()
        assert ms.point(256, (3, 2, 1)).tflops > ms.point(256, (3, 2)).tflops


class TestBiCGstabModel:
    def test_time_decreases_then_saturates(self):
        model = BiCGstabModel(EDGE, VOL, reconstruct=12,
                              workload=SolverWorkload(iterations=500))
        from repro.comm.grid import choose_grid

        t8 = model.solve_time(choose_grid(8, (3, 2, 1, 0), VOL).dims).total
        t64 = model.solve_time(choose_grid(64, (3, 2, 1, 0), VOL).dims).total
        t256 = model.solve_time(choose_grid(256, (3, 2, 1, 0), VOL).dims).total
        assert t8 > t64
        # saturation: the last 4x in GPUs buys much less than 4x in time
        assert t64 / t256 < 2.0


class TestGCRDDModel:
    def test_useful_flops_counts_preconditioner(self):
        w = GCRDDWorkload(outer_iterations=100, mr_steps=10)
        model = GCRDDModel(EDGE, VOL, w)
        w0 = GCRDDWorkload(outer_iterations=100, mr_steps=0)
        model0 = GCRDDModel(EDGE, VOL, w0)
        assert model.useful_flops() > 5 * model0.useful_flops()
