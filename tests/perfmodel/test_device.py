"""GPU device model: saturation curve and bandwidth."""

import pytest

from repro.perfmodel.device import GPUSpec, M2050


class TestSaturation:
    def test_efficiency_monotone(self):
        effs = [M2050.kernel_efficiency(v) for v in (1000, 10000, 100000, 1000000)]
        assert effs == sorted(effs)

    def test_efficiency_bounded(self):
        assert 0 < M2050.kernel_efficiency(100) < 1
        assert M2050.kernel_efficiency(10**9) > 0.99

    def test_paper_factor_two(self):
        """The Sec. 9.1 observation: the 256-GPU local volume (32^3x256/256
        = 32768 sites) runs at about half the efficiency of the 16-GPU
        local volume (524288 sites)."""
        small = M2050.kernel_efficiency(32768)
        large = M2050.kernel_efficiency(524288)
        assert large / small == pytest.approx(2.0, rel=0.02)

    def test_effective_bandwidth_scales(self):
        assert M2050.effective_bandwidth(10**6) < M2050.achievable_bandwidth_GBs
        assert M2050.effective_bandwidth(10**6) > 0.9 * M2050.achievable_bandwidth_GBs


class TestSpec:
    def test_m2050_peaks(self):
        assert M2050.peak_gflops["double"] == pytest.approx(515.0)
        assert M2050.peak_gflops["single"] == pytest.approx(1030.0)

    def test_custom_spec(self):
        gpu = GPUSpec("toy", {"single": 100.0}, 50.0, 1000.0)
        assert gpu.kernel_efficiency(1000) == pytest.approx(0.5)
