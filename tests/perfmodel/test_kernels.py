"""Dslash kernel cost model."""

import pytest

from repro.perfmodel.device import M2050
from repro.perfmodel.kernels import KernelModel, OperatorKind
from repro.precision import DOUBLE, HALF, SINGLE


class TestOperatorKind:
    def test_spins(self):
        assert OperatorKind.WILSON_CLOVER.nspin == 4
        assert OperatorKind.ASQTAD.nspin == 1

    def test_ghost_depth(self):
        assert OperatorKind.WILSON.ghost_depth == 1
        assert OperatorKind.ASQTAD.ghost_depth == 3

    def test_flop_constants(self):
        assert OperatorKind.WILSON.flops_per_site == 1320
        assert OperatorKind.WILSON_CLOVER.flops_per_site == 1824
        assert OperatorKind.ASQTAD.flops_per_site == 1146


class TestBytes:
    def test_reconstruction_cuts_gauge_traffic(self):
        full = KernelModel(OperatorKind.WILSON, SINGLE, 18)
        r12 = KernelModel(OperatorKind.WILSON, SINGLE, 12)
        r8 = KernelModel(OperatorKind.WILSON, SINGLE, 8)
        assert full.gauge_bytes_per_site() > r12.gauge_bytes_per_site()
        assert r12.gauge_bytes_per_site() > r8.gauge_bytes_per_site()
        assert r12.gauge_bytes_per_site() == 8 * 12 * 4

    def test_reconstruction_adds_flops(self):
        full = KernelModel(OperatorKind.WILSON, SINGLE, 18)
        r8 = KernelModel(OperatorKind.WILSON, SINGLE, 8)
        assert r8.flops_per_site > full.flops_per_site

    def test_asqtad_reads_two_link_fields(self):
        asqtad = KernelModel(OperatorKind.ASQTAD, SINGLE, 18)
        wilson = KernelModel(OperatorKind.WILSON, SINGLE, 18)
        assert asqtad.gauge_bytes_per_site() == 2 * wilson.gauge_bytes_per_site()

    def test_fat_links_cannot_be_reconstructed(self):
        with pytest.raises(ValueError):
            KernelModel(OperatorKind.ASQTAD, SINGLE, 12)

    def test_invalid_reconstruct(self):
        with pytest.raises(ValueError):
            KernelModel(OperatorKind.WILSON, SINGLE, 10)

    def test_clover_term_bytes(self):
        wc = KernelModel(OperatorKind.WILSON_CLOVER, DOUBLE, 18)
        w = KernelModel(OperatorKind.WILSON, DOUBLE, 18)
        assert wc.clover_bytes_per_site() == 72 * 8
        assert wc.bytes_per_site(0.5) > w.bytes_per_site(0.5)

    def test_half_precision_halves_gauge_traffic(self):
        sp = KernelModel(OperatorKind.WILSON, SINGLE, 12)
        hp = KernelModel(OperatorKind.WILSON, HALF, 12)
        assert hp.gauge_bytes_per_site() == sp.gauge_bytes_per_site() // 2


class TestTime:
    def test_double_slower_than_single(self):
        v = 1 << 18
        dp = KernelModel(OperatorKind.ASQTAD, DOUBLE, 18).time_on(M2050, v)
        sp = KernelModel(OperatorKind.ASQTAD, SINGLE, 18).time_on(M2050, v)
        assert dp == pytest.approx(2 * sp, rel=0.05)

    def test_half_faster_but_not_two_x(self):
        """The QUDA observation: half wins ~1.5-1.8x over single, not 2x,
        because of fixed-point pack/unpack and scale traffic."""
        v = 1 << 18
        sp = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)
        hp = KernelModel(OperatorKind.WILSON_CLOVER, HALF, 12)
        ratio = sp.time_on(M2050, v) / hp.time_on(M2050, v)
        assert 1.3 < ratio < 1.9

    def test_reported_gflops_sane(self):
        """Single-GPU Wilson-clover SP on the M2050 lands in the
        QUDA-reported range (roughly 130-250 Gflops)."""
        k = KernelModel(OperatorKind.WILSON_CLOVER, SINGLE, 12)
        gf = k.reported_gflops(M2050, 1 << 20)
        assert 120 < gf < 260

    def test_asqtad_single_gpu_rate(self):
        k = KernelModel(OperatorKind.ASQTAD, SINGLE, 18)
        gf = k.reported_gflops(M2050, 1 << 20)
        assert 60 < gf < 140

    def test_small_volume_slower_per_site(self):
        k = KernelModel(OperatorKind.WILSON, SINGLE, 12)
        small = k.reported_gflops(M2050, 1 << 15)
        large = k.reported_gflops(M2050, 1 << 20)
        assert small < 0.7 * large


class TestHaloBytes:
    def test_face_bytes_match_exchanger_accounting(self):
        """The analytic per-site face bytes equal what the halo exchanger
        logs per face site, for every precision and discretization."""
        import numpy as np

        from repro.multigpu.halo import halo_logical_nbytes

        for kind, site_shape, site_axes in [
            (OperatorKind.WILSON, (4, 3), 2),
            (OperatorKind.ASQTAD, (3,), 1),
        ]:
            face = np.empty((6, 5) + site_shape, dtype=np.complex128)
            sites = 30
            for prec in (DOUBLE, SINGLE, HALF):
                model = KernelModel(kind, prec)
                assert (
                    model.halo_bytes_per_site() * sites
                    == halo_logical_nbytes(face, prec, site_axes)
                )

    def test_half_face_is_more_than_a_quarter(self):
        """Half faces carry the per-site float32 norm on top of the int16
        mantissas, so they are slightly larger than double/4."""
        double = KernelModel(OperatorKind.WILSON, DOUBLE).halo_bytes_per_site()
        single = KernelModel(OperatorKind.WILSON, SINGLE).halo_bytes_per_site()
        half = KernelModel(OperatorKind.WILSON, HALF).halo_bytes_per_site()
        assert single == double // 2
        assert half == double // 4 + 4
