"""Machine catalog: Edge and the CPU capability systems of Fig. 9 / Sec. 9.2."""

import pytest

from repro.perfmodel.machines import (
    CPU_MACHINES,
    EDGE,
    INTREPID_BGP,
    JAGUAR_XT4,
    JAGUAR_XT5,
    KRAKEN,
)


class TestEdge:
    def test_config(self):
        assert EDGE.gpus_per_node == 2
        assert EDGE.max_gpus == 256
        assert "M2050" in EDGE.gpu.name


class TestCPUMachines:
    def test_efficiency_decreasing(self):
        for m in CPU_MACHINES:
            effs = [m.efficiency(n) for n in (1024, 8192, 65536)]
            assert effs == sorted(effs, reverse=True)

    def test_sustained_increasing_in_cores(self):
        for m in CPU_MACHINES:
            assert m.sustained_tflops(32768) > m.sustained_tflops(4096)

    def test_fig9_range(self):
        """Fig. 9: 10-17 Tflops on partitions >= 16K cores across the
        three machines."""
        rates = [m.sustained_tflops(32768) for m in CPU_MACHINES]
        assert max(rates) == pytest.approx(17.0, rel=0.15)
        assert min(rates) >= 8.0
        for m in CPU_MACHINES:
            assert m.sustained_tflops(16384) >= 5.0

    def test_xt5_beats_xt4_beats_bgp_per_core(self):
        assert (
            JAGUAR_XT5.rate_per_core_gflops
            > JAGUAR_XT4.rate_per_core_gflops
            > INTREPID_BGP.rate_per_core_gflops
        )

    def test_kraken_sec92_calibration(self):
        """Sec. 9.2: the CPU MILC multi-shift solver sustains 942 Gflops at
        4096 Kraken cores."""
        assert KRAKEN.sustained_tflops(4096) == pytest.approx(0.942, rel=0.05)

    def test_cores_equivalent_inverts_sustained(self):
        cores = JAGUAR_XT5.cores_equivalent(10.0)
        assert JAGUAR_XT5.sustained_tflops(cores) >= 10.0
        assert JAGUAR_XT5.sustained_tflops(cores - 100) < 10.0

    def test_cores_equivalent_saturates(self):
        # Efficiency decay caps the reachable rate; asking for more returns
        # the cap.
        assert JAGUAR_XT5.cores_equivalent(10**6, max_cores=1 << 20) == 1 << 20
