"""SolveQueue: backpressure, priority order, deadlines, tickets."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.errors import QueueFullError, ServiceClosedError
from repro.serve.queue import QueuedRequest, SolveQueue, Ticket


class _Req:
    """Stand-in request with just the fields the queue reads."""

    def __init__(self, priority=0, fingerprint="fp"):
        self.priority = priority
        self.fingerprint = fingerprint
        self.id = None


def entry(priority=0, fingerprint="fp", deadline=None):
    return QueuedRequest(
        request=_Req(priority, fingerprint),
        ticket=Ticket(),
        deadline=deadline,
    )


class TestBackpressure:
    def test_full_queue_rejects_not_blocks(self):
        q = SolveQueue(capacity=2)
        q.put(entry())
        q.put(entry())
        t0 = time.monotonic()
        with pytest.raises(QueueFullError) as exc:
            q.put(entry())
        # The rejection is immediate (no hidden blocking).
        assert time.monotonic() - t0 < 0.5
        assert exc.value.code == "queue_full"
        assert exc.value.http_status == 429
        assert q.depth == 2

    def test_closed_queue_rejects_with_typed_error(self):
        q = SolveQueue(capacity=2)
        q.close()
        with pytest.raises(ServiceClosedError) as exc:
            q.put(entry())
        assert exc.value.code == "shutting_down"

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError, match="capacity"):
            SolveQueue(capacity=0)


class TestOrdering:
    def test_higher_priority_dequeues_first(self):
        q = SolveQueue()
        low = entry(priority=0)
        high = entry(priority=5)
        q.put(low)
        q.put(high)
        assert q.pop_next(timeout=0) is high
        assert q.pop_next(timeout=0) is low

    def test_equal_priority_is_fifo(self):
        q = SolveQueue()
        first, second = entry(), entry()
        q.put(first)
        q.put(second)
        assert q.pop_next(timeout=0) is first
        assert q.pop_next(timeout=0) is second

    def test_take_compatible_matches_fingerprint_only(self):
        q = SolveQueue()
        a = entry(fingerprint="A")
        b = entry(fingerprint="B")
        a2 = entry(fingerprint="A")
        for e in (a, b, a2):
            q.put(e)
        taken = q.take_compatible("A", limit=10)
        assert taken == [a, a2]
        assert q.depth == 1  # B stays queued

    def test_take_compatible_respects_limit(self):
        q = SolveQueue()
        entries = [entry(fingerprint="A") for _ in range(3)]
        for e in entries:
            q.put(e)
        assert q.take_compatible("A", limit=2) == entries[:2]
        assert q.depth == 1


class TestDeadlines:
    def test_expire_due_evicts_only_lapsed(self):
        q = SolveQueue()
        now = time.monotonic()
        dead = entry(deadline=now - 0.01)
        alive = entry(deadline=now + 60.0)
        q.put(dead)
        q.put(alive)
        assert q.expire_due() == [dead]
        assert q.depth == 1

    def test_no_deadline_never_expires(self):
        e = entry()
        assert not e.expired()


class TestBlockingAndTickets:
    def test_pop_next_times_out_empty(self):
        q = SolveQueue()
        t0 = time.monotonic()
        assert q.pop_next(timeout=0.05) is None
        assert time.monotonic() - t0 >= 0.04

    def test_pop_next_woken_by_put(self):
        q = SolveQueue()
        e = entry()
        threading.Timer(0.05, q.put, args=(e,)).start()
        assert q.pop_next(timeout=5.0) is e

    def test_ticket_result_raises_stored_error(self):
        t = Ticket()
        t.set_error(QueueFullError("full"))
        with pytest.raises(QueueFullError):
            t.result(timeout=0)

    def test_ticket_times_out(self):
        t = Ticket()
        with pytest.raises(TimeoutError):
            t.result(timeout=0.01)

    def test_drain_all_empties(self):
        q = SolveQueue()
        entries = [entry() for _ in range(3)]
        for e in entries:
            q.put(e)
        assert q.drain_all() == entries
        assert q.depth == 0
