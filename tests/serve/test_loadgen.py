"""The serve load harness: quantiles, one real load point, the wrapped
``"serve"`` bench document."""

from __future__ import annotations

import pytest

from repro.serve.loadgen import (
    _default_payload,
    quantile,
    run_load_bench,
    run_load_point,
)


class TestQuantile:
    def test_median_of_odd_samples(self):
        assert quantile([3.0, 1.0, 2.0], 0.5) == 2.0

    def test_interpolates_between_samples(self):
        assert quantile([0.0, 1.0], 0.5) == pytest.approx(0.5)
        assert quantile([0.0, 1.0, 2.0, 3.0], 0.25) == pytest.approx(0.75)

    def test_extremes_are_min_and_max(self):
        vals = [5.0, 1.0, 9.0]
        assert quantile(vals, 0.0) == 1.0
        assert quantile(vals, 1.0) == 9.0

    def test_single_sample(self):
        assert quantile([7.0], 0.99) == 7.0

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(ValueError):
            quantile([], 0.5)
        with pytest.raises(ValueError):
            quantile([1.0], 1.5)


@pytest.mark.slow
class TestLoadPoint:
    def test_point_serves_all_requests_and_coalesces(self):
        payload = _default_payload((4, 4, 4, 4), -0.1, 0.25, 5)
        entry = run_load_point(
            max_batch=4, concurrency=3, requests_per_client=2,
            payload=payload, max_wait=0.05,
        )
        assert entry["errors"] == 0
        assert entry["requests"] == 6
        assert entry["requests_per_second"] > 0.0
        assert entry["p50_latency_seconds"] <= entry["p99_latency_seconds"]
        assert entry["coalesce_ratio"] > 1.0

    def test_bench_document_is_schema_valid(self):
        from repro.metrics.bench_schema import validate_bench

        doc = run_load_bench(
            dims=(4, 4, 4, 4), max_batch_values=(1, 2),
            concurrency=2, requests_per_client=2,
        )
        assert validate_bench(doc) == []
        assert doc["bench"] == "serve"
        assert [e["max_batch"] for e in doc["results"]] == [1, 2]
        assert "rps_max_batch_2" in doc["metrics"]
        # cpu_count is the honest host count, never a fabricated value.
        import os

        assert doc["host"]["cpu_count"] == os.cpu_count()
