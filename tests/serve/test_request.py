"""ServiceRequest: validation errors, fingerprints, rhs materialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.lattice import Geometry, SpinorField
from repro.serve.errors import RequestValidationError
from repro.serve.request import (
    ServiceRequest,
    decode_array,
    encode_array,
)


def payload(**overrides):
    doc = {
        "operator": "wilson_clover",
        "mass": -0.1,
        "gauge": {"kind": "weak", "dims": [4, 4, 4, 4], "seed": 3},
        "rhs": {"kind": "random", "seed": 1},
    }
    doc.update(overrides)
    return doc


class TestValidation:
    def test_unknown_operator_names_field_and_choices(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(operator="domain_wall"))
        err = exc.value
        assert err.field == "operator"
        assert err.choices == ["wilson_clover", "asqtad"]
        assert "operator" in str(err) and "wilson_clover" in str(err)

    def test_unknown_method_lists_operator_methods(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(method="gcr-dd"))
        assert exc.value.field == "method"
        assert "bicgstab" in exc.value.choices

    def test_missing_mass_is_required(self):
        doc = payload()
        del doc["mass"]
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(doc)
        assert exc.value.field == "mass"
        assert "required" in str(exc.value)

    def test_odd_dims_rejected(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(
                payload(gauge={"kind": "unit", "dims": [3, 4, 4, 4]})
            )
        assert exc.value.field == "gauge.dims"

    def test_negative_tol_rejected(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(tol=-1e-8))
        assert exc.value.field == "tol"

    def test_bad_boundary_lists_choices(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(boundary=["open"] * 4))
        assert exc.value.field == "boundary"
        assert "antiperiodic" in exc.value.choices

    def test_even_odd_only_for_wilson(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(
                payload(operator="asqtad", even_odd=True)
            )
        assert exc.value.field == "even_odd"

    def test_unknown_kernel_names_field_and_choices(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(kernel="cuda"))
        assert exc.value.field == "kernel"
        assert "auto" in exc.value.choices

    def test_unavailable_kernel_reports_reason(self):
        from repro.kernels import get_backend

        if get_backend("numba").available:
            pytest.skip("numba installed: the tier is selectable here")
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(kernel="numba"))
        assert exc.value.field == "kernel"
        assert "not available" in str(exc.value)
        assert "numpy" in exc.value.choices

    def test_error_is_wire_round_trippable(self):
        from repro.serve.errors import error_from_dict

        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(operator="nope"))
        back = error_from_dict(exc.value.to_dict())
        assert isinstance(back, RequestValidationError)
        assert back.field == "operator"
        assert back.choices == exc.value.choices


class TestFingerprint:
    def test_auto_method_coalesces_with_explicit(self):
        auto = ServiceRequest.from_wire(payload())
        explicit = ServiceRequest.from_wire(payload(method="bicgstab"))
        assert auto.fingerprint == explicit.fingerprint

    def test_rhs_does_not_change_fingerprint(self):
        a = ServiceRequest.from_wire(payload())
        b = ServiceRequest.from_wire(
            payload(rhs={"kind": "random", "seed": 99})
        )
        assert a.fingerprint == b.fingerprint

    def test_gauge_spec_changes_fingerprint(self):
        a = ServiceRequest.from_wire(payload())
        b = ServiceRequest.from_wire(
            payload(gauge={"kind": "weak", "dims": [4, 4, 4, 4], "seed": 4})
        )
        assert a.fingerprint != b.fingerprint

    def test_solver_knobs_change_fingerprint(self):
        a = ServiceRequest.from_wire(payload())
        b = ServiceRequest.from_wire(payload(tol=1e-6))
        assert a.fingerprint != b.fingerprint

    def test_kernel_is_resolved_never_auto(self):
        from repro.kernels import resolve_kernel

        req = ServiceRequest.from_wire(payload())
        assert req.kernel != "auto"
        assert req.kernel == resolve_kernel("auto", "wilson").name
        assert req.operator_spec()["kernel"] == req.kernel

    def test_auto_kernel_coalesces_with_explicit_resolved_tier(self):
        from repro.kernels import resolve_kernel

        resolved = resolve_kernel("auto", "wilson").name
        auto = ServiceRequest.from_wire(payload())
        explicit = ServiceRequest.from_wire(payload(kernel=resolved))
        assert auto.fingerprint == explicit.fingerprint

    def test_mixed_kernel_tiers_never_coalesce(self):
        a = ServiceRequest.from_wire(payload(kernel="numpy"))
        b = ServiceRequest.from_wire(payload(kernel="numpy_ref"))
        assert a.fingerprint != b.fingerprint

    def test_delivery_metadata_does_not_change_fingerprint(self):
        a = ServiceRequest.from_wire(payload())
        b = ServiceRequest.from_wire(
            payload(id="x", priority=9, timeout_seconds=5.0,
                    return_solution=True)
        )
        assert a.fingerprint == b.fingerprint


class TestRhsMaterialization:
    def test_random_rhs_is_deterministic(self):
        geo = Geometry((4, 4, 4, 4))
        req = ServiceRequest.from_wire(payload())
        assert np.array_equal(
            req.materialize_rhs(geo), req.materialize_rhs(geo)
        )

    def test_point_source(self):
        geo = Geometry((4, 4, 4, 4))
        req = ServiceRequest.from_wire(
            payload(rhs={"kind": "point", "site": [1, 2, 3, 0],
                         "spin": 1, "color": 2})
        )
        rhs = req.materialize_rhs(geo)
        # Storage is [t, z, y, x, spin, color]; the site is (x, y, z, t).
        assert rhs[0, 3, 2, 1, 1, 2] == 1.0
        assert np.count_nonzero(rhs) == 1

    def test_inline_data_round_trips_bitwise(self):
        geo = Geometry((2, 2, 2, 2))
        field = SpinorField.random(geo, nspin=1, rng=7).data
        doc = encode_array(field)
        req = ServiceRequest.from_wire(
            payload(operator="asqtad",
                    rhs={"kind": "data", "real": doc["real"],
                         "imag": doc["imag"]},
                    gauge={"kind": "unit", "dims": [2, 2, 2, 2]})
        )
        assert np.array_equal(req.materialize_rhs(geo), field)

    def test_inline_data_wrong_shape_names_field(self):
        geo = Geometry((4, 4, 4, 4))
        req = ServiceRequest.from_wire(
            payload(operator="asqtad",
                    gauge={"kind": "unit", "dims": [4, 4, 4, 4]},
                    rhs={"kind": "data", "real": [[1.0, 2.0]]})
        )
        with pytest.raises(RequestValidationError) as exc:
            req.materialize_rhs(geo)
        assert exc.value.field == "rhs.real"


class TestArrayCodec:
    def test_json_round_trip_is_bitwise(self):
        import json

        rng = np.random.default_rng(0)
        x = rng.standard_normal((3, 4)) + 1j * rng.standard_normal((3, 4))
        wire = json.loads(json.dumps(encode_array(x)))
        assert np.array_equal(decode_array(wire), x)


def asqtad_payload(**overrides):
    doc = {
        "operator": "asqtad",
        "mass": 0.2,
        "gauge": {"kind": "weak", "dims": [4, 4, 4, 4], "seed": 3},
        "rhs": {"kind": "random", "seed": 1},
    }
    doc.update(overrides)
    return doc


class TestPrecond:
    def test_auto_canonicalizes_to_none(self):
        """"auto" on asqtad stays the historical plain-CG path, so it
        must coalesce with an explicit precond="none" request."""
        auto = ServiceRequest.from_wire(asqtad_payload(precond="auto"))
        none = ServiceRequest.from_wire(asqtad_payload(precond="none"))
        default = ServiceRequest.from_wire(asqtad_payload())
        assert auto.precond == "none"
        assert auto.fingerprint == none.fingerprint == default.fingerprint

    def test_mixed_preconds_never_coalesce(self):
        prints = {
            ServiceRequest.from_wire(
                asqtad_payload(precond=name)
            ).fingerprint
            for name in ("none", "schwarz", "ras", "multisplit")
        }
        assert len(prints) == 4

    def test_precond_knobs_change_fingerprint(self):
        a = ServiceRequest.from_wire(asqtad_payload(precond="multisplit"))
        b = ServiceRequest.from_wire(
            asqtad_payload(precond="multisplit", precond_steps=6)
        )
        c = ServiceRequest.from_wire(
            asqtad_payload(precond="multisplit", precond_overlap=0)
        )
        assert len({a.fingerprint, b.fingerprint, c.fingerprint}) == 3

    def test_unknown_precond_names_field_and_choices(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(asqtad_payload(precond="ilu"))
        assert exc.value.field == "precond"
        assert "multisplit" in exc.value.choices

    def test_precond_rejected_for_wilson(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(payload(precond="multisplit"))
        assert exc.value.field == "precond"

    def test_unfactorable_precond_blocks_rejected(self):
        with pytest.raises(RequestValidationError) as exc:
            ServiceRequest.from_wire(
                asqtad_payload(precond="multisplit", precond_blocks=7)
            )
        assert exc.value.field == "precond_blocks"

    def test_spec_carries_canonical_precond_fields(self):
        req = ServiceRequest.from_wire(
            asqtad_payload(precond="multisplit")
        )
        spec = req.operator_spec()
        assert spec["precond"] == "multisplit"
        assert spec["precond_blocks"] == 4
