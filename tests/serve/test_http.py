"""The HTTP/JSONL front + client, over a real socket on a free port."""

from __future__ import annotations

import json
import threading
import urllib.request

import numpy as np
import pytest

from repro.serve import (
    QueueFullError,
    RequestValidationError,
    ServeClient,
    ServeServer,
    SolveService,
)

DIMS = [4, 4, 4, 4]


def payload(seed=1, **overrides):
    doc = {
        "operator": "asqtad",
        "mass": 0.05,
        "gauge": {"kind": "unit", "dims": DIMS},
        "rhs": {"kind": "random", "seed": seed},
        "tol": 1e-8,
    }
    doc.update(overrides)
    return doc


@pytest.fixture()
def server():
    svc = SolveService(max_batch=4, max_wait=0.2).start()
    srv = ServeServer(svc, port=0).start()
    yield srv
    if srv.service.running:
        srv.stop()


class TestSolveRoute:
    def test_solve_round_trip(self, server):
        client = ServeClient(server.url)
        doc = client.solve(payload(id="r1", return_solution=True))
        assert doc["id"] == "r1"
        assert doc["status"] == "ok"
        assert doc["converged"] is True
        assert doc["solution"]["shape"][-1] == 3
        assert doc["report"]["fingerprint"]["config"]["operator"] == "asqtad"

    def test_concurrent_clients_coalesce(self, server):
        client = ServeClient(server.url)
        results = [None] * 3

        def go(i):
            results[i] = client.solve(payload(seed=i + 1))

        threads = [
            threading.Thread(target=go, args=(i,)) for i in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        occupancies = {r["batch"]["occupancy"] for r in results}
        assert max(occupancies) > 1  # at least some coalescing happened
        assert client.stats()["batches_total"] < 3

    def test_validation_error_maps_to_400_with_field(self, server):
        client = ServeClient(server.url)
        with pytest.raises(RequestValidationError) as exc:
            client.solve(payload(operator="wilson"))
        assert exc.value.field == "operator"
        assert "asqtad" in exc.value.choices

    def test_malformed_json_is_400(self, server):
        req = urllib.request.Request(
            server.url + "/v1/solve", b"{not json",
            {"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(req, timeout=10)
        assert exc.value.code == 400

    def test_queue_full_maps_to_429(self):
        svc = SolveService(max_batch=4, max_wait=0.05, capacity=1)
        srv = ServeServer(svc, port=0).start()  # dispatcher not running
        try:
            client = ServeClient(srv.url)
            svc.submit(payload())  # occupy the single slot
            with pytest.raises(QueueFullError):
                client.solve(payload(seed=2))
        finally:
            svc.start()  # let stop() drain the occupied slot
            srv.stop()


class TestRequestCorrelation:
    """X-Request-Id echo + request_id in typed error payloads."""

    def _post(self, server, body, headers=None):
        req = urllib.request.Request(
            f"{server.url}/v1/solve",
            data=json.dumps(body).encode(),
            headers={"Content-Type": "application/json", **(headers or {})},
            method="POST",
        )
        try:
            with urllib.request.urlopen(req) as resp:
                return resp.status, dict(resp.headers), json.load(resp)
        except urllib.error.HTTPError as exc:
            return exc.code, dict(exc.headers), json.load(exc)

    def test_response_echoes_the_payload_id(self, server):
        status, headers, doc = self._post(server, payload(id="corr-1"))
        assert status == 200
        assert headers["X-Request-Id"] == "corr-1"
        assert doc["id"] == "corr-1"

    def test_header_id_is_a_fallback_for_anonymous_payloads(self, server):
        status, headers, doc = self._post(
            server, payload(), headers={"X-Request-Id": "hdr-7"}
        )
        assert status == 200
        assert headers["X-Request-Id"] == "hdr-7"
        assert doc["id"] == "hdr-7"

    def test_body_id_wins_over_header(self, server):
        status, headers, doc = self._post(
            server, payload(id="body-1"), headers={"X-Request-Id": "hdr-1"}
        )
        assert headers["X-Request-Id"] == "body-1"
        assert doc["id"] == "body-1"

    def test_error_payload_carries_request_id(self, server):
        bad = payload(id="bad-1")
        bad["mass"] = "not-a-number"
        status, headers, doc = self._post(server, bad)
        assert status == 400
        assert headers["X-Request-Id"] == "bad-1"
        assert doc["error"]["request_id"] == "bad-1"

    def test_client_autogenerates_request_ids(self, server):
        client = ServeClient(server.url)
        doc = client.solve(payload())
        assert doc["id"].startswith("req-")


class TestJsonlRoute:
    def test_batch_submits_before_awaiting(self, server):
        client = ServeClient(server.url)
        docs = client.solve_many(
            [payload(seed=s, id=f"j{s}") for s in (1, 2, 3)]
        )
        assert [d["id"] for d in docs] == ["j1", "j2", "j3"]
        assert all(d["status"] == "ok" for d in docs)
        # One client, one POST, one batch: the JSONL route coalesces.
        assert all(d["batch"]["occupancy"] == 3 for d in docs)

    def test_bad_line_fails_alone(self, server):
        client = ServeClient(server.url)
        docs = client.solve_many(
            [payload(seed=1, id="good"), payload(id="bad", mass="heavy")]
        )
        assert docs[0]["status"] == "ok"
        assert docs[1]["status"] == "error"
        assert docs[1]["error"]["field"] == "mass"


class TestObservabilityRoutes:
    def test_metrics_stats_health(self, server):
        client = ServeClient(server.url)
        client.solve(payload())
        assert "serve_requests_total" in client.metrics_text()
        stats = client.stats()
        assert stats["requests"]["completed"] == 1
        assert client.health() == {"status": "ok"}

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/nope", timeout=10)
        assert exc.value.code == 404

    def test_health_reports_draining_after_stop(self, server):
        client = ServeClient(server.url)
        server.service.shutdown(drain=True, timeout=60)
        with pytest.raises(urllib.error.HTTPError) as exc:
            urllib.request.urlopen(server.url + "/healthz", timeout=10)
        assert exc.value.code == 503
        assert json.loads(exc.value.read()) == {"status": "draining"}
        server.stop()


class TestWireBitwise:
    def test_solution_survives_the_wire_bitwise(self, server):
        from repro.core.api import SolveRequest, solve
        from repro.lattice import GaugeField, Geometry, SpinorField
        from repro.serve.request import decode_array

        client = ServeClient(server.url)
        doc = client.solve(payload(return_solution=True))
        geo = Geometry(tuple(DIMS))
        lane = SpinorField.random(geo, nspin=1, rng=1).data
        rhs = np.stack([lane] + [np.zeros_like(lane)] * 3)
        solo = solve(SolveRequest(
            operator="asqtad", gauge=GaugeField.unit(geo), rhs=rhs,
            mass=0.05, method="cg", tol=1e-8,
        ))
        assert np.array_equal(
            decode_array(doc["solution"]), np.asarray(solo.x)[0]
        )
