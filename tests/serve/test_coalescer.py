"""Coalescer: grouping by fingerprint, window limits, deadline sweeps."""

from __future__ import annotations

import threading
import time

import pytest

from repro.serve.coalescer import Coalescer
from repro.serve.queue import QueuedRequest, SolveQueue, Ticket


class _Req:
    def __init__(self, priority=0, fingerprint="fp"):
        self.priority = priority
        self.fingerprint = fingerprint
        self.id = None


def entry(priority=0, fingerprint="fp", deadline=None):
    return QueuedRequest(
        request=_Req(priority, fingerprint), ticket=Ticket(),
        deadline=deadline,
    )


class TestGrouping:
    def test_same_fingerprint_coalesces(self):
        q = SolveQueue()
        entries = [entry(fingerprint="A") for _ in range(3)]
        for e in entries:
            q.put(e)
        out = Coalescer(q, max_batch=4, max_wait=0.0).next_group(
            poll_timeout=0
        )
        assert out.group == entries
        assert not out.expired

    def test_incompatible_fingerprints_never_batch(self):
        q = SolveQueue()
        a = entry(fingerprint="A")
        b = entry(fingerprint="B")
        q.put(a)
        q.put(b)
        c = Coalescer(q, max_batch=4, max_wait=0.0)
        first = c.next_group(poll_timeout=0)
        second = c.next_group(poll_timeout=0)
        assert first.group == [a]
        assert second.group == [b]

    def test_max_batch_caps_the_group(self):
        q = SolveQueue()
        entries = [entry() for _ in range(5)]
        for e in entries:
            q.put(e)
        out = Coalescer(q, max_batch=3, max_wait=0.0).next_group(
            poll_timeout=0
        )
        assert out.group == entries[:3]
        assert q.depth == 2

    def test_idle_poll_returns_empty_group(self):
        q = SolveQueue()
        out = Coalescer(q, max_wait=0.0).next_group(poll_timeout=0.01)
        assert out.group == [] and out.expired == []


class TestWindow:
    def test_window_waits_for_late_compatible_request(self):
        q = SolveQueue()
        leader = entry(fingerprint="A")
        q.put(leader)
        late = entry(fingerprint="A")
        threading.Timer(0.05, q.put, args=(late,)).start()
        # max_batch=2: the late arrival fills the batch and closes the
        # window early, well before the 1 s max_wait.
        out = Coalescer(q, max_batch=2, max_wait=1.0).next_group(
            poll_timeout=0.5
        )
        assert out.group == [leader, late]
        assert out.waited_seconds < 0.9

    def test_full_batch_closes_window_early(self):
        q = SolveQueue()
        entries = [entry() for _ in range(4)]
        for e in entries:
            q.put(e)
        t0 = time.monotonic()
        out = Coalescer(q, max_batch=4, max_wait=5.0).next_group(
            poll_timeout=0.5
        )
        assert out.group == entries
        assert time.monotonic() - t0 < 1.0


class TestDeadlines:
    def test_expired_leader_is_evicted_not_grouped(self):
        q = SolveQueue()
        dead = entry(deadline=time.monotonic() - 0.01)
        live = entry(deadline=time.monotonic() + 60)
        q.put(dead)
        q.put(live)
        out = Coalescer(q, max_batch=1, max_wait=0.0).next_group(
            poll_timeout=0
        )
        # One round: the sweep evicts the lapsed entry and the live one
        # is scheduled — never dropped, never grouped with the dead.
        assert out.expired == [dead]
        assert out.group == [live]

    def test_window_clipped_by_leader_deadline(self):
        q = SolveQueue()
        leader = entry(deadline=time.monotonic() + 0.05)
        q.put(leader)
        t0 = time.monotonic()
        out = Coalescer(q, max_batch=4, max_wait=5.0).next_group(
            poll_timeout=0.5
        )
        # Window must close at the deadline, not after max_wait.
        assert time.monotonic() - t0 < 1.0
        # The leader either made it (scheduled at the boundary) or
        # expired — it is never silently lost.
        assert (out.group == [leader]) != (leader in out.expired)


class TestKnobs:
    def test_bad_knobs_raise(self):
        q = SolveQueue()
        with pytest.raises(ValueError, match="max_batch"):
            Coalescer(q, max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            Coalescer(q, max_wait=-1.0)
