"""SolveService: coalescing, bit-reproducibility, deadlines, shutdown.

Fast variants only: asqtad on a unit 4^4 gauge converges in a handful of
CG iterations, so every service test runs the real batched solve path
in well under a second.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import SolveRequest, solve
from repro.lattice import Geometry, SpinorField
from repro.serve import (
    DeadlineExpiredError,
    QueueFullError,
    RequestValidationError,
    ServiceClosedError,
    SolveService,
)

DIMS = [4, 4, 4, 4]


def payload(seed=1, **overrides):
    doc = {
        "operator": "asqtad",
        "mass": 0.05,
        "gauge": {"kind": "unit", "dims": DIMS},
        "rhs": {"kind": "random", "seed": seed},
        "tol": 1e-8,
    }
    doc.update(overrides)
    return doc


def make_service(**kw):
    kw.setdefault("max_batch", 4)
    kw.setdefault("max_wait", 0.05)
    return SolveService(**kw)


class TestCoalescing:
    def test_compatible_requests_ride_one_batch(self):
        svc = make_service()
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2, 3)]
        svc.start()
        results = [t.result(timeout=60) for t in tickets]
        svc.shutdown()
        assert all(r.converged for r in results)
        assert all(r.occupancy == 3 for r in results)
        assert sorted(r.lane for r in results) == [0, 1, 2]
        stats = svc.stats()
        assert stats["batches_total"] == 1
        assert stats["coalesce_ratio"] == 3.0

    def test_incompatible_fingerprints_never_batch(self):
        svc = make_service(max_wait=0.0)
        a = svc.submit(payload(seed=1, mass=0.05))
        b = svc.submit(payload(seed=1, mass=0.10))
        svc.start()
        ra, rb = a.result(timeout=60), b.result(timeout=60)
        svc.shutdown()
        assert ra.occupancy == 1 and rb.occupancy == 1
        assert svc.stats()["batches_total"] == 2
        # Different operators genuinely solved different systems.
        assert not np.array_equal(ra.x, rb.x)

    def test_every_result_carries_the_solve_report(self):
        svc = make_service()
        t = svc.submit(payload())
        svc.start()
        result = t.result(timeout=60)
        svc.shutdown()
        doc = result.report.to_dict()
        assert doc["fingerprint"]["config"]["operator"] == "asqtad"
        assert result.to_wire()["report"] is not None


class TestBitReproducibility:
    def test_coalesced_lane_equals_solo_padded_solve(self):
        """The service contract: a request's solution is bitwise the
        same whether it coalesced with neighbors or ran alone."""
        svc = make_service(max_batch=4)  # pad_to defaults to 4
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2, 3)]
        svc.start()
        results = [t.result(timeout=60) for t in tickets]
        svc.shutdown()

        geo = Geometry(tuple(DIMS))
        from repro.lattice import GaugeField

        gauge = GaugeField.unit(geo)
        for seed, served in zip((1, 2, 3), results):
            lane = SpinorField.random(geo, nspin=1, rng=seed).data
            rhs = np.stack([lane] + [np.zeros_like(lane)] * 3)
            solo = solve(SolveRequest(
                operator="asqtad", gauge=gauge, rhs=rhs,
                mass=0.05, method="cg", tol=1e-8,
            ))
            assert np.array_equal(served.x, np.asarray(solo.x)[0]), (
                f"seed {seed}: served lane differs from solo padded solve"
            )

    def test_single_request_is_padded_to_canonical_shape(self):
        svc = make_service(max_batch=4, max_wait=0.0)
        t = svc.submit(payload())
        svc.start()
        result = t.result(timeout=60)
        svc.shutdown()
        assert result.occupancy == 1
        assert result.lanes == 4  # padded, so batch shape is canonical


class TestBackpressureAndDeadlines:
    def test_full_queue_rejects_not_blocks(self):
        import time

        svc = make_service(capacity=1)  # dispatcher never started
        svc.submit(payload(seed=1))
        t0 = time.monotonic()
        with pytest.raises(QueueFullError) as exc:
            svc.submit(payload(seed=2))
        assert time.monotonic() - t0 < 0.5
        assert exc.value.http_status == 429
        assert svc.stats()["requests"]["rejected_full"] == 1

    def test_deadline_expired_requests_get_typed_error(self):
        import time

        svc = make_service()
        ticket = svc.submit(payload(timeout_seconds=0.01))
        time.sleep(0.05)  # deadline lapses while nothing dispatches
        svc.start()
        with pytest.raises(DeadlineExpiredError) as exc:
            ticket.result(timeout=60)
        svc.shutdown()
        assert exc.value.code == "deadline_expired"
        assert svc.stats()["requests"]["expired"] == 1

    def test_invalid_request_rejected_at_submit(self):
        svc = make_service()
        with pytest.raises(RequestValidationError) as exc:
            svc.submit(payload(operator="overlap"))
        assert exc.value.field == "operator"
        assert svc.stats()["requests"]["invalid"] == 1


class TestShutdown:
    def test_graceful_drain_completes_queued_work(self):
        svc = make_service()
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2)]
        svc.start()
        svc.shutdown(drain=True, timeout=120)
        # Everything admitted before the drain still got solved.
        results = [t.result(timeout=0) for t in tickets]
        assert all(r.converged for r in results)
        assert not svc.running

    def test_drain_rejects_new_submissions(self):
        svc = make_service().start()
        svc.shutdown(drain=True, timeout=60)
        with pytest.raises(ServiceClosedError):
            svc.submit(payload())

    def test_non_graceful_shutdown_fails_queued_with_typed_error(self):
        svc = make_service()  # never started: requests stay queued
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2)]
        svc.shutdown(drain=False)
        for t in tickets:
            with pytest.raises(ServiceClosedError):
                t.result(timeout=0)


class TestMetrics:
    def test_prometheus_export_carries_service_series(self):
        svc = make_service()
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2)]
        svc.start()
        for t in tickets:
            t.result(timeout=60)
        svc.shutdown()
        text = svc.prometheus()
        for name in (
            "serve_requests_total",
            "serve_queue_depth",
            "serve_batches_total",
            "serve_batch_occupancy",
            "serve_request_latency_seconds",
        ):
            assert name in text, f"missing {name} in export"
        # Occupancy histogram recorded one 2-lane batch.
        assert 'serve_batch_occupancy_bucket{le="2.0"} 1' in text

    def test_stats_reports_latency_percentiles(self):
        svc = make_service()
        tickets = [svc.submit(payload(seed=s)) for s in (1, 2, 3)]
        svc.start()
        for t in tickets:
            t.result(timeout=60)
        svc.shutdown()
        latency = svc.stats()["latency"]
        for label in ("queue_wait_seconds", "solve_seconds",
                      "latency_seconds"):
            block = latency[label]
            assert set(block) == {"p50", "p90", "p99"}, label
            assert 0.0 <= block["p50"] <= block["p90"] <= block["p99"]
        # End-to-end latency includes queue wait and the solve.
        assert latency["latency_seconds"]["p50"] >= (
            latency["solve_seconds"]["p50"] * 0.5
        )

    def test_stats_latency_blocks_null_before_any_request(self):
        svc = make_service()
        latency = svc.stats()["latency"]
        assert latency["queue_wait_seconds"] is None
        assert latency["solve_seconds"] is None
        assert latency["latency_seconds"] is None

    def test_setup_cache_reuses_gauge_and_links(self):
        svc = make_service(max_wait=0.0)
        a = svc.submit(payload(seed=1))
        svc.start()
        a.result(timeout=60)
        b = svc.submit(payload(seed=2))
        b.result(timeout=60)
        svc.shutdown()
        assert len(svc._gauges) == 1
        assert len(svc._asqtad_links) == 1


class TestPrecondServing:
    def test_preconditioned_batch_converges_faster(self):
        # A weak (non-unit) gauge: rough enough that the block solves
        # actually pay for themselves.
        gauge = {"kind": "weak", "dims": DIMS, "seed": 3}
        svc = make_service()
        plain = [svc.submit(payload(seed=s, gauge=gauge)) for s in (1, 2)]
        pre = [
            svc.submit(payload(seed=s, gauge=gauge, precond="multisplit"))
            for s in (1, 2)
        ]
        svc.start()
        plain_res = [t.result(timeout=120) for t in plain]
        pre_res = [t.result(timeout=120) for t in pre]
        svc.shutdown()
        assert all(r.converged for r in plain_res + pre_res)
        # Different fingerprints: two batches, never coalesced together.
        assert all(r.occupancy == 2 for r in plain_res + pre_res)
        assert pre_res[0].iterations < plain_res[0].iterations
