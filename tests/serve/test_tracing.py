"""Request-lifecycle tracing: spans through the daemon, the SolveReport
latency breakdown, the Perfetto export, and trace-context propagation
across the processes SPMD backend (the shm merge at join)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.serve import SolveService
from repro.serve.tracing import (
    RequestTrace,
    emit_batched_solve,
    emit_queue_wait,
    new_request_id,
)
from repro.trace import (
    Tracer,
    events_to_chrome,
    load_chrome_trace,
    tracing,
    validate_chrome_trace,
    write_chrome_trace,
)

DIMS = [4, 4, 4, 4]


def payload(seed=1, **overrides):
    doc = {
        "operator": "asqtad",
        "mass": 0.05,
        "gauge": {"kind": "unit", "dims": DIMS},
        "rhs": {"kind": "random", "seed": seed},
        "tol": 1e-8,
    }
    doc.update(overrides)
    return doc


def run_traced_batch(n=3, **service_kw):
    """Serve ``n`` coalescable requests through a traced service."""
    tracer = Tracer()
    service_kw.setdefault("max_batch", 4)
    service_kw.setdefault("max_wait", 0.05)
    svc = SolveService(tracer=tracer, **service_kw)
    tickets = [
        svc.submit(payload(seed=s, id=f"req-{s}")) for s in range(1, n + 1)
    ]
    svc.start()
    results = [t.result(timeout=60) for t in tickets]
    svc.shutdown()
    return tracer, results


def spans_named(tracer, name):
    return [ev for ev in tracer.events if ev.name == name]


class TestRequestId:
    def test_ids_are_unique_and_prefixed(self):
        ids = {new_request_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(i.startswith("req-") for i in ids)

    def test_emitters_are_noops_without_a_tracer(self):
        # No active tracer: the daemon must run exactly as before.
        trace = RequestTrace(request_id="r1")
        trace.scheduled_pc = trace.submitted_pc + 0.5
        emit_queue_wait(trace)
        emit_batched_solve(["r1"], 0.0, 1.0, lanes=4, occupancy=1)


class TestLifecycleSpans:
    def test_one_queue_wait_span_per_request(self):
        tracer, results = run_traced_batch(3)
        waits = spans_named(tracer, "queue_wait")
        assert {ev.args["request_id"] for ev in waits} == {
            "req-1", "req-2", "req-3",
        }
        for ev in waits:
            assert ev.kind == "serve"
            assert ev.rank is None
            assert ev.stream == "serve"
            assert ev.duration >= 0.0

    def test_batch_spans_list_every_member(self):
        tracer, results = run_traced_batch(3)
        (window,) = spans_named(tracer, "coalesce_window")
        (solve,) = spans_named(tracer, "batched_solve")
        ids = {"req-1", "req-2", "req-3"}
        assert set(window.args["request_ids"]) == ids
        assert set(solve.args["request_ids"]) == ids
        assert solve.args["occupancy"] == 3
        assert solve.args["lanes"] >= 3

    def test_lifecycle_ordering_on_one_clock(self):
        tracer, _ = run_traced_batch(2)
        waits = spans_named(tracer, "queue_wait")
        (solve,) = spans_named(tracer, "batched_solve")
        # Admission precedes scheduling precedes the batched solve, and
        # everything is rebased onto the tracer's epoch (no negative or
        # wall-clock-sized timestamps from clock mixing).
        for ev in waits:
            assert 0.0 <= ev.start <= solve.start + 1e-9
            assert ev.start + ev.duration <= solve.start + 1e-6
        assert solve.duration > 0.0

    def test_solver_spans_share_the_trace(self):
        # The dispatcher installs the service tracer around the batched
        # solve, so kernel/solver spans land in the same event stream.
        tracer, _ = run_traced_batch(2)
        kinds = {ev.kind for ev in tracer.events}
        assert "serve" in kinds
        assert kinds - {"serve"}, "expected solver spans beside serve spans"

    def test_report_carries_the_same_breakdown(self):
        tracer, results = run_traced_batch(3)
        for res in results:
            serve = res.report.serve
            assert serve["request_id"] == res.request.id
            assert serve["queue_seconds"] >= 0.0
            assert serve["solve_seconds"] > 0.0
            assert serve["latency_seconds"] >= serve["solve_seconds"]
            assert serve["occupancy"] == 3
        assert sorted(r.report.serve["lane"] for r in results) == [0, 1, 2]

    def test_breakdown_present_without_tracer_too(self):
        svc = SolveService(max_batch=4, max_wait=0.05)
        ticket = svc.submit(payload(seed=1, id="solo"))
        svc.start()
        res = ticket.result(timeout=60)
        svc.shutdown()
        assert res.report.serve["request_id"] == "solo"
        assert res.report.serve["latency_seconds"] > 0.0

    def test_wire_report_includes_serve_block(self):
        _, results = run_traced_batch(1)
        doc = results[0].to_wire()
        assert doc["report"]["serve"]["request_id"] == "req-1"


class TestPerfettoExport:
    def test_serve_spans_land_on_the_host_track(self):
        tracer, _ = run_traced_batch(2)
        doc = events_to_chrome(list(tracer.events))
        complete = validate_chrome_trace(doc)
        host_pids = {
            ev["pid"] for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
            and ev["args"]["name"] == "host"
        }
        serve_rows = [
            ev for ev in complete if ev.get("cat") == "serve"
        ]
        assert serve_rows
        assert {ev["pid"] for ev in serve_rows} <= host_pids
        threads = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert "serve" in threads

    def test_round_trip_preserves_request_ids(self, tmp_path):
        tracer, _ = run_traced_batch(2)
        path = write_chrome_trace(tmp_path / "serve.json", tracer.events)
        loaded = load_chrome_trace(path)
        solves = [ev for ev in loaded if ev.name == "batched_solve"]
        assert solves
        assert set(solves[0].args["request_ids"]) == {"req-1", "req-2"}


@pytest.mark.slow
class TestProcessesBackendPropagation:
    """Trace context must survive the fork: child ranks trace against
    the parent's epoch, ship their events through shared memory, and
    merge onto the caller's tracer at SPMD join (ISSUE 10 satellite)."""

    def _traced_spmd_solve(self, backend):
        from repro.comm.grid import ProcessGrid
        from repro.core.gcrdd import GCRDDConfig
        from repro.core.spmd import SPMDGCRDDSolver
        from repro.lattice import GaugeField, Geometry, SpinorField

        geometry = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geometry, epsilon=0.25, rng=11)
        b = SpinorField.random(geometry, rng=12).data
        solver = SPMDGCRDDSolver(
            gauge, -0.06, 1.0, ProcessGrid((1, 1, 1, 2)),
            config=GCRDDConfig(tol=1e-5, precond_steps=4, kmax=8),
            backend=backend, timeout=120.0,
        )
        import time

        tracer = Tracer()
        with tracing(tracer):
            # A serve-style span on the same tracer: the correlation the
            # scaling observatory renders (serve track beside ranks).
            # emit_* take absolute perf_counter readings (they rebase).
            pc = time.perf_counter()
            emit_batched_solve(["req-x"], pc, pc, lanes=1, occupancy=1)
            res = solver.solve(b)
        assert res.converged
        return tracer

    def test_rank_attribution_survives_the_shm_merge(self):
        tracer = self._traced_spmd_solve("processes")
        programs = [ev for ev in tracer.events if ev.name == "rank_program"]
        assert {ev.rank for ev in programs} == {0, 1}
        horizon = tracer.now()
        for ev in programs:
            # Child epochs are rebased to the parent's, so merged spans
            # sit inside this process's timeline, not at fork-local zero
            # offsets or absolute perf_counter values.
            assert 0.0 <= ev.start <= horizon
            assert ev.start + ev.duration <= horizon + 1e-6

    def test_span_parentage_contains_child_work(self):
        tracer = self._traced_spmd_solve("processes")
        programs = {
            ev.rank: ev for ev in tracer.events if ev.name == "rank_program"
        }
        nested = [
            ev for ev in tracer.events
            if ev.rank in programs and ev.name != "rank_program"
        ]
        assert nested, "rank programs should emit nested spans"
        slack = 1e-3
        for ev in nested:
            parent = programs[ev.rank]
            assert ev.start >= parent.start - slack
            assert ev.start + ev.duration <= (
                parent.start + parent.duration + slack
            )

    def test_serve_and_rank_tracks_coexist_in_one_export(self):
        tracer = self._traced_spmd_solve("processes")
        doc = events_to_chrome(list(tracer.events))
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert {"host", "rank 0", "rank 1"} <= names
        complete = validate_chrome_trace(doc)
        assert any(ev.get("cat") == "serve" for ev in complete)
        assert any(ev.get("cat") == "rank" for ev in complete)
