"""Trace smoke check (the acceptance gate for the observability story).

Runs a tiny 2x1x1x1-rank Wilson GCR-DD solve with tracing enabled and
asserts the full pipeline: the trace shows every track kind of the
paper's Fig. 4 schedule, the exported JSON is a valid Perfetto document
with a model-timeline track, and per-kernel summed span durations agree
with ``Tally.kernel_seconds``.  Fast-lane (not marked slow) so the trace
path cannot silently rot; ``scripts/trace_smoke.sh`` runs the same check
through the CLI.
"""

import numpy as np
import pytest

from repro import trace
from repro.cli import main
from repro.comm.grid import ProcessGrid
from repro.core.gcrdd import DistributedGCRDDSolver, GCRDDConfig
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.util.counters import tally


@pytest.fixture(scope="module")
def traced_solve():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=11)
    b = SpinorField.random(geom, rng=12).data
    with trace.tracing() as tr, tally() as t:
        solver = DistributedGCRDDSolver(
            gauge, mass=0.1, csw=1.0, grid=ProcessGrid((2, 1, 1, 1)),
            config=GCRDDConfig(tol=1e-5, precond_steps=4), schedule="split",
        )
        result = solver.solve(b)
    return tr.events, t, result, solver


class TestTracedSolve:
    def test_solve_converged(self, traced_solve):
        _, _, result, _ = traced_solve
        assert result.converged

    def test_required_track_kinds_present(self, traced_solve):
        events, _, _, _ = traced_solve
        kinds = set(trace.kind_totals(events))
        assert {"gather", "comm", "interior", "exterior"} <= kinds

    def test_both_ranks_emit_spans(self, traced_solve):
        events, _, _, _ = traced_solve
        assert {ev.rank for ev in events if ev.rank is not None} == {0, 1}

    def test_exterior_only_for_partitioned_dim(self, traced_solve):
        events, _, _, _ = traced_solve
        names = {ev.name for ev in events if ev.kind == "exterior"}
        assert names == {"exterior_X"}  # grid partitions X only

    def test_timed_totals_equal_tally_kernel_seconds(self, traced_solve):
        events, t, _, _ = traced_solve
        totals = trace.timed_kernel_totals(events)
        assert set(totals) == set(t.kernel_seconds)
        for name, secs in totals.items():
            assert secs == pytest.approx(t.kernel_seconds[name], abs=1e-9)

    def test_schwarz_blocks_make_no_comm(self, traced_solve):
        """Sec. 8.1: the block solves are domain-local — no comm span may
        start inside a schwarz_block_solve span."""
        events, _, _, _ = traced_solve
        blocks = [ev for ev in events if ev.name == "schwarz_block_solve"]
        comms = [ev for ev in events if ev.kind == "comm"]
        assert blocks and comms
        for c in comms:
            assert not any(
                b.start <= c.start and c.end <= b.end for b in blocks
            )

    def test_export_roundtrip_with_model_track(self, traced_solve, tmp_path):
        events, _, _, solver = traced_solve
        from repro.perfmodel.kernels import KernelModel, OperatorKind
        from repro.perfmodel.machines import EDGE
        from repro.perfmodel.streams import model_dslash_time
        from repro.trace.model import timeline_events

        kernel = KernelModel(OperatorKind.WILSON_CLOVER, "half")
        timeline = model_dslash_time(
            kernel, EDGE.gpu, EDGE.interconnect,
            solver.partition.local_dims, solver.grid.partitioned_dims,
        )
        all_events = events + timeline_events(timeline)
        path = trace.write_chrome_trace(tmp_path / "smoke.json", all_events)
        loaded = trace.load_chrome_trace(path)
        assert len(loaded) == len(all_events)
        model_kinds = {
            ev.kind for ev in loaded if ev.rank == trace.MODEL_RANK
        }
        assert {"gather", "comm", "interior", "exterior"} <= model_kinds
        measured_kinds = {
            ev.kind for ev in loaded
            if ev.rank is not None and ev.rank != trace.MODEL_RANK
        }
        assert {"gather", "comm", "interior", "exterior"} <= measured_kinds


class TestTraceCLI:
    def test_trace_command_end_to_end(self, tmp_path, capsys):
        out_path = tmp_path / "cli_trace.json"
        rc = main([
            "trace", "--dims", "4", "4", "4", "8", "--grid", "2", "1", "1",
            "1", "--tol", "1e-5", "--mr-steps", "4", "--ascii",
            "--output", str(out_path),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "converged" in out
        assert "perfetto" in out.lower()
        assert "cross-check" in out
        loaded = trace.load_chrome_trace(out_path)
        kinds = {ev.kind for ev in loaded}
        assert {"gather", "comm", "interior", "exterior"} <= kinds
        assert any(ev.rank == trace.MODEL_RANK for ev in loaded)

    def test_tracing_disabled_during_normal_solve(self):
        """A plain solve outside a tracing() scope must emit nothing."""
        assert trace.active_tracer() is None
        geom = Geometry((4, 4, 4, 4))
        gauge = GaugeField.weak(geom, epsilon=0.2, rng=3)
        b = SpinorField.random(geom, rng=4).data
        tr = trace.Tracer()
        solver = DistributedGCRDDSolver(
            gauge, mass=0.2, csw=0.0, grid=ProcessGrid((2, 1, 1, 1)),
            config=GCRDDConfig(tol=1e-4, precond_steps=2),
        )
        solver.solve(b)
        assert tr.events == []
