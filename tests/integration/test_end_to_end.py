"""Cross-module integration: the full paper pipeline on small lattices.

Each test stitches several subsystems together the way the paper's
production runs do: gauge field -> (fattening) -> operator -> partitioned
execution -> preconditioned mixed-precision solve -> physics observable.
"""

import numpy as np
import pytest

from repro import (
    GCRDDConfig,
    GCRDDSolver,
    GaugeField,
    Geometry,
    ProcessGrid,
    SolveRequest,
    SpinorField,
    WilsonCloverOperator,
    solve,
    tally,
)
from repro.comm import CommLog
from repro.dirac import PHYSICAL, AsqtadOperator, StaggeredNormalOperator
from repro.multigpu import DistributedOperator, DistributedSpace
from repro.solvers import cg, gcr
from repro.solvers.space import STAGGERED_SPACE


@pytest.mark.slow
class TestDistributedGCRDDAgreement:
    """The serial-emulated GCR-DD and the fully distributed machinery are
    two faces of the same algorithm; their answers must coincide."""

    @pytest.fixture(scope="class")
    def system(self):
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=1234)
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0, boundary=PHYSICAL)
        b = SpinorField.random(geom, rng=7).data
        return geom, gauge, op, b

    def test_serial_gcrdd_vs_distributed_gcr(self, system):
        geom, gauge, op, b = system
        grid = ProcessGrid((1, 1, 2, 2))
        # Serial-emulated GCR-DD.
        res = GCRDDSolver(op, grid, GCRDDConfig(tol=1e-6, precond_steps=8)).solve(b)
        assert res.converged
        # Unpreconditioned GCR on the distributed operator.
        dist = DistributedOperator.wilson_clover(
            gauge, 0.2, 1.0, grid, boundary=PHYSICAL
        )
        space = DistributedSpace(dist.partition, site_axes=2)
        dres = gcr(dist.apply, space.scatter(b), tol=1e-6, maxiter=600,
                   space=space)
        assert dres.converged
        x_dist = space.asarray(dres.x)
        rel = np.linalg.norm(res.x - x_dist) / np.linalg.norm(x_dist)
        assert rel < 1e-4

    def test_comm_traffic_ratio(self, system):
        """GCR-DD must move far fewer halo bytes per unit of operator work
        than a distributed unpreconditioned solve — the paper's motivation
        in one number."""
        geom, gauge, op, b = system
        grid = ProcessGrid((1, 1, 2, 2))
        log = CommLog()
        dist = DistributedOperator.wilson_clover(
            gauge, 0.2, 1.0, grid, boundary=PHYSICAL, log=log
        )
        space = DistributedSpace(dist.partition, site_axes=2)
        gcr(dist.apply, space.scatter(b), tol=1e-6, maxiter=600, space=space)
        spinor_bytes = sum(e.nbytes for e in log.events if e.kind == "spinor")

        with tally() as t:
            res = GCRDDSolver(
                op, grid, GCRDDConfig(tol=1e-6, precond_steps=8)
            ).solve(b)
        # The Schwarz preconditioner performed the bulk of the operator
        # applications with zero communication.
        precond_apps = t.operator_applications.get("wilson_clover", 0)
        schwarz_apps = t.operator_applications.get("schwarz_precond", 0)
        assert schwarz_apps > 0
        assert precond_apps > 4 * schwarz_apps  # many block solves each
        assert spinor_bytes > 0


class TestStaggeredPipeline:
    def test_asqtad_even_odd_independent_solves(self):
        """Eq. (4) pipeline: fatten links, build M^+M, verify the even and
        odd checkerboards really decouple and solve them independently."""
        geom = Geometry((4, 4, 4, 4))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=2345)
        op = AsqtadOperator.from_gauge(gauge, mass=0.15, boundary=PHYSICAL)
        normal = StaggeredNormalOperator(op)
        b = SpinorField.random(geom, nspin=1, rng=8).data
        b_even = b * geom.even_mask[..., None]
        b_odd = b * geom.odd_mask[..., None]
        re = cg(normal.apply, b_even, tol=1e-9, maxiter=600,
                space=STAGGERED_SPACE)
        ro = cg(normal.apply, b_odd, tol=1e-9, maxiter=600,
                space=STAGGERED_SPACE)
        rf = cg(normal.apply, b, tol=1e-9, maxiter=600, space=STAGGERED_SPACE)
        assert re.converged and ro.converged and rf.converged
        assert np.linalg.norm(re.x + ro.x - rf.x) < 1e-6 * np.linalg.norm(rf.x)
        # Each partial solution stays on its own checkerboard.
        assert np.abs(re.x * geom.odd_mask[..., None]).max() < 1e-12


@pytest.mark.slow
class TestPrecisionLadder:
    def test_policies_reach_their_accuracy(self):
        """double > single > half final accuracy, each policy reaching its
        own floor — the mixed-precision contract."""
        from repro.precision import DOUBLE, HALF, SINGLE, PrecisionPolicy

        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=3456)
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
        b = SpinorField.random(geom, rng=9).data
        grid = ProcessGrid((1, 1, 1, 2))

        residuals = {}
        for name, policy, tol in [
            ("ddd", PrecisionPolicy(DOUBLE, DOUBLE, DOUBLE), 1e-12),
            ("sss", PrecisionPolicy(SINGLE, SINGLE, SINGLE), 1e-12),
            ("shh", PrecisionPolicy(SINGLE, HALF, HALF), 1e-12),
        ]:
            cfg = GCRDDConfig(tol=tol, precond_steps=8, policy=policy, maxiter=400)
            res = GCRDDSolver(op, grid, cfg).solve(b)
            residuals[name] = res.residual
        assert residuals["ddd"] < 1e-11
        assert residuals["sss"] < 5e-6
        assert residuals["shh"] < 5e-5
        assert residuals["ddd"] < residuals["sss"]


class TestAPIRoundTrip:
    def test_quickstart_snippet(self):
        """The README quickstart must work exactly as written."""
        geometry = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geometry, epsilon=0.25, rng=0)
        b = SpinorField.random(geometry, rng=1)
        result = solve(SolveRequest(
            operator="wilson_clover", gauge=gauge, rhs=b.data,
            mass=0.1, csw=1.0, tol=1e-8,
        ))
        assert result.converged
        assert result.residual < 1e-7
