"""The preconditioner registry: resolution, priorities, capability
matrix, and the protocol contract of every registered entry."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.precond import (
    PrecondSettings,
    PrecondUnavailableError,
    availability_note,
    capability_matrix,
    precond_choices,
    precond_names,
    resolve_precond,
)


@pytest.fixture(scope="module")
def system():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=31)
    op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    return geom, op, part


class TestRegistry:
    def test_names_ordered_by_priority(self):
        names = precond_names()
        assert names[0] == "schwarz"
        assert names[-1] == "none"
        assert set(names) == {
            "schwarz", "ras", "twolevel", "multisplit", "none",
        }

    def test_choices_lead_with_auto(self):
        choices = precond_choices()
        assert choices[0] == "auto"
        assert set(choices[1:]) == set(precond_names())

    def test_auto_resolves_to_schwarz(self):
        assert resolve_precond("auto", operator="wilson").name == "schwarz"
        assert (
            resolve_precond("auto", operator="wilson", spmd=True).name
            == "schwarz"
        )

    def test_explicit_names_resolve(self):
        for name in precond_names():
            entry = resolve_precond(name, operator="wilson")
            assert entry.name == name

    def test_unknown_name_carries_choices(self):
        with pytest.raises(PrecondUnavailableError) as err:
            resolve_precond("ilu", operator="wilson")
        assert "auto" in err.value.choices
        assert "schwarz" in err.value.choices

    def test_spmd_filters_rank_global_entries(self):
        for name in ("ras", "twolevel", "multisplit"):
            with pytest.raises(PrecondUnavailableError) as err:
                resolve_precond(name, operator="wilson", spmd=True)
            assert set(err.value.choices) >= {"auto", "schwarz", "none"}

    def test_capability_matrix_covers_every_entry(self):
        rows = {row["name"]: row for row in capability_matrix()}
        assert set(rows) == set(precond_names())
        schwarz = rows["schwarz"]
        assert schwarz["available"] and schwarz["spmd"] and schwarz["batched"]
        assert not rows["ras"]["spmd"]
        assert rows["ras"]["overlapping"]
        assert rows["multisplit"]["overlapping"]
        for row in rows.values():
            assert {"priority", "operators", "dtypes"} <= set(row)

    def test_availability_note_lists_names(self):
        note = availability_note()
        assert note.startswith("preconditioners:")
        for name in precond_names():
            assert name in note


class TestEntryBuilds:
    @pytest.mark.parametrize("name", ["schwarz", "ras", "twolevel",
                                      "multisplit"])
    def test_built_preconditioner_reduces_error(self, system, name):
        """Every registry build must hand back a callable that is a
        useful approximate inverse on its partition."""
        geom, op, part = system
        entry = resolve_precond(name, operator="wilson")
        k = entry.build(op, part, PrecondSettings(steps=6))
        x = SpinorField.random(geom, rng=41).data
        z = k(op.apply(x))
        assert np.linalg.norm(z - x) < np.linalg.norm(x)

    def test_none_builds_to_none(self, system):
        geom, op, part = system
        entry = resolve_precond("none", operator="wilson")
        assert entry.build(op, part, PrecondSettings()) is None

    def test_settings_thread_through(self, system):
        """steps/overlap from PrecondSettings must reach the built
        object (the CLI and API rely on this plumbing)."""
        geom, op, part = system
        entry = resolve_precond("multisplit", operator="wilson")
        k = entry.build(op, part, PrecondSettings(steps=3, overlap=0))
        assert k.mr_steps == 3
        assert k.overlap == 0
