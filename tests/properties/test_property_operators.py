"""Property-based tests of Dirac-operator invariants.

Operators are drawn over random gauge configurations, masses and boundary
conditions; the invariants (linearity, gamma5-Hermiticity, staggered
anti-Hermiticity, parity structure) must hold for all of them.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.dirac import (
    BoundarySpec,
    NaiveStaggeredOperator,
    StaggeredNormalOperator,
    WilsonCloverOperator,
)
from repro.lattice import GaugeField, Geometry, SpinorField

SETTINGS = dict(max_examples=15, deadline=None)

GEOM = Geometry((4, 4, 4, 4))

_BCS = st.sampled_from(["periodic", "antiperiodic", "zero"])


@st.composite
def boundaries(draw):
    return BoundarySpec(tuple(draw(_BCS) for _ in range(4)))


@st.composite
def wilson_ops(draw):
    seed = draw(st.integers(0, 10**6))
    mass = draw(st.floats(0.05, 1.0))
    csw = draw(st.sampled_from([0.0, 1.0, 1.5]))
    bc = draw(boundaries())
    gauge = GaugeField.weak(GEOM, epsilon=0.3, rng=seed)
    return WilsonCloverOperator(gauge, mass=mass, csw=csw, boundary=bc)


@st.composite
def staggered_ops(draw):
    seed = draw(st.integers(0, 10**6))
    mass = draw(st.floats(0.05, 1.0))
    bc = draw(boundaries())
    gauge = GaugeField.weak(GEOM, epsilon=0.3, rng=seed)
    return NaiveStaggeredOperator(gauge, mass=mass, boundary=bc)


def _rand(nspin, seed):
    return SpinorField.random(GEOM, nspin=nspin, rng=seed).data


class TestWilsonInvariants:
    @given(wilson_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_linearity(self, op, seed):
        x, y = _rand(4, seed), _rand(4, seed + 1)
        a = 0.7 - 1.3j
        lhs = op.apply(a * x + y)
        rhs = a * op.apply(x) + op.apply(y)
        assert np.abs(lhs - rhs).max() < 1e-11

    @given(wilson_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_gamma5_hermiticity(self, op, seed):
        x, y = _rand(4, seed), _rand(4, seed + 1)
        lhs = np.vdot(y, op.apply(x))
        rhs = np.vdot(op.apply_dagger(y), x)
        assert abs(lhs - rhs) < 1e-9 * max(abs(lhs), 1.0)

    @given(wilson_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_diagonal_hopping_split(self, op, seed):
        x = _rand(4, seed)
        total = op.apply(x)
        assert np.abs(
            total - op.apply_site_diagonal(x) - op.apply_hopping(x)
        ).max() < 1e-11


class TestStaggeredInvariants:
    @given(staggered_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_dslash_anti_hermitian(self, op, seed):
        x, y = _rand(1, seed), _rand(1, seed + 1)
        lhs = np.vdot(y, op._dslash(x))
        rhs = np.vdot(op._dslash(y), x)
        assert abs(lhs + rhs) < 1e-9 * max(abs(lhs), 1.0)

    @given(staggered_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_dslash_flips_parity(self, op, seed):
        x = _rand(1, seed) * GEOM.even_mask[..., None]
        out = op._dslash(x)
        assert np.abs(out * GEOM.even_mask[..., None]).max() < 1e-12

    @given(staggered_ops(), st.integers(0, 10**6), st.floats(0.0, 2.0))
    @settings(**SETTINGS)
    def test_normal_operator_positive(self, op, seed, sigma):
        x = _rand(1, seed)
        n = StaggeredNormalOperator(op, sigma)
        val = np.vdot(x, n.apply(x)).real
        assert val > 0

    @given(staggered_ops(), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_normal_operator_hermitian(self, op, seed):
        x, y = _rand(1, seed), _rand(1, seed + 1)
        n = StaggeredNormalOperator(op)
        lhs = np.vdot(y, n.apply(x))
        rhs = np.vdot(n.apply(y), x)
        assert abs(lhs - rhs) < 1e-9 * max(abs(lhs), 1.0)
