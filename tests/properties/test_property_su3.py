"""Property-based tests (hypothesis) for the SU(3) layer."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.linalg import su3

SETTINGS = dict(max_examples=30, deadline=None)


@st.composite
def su3_fields(draw, max_count=8):
    count = draw(st.integers(1, max_count))
    seed = draw(st.integers(0, 2**31 - 1))
    return su3.random_su3((count,), rng=seed)


@st.composite
def complex_matrices(draw, max_count=6):
    count = draw(st.integers(1, max_count))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    scale = draw(st.floats(0.1, 10.0))
    return scale * (
        rng.standard_normal((count, 3, 3)) + 1j * rng.standard_normal((count, 3, 3))
    )


class TestGroupClosure:
    @given(su3_fields(), su3_fields(max_count=1))
    @settings(**SETTINGS)
    def test_product_stays_in_group(self, a, b):
        prod = a @ np.broadcast_to(b, a.shape)
        assert su3.unitarity_error(prod) < 1e-10
        assert su3.determinant_error(prod) < 1e-10

    @given(su3_fields())
    @settings(**SETTINGS)
    def test_dagger_stays_in_group(self, a):
        assert su3.unitarity_error(su3.dagger(a)) < 1e-10
        assert su3.determinant_error(su3.dagger(a)) < 1e-10

    @given(su3_fields())
    @settings(**SETTINGS)
    def test_trace_bounded(self, a):
        # |tr U| <= 3 for any unitary.
        assert np.all(np.abs(su3.trace(a)) <= 3.0 + 1e-10)


class TestProjection:
    @given(complex_matrices())
    @settings(**SETTINGS)
    def test_projection_lands_in_group(self, m):
        p = su3.project_su3(m)
        assert su3.unitarity_error(p) < 1e-9
        assert su3.determinant_error(p) < 1e-9

    @given(su3_fields())
    @settings(**SETTINGS)
    def test_projection_fixes_group_elements(self, u):
        assert np.abs(su3.project_su3(u) - u).max() < 1e-8


class TestCompressionRoundtrips:
    @given(su3_fields())
    @settings(**SETTINGS)
    def test_compress12(self, u):
        assert su3.compression_roundtrip_error(u, 12) < 1e-10

    @given(su3_fields())
    @settings(**SETTINGS)
    def test_compress8(self, u):
        assert su3.compression_roundtrip_error(u, 8) < 1e-8

    @given(su3_fields())
    @settings(**SETTINGS)
    def test_reconstructions_stay_in_group(self, u):
        r12 = su3.reconstruct12(su3.compress12(u))
        r8 = su3.reconstruct8(su3.compress8(u))
        assert su3.unitarity_error(r12) < 1e-9
        assert su3.unitarity_error(r8) < 1e-8
