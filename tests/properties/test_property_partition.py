"""Property-based tests of the partition / halo-exchange layer: for any
valid grid, scatter->exchange->stencil == serial stencil."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.comm import ProcessGrid
from repro.dirac import PHYSICAL, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition, DistributedOperator

SETTINGS = dict(max_examples=10, deadline=None)

GEOM = Geometry((4, 4, 4, 8))
GAUGE = GaugeField.weak(GEOM, epsilon=0.3, rng=31415)

#: Every grid whose blocks satisfy the even-extent constraint on 4x4x4x8.
VALID_GRIDS = [
    (1, 1, 1, 1),
    (1, 1, 1, 2),
    (1, 1, 1, 4),
    (1, 1, 2, 1),
    (1, 2, 1, 2),
    (2, 1, 1, 4),
    (1, 1, 2, 4),
    (2, 2, 2, 2),
    (2, 2, 2, 4),
]


class TestScatterGather:
    @given(st.sampled_from(VALID_GRIDS), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_roundtrip(self, dims, seed):
        part = BlockPartition(GEOM, ProcessGrid(dims))
        x = SpinorField.random(GEOM, rng=seed).data
        assert np.array_equal(part.assemble(part.split(x)), x)

    @given(st.sampled_from(VALID_GRIDS), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_block_norms_sum_to_global(self, dims, seed):
        part = BlockPartition(GEOM, ProcessGrid(dims))
        x = SpinorField.random(GEOM, rng=seed).data
        total = sum(float(np.vdot(b, b).real) for b in part.split(x))
        ref = float(np.vdot(x, x).real)
        assert abs(total - ref) <= 1e-12 * ref


class TestDistributedEqualsSerial:
    @given(st.sampled_from(VALID_GRIDS), st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_wilson_clover_any_grid(self, dims, seed):
        grid = ProcessGrid(dims)
        serial = WilsonCloverOperator(GAUGE, mass=0.1, csw=1.0, boundary=PHYSICAL)
        dist = DistributedOperator.wilson_clover(
            GAUGE, 0.1, 1.0, grid, boundary=PHYSICAL
        )
        x = SpinorField.random(GEOM, rng=seed).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-11

    @given(st.sampled_from(VALID_GRIDS), st.integers(0, 10**6))
    @settings(max_examples=6, deadline=None)
    def test_split_kernels_any_grid(self, dims, seed):
        grid = ProcessGrid(dims)
        serial = WilsonCloverOperator(GAUGE, mass=0.1, csw=1.0)
        dist = DistributedOperator.wilson_clover(GAUGE, 0.1, 1.0, grid)
        x = SpinorField.random(GEOM, rng=seed).data
        out = dist.gather(dist.apply_split(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-11
