"""Property-based tests for the half-precision fixed-point format."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.precision import HALF, quantize_half

SETTINGS = dict(max_examples=40, deadline=None)


@st.composite
def spinor_fields(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    scale = draw(st.floats(1e-6, 1e6))
    nspin = draw(st.sampled_from([1, 4]))
    rng = np.random.default_rng(seed)
    shape = (4, nspin, 3) if nspin == 4 else (4, 3)
    data = scale * (rng.standard_normal(shape) + 1j * rng.standard_normal(shape))
    site_axes = 2 if nspin == 4 else 1
    return data, site_axes


class TestHalfFormat:
    @given(spinor_fields())
    @settings(**SETTINGS)
    def test_relative_error_bounded(self, field):
        data, site_axes = field
        q = quantize_half(data, site_axes=site_axes)
        reduce_axes = tuple(range(data.ndim - site_axes, data.ndim))
        site_max = np.maximum(
            np.abs(data.real).max(axis=reduce_axes, keepdims=True),
            np.abs(data.imag).max(axis=reduce_axes, keepdims=True),
        )
        err = np.abs(q - data)
        # Each component is within ~1 ulp of the site's fixed-point grid.
        assert np.all(err <= 2.5 * site_max / 32767.0)

    @given(spinor_fields())
    @settings(**SETTINGS)
    def test_norm_preserved_to_format_accuracy(self, field):
        data, site_axes = field
        q = quantize_half(data, site_axes=site_axes)
        n0 = np.linalg.norm(data)
        if n0 == 0:
            return
        assert abs(np.linalg.norm(q) - n0) / n0 < 1e-3

    @given(spinor_fields(), st.floats(1e-3, 1e3))
    @settings(**SETTINGS)
    def test_global_scale_equivariance(self, field, scale):
        """quantize(a * x) == a * quantize(x) for positive real a: the
        per-site scale makes the format radix-free."""
        data, site_axes = field
        q1 = quantize_half(scale * data, site_axes=site_axes)
        q2 = scale * quantize_half(data, site_axes=site_axes)
        denom = max(np.abs(q2).max(), 1e-30)
        # Equivariant to within ~1 ulp of the int16 grid (the float32 scale
        # arithmetic can shift components across one grid cell).
        assert np.abs(q1 - q2).max() / denom < 2.0 / 32767.0

    @given(spinor_fields())
    @settings(**SETTINGS)
    def test_convert_is_quantize(self, field):
        data, site_axes = field
        assert np.array_equal(
            HALF.convert(data, site_axes=site_axes),
            quantize_half(data, site_axes=site_axes),
        )
