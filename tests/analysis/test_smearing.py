"""Wuppertal source smearing."""

import numpy as np
import pytest

from repro.analysis.smearing import smearing_radius, wuppertal_smear
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.linalg import su3


@pytest.fixture(scope="module")
def geom():
    return Geometry((8, 8, 8, 4))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.2, rng=1414)


SITE = (4, 4, 4, 0)


class TestWuppertal:
    def test_radius_grows_with_iterations(self, geom, gauge):
        src = SpinorField.point_source(geom, SITE).data
        radii = [
            smearing_radius(wuppertal_smear(gauge, src, iterations=n), SITE)
            for n in (0, 2, 8)
        ]
        assert radii[0] == pytest.approx(0.0, abs=1e-12)
        assert radii[0] < radii[1] < radii[2]

    def test_no_temporal_spreading(self, geom, gauge):
        """Smearing is spatial: the source stays on its time slice."""
        src = SpinorField.point_source(geom, SITE).data
        out = wuppertal_smear(gauge, src, iterations=6)
        support = np.abs(out).sum(axis=(1, 2, 3, 4, 5))
        assert support[SITE[3]] > 0
        assert np.all(support[np.arange(4) != SITE[3]] == 0)

    def test_linearity(self, geom, gauge, rng):
        a = SpinorField.random(geom, rng=rng).data
        b = SpinorField.random(geom, rng=1).data
        lhs = wuppertal_smear(gauge, a + 2.0 * b, iterations=3)
        rhs = wuppertal_smear(gauge, a, iterations=3) + 2.0 * wuppertal_smear(
            gauge, b, iterations=3
        )
        assert np.abs(lhs - rhs).max() < 1e-12

    def test_gauge_covariance(self, geom, gauge, rng):
        """Smear-then-rotate == rotate-then-smear (with rotated links):
        the property that makes smeared sources physical."""
        g = su3.random_su3(geom.shape, rng=rng)
        rotated_links = np.empty_like(gauge.data)
        for mu in range(4):
            rotated_links[mu] = (
                g @ gauge.data[mu] @ su3.dagger(geom.shift(g, mu, 1))
            )
        rotated_gauge = GaugeField(geom, rotated_links)
        psi = SpinorField.random(geom, rng=2).data
        psi_rot = np.einsum("...ab,...sb->...sa", g, psi)
        lhs = wuppertal_smear(rotated_gauge, psi_rot, iterations=3)
        rhs = np.einsum(
            "...ab,...sb->...sa", g, wuppertal_smear(gauge, psi, iterations=3)
        )
        assert np.abs(lhs - rhs).max() < 1e-10

    def test_staggered_fields_supported(self, geom, gauge):
        src = SpinorField.point_source(geom, SITE, color=1, nspin=1).data
        out = wuppertal_smear(gauge, src, iterations=4)
        assert out.shape == src.shape
        assert smearing_radius(out, SITE) > 0.5

    def test_norm_roughly_preserved(self, geom, gauge):
        src = SpinorField.point_source(geom, SITE).data
        out = wuppertal_smear(gauge, src, iterations=10)
        norm = np.linalg.norm(out)
        assert 0.05 < norm < 2.0

    def test_kappa_validation(self, geom, gauge):
        src = SpinorField.point_source(geom, SITE).data
        with pytest.raises(ValueError):
            wuppertal_smear(gauge, src, kappa=-0.1)

    def test_radius_validation(self, geom):
        with pytest.raises(ValueError):
            smearing_radius(np.zeros(geom.shape + (4, 3)), SITE)

    @pytest.mark.slow
    def test_smearing_improves_plateau(self, gauge):
        """The point of smearing: the smeared-source pion effective mass
        settles at least as fast as the point-source one."""
        from repro.analysis import effective_mass, pion_correlator_wilson
        from repro.analysis.propagator import wilson_propagator
        from repro.dirac import PHYSICAL, WilsonCloverOperator
        from repro.solvers import bicgstab

        geom_small = Geometry((4, 4, 4, 8))
        gauge_small = GaugeField.weak(geom_small, epsilon=0.15, rng=11)
        op = WilsonCloverOperator(gauge_small, 0.5, 1.0, boundary=PHYSICAL)

        def propagator(smear_iters):
            prop = np.zeros(geom_small.shape + (4, 3), dtype=complex)
            corr = np.zeros(8)
            total = np.zeros(8)
            for s in range(4):
                for c in range(3):
                    b = SpinorField.point_source(
                        geom_small, (0, 0, 0, 0), s, c
                    ).data
                    if smear_iters:
                        b = wuppertal_smear(
                            gauge_small, b, iterations=smear_iters
                        )
                    x = bicgstab(op.apply, b, tol=1e-8, maxiter=500).x
                    total += np.sum(
                        np.abs(x) ** 2, axis=(1, 2, 3, 4, 5)
                    )
            return total

        point = propagator(0)
        smeared = propagator(3)
        m_point = np.log(point[1] / point[2])
        m_smeared = np.log(smeared[1] / smeared[2])
        # Smearing suppresses excited states: the early effective mass is
        # no larger than the point-source one (both positive).
        assert m_smeared <= m_point + 1e-6
        assert m_smeared > 0
