"""Meson channels with general gamma insertions."""

import numpy as np
import pytest

from repro.analysis import wilson_propagator
from repro.analysis.correlator import pion_correlator_wilson
from repro.analysis.mesons import (
    CHANNELS,
    channel_correlators,
    meson_correlator,
    rho_correlator,
)
from repro.lattice import GaugeField, Geometry
from repro.linalg.gamma import GAMMA5, GAMMAS


@pytest.fixture(scope="module")
def prop():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.15, rng=909)
    return wilson_propagator(gauge, mass=0.5, csw=1.0, tol=1e-9)


class TestMesonCorrelator:
    def test_gamma5_channel_equals_pion(self, prop):
        """tr[g5 S g5 g5 S^+ g5] == sum |S|^2: the gamma5-Hermiticity
        collapse the pion correlator uses."""
        general = meson_correlator(prop, GAMMA5)
        pion = pion_correlator_wilson(prop)
        assert np.allclose(general, pion, rtol=1e-10)

    def test_pion_positive(self, prop):
        assert np.all(meson_correlator(prop, GAMMA5) > 0)

    def test_rho_channels_consistent(self, prop):
        """Cubic symmetry is broken only by the gauge noise: the three rho
        polarizations agree within a modest factor."""
        rx = meson_correlator(prop, GAMMAS[0])
        ry = meson_correlator(prop, GAMMAS[1])
        rz = meson_correlator(prop, GAMMAS[2])
        avg = rho_correlator(prop)
        assert np.allclose(avg, (rx + ry + rz) / 3)
        for a, b in [(rx, ry), (ry, rz)]:
            ratio = np.abs(a[1:4]) / np.abs(b[1:4])
            assert np.all(ratio < 5) and np.all(ratio > 0.2)

    def test_pion_is_lightest_channel(self, prop):
        """Spectral ordering: the pseudoscalar is the lightest state, so
        no channel may decay *slower* than the pion.  (On this tiny,
        nearly-free configuration the rho-pion splitting itself is
        consistent with zero, so only the inequality is physical.)"""
        pion = meson_correlator(prop, GAMMA5)
        rho = np.abs(rho_correlator(prop))
        pion_drop = pion[2] / pion[0]
        rho_drop = rho[2] / rho[0]
        assert rho_drop <= pion_drop * 1.05

    def test_correlators_real_input_validation(self, prop):
        with pytest.raises(ValueError):
            meson_correlator(prop[..., 0], GAMMA5)
        with pytest.raises(ValueError):
            meson_correlator(prop, np.eye(3))

    def test_channel_table(self, prop):
        out = channel_correlators(prop)
        assert set(out) == set(CHANNELS)
        for name, corr in out.items():
            assert corr.shape == (8,)
            assert np.isfinite(corr).all(), name

    def test_time_reflection_symmetry(self, prop):
        c = meson_correlator(prop, GAMMA5)
        for t in range(1, 4):
            assert c[t] == pytest.approx(c[8 - t], rel=1.0)
