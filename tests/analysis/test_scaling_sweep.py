"""The strong-scaling sweep harness: the model track, the efficiency
math, the honesty flags, the knee chart, and one real (tiny) sweep."""

from __future__ import annotations

import os

import pytest

from repro.analysis.scaling_sweep import (
    ScalingPoint,
    _model_point,
    knee_chart,
    run_scaling_sweep,
)
from repro.metrics.bench_schema import validate_bench
from repro.perfmodel.machines import EDGE


def synthetic_points():
    return [
        ScalingPoint(ranks=1, grid=[1, 1, 1, 1], measured_seconds=4.0,
                     model_seconds=2.0, measured_efficiency=1.0,
                     model_efficiency=1.0, measured_comm_fraction=0.02,
                     model_comm_fraction=0.05, converged=True),
        ScalingPoint(ranks=4, grid=[1, 1, 2, 2], measured_seconds=1.5,
                     model_seconds=0.6, measured_efficiency=0.67,
                     model_efficiency=0.83, measured_comm_fraction=0.3,
                     model_comm_fraction=0.2, converged=True,
                     oversubscribed=True),
    ]


class TestModelPoint:
    def test_partitioning_adds_comm(self):
        solo, solo_frac = _model_point(
            EDGE, (8, 8, 8, 16), (1, 1, 1, 1), 50, 4, 8
        )
        quad, quad_frac = _model_point(
            EDGE, (8, 8, 8, 16), (1, 1, 2, 2), 50, 4, 8
        )
        # An unpartitioned volume exchanges no halos, so only the
        # reduction share remains; partitioning must raise the fraction.
        assert 0.0 <= solo_frac < quad_frac <= 1.0
        assert solo > 0.0 and quad > 0.0

    def test_more_iterations_cost_more(self):
        short, _ = _model_point(EDGE, (8, 8, 8, 16), (1, 1, 1, 2), 10, 4, 8)
        long, _ = _model_point(EDGE, (8, 8, 8, 16), (1, 1, 1, 2), 100, 4, 8)
        assert long > short


class TestPointSerialization:
    def test_to_dict_has_every_schema_key(self):
        doc = synthetic_points()[0].to_dict()
        for key in ("ranks", "grid", "measured_seconds", "model_seconds",
                    "measured_efficiency", "model_efficiency",
                    "measured_comm_fraction", "model_comm_fraction",
                    "iterations", "converged", "oversubscribed"):
            assert key in doc


class TestKneeChart:
    def test_renders_both_tracks_and_flags(self):
        chart = knee_chart(synthetic_points())
        assert "time to solution" in chart
        assert "parallel efficiency" in chart
        assert "measured" in chart and "model" in chart
        assert "[oversubscribed]" in chart
        assert "comm fraction" in chart


@pytest.mark.slow
class TestLiveSweep:
    def test_tiny_sweep_end_to_end(self):
        doc, points = run_scaling_sweep(
            dims=(4, 4, 4, 8), ranks=(1, 2), tol=1e-5,
            backend="threads", timeout=120.0,
        )
        assert validate_bench(doc) == []
        assert doc["bench"] == "scaling"
        assert [p.ranks for p in points] == [1, 2]
        assert all(p.converged for p in points)
        assert all(p.measured_seconds > 0 for p in points)
        assert all(p.model_seconds > 0 for p in points)
        assert all(p.replay_seconds > 0 for p in points)
        # The baseline defines efficiency 1.0 by construction.
        assert points[0].measured_efficiency == pytest.approx(1.0)
        assert points[0].model_efficiency == pytest.approx(1.0)
        assert 0.0 <= points[1].measured_comm_fraction <= 1.0

    def test_oversubscription_is_reported_honestly(self):
        doc, points = run_scaling_sweep(
            dims=(4, 4, 4, 8), ranks=(1, 2), tol=1e-5,
            backend="sequential",
        )
        cores = os.cpu_count() or 1
        assert doc["host"]["cpu_count"] == os.cpu_count()
        for p in points:
            assert p.oversubscribed == (p.ranks > cores)
            entry = next(
                e for e in doc["results"] if e["ranks"] == p.ranks
            )
            assert entry["oversubscribed"] == p.oversubscribed
