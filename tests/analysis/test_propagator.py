"""Propagator computation (the analysis-phase workload)."""

import numpy as np
import pytest

from repro.analysis import staggered_propagator, wilson_propagator
from repro.dirac import PHYSICAL, AsqtadOperator, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.2, rng=700)


class TestWilsonPropagator:
    @pytest.fixture(scope="class")
    def prop(self, gauge):
        return wilson_propagator(gauge, mass=0.3, csw=1.0, tol=1e-8)

    def test_shape(self, prop, geom):
        assert prop.shape == geom.shape + (4, 3, 4, 3)

    def test_columns_solve_the_dirac_equation(self, prop, gauge, geom):
        op = WilsonCloverOperator(gauge, mass=0.3, csw=1.0, boundary=PHYSICAL)
        for s, c in [(0, 0), (2, 1)]:
            col = prop[..., s, c]
            b = SpinorField.point_source(geom, (0, 0, 0, 0), s, c).data
            r = b - op.apply(col)
            assert np.linalg.norm(r) < 1e-6

    def test_source_point_dominates(self, prop):
        """The propagator is largest at the source (free-field-like decay)."""
        mags = np.abs(prop).sum(axis=(-1, -2, -3, -4))
        assert mags.argmax() == 0  # flattened index of site (0,0,0,0)

    def test_nonconvergence_raises(self, gauge):
        with pytest.raises(RuntimeError):
            wilson_propagator(gauge, mass=0.3, csw=1.0, tol=1e-14, maxiter=2)


class TestStaggeredPropagator:
    @pytest.fixture(scope="class")
    def prop(self, gauge):
        return staggered_propagator(
            AsqtadOperator.from_gauge(gauge, mass=0.3, boundary=PHYSICAL),
            mass=0.3,
            tol=1e-9,
        )

    def test_shape(self, prop, geom):
        assert prop.shape == geom.shape + (3, 3)

    def test_columns_solve_system(self, prop, gauge, geom):
        op = AsqtadOperator.from_gauge(gauge, mass=0.3, boundary=PHYSICAL)
        for c in range(3):
            b = SpinorField.point_source(geom, (0, 0, 0, 0), color=c, nspin=1).data
            r = b - op.apply(prop[..., c])
            assert np.linalg.norm(r) < 1e-6

    def test_accepts_gauge_field_directly(self, gauge):
        prop = staggered_propagator(gauge, mass=0.4, tol=1e-8)
        assert np.isfinite(prop).all()
