"""Pion correlators and effective masses."""

import numpy as np
import pytest

from repro.analysis import (
    effective_mass,
    pion_correlator_staggered,
    pion_correlator_wilson,
    staggered_propagator,
    wilson_propagator,
)
from repro.lattice import GaugeField, Geometry


@pytest.fixture(scope="module")
def wilson_corr():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.15, rng=801)
    prop = wilson_propagator(gauge, mass=0.5, csw=1.0, tol=1e-8)
    return pion_correlator_wilson(prop)


class TestWilsonPion:
    def test_length_is_nt(self, wilson_corr):
        assert wilson_corr.shape == (8,)

    def test_positive(self, wilson_corr):
        assert np.all(wilson_corr > 0)

    def test_decays_from_source(self, wilson_corr):
        """C(t) falls from the t=0 source toward the midpoint (cosh form
        with the periodic image rising after T/2)."""
        assert wilson_corr[0] > wilson_corr[1] > wilson_corr[2]

    def test_time_reflection_symmetry(self, wilson_corr):
        """Periodic lattice: C(t) ~ C(T - t)."""
        for t in range(1, 4):
            ratio = wilson_corr[t] / wilson_corr[8 - t]
            assert 0.5 < ratio < 2.0

    def test_effective_mass_positive_in_decay_region(self, wilson_corr):
        meff = effective_mass(wilson_corr)
        assert np.all(meff[:3] > 0)


class TestStaggeredPion:
    def test_correlator_shape_and_positivity(self):
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.15, rng=802)
        prop = staggered_propagator(gauge, mass=0.5, tol=1e-8)
        corr = pion_correlator_staggered(prop)
        assert corr.shape == (8,)
        assert np.all(corr > 0)
        assert corr[0] == corr.max()


class TestValidation:
    def test_wilson_wrong_rank(self):
        with pytest.raises(ValueError):
            pion_correlator_wilson(np.zeros((4, 4, 4, 4, 3, 3)))

    def test_staggered_wrong_rank(self):
        with pytest.raises(ValueError):
            pion_correlator_staggered(np.zeros((4, 4, 4, 4, 4, 3, 4, 3)))

    def test_effective_mass_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            effective_mass(np.array([1.0, -0.5, 0.2]))

    def test_effective_mass_of_pure_exponential(self):
        c = np.exp(-0.7 * np.arange(6))
        assert np.allclose(effective_mass(c), 0.7)
