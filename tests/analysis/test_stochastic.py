"""Stochastic trace estimation."""

import numpy as np
import pytest

from repro.analysis.stochastic import TraceEstimate, estimate_trace_inverse, z2_source
from repro.dirac import NaiveStaggeredOperator, StaggeredNormalOperator, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.2, rng=111)


class TestZ2Source:
    def test_unit_modulus_components(self, geom, rng):
        eta = z2_source(geom, rng=rng)
        assert np.allclose(np.abs(eta), 1.0)

    def test_norm_is_deterministic(self, geom, rng):
        eta = z2_source(geom, rng=rng)
        assert np.vdot(eta, eta).real == pytest.approx(eta.size)

    def test_mean_near_zero(self, geom, rng):
        eta = z2_source(geom, rng=rng)
        assert abs(eta.mean()) < 5 / np.sqrt(eta.size)

    def test_staggered_shape(self, geom, rng):
        eta = z2_source(geom, nspin=1, rng=rng)
        assert eta.shape == geom.shape + (3,)


class TestTraceEstimate:
    def test_identity_operator_trace(self, geom):
        """tr(1^{-1}) = dimension of the space, with zero variance."""

        class Identity:
            geometry = geom
            nspin = 1

            def apply(self, x):
                return x

        est = estimate_trace_inverse(Identity(), n_samples=3, hermitian=True)
        dim = geom.volume * 3
        assert est.mean.real == pytest.approx(dim, rel=1e-10)
        assert est.error < 1e-8

    def test_wilson_trace_against_exact(self, gauge, geom):
        """Compare the noise estimate of tr M^{-1} to the exact trace from
        12 point-source solves at every site... too costly; instead use
        the free-field value: tr M^{-1} = 12V/m for the diagonal mode
        structure? Use a scaled identity via mass-dominated operator."""
        op = WilsonCloverOperator(gauge, mass=2.0, csw=0.0)
        est = estimate_trace_inverse(op, n_samples=6, tol=1e-9, rng=5)
        # Heavy quark: M ~ (4+m) - hopping, so tr M^{-1} ~ 12V/(4+m) with
        # small corrections; check the estimate lands nearby.
        rough = 12 * geom.volume / (4 + 2.0)
        assert abs(est.mean.real - rough) / rough < 0.1
        assert est.error < 0.1 * abs(est.mean.real)

    def test_hermitian_path(self, gauge):
        op = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, 0.5))
        est = estimate_trace_inverse(op, n_samples=4, hermitian=True, rng=7)
        # M^+M positive definite: trace of inverse is positive real.
        assert est.mean.real > 0
        assert abs(est.mean.imag) < 0.05 * est.mean.real

    def test_more_samples_reduce_error(self, gauge):
        op = WilsonCloverOperator(gauge, mass=1.0, csw=0.0)
        few = estimate_trace_inverse(op, n_samples=3, tol=1e-7, rng=11)
        many = estimate_trace_inverse(op, n_samples=12, tol=1e-7, rng=11)
        assert many.error < few.error * 1.5  # stochastic, generous band

    def test_sample_bookkeeping(self, gauge):
        op = WilsonCloverOperator(gauge, mass=1.0, csw=0.0)
        est = estimate_trace_inverse(op, n_samples=3, tol=1e-7, rng=13)
        assert est.n_samples == 3
        assert est.solver_iterations > 0

    def test_minimum_samples(self, gauge):
        op = WilsonCloverOperator(gauge, mass=1.0, csw=0.0)
        with pytest.raises(ValueError):
            estimate_trace_inverse(op, n_samples=1)
