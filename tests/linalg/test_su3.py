"""SU(3) algebra: group properties, projection, compression."""

import numpy as np
import pytest

from repro.linalg import su3


@pytest.fixture(scope="module")
def links():
    return su3.random_su3((64,), rng=11)


class TestGroupProperties:
    def test_identity(self):
        eye = su3.identity((5,))
        assert eye.shape == (5, 3, 3)
        assert np.allclose(eye, np.eye(3))

    def test_random_is_unitary(self, links):
        assert su3.unitarity_error(links) < 1e-12

    def test_random_has_unit_determinant(self, links):
        assert su3.determinant_error(links) < 1e-12

    def test_closure_under_multiplication(self, links):
        prod = su3.mul(links[:32], links[32:])
        assert su3.unitarity_error(prod) < 1e-12
        assert su3.determinant_error(prod) < 1e-12

    def test_dagger_is_inverse(self, links):
        prod = links @ su3.dagger(links)
        assert np.allclose(prod, np.eye(3), atol=1e-12)

    def test_trace(self, links):
        tr = su3.trace(links)
        assert tr.shape == (64,)
        assert np.allclose(tr, np.einsum("...ii", links))

    def test_haar_mean_trace_is_small(self):
        # For Haar-distributed SU(3), E[tr U] = 0.
        u = su3.random_su3((4000,), rng=12)
        assert abs(su3.trace(u).mean()) < 0.1


class TestProjection:
    def test_projection_restores_group(self, links):
        rng = np.random.default_rng(0)
        noisy = links + 0.05 * (
            rng.standard_normal((64, 3, 3)) + 1j * rng.standard_normal((64, 3, 3))
        )
        proj = su3.project_su3(noisy)
        assert su3.unitarity_error(proj) < 1e-12
        assert su3.determinant_error(proj) < 1e-12
        # Projection of a small perturbation stays close to the original.
        assert np.abs(proj - links).max() < 0.3

    def test_projection_is_idempotent(self, links):
        assert np.allclose(su3.project_su3(links), links, atol=1e-10)

    def test_reunitarize_alias(self, links):
        assert np.allclose(su3.reunitarize(links), su3.project_su3(links))


class TestCompression:
    def test_compress12_shape(self, links):
        rows = su3.compress12(links)
        assert rows.shape == (64, 2, 3)

    def test_reconstruct12_roundtrip(self, links):
        assert su3.compression_roundtrip_error(links, 12) < 1e-12

    def test_reconstruct12_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            su3.reconstruct12(np.zeros((4, 3, 3)))

    def test_compress8_shape(self, links):
        params = su3.compress8(links)
        assert params.shape == (64, 8)
        assert params.dtype == np.float64

    def test_reconstruct8_roundtrip(self, links):
        assert su3.compression_roundtrip_error(links, 8) < 1e-10

    def test_reconstruct8_identity_matrix(self):
        # The degenerate-pivot path: u01 = 0 but |u00| = 1.
        eye = su3.identity((3,))
        assert np.abs(su3.reconstruct8(su3.compress8(eye)) - eye).max() < 1e-12

    def test_reconstruct8_permutation_like(self):
        # First row = (0, 0, 1): exercises the fallback pivot.
        u = np.array(
            [[0, 0, 1], [1, 0, 0], [0, 1, 0]], dtype=np.complex128
        )[None]
        assert abs(np.linalg.det(u[0]) - 1) < 1e-12
        rt = su3.reconstruct8(su3.compress8(u))
        assert np.abs(rt - u).max() < 1e-10

    def test_reconstruct8_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            su3.reconstruct8(np.zeros((4, 7)))

    def test_no_compression_is_exact(self, links):
        assert su3.compression_roundtrip_error(links, 18) == 0.0

    def test_unknown_scheme_rejected(self, links):
        with pytest.raises(ValueError):
            su3.compression_roundtrip_error(links, 9)


class TestFixDeterminant:
    def test_fixes_phase(self, links):
        phased = links * np.exp(0.3j)
        fixed = su3.fix_determinant(phased)
        assert su3.determinant_error(fixed) < 1e-12
