"""Gamma-matrix algebra: Clifford relations, projectors, sigma."""

import itertools

import numpy as np
import pytest

from repro.linalg import gamma


class TestCliffordAlgebra:
    def test_anticommutation(self):
        for mu, nu in itertools.product(range(4), repeat=2):
            expected = 2.0 * np.eye(4) if mu == nu else np.zeros((4, 4))
            assert np.allclose(gamma.anticommutator(mu, nu), expected), (mu, nu)

    def test_hermiticity(self):
        for mu in range(4):
            g = gamma.gamma(mu)
            assert np.allclose(g, g.conj().T), mu

    def test_square_is_identity(self):
        for mu in range(4):
            g = gamma.gamma(mu)
            assert np.allclose(g @ g, np.eye(4))

    def test_gamma5_is_product(self):
        prod = (
            gamma.gamma(0) @ gamma.gamma(1) @ gamma.gamma(2) @ gamma.gamma(3)
        )
        assert np.allclose(prod, gamma.GAMMA5)

    def test_gamma5_chiral_diagonal(self):
        assert np.allclose(gamma.GAMMA5, np.diag([1, 1, -1, -1]))

    def test_gamma5_anticommutes_with_gammas(self):
        for mu in range(4):
            g = gamma.gamma(mu)
            assert np.allclose(gamma.GAMMA5 @ g + g @ gamma.GAMMA5, 0)

    def test_gamma_accessor_5(self):
        assert np.allclose(gamma.gamma(5), gamma.GAMMA5)

    def test_gamma_accessor_invalid(self):
        with pytest.raises(ValueError):
            gamma.gamma(4)


class TestProjectors:
    def test_projector_property(self):
        for mu in range(4):
            for sign in (+1, -1):
                p = gamma.projector(mu, sign)
                assert np.allclose(p @ p, p), (mu, sign)

    def test_rank_two(self):
        # The rank-2 property behind the spin-projection trick.
        for mu in range(4):
            for sign in (+1, -1):
                rank = np.linalg.matrix_rank(gamma.projector(mu, sign))
                assert rank == 2

    def test_complementary(self):
        for mu in range(4):
            total = gamma.projector(mu, +1) + gamma.projector(mu, -1)
            assert np.allclose(total, np.eye(4))

    def test_orthogonal(self):
        for mu in range(4):
            prod = gamma.projector(mu, +1) @ gamma.projector(mu, -1)
            assert np.allclose(prod, 0)

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            gamma.projector(0, 2)


class TestSigma:
    def test_antisymmetry(self):
        for mu, nu in itertools.combinations(range(4), 2):
            assert np.allclose(gamma.sigma(mu, nu), -gamma.sigma(nu, mu))

    def test_hermiticity(self):
        for mu, nu in itertools.combinations(range(4), 2):
            s = gamma.sigma(mu, nu)
            assert np.allclose(s, s.conj().T)

    def test_commutes_with_gamma5(self):
        # This is what makes the clover term chirality-block-diagonal.
        for mu, nu in itertools.combinations(range(4), 2):
            s = gamma.sigma(mu, nu)
            assert np.allclose(s @ gamma.GAMMA5, gamma.GAMMA5 @ s)

    def test_diagonal_vanishes(self):
        for mu in range(4):
            assert np.allclose(gamma.sigma(mu, mu), 0)


class TestApplySpinMatrix:
    def test_matches_einsum(self, rng=np.random.default_rng(3)):
        x = rng.standard_normal((2, 2, 2, 2, 4, 3)) + 1j * rng.standard_normal(
            (2, 2, 2, 2, 4, 3)
        )
        m = gamma.gamma(1)
        out = gamma.apply_spin_matrix(m, x)
        ref = np.einsum("st,...tc->...sc", m, x)
        assert np.allclose(out, ref)

    def test_identity_is_noop(self, rng=np.random.default_rng(4)):
        x = rng.standard_normal((8, 4, 3))
        assert np.allclose(gamma.apply_spin_matrix(gamma.IDENTITY, x), x)
