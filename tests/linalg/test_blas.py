"""BLAS layer: numerics and cost accounting."""

import numpy as np
import pytest

from repro.linalg import blas
from repro.util.counters import tally


@pytest.fixture()
def vecs(rng):
    n = 256
    x = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    y = rng.standard_normal(n) + 1j * rng.standard_normal(n)
    return x, y


class TestNumerics:
    def test_norm2(self, vecs):
        x, _ = vecs
        assert blas.norm2(x) == pytest.approx(float(np.vdot(x, x).real))

    def test_cdot(self, vecs):
        x, y = vecs
        assert blas.cdot(x, y) == pytest.approx(complex(np.vdot(x, y)))

    def test_rdot(self, vecs):
        x, y = vecs
        assert blas.rdot(x, y) == pytest.approx(float(np.vdot(x, y).real))

    def test_axpy(self, vecs):
        x, y = vecs
        assert np.allclose(blas.axpy(2.5, x, y), y + 2.5 * x)

    def test_caxpy(self, vecs):
        x, y = vecs
        a = 1.5 - 0.5j
        assert np.allclose(blas.caxpy(a, x, y), y + a * x)

    def test_xpay(self, vecs):
        x, y = vecs
        assert np.allclose(blas.xpay(x, -0.5, y), x - 0.5 * y)

    def test_cxpay(self, vecs):
        x, y = vecs
        a = 0.5 + 2j
        assert np.allclose(blas.cxpay(x, a, y), x + a * y)

    def test_axpby(self, vecs):
        x, y = vecs
        assert np.allclose(blas.axpby(2.0, x, -1.0, y), 2 * x - y)

    def test_caxpby(self, vecs):
        x, y = vecs
        a, b = 1j, 2.0 + 0j
        assert np.allclose(blas.caxpby(a, x, b, y), a * x + b * y)

    def test_scale(self, vecs):
        x, _ = vecs
        assert np.allclose(blas.scale(3.0, x), 3 * x)

    def test_copy_and_zero(self, vecs):
        x, _ = vecs
        c = blas.copy(x)
        assert np.array_equal(c, x) and c is not x
        z = blas.zero_like(x)
        assert not np.any(z)

    def test_inputs_not_mutated(self, vecs):
        x, y = vecs
        x0, y0 = x.copy(), y.copy()
        blas.axpy(1.0, x, y)
        blas.caxpby(1j, x, 2.0 + 0j, y)
        assert np.array_equal(x, x0) and np.array_equal(y, y0)


class TestAccounting:
    def test_norm2_counts_flops_and_reduction(self, vecs):
        x, _ = vecs
        with tally() as t:
            blas.norm2(x)
        assert t.flops == 4 * x.size
        assert t.reductions == 1

    def test_cdot_counts(self, vecs):
        x, y = vecs
        with tally() as t:
            blas.cdot(x, y)
        assert t.flops == 8 * x.size
        assert t.reductions == 1

    def test_axpy_no_reduction(self, vecs):
        x, y = vecs
        with tally() as t:
            blas.axpy(1.0, x, y)
        assert t.flops == 4 * x.size
        assert t.reductions == 0
        assert t.bytes_moved == 3 * x.nbytes

    def test_copy_counts_bytes_only(self, vecs):
        x, _ = vecs
        with tally() as t:
            blas.copy(x)
        assert t.flops == 0
        assert t.bytes_moved == 2 * x.nbytes

    def test_no_tally_is_silent(self, vecs):
        x, y = vecs
        blas.cdot(x, y)  # must not raise outside a tally
