"""Dynamical-fermion HMC: pseudofermions, fermion force, full trajectories."""

import numpy as np
import pytest

from repro.gauge.action import random_algebra_field
from repro.gauge.dynamical import DynamicalHMC, PseudofermionAction
from repro.gauge.hmc import expm_su3
from repro.lattice import GaugeField, Geometry


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.3, rng=808)
    pf = PseudofermionAction(mass=0.5, tol=1e-12)
    rng = np.random.default_rng(9)
    phi = pf.refresh(gauge, rng)
    return geom, gauge, pf, phi


class TestPseudofermionAction:
    def test_action_positive(self, setup):
        geom, gauge, pf, phi = setup
        assert pf.action(gauge, phi) > 0

    def test_heatbath_action_is_xi_norm(self, setup):
        """phi = M^+ xi makes S_pf = |xi|^2 exactly: check the mean over
        refreshes matches the Gaussian expectation (= #complex dof)."""
        geom, gauge, pf, phi = setup
        rng = np.random.default_rng(10)
        values = [
            pf.action(gauge, pf.refresh(gauge, rng)) for _ in range(6)
        ]
        dof = geom.volume * 3  # complex components, unit variance
        assert np.mean(values) == pytest.approx(dof, rel=0.1)

    def test_solver_failure_raises(self, setup):
        geom, gauge, pf, phi = setup
        strict = PseudofermionAction(mass=0.5, tol=1e-14, maxiter=2)
        with pytest.raises(RuntimeError):
            strict.action(gauge, phi)


class TestFermionForce:
    def test_force_in_algebra(self, setup):
        geom, gauge, pf, phi = setup
        f = pf.force(gauge, phi)
        assert np.abs(f + np.conj(np.swapaxes(f, -1, -2))).max() < 1e-12
        assert np.abs(np.trace(f, axis1=-2, axis2=-1)).max() < 1e-12

    def test_force_matches_numerical_derivative(self, setup):
        """The defining check: dS_pf/dt along a random algebra flow equals
        -Re tr(D F) to solver accuracy."""
        geom, gauge, pf, phi = setup
        f = pf.force(gauge, phi)
        rng = np.random.default_rng(11)
        d = random_algebra_field((4,) + geom.shape, rng)
        eps = 1e-5
        up = GaugeField(geom, expm_su3(eps * d) @ gauge.data)
        dn = GaugeField(geom, expm_su3(-eps * d) @ gauge.data)
        numeric = (pf.action(up, phi) - pf.action(dn, phi)) / (2 * eps)
        analytic = -float(np.sum(np.trace(d @ f, axis1=-2, axis2=-1)).real)
        assert numeric == pytest.approx(analytic, rel=1e-6)

    def test_force_nonzero(self, setup):
        geom, gauge, pf, phi = setup
        assert np.abs(pf.force(gauge, phi)).max() > 1e-3


class TestDynamicalHMC:
    @pytest.fixture(scope="class")
    def hmc(self):
        return DynamicalHMC(
            beta=5.5, mass=0.5, step_size=0.04, n_steps=6, rng_seed=12,
            solver_tol=1e-10,
        )

    def test_leapfrog_reversibility(self, setup, hmc):
        geom, gauge, pf, phi = setup
        rng = np.random.default_rng(13)
        p0 = random_algebra_field((4,) + geom.shape, rng)
        u1, p1 = hmc.leapfrog(gauge, p0, phi)
        u2, p2 = hmc.leapfrog(u1, -p1, phi)
        assert np.abs(u2.data - gauge.data).max() < 1e-10
        assert np.abs(p2 + p0).max() < 1e-10

    def test_energy_scaling(self, setup):
        geom, gauge, pf, phi = setup
        dh = {}
        for eps in (0.08, 0.04):
            hmc = DynamicalHMC(
                beta=5.5, mass=0.5, step_size=eps,
                n_steps=int(0.24 / eps), rng_seed=14, solver_tol=1e-11,
            )
            rng = np.random.default_rng(15)
            p0 = random_algebra_field((4,) + geom.shape, rng)
            h0 = hmc.hamiltonian(gauge, p0, phi)
            u1, p1 = hmc.leapfrog(gauge, p0, phi)
            dh[eps] = abs(hmc.hamiltonian(u1, p1, phi) - h0)
        assert dh[0.04] < dh[0.08] / 2.0

    def test_trajectories_run_with_solves(self, setup, hmc):
        geom, gauge, pf, phi = setup
        result = hmc.trajectory(gauge)
        # One CG solve per force evaluation: initial half kick + n_steps
        # kicks (+2 for the Hamiltonians' action evaluations are separate
        # solves but not counted in solver_iterations).
        assert result.solver_iterations == hmc.n_steps + 1
        assert np.isfinite(result.delta_h)
        assert 0 < result.plaquette < 1

    def test_rejection_keeps_configuration(self, setup):
        geom, gauge, pf, phi = setup
        wild = DynamicalHMC(
            beta=5.5, mass=0.5, step_size=1.0, n_steps=3, rng_seed=16,
        )
        result = wild.trajectory(gauge)
        if not result.accepted:
            assert result.gauge is gauge

    def test_acceptance_reasonable_at_small_steps(self, setup):
        geom, gauge, pf, phi = setup
        hmc = DynamicalHMC(
            beta=5.5, mass=0.5, step_size=0.02, n_steps=6, rng_seed=17,
            solver_tol=1e-11,
        )
        u = gauge
        for _ in range(3):
            u = hmc.trajectory(u).gauge
        assert hmc.acceptance_rate >= 2 / 3
