"""Plaquettes and the clover-leaf field strength."""

import itertools

import numpy as np
import pytest

from repro.gauge.observables import (
    average_plaquette,
    clover_leaf_sum,
    field_strength,
    plaquette_field,
)
from repro.lattice import GaugeField
from repro.linalg import su3


class TestPlaquette:
    def test_unit_gauge(self, geom44):
        assert average_plaquette(GaugeField.unit(geom44)) == 1.0

    def test_hot_gauge_near_zero(self, geom44):
        assert abs(average_plaquette(GaugeField.hot(geom44, rng=9))) < 0.15

    def test_plaquette_field_unitary(self, weak_gauge):
        p = plaquette_field(weak_gauge, 0, 3)
        assert su3.unitarity_error(p) < 1e-12

    def test_gauge_invariance(self, weak_gauge, rng):
        """The plaquette average is invariant under gauge transformations
        U_mu(x) -> g(x) U_mu(x) g(x+mu)^+ — the defining covariance check."""
        geom = weak_gauge.geometry
        g = su3.random_su3(geom.shape, rng=rng)
        transformed = np.empty_like(weak_gauge.data)
        for mu in range(4):
            g_fwd = geom.shift(g, mu, 1)
            transformed[mu] = g @ weak_gauge.data[mu] @ su3.dagger(g_fwd)
        before = average_plaquette(weak_gauge)
        after = average_plaquette(GaugeField(geom, transformed))
        assert after == pytest.approx(before, abs=1e-12)


class TestFieldStrength:
    def test_vanishes_on_unit_gauge(self, geom44):
        unit = GaugeField.unit(geom44)
        for mu, nu in itertools.combinations(range(4), 2):
            f = field_strength(unit, mu, nu)
            assert np.abs(f).max() < 1e-14

    def test_anti_hermitian(self, weak_gauge):
        f = field_strength(weak_gauge, 0, 1)
        assert np.abs(f + su3.dagger(f)).max() < 1e-12

    def test_antisymmetric_in_indices(self, weak_gauge):
        f01 = field_strength(weak_gauge, 0, 1)
        f10 = field_strength(weak_gauge, 1, 0)
        assert np.abs(f01 + f10).max() < 1e-12

    def test_nonzero_on_rough_gauge(self, weak_gauge):
        f = field_strength(weak_gauge, 2, 3)
        assert np.abs(f).max() > 1e-3

    def test_leaf_sum_shape(self, weak_gauge):
        q = clover_leaf_sum(weak_gauge, 0, 3)
        assert q.shape == weak_gauge.geometry.shape + (3, 3)

    def test_leaves_are_near_identity_on_smooth_field(self, geom44):
        smooth = GaugeField.weak(geom44, epsilon=0.01, rng=5)
        q = clover_leaf_sum(smooth, 1, 2)
        assert np.abs(q - 4 * np.eye(3)).max() < 0.1
