"""Cabibbo-Marinari heatbath and overrelaxation.

Includes two quantitative physics checks: the strong-coupling plaquette
(<P> ~ beta/18 as beta -> 0) and the production-coupling plaquette at
beta = 5.7 (~0.55), both standard SU(3) benchmarks.
"""

import numpy as np
import pytest

from repro.gauge.heatbath import (
    HeatbathUpdater,
    _quat_mul,
    _quaternion_to_su2,
    _su2_project,
)
from repro.lattice import GaugeField, Geometry
from repro.linalg import su3


class TestQuaternionHelpers:
    def test_projection_identity(self, rng):
        """Re tr(g w) == Re tr(g q) for any g in SU(2): only the quaternion
        part of w couples to subgroup elements."""
        w = rng.standard_normal((20, 2, 2)) + 1j * rng.standard_normal((20, 2, 2))
        a, k = _su2_project(w)
        q = _quaternion_to_su2(a)
        v = rng.standard_normal((20, 4))
        v /= np.linalg.norm(v, axis=-1, keepdims=True)
        g = _quaternion_to_su2(v)
        lhs = np.trace(g @ w, axis1=-2, axis2=-1).real
        rhs = np.trace(g @ q, axis1=-2, axis2=-1).real
        assert np.abs(lhs - rhs).max() < 1e-12

    def test_unit_quaternion_is_su2(self, rng):
        v = rng.standard_normal((20, 4))
        v /= np.linalg.norm(v, axis=-1, keepdims=True)
        g = _quaternion_to_su2(v)
        eye = np.broadcast_to(np.eye(2), g.shape)
        assert np.abs(g @ np.conj(np.swapaxes(g, -1, -2)) - eye).max() < 1e-12
        assert np.abs(np.linalg.det(g) - 1).max() < 1e-12

    def test_quaternion_multiplication(self, rng):
        p = rng.standard_normal((10, 4))
        q = rng.standard_normal((10, 4))
        matrix_product = _quaternion_to_su2(p) @ _quaternion_to_su2(q)
        quat_product = _quaternion_to_su2(_quat_mul(p, q))
        assert np.abs(matrix_product - quat_product).max() < 1e-12


class TestSweeps:
    def test_sweep_preserves_group(self, geom44):
        hb = HeatbathUpdater(beta=5.7, rng_seed=1)
        out = hb.sweep(GaugeField.hot(geom44, rng=2))
        assert su3.unitarity_error(out.data) < 1e-9
        assert su3.determinant_error(out.data) < 1e-9

    def test_input_unmodified(self, geom44):
        start = GaugeField.hot(geom44, rng=3)
        before = start.data.copy()
        HeatbathUpdater(beta=5.7, rng_seed=4).sweep(start)
        assert np.array_equal(start.data, before)

    def test_hot_start_orders_at_strong_beta(self, geom44):
        hb = HeatbathUpdater(beta=6.5, or_steps=0, rng_seed=5)
        hot = GaugeField.hot(geom44, rng=6)
        out, _ = hb.thermalize(hot, sweeps=8)
        assert out.plaquette() > hot.plaquette() + 0.2

    def test_cold_start_disorders_at_weak_beta(self, geom44):
        hb = HeatbathUpdater(beta=1.0, or_steps=0, rng_seed=7)
        out, _ = hb.thermalize(GaugeField.unit(geom44), sweeps=8)
        assert out.plaquette() < 0.5

    def test_overrelaxation_roughly_preserves_action(self, geom44):
        """OR is microcanonical per subgroup; a full OR-only sweep changes
        the plaquette only through the sequential sweep ordering."""
        hb = HeatbathUpdater(beta=5.7, rng_seed=8)
        gauge = GaugeField.weak(geom44, epsilon=0.4, rng=9)
        before = gauge.plaquette()
        updated = gauge.copy()
        hb._sweep_links(updated, hb._overrelax_subgroup)
        after = updated.plaquette()
        assert after == pytest.approx(before, abs=0.02)
        # ... while genuinely moving the configuration.
        assert np.abs(updated.data - gauge.data).max() > 0.1


class TestPhysics:
    def test_strong_coupling_plaquette(self, geom44):
        """Leading strong-coupling expansion: <P> = beta/18 + O(beta^2)."""
        hb = HeatbathUpdater(beta=0.5, or_steps=0, rng_seed=10)
        _, history = hb.thermalize(
            GaugeField.hot(geom44, rng=11), sweeps=20, measure_every=2
        )
        measured = float(np.mean(history[4:]))
        assert measured == pytest.approx(0.5 / 18.0, abs=0.012)

    def test_production_coupling_plaquette(self, geom44):
        """beta = 5.7: the SU(3) plaquette is ~0.549 (a standard benchmark
        number); hot and cold starts must agree (thermalization)."""
        hb_cold = HeatbathUpdater(beta=5.7, or_steps=1, rng_seed=12)
        cold, hist_cold = hb_cold.thermalize(
            GaugeField.unit(geom44), sweeps=24, measure_every=4
        )
        measured = float(np.mean(hist_cold[-3:]))
        assert measured == pytest.approx(0.549, abs=0.04)
