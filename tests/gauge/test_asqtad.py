"""Asqtad fat/long link construction."""

import numpy as np
import pytest

from repro.gauge.asqtad import (
    LEPAGE_COEFF,
    NAIK_COEFF,
    ONE_LINK_COEFF,
    SEVEN_STAPLE_COEFF,
    THREE_STAPLE_COEFF,
    FIVE_STAPLE_COEFF,
    AsqtadLinks,
    build_asqtad_links,
    build_fat_links,
    build_long_links,
    fattening_paths,
)
from repro.gauge.paths import path_displacement
from repro.lattice import GaugeField, Geometry


class TestPathSet:
    def test_path_count(self):
        # 1 one-link + 6 three-staples + 24 five-staples + 48 seven-staples
        # + 6 Lepage = 85 paths per direction.
        for mu in range(4):
            assert len(fattening_paths(mu)) == 85

    def test_all_paths_displace_one_step(self):
        for mu in range(4):
            expected = tuple(1 if nu == mu else 0 for nu in range(4))
            for _, path in fattening_paths(mu):
                assert path_displacement(path) == expected

    def test_coefficient_multiplicities(self):
        from collections import Counter

        counts = Counter(round(c, 9) for c, _ in fattening_paths(0))
        assert counts[round(ONE_LINK_COEFF, 9)] == 1
        # Lepage and 3-staple share the coefficient -1/16: 6 + 6 paths.
        assert counts[round(THREE_STAPLE_COEFF, 9)] == 12
        assert counts[round(FIVE_STAPLE_COEFF, 9)] == 24
        assert counts[round(SEVEN_STAPLE_COEFF, 9)] == 48

    def test_total_weight_normalization(self):
        # Sum of all path coefficients = 1 at tree level: the fat link of a
        # unit gauge field is the unit link times (sum of coefficients).
        total = sum(c for c, _ in fattening_paths(0))
        assert total == pytest.approx(
            ONE_LINK_COEFF
            + 6 * THREE_STAPLE_COEFF
            + 24 * FIVE_STAPLE_COEFF
            + 48 * SEVEN_STAPLE_COEFF
            + 6 * LEPAGE_COEFF
        )


class TestFatLinks:
    def test_unit_gauge_fat_links_are_scalar(self, geom44):
        unit = GaugeField.unit(geom44)
        fat = build_fat_links(unit)
        total = sum(c for c, _ in fattening_paths(0))
        assert np.allclose(fat[0], total * np.eye(3), atol=1e-12)

    def test_fat_links_not_unitary(self, weak_gauge):
        fat = build_fat_links(weak_gauge)
        from repro.linalg import su3

        assert su3.unitarity_error(fat) > 1e-3

    def test_tadpole_scaling_unit_gauge(self, geom44):
        # On the unit field every L-link path contributes 1/u0^(L-1).
        unit = GaugeField.unit(geom44)
        u0 = 0.9
        fat = build_fat_links(unit, u0=u0)
        expected = (
            ONE_LINK_COEFF
            + 6 * THREE_STAPLE_COEFF / u0**2
            + 24 * FIVE_STAPLE_COEFF / u0**4
            + 48 * SEVEN_STAPLE_COEFF / u0**6
            + 6 * LEPAGE_COEFF / u0**4
        )
        assert np.allclose(fat[2], expected * np.eye(3), atol=1e-12)


class TestLongLinks:
    def test_unit_gauge(self, geom44):
        unit = GaugeField.unit(geom44)
        long_links = build_long_links(unit)
        assert np.allclose(long_links[1], NAIK_COEFF * np.eye(3), atol=1e-13)

    def test_long_link_is_three_hop_product(self, weak_gauge):
        geom = weak_gauge.geometry
        long_links = build_long_links(weak_gauge)
        u = weak_gauge.data[3]
        ref = u @ geom.shift(u, 3, 1) @ geom.shift(u, 3, 2)
        assert np.allclose(long_links[3], NAIK_COEFF * ref, atol=1e-13)

    def test_tadpole_u0(self, geom44):
        unit = GaugeField.unit(geom44)
        ll = build_long_links(unit, u0=0.8)
        assert np.allclose(ll[0], NAIK_COEFF / 0.64 * np.eye(3), atol=1e-13)


class TestBuildAll:
    def test_bundles_geometry(self, weak_gauge):
        links = build_asqtad_links(weak_gauge)
        assert isinstance(links, AsqtadLinks)
        assert links.geometry == weak_gauge.geometry
        assert links.fat.shape == links.long.shape == weak_gauge.data.shape

    def test_rejects_too_small_lattice(self):
        tiny = GaugeField.unit(Geometry((2, 4, 4, 4)))
        with pytest.raises(ValueError):
            build_asqtad_links(tiny)

    def test_gauge_covariance_of_fat_links(self, weak_gauge, rng):
        """Fat links transform like thin links:
        F_mu(x) -> g(x) F_mu(x) g(x+mu)^+."""
        from repro.linalg import su3

        geom = weak_gauge.geometry
        g = su3.random_su3(geom.shape, rng=rng)
        transformed = np.empty_like(weak_gauge.data)
        for mu in range(4):
            transformed[mu] = (
                g @ weak_gauge.data[mu] @ su3.dagger(geom.shift(g, mu, 1))
            )
        fat_then_transform = np.empty_like(weak_gauge.data)
        fat = build_fat_links(weak_gauge)
        for mu in range(4):
            fat_then_transform[mu] = (
                g @ fat[mu] @ su3.dagger(geom.shift(g, mu, 1))
            )
        transform_then_fat = build_fat_links(GaugeField(geom, transformed))
        assert np.abs(fat_then_transform - transform_then_fat).max() < 1e-10
