"""Pure-gauge HMC: reversibility, energy conservation, exactness."""

import numpy as np
import pytest

from repro.gauge.action import random_algebra_field
from repro.gauge.hmc import PureGaugeHMC, expm_su3
from repro.lattice import GaugeField, Geometry
from repro.linalg import su3


@pytest.fixture(scope="module")
def start():
    geom = Geometry((4, 4, 4, 4))
    return GaugeField.weak(geom, epsilon=0.3, rng=100)


class TestExpm:
    def test_exp_of_algebra_is_group(self, rng):
        p = random_algebra_field((16,), rng)
        u = expm_su3(p)
        assert su3.unitarity_error(u) < 1e-12
        assert su3.determinant_error(u) < 1e-12

    def test_exp_zero_is_identity(self):
        assert np.allclose(expm_su3(np.zeros((3, 3))), np.eye(3))


class TestLeapfrog:
    def test_reversibility(self, start, rng):
        hmc = PureGaugeHMC(beta=5.7, step_size=0.05, n_steps=10, rng_seed=1)
        p0 = random_algebra_field((4,) + start.geometry.shape, rng)
        u1, p1 = hmc.leapfrog(start, p0)
        u2, p2 = hmc.leapfrog(u1, -p1)
        assert np.abs(u2.data - start.data).max() < 1e-12
        assert np.abs(p2 + p0).max() < 1e-12

    def test_energy_violation_scales_as_eps_squared(self, start, rng):
        """Fixed trajectory length, halved step: |dH| drops ~4x."""
        length = 0.4
        dh = {}
        for eps in (0.1, 0.05):
            hmc = PureGaugeHMC(
                beta=5.7, step_size=eps, n_steps=int(length / eps), rng_seed=2
            )
            p0 = random_algebra_field((4,) + start.geometry.shape, hmc.rng)
            h0 = hmc.hamiltonian(start, p0)
            u1, p1 = hmc.leapfrog(start, p0)
            dh[eps] = abs(hmc.hamiltonian(u1, p1) - h0)
        assert dh[0.05] < dh[0.1] / 2.5

    def test_drift_moves_configuration(self, start, rng):
        hmc = PureGaugeHMC(beta=5.7, step_size=0.05, n_steps=10, rng_seed=3)
        p0 = random_algebra_field((4,) + start.geometry.shape, rng)
        u1, _ = hmc.leapfrog(start, p0)
        assert np.abs(u1.data - start.data).max() > 1e-3


class TestTrajectory:
    def test_small_steps_accept(self, start):
        hmc = PureGaugeHMC(beta=5.7, step_size=0.02, n_steps=10, rng_seed=4)
        u = start
        for _ in range(3):
            result = hmc.trajectory(u)
            u = result.gauge
        assert hmc.acceptance_rate >= 2 / 3

    def test_rejection_keeps_configuration(self, start):
        # Gigantic steps: the integrator explodes and Metropolis rejects.
        hmc = PureGaugeHMC(beta=5.7, step_size=1.5, n_steps=3, rng_seed=5)
        result = hmc.trajectory(start)
        if not result.accepted:
            assert result.gauge is start

    def test_output_stays_in_group(self, start):
        hmc = PureGaugeHMC(beta=5.7, step_size=0.05, n_steps=8, rng_seed=6)
        u = hmc.run(start, trajectories=2)
        assert su3.unitarity_error(u.data) < 1e-10

    def test_history_bookkeeping(self, start):
        hmc = PureGaugeHMC(beta=5.7, step_size=0.05, n_steps=5, rng_seed=7)
        hmc.run(start, trajectories=3)
        assert len(hmc.history) == 3
        for rec in hmc.history:
            assert np.isfinite(rec.delta_h)
            assert 0.0 <= rec.plaquette <= 1.0

    @pytest.mark.slow
    def test_hmc_and_heatbath_agree_on_plaquette(self, start):
        """The two exact algorithms must sample the same distribution:
        their thermalized plaquettes at beta=5.7 agree."""
        from repro.gauge.heatbath import HeatbathUpdater

        hmc = PureGaugeHMC(beta=5.7, step_size=0.04, n_steps=12, rng_seed=8)
        u_hmc = hmc.run(start, trajectories=12)
        hb = HeatbathUpdater(beta=5.7, or_steps=1, rng_seed=9)
        u_hb, hist = hb.thermalize(start, sweeps=16, measure_every=4)
        assert u_hmc.plaquette() == pytest.approx(
            float(np.mean(hist[-2:])), abs=0.05
        )
