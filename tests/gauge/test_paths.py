"""Wilson-line path products."""

import numpy as np
import pytest

from repro.gauge.paths import path_displacement, path_product, shift_field
from repro.lattice import GaugeField
from repro.linalg import su3


class TestShiftField:
    def test_matches_geometry_shift(self, geom44, rng):
        a = rng.standard_normal(geom44.shape)
        out = shift_field(geom44, a, (1, 0, 0, 0))
        assert np.array_equal(out, geom44.shift(a, 0, 1))

    def test_multi_direction_offset(self, geom44, rng):
        a = rng.standard_normal(geom44.shape)
        out = shift_field(geom44, a, (1, 0, -1, 2))
        ref = geom44.shift(geom44.shift(geom44.shift(a, 0, 1), 2, -1), 3, 2)
        assert np.array_equal(out, ref)

    def test_zero_offset_identity(self, geom44, rng):
        a = rng.standard_normal(geom44.shape)
        assert shift_field(geom44, a, (0, 0, 0, 0)) is a


class TestPathProduct:
    def test_empty_path_is_identity(self, weak_gauge):
        out = path_product(weak_gauge.geometry, weak_gauge.data, [])
        assert np.allclose(out, np.eye(3))

    def test_single_step_is_link(self, weak_gauge):
        out = path_product(weak_gauge.geometry, weak_gauge.data, [(1, +1)])
        assert np.array_equal(out, weak_gauge.data[1])

    def test_forward_backward_cancels(self, weak_gauge):
        out = path_product(
            weak_gauge.geometry, weak_gauge.data, [(2, +1), (2, -1)]
        )
        assert np.allclose(out, np.eye(3), atol=1e-12)

    def test_backward_forward_cancels(self, weak_gauge):
        out = path_product(
            weak_gauge.geometry, weak_gauge.data, [(3, -1), (3, +1)]
        )
        assert np.allclose(out, np.eye(3), atol=1e-12)

    def test_closed_loop_is_unitary(self, weak_gauge):
        loop = [(0, +1), (1, +1), (0, -1), (1, -1)]
        out = path_product(weak_gauge.geometry, weak_gauge.data, loop)
        assert su3.unitarity_error(out) < 1e-12

    def test_unit_gauge_gives_identity(self, geom44):
        unit = GaugeField.unit(geom44)
        loop = [(0, +1), (1, +1), (2, +1), (0, -1), (1, -1), (2, -1)]
        out = path_product(geom44, unit.data, loop)
        assert np.allclose(out, np.eye(3))

    def test_reversed_path_is_dagger(self, weak_gauge):
        path = [(0, +1), (1, +1), (3, -1)]
        reverse = [(3, +1), (1, -1), (0, -1)]
        a = path_product(weak_gauge.geometry, weak_gauge.data, path)
        b = path_product(weak_gauge.geometry, weak_gauge.data, reverse)
        # The reverse path starts at the endpoint; shift it back to compare.
        b_at_start = shift_field(weak_gauge.geometry, b, (1, 1, 0, -1))
        assert np.allclose(su3.dagger(b_at_start), a, atol=1e-12)

    def test_invalid_sign(self, weak_gauge):
        with pytest.raises(ValueError):
            path_product(weak_gauge.geometry, weak_gauge.data, [(0, 2)])

    def test_wraps_periodically(self, geom44):
        # A straight line across the full extent multiplies all links in a
        # column; on the unit gauge it is the identity.
        unit = GaugeField.unit(geom44)
        out = path_product(geom44, unit.data, [(3, +1)] * 4)
        assert np.allclose(out, np.eye(3))


class TestDisplacement:
    def test_net_displacement(self):
        assert path_displacement([(0, 1), (0, 1), (1, -1)]) == (2, -1, 0, 0)

    def test_staple_displaces_one_step(self):
        staple = [(1, +1), (0, +1), (1, -1)]
        assert path_displacement(staple) == (1, 0, 0, 0)
