"""Landau/Coulomb gauge fixing."""

import numpy as np
import pytest

from repro.gauge.fixing import (
    fix_gauge,
    gauge_divergence,
    gauge_functional,
    random_gauge_transform,
)
from repro.gauge.observables import average_plaquette
from repro.lattice import GaugeField, Geometry
from repro.linalg import su3


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="module")
def weak(geom):
    return GaugeField.weak(geom, epsilon=0.25, rng=3030)


class TestMeasures:
    def test_unit_gauge_is_fixed(self, geom):
        unit = GaugeField.unit(geom)
        assert gauge_functional(unit) == pytest.approx(1.0)
        assert gauge_divergence(unit) == pytest.approx(0.0, abs=1e-14)

    def test_functional_bounded(self, weak):
        assert -1.0 <= gauge_functional(weak) <= 1.0

    def test_divergence_positive_on_random_gauge(self, weak):
        assert gauge_divergence(weak) > 1e-3

    def test_mode_validation(self, weak):
        with pytest.raises(ValueError):
            gauge_functional(weak, "axial")


class TestLandauFixing:
    @pytest.fixture(scope="class")
    def fixed(self, weak):
        return fix_gauge(weak, "landau", max_sweeps=300, theta_tol=1e-7)

    def test_converges(self, fixed):
        assert fixed.converged
        assert fixed.theta < 1e-7

    def test_functional_increased(self, weak, fixed):
        assert fixed.functional > gauge_functional(weak)

    def test_plaquette_invariant(self, weak, fixed):
        """Gauge fixing is a gauge transformation: gauge-invariant
        observables are untouched."""
        assert average_plaquette(fixed.gauge) == pytest.approx(
            average_plaquette(weak), abs=1e-10
        )

    def test_links_stay_in_group(self, fixed):
        assert su3.unitarity_error(fixed.gauge.data) < 1e-9

    def test_transformation_reproduces_fixed_links(self, weak, fixed):
        """U_fixed == g U g^+(x+mu) with the returned g."""
        geom = weak.geometry
        g = fixed.transformation
        for mu in range(4):
            expected = (
                g @ weak.data[mu] @ su3.dagger(geom.shift(g, mu, 1))
            )
            assert np.abs(expected - fixed.gauge.data[mu]).max() < 1e-8

    def test_fixing_is_gauge_orbit_invariant(self, weak, fixed, rng):
        """Fixing a randomly gauge-rotated copy lands on the same
        functional value (the orbit has one maximum up to Gribov copies,
        which this smooth configuration does not exhibit)."""
        rotated, _ = random_gauge_transform(weak, rng=rng)
        refixed = fix_gauge(rotated, "landau", max_sweeps=300, theta_tol=1e-7)
        assert refixed.functional == pytest.approx(fixed.functional, abs=1e-5)


class TestCoulombFixing:
    def test_converges_faster_than_landau(self, weak):
        coulomb = fix_gauge(weak, "coulomb", max_sweeps=300, theta_tol=1e-7)
        assert coulomb.converged
        assert coulomb.theta < 1e-7

    def test_only_spatial_condition_enforced(self, weak):
        out = fix_gauge(weak, "coulomb", max_sweeps=300, theta_tol=1e-7)
        # The Landau (4-direction) divergence generally stays nonzero.
        assert gauge_divergence(out.gauge, "coulomb") < 1e-7
        assert gauge_divergence(out.gauge, "landau") > 1e-6


class TestRandomTransform:
    def test_preserves_plaquette(self, weak, rng):
        rotated, g = random_gauge_transform(weak, rng=rng)
        assert average_plaquette(rotated) == pytest.approx(
            average_plaquette(weak), abs=1e-10
        )
        assert su3.unitarity_error(rotated.data) < 1e-10
        assert np.abs(rotated.data - weak.data).max() > 0.1
