"""Wilson gauge action, staples, force, and algebra sampling."""

import numpy as np
import pytest

from repro.gauge.action import (
    ALGEBRA_BASIS,
    algebra_norm2,
    gauge_force,
    random_algebra_field,
    staple_sum_for_link,
    traceless_antihermitian,
    wilson_gauge_action,
)
from repro.gauge.hmc import expm_su3
from repro.lattice import GaugeField, Geometry


class TestAction:
    def test_free_field_action_zero(self, geom44):
        assert wilson_gauge_action(GaugeField.unit(geom44), 6.0) == pytest.approx(0.0)

    def test_action_positive_on_rough_field(self, hot_gauge):
        assert wilson_gauge_action(hot_gauge, 6.0) > 0

    def test_action_linear_in_beta(self, weak_gauge):
        s1 = wilson_gauge_action(weak_gauge, 1.0)
        s3 = wilson_gauge_action(weak_gauge, 3.0)
        assert s3 == pytest.approx(3 * s1)

    def test_action_scale(self, geom44, hot_gauge):
        # 0 <= S <= 2 * beta * n_plaq (since -1 <= Re tr P / 3 <= 1).
        n_plaq = 6 * geom44.volume
        s = wilson_gauge_action(hot_gauge, 1.0)
        assert 0 <= s <= 2 * n_plaq


class TestStaples:
    def test_unit_gauge_staples(self, geom44):
        k = staple_sum_for_link(GaugeField.unit(geom44), 0)
        assert np.allclose(k, 6 * np.eye(3))

    def test_action_from_staples(self, weak_gauge):
        """sum_mu Re tr(U_mu K_mu) counts every plaquette four times."""
        total = 0.0
        for mu in range(4):
            k = staple_sum_for_link(weak_gauge, mu)
            total += float(
                np.trace(weak_gauge.data[mu] @ k, axis1=-2, axis2=-1).real.sum()
            )
        from repro.gauge.observables import average_plaquette

        n_plaq = 6 * weak_gauge.geometry.volume
        expected = 4 * 3 * n_plaq * average_plaquette(weak_gauge)
        assert total == pytest.approx(expected, rel=1e-10)


class TestForce:
    def test_force_is_traceless_antihermitian(self, weak_gauge):
        f = gauge_force(weak_gauge, 5.7)
        assert np.abs(f + np.conj(np.swapaxes(f, -1, -2))).max() < 1e-12
        assert np.abs(np.trace(f, axis1=-2, axis2=-1)).max() < 1e-12

    def test_force_vanishes_on_free_field(self, geom44):
        f = gauge_force(GaugeField.unit(geom44), 5.7)
        assert np.abs(f).max() < 1e-12

    def test_force_matches_numerical_derivative(self, weak_gauge, rng):
        """dS/dt along a random algebra flow equals -Re tr(D F)."""
        beta = 5.7
        f = gauge_force(weak_gauge, beta)
        d = random_algebra_field((4,) + weak_gauge.geometry.shape, rng)
        eps = 1e-5
        up = GaugeField(weak_gauge.geometry, expm_su3(eps * d) @ weak_gauge.data)
        dn = GaugeField(weak_gauge.geometry, expm_su3(-eps * d) @ weak_gauge.data)
        numeric = (
            wilson_gauge_action(up, beta) - wilson_gauge_action(dn, beta)
        ) / (2 * eps)
        analytic = -float(np.sum(np.trace(d @ f, axis1=-2, axis2=-1)).real)
        assert numeric == pytest.approx(analytic, rel=1e-6)


class TestAlgebra:
    def test_basis_orthonormal(self):
        for a in range(8):
            for b in range(8):
                ip = -np.trace(ALGEBRA_BASIS[a] @ ALGEBRA_BASIS[b]).real
                assert ip == pytest.approx(1.0 if a == b else 0.0, abs=1e-12)

    def test_projection_idempotent(self, rng):
        w = rng.standard_normal((5, 3, 3)) + 1j * rng.standard_normal((5, 3, 3))
        p = traceless_antihermitian(w)
        assert np.allclose(traceless_antihermitian(p), 2 * p)  # TA(P)=P-(-P)=2P

    def test_momenta_statistics(self, rng):
        p = random_algebra_field((500,), rng)
        # 8 unit Gaussians per link: <|P|^2> = 8.
        mean = (np.abs(p) ** 2).sum() / 500
        assert mean == pytest.approx(8.0, rel=0.15)
        assert algebra_norm2(p) == pytest.approx((np.abs(p) ** 2).sum() / 2)

    def test_momenta_in_algebra(self, rng):
        p = random_algebra_field((10,), rng)
        assert np.abs(p + np.conj(np.swapaxes(p, -1, -2))).max() < 1e-12
        assert np.abs(np.trace(p, axis1=-2, axis2=-1)).max() < 1e-12
