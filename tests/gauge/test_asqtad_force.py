"""The asqtad fermion force (fattening chain rule)."""

import numpy as np
import pytest

from repro.dirac import AsqtadOperator, StaggeredNormalOperator
from repro.gauge.action import random_algebra_field, traceless_antihermitian
from repro.gauge.asqtad_force import (
    accumulate_path_derivative,
    asqtad_fermion_force,
)
from repro.gauge.dynamical import AsqtadPseudofermionAction, DynamicalHMC
from repro.gauge.hmc import expm_su3
from repro.gauge.paths import path_product
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.solvers import cg
from repro.solvers.space import STAGGERED_SPACE


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.3, rng=1001)
    pf = AsqtadPseudofermionAction(mass=0.5, tol=1e-12)
    rng = np.random.default_rng(2)
    phi = pf.refresh(gauge, rng)
    return geom, gauge, pf, phi


class TestPathDerivative:
    def _numeric_check(self, geom, gauge, path, weight, seed, rng):
        """Generic validator: d(w * Re sum tr(path G))/dt vs accumulated
        bracket, along a random algebra direction."""
        bracket = np.zeros_like(gauge.data)
        accumulate_path_derivative(geom, gauge.data, path, weight, seed,
                                   bracket)
        d = random_algebra_field((4,) + geom.shape, rng)
        eps = 1e-6

        def value(links):
            g2 = GaugeField(geom, links)
            prod = path_product(geom, g2.data, path)
            return weight * float(
                np.trace(prod @ seed, axis1=-2, axis2=-1).sum().real
            )

        up = expm_su3(eps * d) @ gauge.data
        dn = expm_su3(-eps * d) @ gauge.data
        numeric = (value(up) - value(dn)) / (2 * eps)
        analytic = float(
            np.sum(np.trace(d @ bracket, axis1=-2, axis2=-1)).real
        )
        assert numeric == pytest.approx(analytic, rel=1e-5, abs=1e-8)

    def test_single_link_path(self, setup, rng):
        geom, gauge, pf, phi = setup
        seed = random_algebra_field(geom.shape, rng)  # any 3x3 field works
        self._numeric_check(geom, gauge, [(0, +1)], 1.0, seed, rng)

    def test_staple_path(self, setup, rng):
        geom, gauge, pf, phi = setup
        seed = random_algebra_field(geom.shape, rng)
        self._numeric_check(
            geom, gauge, [(1, +1), (0, +1), (1, -1)], -0.25, seed, rng
        )

    def test_naik_path(self, setup, rng):
        geom, gauge, pf, phi = setup
        seed = random_algebra_field(geom.shape, rng)
        self._numeric_check(geom, gauge, [(3, +1)] * 3, 0.7, seed, rng)

    def test_seven_link_path(self, setup, rng):
        geom, gauge, pf, phi = setup
        seed = random_algebra_field(geom.shape, rng)
        path = [(1, +1), (2, -1), (3, +1), (0, +1), (3, -1), (2, +1), (1, -1)]
        self._numeric_check(geom, gauge, path, 1.0 / 384, seed, rng)


class TestAsqtadForce:
    def test_force_in_algebra(self, setup):
        geom, gauge, pf, phi = setup
        op, x = pf.solve(gauge, phi)
        f = asqtad_fermion_force(gauge, x, op.apply(x), op.eta)
        assert np.abs(f + np.conj(np.swapaxes(f, -1, -2))).max() < 1e-12
        assert np.abs(np.trace(f, axis1=-2, axis2=-1)).max() < 1e-12

    def test_force_matches_numerical_derivative(self, setup):
        """The full chain rule over all 85 fattening paths + Naik against
        the numerical derivative of the pseudofermion action."""
        geom, gauge, pf, phi = setup
        f = pf.force(gauge, phi)
        rng = np.random.default_rng(3)
        d = random_algebra_field((4,) + geom.shape, rng)
        eps = 1e-5
        up = GaugeField(geom, expm_su3(eps * d) @ gauge.data)
        dn = GaugeField(geom, expm_su3(-eps * d) @ gauge.data)
        numeric = (pf.action(up, phi) - pf.action(dn, phi)) / (2 * eps)
        analytic = -float(np.sum(np.trace(d @ f, axis1=-2, axis2=-1)).real)
        assert numeric == pytest.approx(analytic, rel=1e-6)

    def test_tadpole_force_consistent(self, setup):
        """u0 != 1 rescales paths and the force must track the action."""
        geom, gauge, _, _ = setup
        pf = AsqtadPseudofermionAction(mass=0.5, u0=0.9, tol=1e-12)
        rng = np.random.default_rng(4)
        phi = pf.refresh(gauge, rng)
        f = pf.force(gauge, phi)
        d = random_algebra_field((4,) + geom.shape, rng)
        eps = 1e-5
        up = GaugeField(geom, expm_su3(eps * d) @ gauge.data)
        dn = GaugeField(geom, expm_su3(-eps * d) @ gauge.data)
        numeric = (pf.action(up, phi) - pf.action(dn, phi)) / (2 * eps)
        analytic = -float(np.sum(np.trace(d @ f, axis1=-2, axis2=-1)).real)
        assert numeric == pytest.approx(analytic, rel=1e-6)


@pytest.mark.slow
class TestAsqtadHMC:
    def test_reversibility(self, setup):
        geom, gauge, pf, phi = setup
        hmc = DynamicalHMC(
            beta=5.5, mass=0.5, step_size=0.05, n_steps=4,
            discretization="asqtad", rng_seed=5, solver_tol=1e-11,
        )
        rng = np.random.default_rng(6)
        p0 = random_algebra_field((4,) + geom.shape, rng)
        u1, p1 = hmc.leapfrog(gauge, p0, phi)
        u2, p2 = hmc.leapfrog(u1, -p1, phi)
        assert np.abs(u2.data - gauge.data).max() < 1e-9
        assert np.abs(p2 + p0).max() < 1e-9

    def test_trajectory_runs(self, setup):
        geom, gauge, pf, phi = setup
        hmc = DynamicalHMC(
            beta=5.5, mass=0.5, step_size=0.02, n_steps=4,
            discretization="asqtad", rng_seed=7, solver_tol=1e-10,
        )
        result = hmc.trajectory(gauge)
        assert np.isfinite(result.delta_h)
        assert abs(result.delta_h) < 1.0  # small steps: good integration

    def test_unknown_discretization_rejected(self):
        with pytest.raises(ValueError):
            DynamicalHMC(beta=5.5, mass=0.5, discretization="domain-wall")
