"""APE smearing."""

import numpy as np
import pytest

from repro.gauge.observables import average_plaquette
from repro.gauge.smear import ape_smear, staple_sum
from repro.lattice import GaugeField
from repro.linalg import su3


class TestStapleSum:
    def test_unit_gauge_staples(self, geom44):
        unit = GaugeField.unit(geom44)
        s = staple_sum(unit, 0)
        assert np.allclose(s, 6 * np.eye(3))

    def test_shape(self, weak_gauge):
        s = staple_sum(weak_gauge, 3)
        assert s.shape == weak_gauge.geometry.shape + (3, 3)


class TestApeSmear:
    def test_unit_gauge_fixed_point(self, geom44):
        unit = GaugeField.unit(geom44)
        out = ape_smear(unit, alpha=0.5, iterations=2)
        assert np.abs(out.data - unit.data).max() < 1e-12

    def test_raises_plaquette(self, weak_gauge):
        before = average_plaquette(weak_gauge)
        after = average_plaquette(ape_smear(weak_gauge, alpha=0.5))
        assert after > before

    def test_iterations_compose(self, weak_gauge):
        once_twice = ape_smear(ape_smear(weak_gauge, 0.4), 0.4)
        both = ape_smear(weak_gauge, 0.4, iterations=2)
        assert np.abs(once_twice.data - both.data).max() < 1e-10

    def test_output_in_group(self, weak_gauge):
        out = ape_smear(weak_gauge, alpha=0.6)
        assert su3.unitarity_error(out.data) < 1e-10

    def test_alpha_zero_projects_only(self, weak_gauge):
        out = ape_smear(weak_gauge, alpha=0.0)
        assert np.abs(out.data - weak_gauge.data).max() < 1e-10

    def test_alpha_validation(self, weak_gauge):
        with pytest.raises(ValueError):
            ape_smear(weak_gauge, alpha=1.5)

    def test_original_untouched(self, weak_gauge):
        before = weak_gauge.data.copy()
        ape_smear(weak_gauge, alpha=0.5)
        assert np.array_equal(weak_gauge.data, before)
