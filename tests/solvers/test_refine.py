"""The two-stage asqtad strategy: multi-shift + sequential refinement."""

import numpy as np
import pytest

from repro.precision import SINGLE
from repro.solvers import multishift_cg, multishift_with_refinement
from repro.solvers.space import STAGGERED_SPACE

SHIFTS = [0.0, 0.05, 0.25]


@pytest.fixture()
def factory(staggered_normal):
    def make(sigma):
        return staggered_normal.shifted(sigma).apply

    return make


class TestMultishiftWithRefinement:
    def test_reaches_tight_tolerance(self, factory, b_staggered):
        """Stage 1 runs in single precision (cannot reach 1e-11); stage 2
        refinement must close the gap — Sec. 8.2's whole point."""
        res = multishift_with_refinement(
            factory, b_staggered, SHIFTS, tol=1e-11, space=STAGGERED_SPACE
        )
        assert res.converged
        assert all(r < 1e-11 for r in res.residuals)

    def test_every_shift_solved(self, factory, b_staggered):
        res = multishift_with_refinement(
            factory, b_staggered, SHIFTS, tol=1e-10, space=STAGGERED_SPACE
        )
        for sigma, x in zip(SHIFTS, res.solutions):
            r = b_staggered - factory(sigma)(x)
            rel = np.linalg.norm(r) / np.linalg.norm(b_staggered)
            assert rel < 1e-10, sigma

    def test_refinement_cheaper_than_scratch(self, factory, b_staggered):
        """The single-precision seed must save refinement iterations
        compared to refining from zero."""
        seeded = multishift_with_refinement(
            factory, b_staggered, SHIFTS, tol=1e-10, space=STAGGERED_SPACE
        )
        from repro.solvers import mixed_precision_cg

        scratch_iters = 0
        for sigma in SHIFTS:
            r = mixed_precision_cg(
                factory(sigma), b_staggered, SINGLE, tol=1e-10,
                space=STAGGERED_SPACE,
            )
            scratch_iters += r.iterations
        seeded_refine_iters = sum(r.iterations for r in seeded.refinements)
        assert seeded_refine_iters < scratch_iters

    def test_stage1_result_exposed(self, factory, b_staggered):
        res = multishift_with_refinement(
            factory, b_staggered, SHIFTS, tol=1e-10, space=STAGGERED_SPACE
        )
        assert res.multishift.iterations > 0
        assert len(res.refinements) == len(SHIFTS)
        assert res.total_matvecs > res.multishift.matvecs

    def test_shifts_preserved(self, factory, b_staggered):
        res = multishift_with_refinement(
            factory, b_staggered, SHIFTS, tol=1e-9, space=STAGGERED_SPACE
        )
        assert res.shifts == SHIFTS
