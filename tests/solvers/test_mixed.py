"""Mixed-precision defect correction (reliable updates)."""

import numpy as np
import pytest

from repro.precision import HALF, SINGLE
from repro.solvers import mixed_precision_bicgstab, mixed_precision_cg
from repro.solvers.base import PrecisionWrappedOperator
from repro.solvers.space import STAGGERED_SPACE


class TestMixedBiCGstab:
    def test_single_inner_reaches_double_accuracy(self, wilson, b_wilson):
        """The central mixed-precision claim: low-precision iterations +
        high-precision corrections give full accuracy (ref. [3])."""
        res = mixed_precision_bicgstab(
            wilson.apply, b_wilson, SINGLE, tol=1e-10
        )
        assert res.converged
        assert res.residual < 1e-10
        assert res.restarts >= 2  # it really did cycle

    def test_half_inner(self, wilson, b_wilson):
        res = mixed_precision_bicgstab(
            wilson.apply, b_wilson, HALF, tol=1e-8, inner_tol=1e-2
        )
        assert res.converged
        assert res.residual < 1e-8

    def test_more_cycles_for_lower_precision(self, wilson, b_wilson):
        hi = mixed_precision_bicgstab(wilson.apply, b_wilson, SINGLE, tol=1e-9)
        lo = mixed_precision_bicgstab(
            wilson.apply, b_wilson, HALF, tol=1e-9, inner_tol=1e-2
        )
        assert lo.restarts >= hi.restarts


class TestMixedCG:
    def test_staggered_normal_system(self, staggered_normal, b_staggered):
        res = mixed_precision_cg(
            staggered_normal.apply, b_staggered, SINGLE, tol=1e-10,
            space=STAGGERED_SPACE,
        )
        assert res.converged
        assert res.residual < 1e-10

    def test_warm_start(self, staggered_normal, b_staggered):
        first = mixed_precision_cg(
            staggered_normal.apply, b_staggered, SINGLE, tol=1e-6,
            space=STAGGERED_SPACE,
        )
        refined = mixed_precision_cg(
            staggered_normal.apply, b_staggered, SINGLE, x0=first.x,
            tol=1e-11, space=STAGGERED_SPACE,
        )
        assert refined.converged
        assert refined.iterations <= first.iterations + 50

    def test_zero_rhs(self, staggered_normal, b_staggered):
        res = mixed_precision_cg(
            staggered_normal.apply, np.zeros_like(b_staggered), SINGLE
        )
        assert res.converged


class TestPrecisionWrappedOperator:
    def test_none_is_transparent(self, wilson, b_wilson):
        wrapped = PrecisionWrappedOperator(wilson.apply)
        assert np.array_equal(wrapped(b_wilson), wilson.apply(b_wilson))

    def test_single_rounds(self, wilson, b_wilson):
        wrapped = PrecisionWrappedOperator(wilson.apply, SINGLE)
        out = wrapped(b_wilson)
        assert out.dtype == np.complex64
        ref = wilson.apply(b_wilson)
        assert np.abs(out - ref).max() < 1e-4 * np.abs(ref).max()

    def test_half_rounds_more(self, wilson, b_wilson):
        half = PrecisionWrappedOperator(wilson.apply, HALF)(b_wilson)
        single = PrecisionWrappedOperator(wilson.apply, SINGLE)(b_wilson)
        ref = wilson.apply(b_wilson)
        assert np.abs(half - ref).max() > np.abs(single - ref).max()
