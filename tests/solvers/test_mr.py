"""Minimum-residual smoother (the Schwarz block solver)."""

import numpy as np
import pytest

from repro.solvers import mr
from repro.util.counters import tally


class TestMR:
    def test_fixed_step_count(self, wilson, b_wilson):
        res = mr(wilson.apply, b_wilson, steps=7)
        assert res.matvecs == 7
        assert res.converged  # fixed-step: always reports done

    def test_residual_decreases(self, wilson, b_wilson):
        res = mr(wilson.apply, b_wilson, steps=10)
        assert res.residual_history[-1] < 1.0

    def test_monotone_residual(self, wilson, b_wilson):
        """MR minimizes the residual at each step, so the iterated
        residual norm is non-increasing."""
        res = mr(wilson.apply, b_wilson, steps=12)
        hist = np.array(res.residual_history)
        assert np.all(np.diff(hist) <= 1e-12)

    def test_more_steps_better(self, wilson, b_wilson):
        r3 = mr(wilson.apply, b_wilson, steps=3).residual
        r12 = mr(wilson.apply, b_wilson, steps=12).residual
        assert r12 < r3

    def test_initial_guess(self, wilson, b_wilson):
        warm = mr(wilson.apply, b_wilson, steps=5)
        cont = mr(wilson.apply, b_wilson, steps=5, x0=warm.x)
        assert cont.residual < warm.residual

    def test_underrelaxation(self, wilson, b_wilson):
        """omega < 1 damps each step; it must still reduce the residual."""
        res = mr(wilson.apply, b_wilson, steps=10, omega=0.85)
        assert res.residual < 1.0

    def test_identity_solves_in_one_step(self, b_wilson):
        res = mr(lambda x: x, b_wilson, steps=1)
        assert np.allclose(res.x, b_wilson)
        assert res.residual < 1e-14

    def test_zero_steps_returns_zero(self, wilson, b_wilson):
        res = mr(wilson.apply, b_wilson, steps=0)
        assert not np.any(res.x)

    def test_local_reductions_inside_domain_scope(self, wilson, b_wilson):
        from repro.util.counters import domain_local

        with tally() as t:
            with domain_local():
                mr(wilson.apply, b_wilson, steps=4)
        assert t.reductions == 0
        assert t.local_reductions > 0
