"""Flexible preconditioned CG (Polak-Ribiere variant) and its batched
multi-RHS twin."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dd import MultiSplittingPreconditioner
from repro.multigpu import BlockPartition
from repro.solvers import batched_pcg, cg, pcg
from repro.solvers.space import STAGGERED_SPACE, BatchedArraySpace

BATCHED_STAGGERED_SPACE = BatchedArraySpace(site_axes=1)


@pytest.fixture(scope="module")
def precond(staggered_normal):
    part = BlockPartition(
        staggered_normal.geometry, ProcessGrid((1, 1, 2, 2))
    )
    return MultiSplittingPreconditioner(
        staggered_normal, part, overlap=1, mr_steps=6, precision=None
    )


class TestPCG:
    def test_no_preconditioner_delegates_to_cg(self, staggered_normal,
                                               b_staggered):
        """pcg(preconditioner=None) must be plain CG, bit for bit — the
        "auto" request path relies on this identity."""
        plain = cg(staggered_normal.apply, b_staggered, tol=1e-9,
                   maxiter=500, space=STAGGERED_SPACE)
        res = pcg(staggered_normal.apply, b_staggered, tol=1e-9,
                  maxiter=500, space=STAGGERED_SPACE)
        assert np.array_equal(res.x, plain.x)
        assert tuple(res.residual_history) == tuple(plain.residual_history)

    def test_preconditioned_converges_in_fewer_iterations(
        self, staggered_normal, b_staggered, precond
    ):
        plain = cg(staggered_normal.apply, b_staggered, tol=1e-9,
                   maxiter=500, space=STAGGERED_SPACE)
        pre = pcg(staggered_normal.apply, b_staggered,
                  preconditioner=precond, tol=1e-9, maxiter=500,
                  space=STAGGERED_SPACE)
        assert plain.converged and pre.converged
        assert pre.iterations < plain.iterations

    def test_true_residual_verified(self, staggered_normal, b_staggered,
                                    precond):
        res = pcg(staggered_normal.apply, b_staggered,
                  preconditioner=precond, tol=1e-9, maxiter=500,
                  space=STAGGERED_SPACE)
        r = b_staggered - staggered_normal.apply(res.x)
        rel = np.linalg.norm(r) / np.linalg.norm(b_staggered)
        assert rel == pytest.approx(res.residual, rel=1e-4)

    def test_breakdown_reports_not_converged(self, staggered_normal,
                                             b_staggered):
        """An indefinite 'preconditioner' (negated identity) drives
        rz < 0; pcg must stop honestly instead of dividing by it."""
        res = pcg(staggered_normal.apply, b_staggered,
                  preconditioner=lambda r: -r, tol=1e-9, maxiter=50,
                  space=STAGGERED_SPACE)
        assert not res.converged

    def test_maxiter_respected(self, staggered_normal, b_staggered,
                               precond):
        res = pcg(staggered_normal.apply, b_staggered,
                  preconditioner=precond, tol=1e-14, maxiter=3,
                  space=STAGGERED_SPACE)
        assert not res.converged
        assert res.iterations == 3


class TestBatchedPCG:
    def test_matches_per_lane_scalar(self, staggered_normal, geom,
                                     precond):
        from repro.lattice import SpinorField

        rhs = np.stack([
            SpinorField.random(geom, nspin=1, rng=60 + i).data
            for i in range(3)
        ])
        batched = batched_pcg(
            staggered_normal.apply, rhs, preconditioner=precond,
            tol=1e-9, maxiter=500, space=BATCHED_STAGGERED_SPACE,
        )
        assert np.all(batched.converged)
        for lane in range(rhs.shape[0]):
            single = pcg(staggered_normal.apply, rhs[lane],
                         preconditioner=precond, tol=1e-9, maxiter=500,
                         space=STAGGERED_SPACE)
            rel = (np.linalg.norm(batched.x[lane] - single.x)
                   / np.linalg.norm(single.x))
            assert rel < 1e-7, lane

    def test_no_preconditioner_path(self, staggered_normal, geom):
        from repro.lattice import SpinorField

        rhs = np.stack([
            SpinorField.random(geom, nspin=1, rng=70 + i).data
            for i in range(2)
        ])
        res = batched_pcg(staggered_normal.apply, rhs, tol=1e-9,
                          maxiter=500, space=BATCHED_STAGGERED_SPACE)
        assert np.all(res.converged)
