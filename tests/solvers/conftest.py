"""Shared solver-test fixtures: small well-conditioned systems."""

import numpy as np
import pytest

from repro.dirac import (
    AsqtadOperator,
    NaiveStaggeredOperator,
    StaggeredNormalOperator,
    WilsonCloverOperator,
)
from repro.lattice import GaugeField, Geometry, SpinorField


@pytest.fixture(scope="package")
def geom():
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="package")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.25, rng=321)


@pytest.fixture(scope="package")
def wilson(gauge):
    return WilsonCloverOperator(gauge, mass=0.2, csw=1.0)


@pytest.fixture(scope="package")
def staggered_normal(gauge):
    op = NaiveStaggeredOperator(gauge, mass=0.15)
    return StaggeredNormalOperator(op)


@pytest.fixture()
def b_wilson(geom, rng):
    return SpinorField.random(geom, rng=rng).data


@pytest.fixture()
def b_staggered(geom, rng):
    return SpinorField.random(geom, nspin=1, rng=rng).data
