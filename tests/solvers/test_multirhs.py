"""Batched multi-RHS Krylov solvers.

The contract: each right-hand side in a batch follows the same iteration
it would follow alone (to rounding) — identical per-lane iteration
counts and matching solutions for CG/BiCGstab/MR.  Batched GCR shares
its restart points across the batch, so there the contract is weaker:
every lane's final residual meets the tolerance.
"""

import numpy as np
import pytest

from repro.dirac.staggered import AsqtadOperator, StaggeredNormalOperator
from repro.dirac.wilson import WilsonCloverOperator
from repro.gauge.asqtad import build_asqtad_links
from repro.lattice import SpinorField
from repro.precision import SINGLE
from repro.solvers import (
    BatchedArraySpace,
    batched_bicgstab,
    batched_cg,
    batched_defect_correction,
    batched_gcr,
    batched_mr,
    bicgstab,
    cg,
    mr,
)
from repro.solvers.space import STAGGERED_SPACE, WILSON_SPACE
from repro.util.counters import tally

B = 3
TOL = 1e-8


@pytest.fixture()
def wilson_op(weak_gauge):
    return WilsonCloverOperator(weak_gauge, mass=0.2, csw=1.0)


@pytest.fixture()
def normal_op(weak_gauge):
    links = build_asqtad_links(weak_gauge)
    return StaggeredNormalOperator(AsqtadOperator(links, mass=0.2))


@pytest.fixture()
def wilson_batch(geom44):
    return np.stack(
        [SpinorField.random(geom44, rng=300 + i).data for i in range(B)]
    )


@pytest.fixture()
def staggered_batch(geom44):
    return np.stack(
        [SpinorField.random(geom44, nspin=1, rng=400 + i).data for i in range(B)]
    )


class TestBatchedCG:
    def test_matches_scalar_per_lane(self, normal_op, staggered_batch):
        res = batched_cg(
            normal_op.apply, staggered_batch, tol=TOL,
            space=BatchedArraySpace(site_axes=1),
        )
        assert res.all_converged
        for i in range(B):
            ref = cg(normal_op.apply, staggered_batch[i], tol=TOL,
                     space=STAGGERED_SPACE)
            assert res.iterations[i] == ref.iterations
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-10

    def test_one_reduction_serves_all_lanes(self, normal_op, staggered_batch):
        with tally() as tb:
            batched_cg(normal_op.apply, staggered_batch, tol=TOL,
                       space=BatchedArraySpace(site_axes=1))
        scalar_total = 0
        for i in range(B):
            with tally() as t1:
                cg(normal_op.apply, staggered_batch[i], tol=TOL,
                   space=STAGGERED_SPACE)
            scalar_total += t1.reductions
        # The batched solve needs about one lane's worth of reductions
        # (it runs until the slowest lane converges), not B lanes' worth.
        assert tb.reductions <= scalar_total // B + 5
        assert tb.reductions < scalar_total


class TestBatchedBiCGstab:
    def test_matches_scalar_per_lane(self, wilson_op, wilson_batch):
        res = batched_bicgstab(
            wilson_op.apply, wilson_batch, tol=TOL, space=BatchedArraySpace()
        )
        assert res.all_converged
        for i in range(B):
            ref = bicgstab(wilson_op.apply, wilson_batch[i], tol=TOL,
                           space=WILSON_SPACE)
            assert res.iterations[i] == ref.iterations
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-9

    def test_zero_lane_is_benign(self, wilson_op, wilson_batch):
        batch = wilson_batch.copy()
        batch[1] = 0.0
        res = batched_bicgstab(
            wilson_op.apply, batch, tol=TOL, space=BatchedArraySpace()
        )
        assert res.all_converged
        assert np.all(res.x[1] == 0.0)
        assert res.iterations[1] == 0


class TestBatchedMR:
    def test_matches_scalar_per_lane(self, wilson_op, wilson_batch):
        res = batched_mr(
            wilson_op.apply, wilson_batch, steps=8, omega=0.9,
            space=BatchedArraySpace(),
        )
        for i in range(B):
            ref = mr(wilson_op.apply, wilson_batch[i], steps=8, omega=0.9,
                     space=WILSON_SPACE)
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-12


class TestBatchedGCR:
    def test_all_lanes_meet_tolerance(self, wilson_op, wilson_batch):
        res = batched_gcr(
            wilson_op.apply, wilson_batch, tol=1e-7, kmax=8,
            space=BatchedArraySpace(),
        )
        assert res.all_converged
        for i in range(B):
            r = wilson_batch[i] - wilson_op.apply(res.x[i])
            rel = np.linalg.norm(r) / np.linalg.norm(wilson_batch[i])
            assert rel < 1e-6


class TestBatchedDefectCorrection:
    def test_mixed_precision_refinement(self, wilson_op, wilson_batch):
        res = batched_defect_correction(
            wilson_op.apply, wilson_batch, batched_bicgstab, SINGLE,
            tol=1e-9, space=BatchedArraySpace(),
        )
        assert res.all_converged
        assert res.restarts >= 1
        assert np.all(res.residuals < 1e-9)


class TestBatchedResult:
    def test_split_produces_scalar_results(self, wilson_op, wilson_batch):
        res = batched_bicgstab(
            wilson_op.apply, wilson_batch, tol=TOL, space=BatchedArraySpace()
        )
        parts = res.split()
        assert len(parts) == B
        for i, p in enumerate(parts):
            assert p.converged
            assert p.iterations == res.iterations[i]
            assert np.array_equal(p.x, res.x[i])
            assert p.residual == pytest.approx(float(res.residuals[i]))
