"""Conjugate gradients and CGNR."""

import numpy as np
import pytest

from repro.solvers import cg, cgnr
from repro.solvers.space import STAGGERED_SPACE
from repro.util.counters import tally


class TestCG:
    def test_converges(self, staggered_normal, b_staggered):
        res = cg(
            staggered_normal.apply, b_staggered, tol=1e-9, maxiter=500,
            space=STAGGERED_SPACE,
        )
        assert res.converged
        assert res.residual < 1e-8

    def test_true_residual_verified(self, staggered_normal, b_staggered):
        res = cg(staggered_normal.apply, b_staggered, tol=1e-9, maxiter=500,
                 space=STAGGERED_SPACE)
        r = b_staggered - staggered_normal.apply(res.x)
        assert np.linalg.norm(r) / np.linalg.norm(b_staggered) == pytest.approx(
            res.residual, rel=1e-6
        )

    def test_zero_rhs(self, staggered_normal, b_staggered):
        res = cg(staggered_normal.apply, np.zeros_like(b_staggered))
        assert res.converged and res.iterations == 0
        assert not np.any(res.x)

    def test_initial_guess_exact_solution(self, staggered_normal, b_staggered):
        sol = cg(staggered_normal.apply, b_staggered, tol=1e-10, maxiter=500,
                 space=STAGGERED_SPACE).x
        res = cg(staggered_normal.apply, b_staggered, x0=sol, tol=1e-8,
                 space=STAGGERED_SPACE)
        assert res.converged and res.iterations == 0

    def test_maxiter_respected(self, staggered_normal, b_staggered):
        res = cg(staggered_normal.apply, b_staggered, tol=1e-12, maxiter=3,
                 space=STAGGERED_SPACE)
        assert not res.converged
        assert res.iterations == 3

    def test_residual_history_decreases_overall(self, staggered_normal, b_staggered):
        res = cg(staggered_normal.apply, b_staggered, tol=1e-9, maxiter=500,
                 space=STAGGERED_SPACE)
        assert res.residual_history[0] == pytest.approx(1.0)
        assert res.residual_history[-1] < 1e-8

    def test_monotone_energy_norm_proxy(self, staggered_normal, b_staggered):
        # CG residuals needn't be monotone, but the last should beat the first
        # by orders of magnitude and the tail should be small.
        res = cg(staggered_normal.apply, b_staggered, tol=1e-9, maxiter=500,
                 space=STAGGERED_SPACE)
        hist = res.residual_history
        assert min(hist) == pytest.approx(hist[-1], rel=10)

    def test_reduction_accounting(self, staggered_normal, b_staggered):
        with tally() as t:
            res = cg(staggered_normal.apply, b_staggered, tol=1e-9,
                     maxiter=500, space=STAGGERED_SPACE)
        # 2 reductions per iteration plus setup/final checks.
        assert t.reductions >= 2 * res.iterations

    def test_indefinite_breakdown_detected(self, b_staggered):
        res = cg(lambda x: -x, b_staggered, tol=1e-10, maxiter=10,
                 space=STAGGERED_SPACE)
        assert not res.converged


class TestCGNR:
    def test_solves_nonhermitian_system(self, wilson, b_wilson):
        res = cgnr(wilson, b_wilson, tol=1e-8, maxiter=2000)
        assert res.converged
        r = b_wilson - wilson.apply(res.x)
        assert np.linalg.norm(r) / np.linalg.norm(b_wilson) < 1e-6

    def test_residual_is_original_system(self, wilson, b_wilson):
        res = cgnr(wilson, b_wilson, tol=1e-8, maxiter=2000)
        r = b_wilson - wilson.apply(res.x)
        assert res.residual == pytest.approx(
            np.linalg.norm(r) / np.linalg.norm(b_wilson), rel=1e-6
        )
