"""Lanczos spectrum estimation and the mass/conditioning relation."""

import math

import numpy as np
import pytest

from repro.dirac import NaiveStaggeredOperator, StaggeredNormalOperator, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.solvers.eigen import estimate_condition_number, lanczos_spectrum
from repro.solvers.space import STAGGERED_SPACE


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.25, rng=1313)


class TestLanczos:
    def test_identity_spectrum(self, geom, rng):
        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        est = lanczos_spectrum(lambda x: x, v0, steps=10,
                               space=STAGGERED_SPACE)
        assert est.eigenvalue_min == pytest.approx(1.0, abs=1e-10)
        assert est.eigenvalue_max == pytest.approx(1.0, abs=1e-10)
        assert est.condition_number == pytest.approx(1.0, abs=1e-9)
        assert est.converged_basis  # 1-dim invariant subspace

    def test_diagonal_operator_extremes(self, geom, rng):
        """A synthetic operator with known spectrum [1, 5]."""
        scale = np.linspace(1.0, 5.0, geom.volume * 3).reshape(
            geom.shape + (3,)
        )
        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        est = lanczos_spectrum(
            lambda x: scale * x, v0, steps=60, space=STAGGERED_SPACE
        )
        assert est.eigenvalue_min == pytest.approx(1.0, rel=0.02)
        assert est.eigenvalue_max == pytest.approx(5.0, rel=0.02)

    def test_ritz_values_within_spectrum(self, geom, gauge, rng):
        op = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, 0.3))
        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        est = lanczos_spectrum(op.apply, v0, steps=30, space=STAGGERED_SPACE)
        # M^+M spectrum lies in [m^2, m^2 + 16] for naive staggered.
        assert est.eigenvalue_min >= 0.3**2 - 1e-8
        assert est.eigenvalue_max <= 0.3**2 + 16.0 + 1e-8

    def test_more_steps_widen_ritz_interval(self, geom, gauge, rng):
        op = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, 0.3))
        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        few = lanczos_spectrum(op.apply, v0, steps=8, space=STAGGERED_SPACE)
        many = lanczos_spectrum(op.apply, v0, steps=40, space=STAGGERED_SPACE)
        assert many.eigenvalue_max >= few.eigenvalue_max - 1e-10
        assert many.eigenvalue_min <= few.eigenvalue_min + 1e-10

    def test_validation(self, geom):
        z = np.zeros(geom.shape + (3,), dtype=complex)
        with pytest.raises(ValueError):
            lanczos_spectrum(lambda x: x, z, steps=5)
        with pytest.raises(ValueError):
            lanczos_spectrum(lambda x: x, z + 1.0, steps=1)


class TestConditioning:
    def test_lighter_quarks_worse_conditioned(self, geom, gauge, rng):
        """Sec. 3.1, quantified: the condition number of M^+M grows as the
        quark mass falls (kappa ~ 1/m^2 for staggered)."""
        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        kappas = {}
        for mass in (1.0, 0.5, 0.1):
            op = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, mass))
            kappas[mass] = estimate_condition_number(
                op.apply, v0, steps=40, space=STAGGERED_SPACE
            )
        assert kappas[0.1] > kappas[0.5] > kappas[1.0]
        # Staggered: lambda_min = m^2, so kappa ratio ~ (mass ratio)^-2.
        assert kappas[0.1] / kappas[1.0] > 20

    def test_condition_number_predicts_cg_iterations(self, geom, gauge, rng):
        """The reason the spectrum matters: CG iterations grow with
        sqrt(kappa)."""
        from repro.solvers import cg

        v0 = SpinorField.random(geom, nspin=1, rng=rng).data
        b = SpinorField.random(geom, nspin=1, rng=1).data
        iters = {}
        kappa = {}
        for mass in (0.8, 0.15):
            op = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, mass))
            kappa[mass] = estimate_condition_number(
                op.apply, v0, steps=40, space=STAGGERED_SPACE
            )
            iters[mass] = cg(
                op.apply, b, tol=1e-8, maxiter=2000, space=STAGGERED_SPACE
            ).iterations
        assert iters[0.15] > iters[0.8]
        ratio_pred = math.sqrt(kappa[0.15] / kappa[0.8])
        ratio_obs = iters[0.15] / iters[0.8]
        assert ratio_obs == pytest.approx(ratio_pred, rel=0.6)

    def test_wilson_normal_operator(self, geom, gauge, rng):
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0).normal()
        v0 = SpinorField.random(geom, rng=rng).data
        est = lanczos_spectrum(op.apply, v0, steps=30)
        assert est.eigenvalue_min > 0
        assert est.condition_number > 1
