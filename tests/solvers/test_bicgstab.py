"""BiCGstab on the non-Hermitian Wilson-clover system."""

import numpy as np
import pytest

from repro.solvers import bicgstab
from repro.util.counters import tally


class TestBiCGstab:
    def test_converges(self, wilson, b_wilson):
        res = bicgstab(wilson.apply, b_wilson, tol=1e-9, maxiter=300)
        assert res.converged
        assert res.residual < 1e-8

    def test_solution_satisfies_system(self, wilson, b_wilson):
        res = bicgstab(wilson.apply, b_wilson, tol=1e-9, maxiter=300)
        r = b_wilson - wilson.apply(res.x)
        assert np.linalg.norm(r) / np.linalg.norm(b_wilson) < 1e-8

    def test_two_matvecs_per_iteration(self, wilson, b_wilson):
        res = bicgstab(wilson.apply, b_wilson, tol=1e-9, maxiter=300)
        # 2 per iteration + initial residual (x0=None: none) + final check.
        assert res.matvecs == 2 * res.iterations + 1

    def test_operator_application_accounting(self, wilson, b_wilson):
        with tally() as t:
            res = bicgstab(wilson.apply, b_wilson, tol=1e-9, maxiter=300)
        assert t.operator_applications["wilson_clover"] == res.matvecs

    def test_zero_rhs(self, wilson, b_wilson):
        res = bicgstab(wilson.apply, np.zeros_like(b_wilson))
        assert res.converged and res.iterations == 0

    def test_initial_guess(self, wilson, b_wilson):
        sol = bicgstab(wilson.apply, b_wilson, tol=1e-10, maxiter=300).x
        res = bicgstab(wilson.apply, b_wilson, x0=sol, tol=1e-8)
        assert res.converged and res.iterations == 0

    def test_maxiter(self, wilson, b_wilson):
        res = bicgstab(wilson.apply, b_wilson, tol=1e-14, maxiter=2)
        assert not res.converged and res.iterations == 2

    def test_faster_than_cgnr(self, wilson, b_wilson):
        """The reason BiCGstab is the production solver (Sec. 3.1)."""
        from repro.solvers import cgnr

        bi = bicgstab(wilson.apply, b_wilson, tol=1e-8, maxiter=500)
        nr = cgnr(wilson, b_wilson, tol=1e-8, maxiter=2000)
        assert bi.converged and nr.converged
        # Compare operator applications (CGNR does 2 per iteration too).
        assert bi.matvecs < 2 * nr.iterations + 10

    def test_identity_system_one_step(self, b_wilson):
        res = bicgstab(lambda x: x, b_wilson, tol=1e-12)
        assert res.converged
        assert res.iterations <= 1
        assert np.allclose(res.x, b_wilson)

    def test_scaled_identity(self, b_wilson):
        res = bicgstab(lambda x: 2.5 * x, b_wilson, tol=1e-12)
        assert res.converged
        assert np.allclose(res.x, b_wilson / 2.5)
