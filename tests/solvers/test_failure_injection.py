"""Failure injection: solvers must terminate and report honestly when the
operator or data misbehaves (no silent hangs, no false convergence)."""

import numpy as np
import pytest

from repro.solvers import bicgstab, cg, gcr, mr


@pytest.fixture()
def b(rng):
    return rng.standard_normal(512) + 1j * rng.standard_normal(512)


class TestNaNPropagation:
    def _nan_op(self, x):
        out = x.copy()
        out[0] = np.nan
        return out

    def test_cg_terminates_and_reports_failure(self, b):
        res = cg(self._nan_op, b, tol=1e-8, maxiter=20)
        assert not res.converged
        assert res.iterations <= 20

    def test_bicgstab_terminates(self, b):
        res = bicgstab(self._nan_op, b, tol=1e-8, maxiter=20)
        assert not res.converged

    def test_gcr_terminates(self, b):
        res = gcr(self._nan_op, b, tol=1e-8, kmax=4, maxiter=20)
        assert not res.converged


class TestSingularOperators:
    def test_cg_on_singular_operator_terminates_unconverged(self, b):
        """A rank-deficient PSD operator cannot be solved for a right-hand
        side with nullspace components; CG must terminate (breakdown or
        maxiter) and report failure, never claim convergence."""
        import warnings

        def projector(x):
            out = x.copy()
            out[256:] = 0  # annihilates half the space
            return out

        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            res = cg(projector, b, tol=1e-10, maxiter=50)
        assert not res.converged
        assert res.iterations <= 50

    def test_zero_operator(self, b):
        res = bicgstab(lambda x: np.zeros_like(x), b, tol=1e-8, maxiter=10)
        assert not res.converged
        assert res.extras.get("breakdown", False)

    def test_mr_with_zero_operator_stops(self, b):
        res = mr(lambda x: np.zeros_like(x), b, steps=10)
        assert res.matvecs <= 1  # Ar = 0 -> immediate exit
        assert not np.any(res.x)


class TestHonestReporting:
    def test_unconverged_residual_is_true_residual(self, b):
        """Even on failure, the reported residual reflects b - A x."""

        def slow_op(x):
            return 1e-3 * x + x  # well-conditioned but we give few iters

        res = cg(slow_op, b, tol=1e-14, maxiter=1)
        r = b - slow_op(res.x)
        rel = np.linalg.norm(r) / np.linalg.norm(b)
        assert res.residual == pytest.approx(rel, rel=1e-6)

    def test_history_length_matches_iterations(self, b):
        res = cg(lambda x: 2 * x + 0.1 * np.roll(x, 1), b, tol=1e-10,
                 maxiter=100)
        # initial entry + one per iteration
        assert len(res.residual_history) == res.iterations + 1

    def test_gcr_breakdown_no_progress_exits(self, b):
        """An operator whose Krylov space collapses immediately must not
        loop to maxiter."""

        res = gcr(lambda x: np.zeros_like(x), b, tol=1e-8, maxiter=1000)
        assert not res.converged
        assert res.iterations < 10


class TestInputHygiene:
    def test_solvers_do_not_mutate_rhs(self, b):
        before = b.copy()
        cg(lambda x: 2 * x, b, tol=1e-10, maxiter=50)
        bicgstab(lambda x: 2 * x, b, tol=1e-10, maxiter=50)
        gcr(lambda x: 2 * x, b, tol=1e-10, maxiter=50)
        mr(lambda x: 2 * x, b, steps=5)
        assert np.array_equal(b, before)

    def test_solvers_do_not_mutate_x0(self, b, rng):
        x0 = rng.standard_normal(512) + 0j
        before = x0.copy()
        cg(lambda x: 2 * x, b, x0=x0, tol=1e-10, maxiter=50)
        bicgstab(lambda x: 2 * x, b, x0=x0, tol=1e-10, maxiter=50)
        assert np.array_equal(x0, before)
