"""Multi-shift CG: all shifted systems from one Krylov space."""

import numpy as np
import pytest

from repro.solvers import cg, multishift_cg
from repro.solvers.space import STAGGERED_SPACE


@pytest.fixture()
def factory(staggered_normal):
    def make(sigma):
        shifted = staggered_normal.shifted(sigma)
        return shifted.apply

    return make


SHIFTS = [0.0, 0.02, 0.1, 0.5]


class TestMultishift:
    def test_all_shifts_converge(self, factory, b_staggered):
        res = multishift_cg(factory, b_staggered, SHIFTS, tol=1e-9,
                            maxiter=600, space=STAGGERED_SPACE)
        assert res.converged
        assert all(r < 1e-7 for r in res.extras["residuals"])

    def test_matches_individual_cg(self, factory, b_staggered):
        res = multishift_cg(factory, b_staggered, SHIFTS, tol=1e-10,
                            maxiter=800, space=STAGGERED_SPACE)
        for sigma, x in zip(SHIFTS, res.x):
            ref = cg(factory(sigma), b_staggered, tol=1e-10, maxiter=800,
                     space=STAGGERED_SPACE)
            assert np.linalg.norm(x - ref.x) / np.linalg.norm(ref.x) < 1e-6

    def test_unsorted_shifts(self, factory, b_staggered):
        shuffled = [0.1, 0.0, 0.5, 0.02]
        res = multishift_cg(factory, b_staggered, shuffled, tol=1e-9,
                            maxiter=600, space=STAGGERED_SPACE)
        assert res.converged
        # Solutions are returned in input order.
        for sigma, x in zip(shuffled, res.x):
            ref = cg(factory(sigma), b_staggered, tol=1e-9, maxiter=600,
                     space=STAGGERED_SPACE)
            assert np.linalg.norm(x - ref.x) / np.linalg.norm(ref.x) < 1e-5

    def test_larger_shifts_converge_faster(self, factory, b_staggered):
        """Better-conditioned (larger-shift) systems have smaller residuals
        at any iteration — 'the same number of iterations as the smallest
        shift' is the binding constraint."""
        res = multishift_cg(factory, b_staggered, SHIFTS, tol=1e-9,
                            maxiter=600, space=STAGGERED_SPACE)
        r = res.extras["residuals"]
        assert r[0] >= r[-1] - 1e-12

    def test_same_iterations_as_hardest_system(self, factory, b_staggered):
        ms = multishift_cg(factory, b_staggered, SHIFTS, tol=1e-9,
                           maxiter=600, space=STAGGERED_SPACE)
        hardest = cg(factory(0.0), b_staggered, tol=1e-9, maxiter=600,
                     space=STAGGERED_SPACE)
        assert abs(ms.iterations - hardest.iterations) <= 1

    def test_single_shift_degenerates_to_cg(self, factory, b_staggered):
        ms = multishift_cg(factory, b_staggered, [0.05], tol=1e-9,
                           maxiter=600, space=STAGGERED_SPACE)
        ref = cg(factory(0.05), b_staggered, tol=1e-9, maxiter=600,
                 space=STAGGERED_SPACE)
        assert np.linalg.norm(ms.x[0] - ref.x) < 1e-8 * np.linalg.norm(ref.x)

    def test_zero_rhs(self, factory, b_staggered):
        res = multishift_cg(factory, np.zeros_like(b_staggered), SHIFTS)
        assert res.converged
        assert all(not np.any(x) for x in res.x)

    def test_empty_shifts_rejected(self, factory, b_staggered):
        with pytest.raises(ValueError):
            multishift_cg(factory, b_staggered, [])
