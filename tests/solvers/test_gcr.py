"""Flexible restarted mixed-precision GCR (Algorithm 1)."""

import numpy as np
import pytest

from repro.precision import DOUBLE, HALF, SINGLE
from repro.solvers import gcr, mr
from repro.solvers.base import PrecisionWrappedOperator


class TestPlainGCR:
    def test_converges_unpreconditioned(self, wilson, b_wilson):
        res = gcr(wilson.apply, b_wilson, tol=1e-9, kmax=16, maxiter=400)
        assert res.converged
        assert res.residual < 1e-8

    def test_true_residual(self, wilson, b_wilson):
        res = gcr(wilson.apply, b_wilson, tol=1e-9, kmax=16, maxiter=400)
        r = b_wilson - wilson.apply(res.x)
        rel = np.linalg.norm(r) / np.linalg.norm(b_wilson)
        assert rel == pytest.approx(res.residual, rel=1e-4)

    def test_restart_counting(self, wilson, b_wilson):
        res = gcr(wilson.apply, b_wilson, tol=1e-9, kmax=4, maxiter=400)
        assert res.converged
        assert res.restarts >= res.iterations // 4

    def test_small_kmax_still_converges(self, wilson, b_wilson):
        res = gcr(wilson.apply, b_wilson, tol=1e-8, kmax=2, maxiter=600)
        assert res.converged

    def test_zero_rhs(self, wilson, b_wilson):
        res = gcr(wilson.apply, np.zeros_like(b_wilson))
        assert res.converged and res.iterations == 0

    def test_initial_guess(self, wilson, b_wilson):
        sol = gcr(wilson.apply, b_wilson, tol=1e-10, maxiter=400).x
        res = gcr(wilson.apply, b_wilson, x0=sol, tol=1e-8)
        assert res.converged and res.iterations == 0

    def test_maxiter(self, wilson, b_wilson):
        res = gcr(wilson.apply, b_wilson, tol=1e-14, maxiter=5, kmax=4)
        assert res.iterations == 5
        assert not res.converged


class TestPreconditionedGCR:
    def test_mr_preconditioner_reduces_iterations(self, wilson, b_wilson):
        """A few MR sweeps as a (flexible) preconditioner must cut the
        Krylov iteration count — the mechanism GCR-DD exploits."""

        def precond(r):
            return mr(wilson.apply, r, steps=4).x

        plain = gcr(wilson.apply, b_wilson, tol=1e-8, maxiter=400)
        pre = gcr(
            wilson.apply, b_wilson, preconditioner=precond, tol=1e-8, maxiter=400
        )
        assert pre.converged
        assert pre.iterations < plain.iterations

    def test_nonlinear_preconditioner_tolerated(self, wilson, b_wilson):
        calls = [0]

        def flaky_precond(r):
            calls[0] += 1
            steps = 3 if calls[0] % 2 else 5  # deliberately non-fixed
            return mr(wilson.apply, r, steps=steps).x

        res = gcr(
            wilson.apply, b_wilson, preconditioner=flaky_precond,
            tol=1e-8, maxiter=400,
        )
        assert res.converged


class TestMixedPrecision:
    def test_single_inner(self, wilson, b_wilson):
        inner = PrecisionWrappedOperator(wilson.apply, SINGLE)
        res = gcr(
            wilson.apply, b_wilson, inner_op=inner, inner_precision=SINGLE,
            outer_precision=DOUBLE, tol=1e-10, maxiter=600,
        )
        assert res.converged
        assert res.residual < 1e-9  # outer restarts recover full accuracy

    def test_half_inner_reaches_single_accuracy(self, wilson, b_wilson):
        inner = PrecisionWrappedOperator(wilson.apply, HALF)
        res = gcr(
            wilson.apply, b_wilson, inner_op=inner, inner_precision=HALF,
            outer_precision=SINGLE, tol=1e-6, delta=0.1, maxiter=800,
        )
        assert res.converged
        assert res.residual < 2e-6

    def test_tolerance_clamped_to_outer_precision(self, wilson, b_wilson):
        """Asking single-precision GCR for 1e-12 must not spin forever:
        the effective tolerance is clamped to the representable level."""
        res = gcr(
            wilson.apply, b_wilson, outer_precision=SINGLE,
            inner_precision=SINGLE,
            inner_op=PrecisionWrappedOperator(wilson.apply, SINGLE),
            tol=1e-14, maxiter=500,
        )
        assert res.converged
        assert res.residual < 5e-6

    def test_delta_forces_early_restarts(self, wilson, b_wilson):
        tight = gcr(wilson.apply, b_wilson, tol=1e-8, delta=0.5, kmax=32,
                    maxiter=400)
        loose = gcr(wilson.apply, b_wilson, tol=1e-8, delta=1e-6, kmax=32,
                    maxiter=400)
        assert tight.converged and loose.converged
        assert tight.restarts >= loose.restarts


class TestResidualHistory:
    def test_history_ends_with_true_residual(self, wilson, b_wilson):
        """The recomputed high-precision residual of every restart is part
        of the history: the last entry is the solver's reported (true)
        residual, not the drifted inner-precision estimate."""
        res = gcr(wilson.apply, b_wilson, tol=1e-8, kmax=8, maxiter=400)
        assert res.converged
        assert res.residual_history[-1] == pytest.approx(res.residual)

    def test_history_counts_restart_entries(self, wilson, b_wilson):
        """One entry for the initial residual, one per Krylov step, and one
        per high-precision restart recompute."""
        res = gcr(wilson.apply, b_wilson, tol=1e-8, kmax=8, maxiter=400)
        assert len(res.residual_history) == 1 + res.iterations + res.restarts

    def test_restart_entries_are_high_precision(self, wilson, b_wilson):
        """With a single-precision inner solver, the iterated estimates
        drift below what the true residual can reach; the appended restart
        values must match an independent recomputation."""
        res = gcr(
            wilson.apply, b_wilson, inner_precision=SINGLE,
            inner_op=PrecisionWrappedOperator(wilson.apply, SINGLE),
            tol=1e-6, kmax=8, maxiter=400,
        )
        assert res.converged
        r = b_wilson - wilson.apply(res.x)
        rel = np.linalg.norm(r) / np.linalg.norm(b_wilson)
        assert res.residual_history[-1] == pytest.approx(rel, rel=1e-6)
