"""Spin-projected fast dslash path vs the reference full-spinor path.

Both evaluate the same exact contraction in a different association order,
so they must agree to machine precision — for plain Wilson, Wilson-clover,
the even-odd Schur complement, Dirichlet-cut Schwarz blocks, and the
distributed operator, with and without the shared link caches.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.comm import ProcessGrid
from repro.dirac import (
    BoundarySpec,
    EvenOddPreconditionedWilson,
    PERIODIC,
    PHYSICAL,
    WilsonCloverOperator,
)
from repro.dirac.evenodd import parity_project
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.linalg.gamma import projector, projector_factors, projector_tables
from repro.multigpu import BlockPartition, DistributedOperator

SETTINGS = dict(max_examples=15, deadline=None)

#: Machine-precision agreement: the two paths differ only in summation
#: order, so a small multiple of double eps covers them.
TOL = 1e-12

MIXED = BoundarySpec(("zero", "antiperiodic", "periodic", "antiperiodic"))


def make_pair(gauge, mass=0.1, csw=0.0, boundary=PERIODIC):
    fast = WilsonCloverOperator(
        gauge, mass=mass, csw=csw, boundary=boundary, kernel="numpy"
    )
    ref = WilsonCloverOperator(
        gauge, mass=mass, csw=csw, boundary=boundary, kernel="numpy_ref"
    )
    return fast, ref


class TestFactorization:
    @pytest.mark.parametrize("mu", range(4))
    @pytest.mark.parametrize("sign", [+1, -1])
    def test_rank2_factors_reassemble_projector(self, mu, sign):
        proj, recon = projector_factors(mu, sign)
        assert proj.shape == (2, 4)
        assert recon.shape == (4, 2)
        assert np.allclose(recon @ proj, 2.0 * projector(mu, sign), atol=1e-15)

    @pytest.mark.parametrize("mu", range(4))
    @pytest.mark.parametrize("sign", [+1, -1])
    def test_tables_match_dense_factors(self, mu, sign, rng):
        """The slice/coefficient tables compute exactly the dense P and R."""
        proj, recon = projector_factors(mu, sign)
        tab = projector_tables(mu, sign)
        x = rng.normal(size=(5, 4, 3)) + 1j * rng.normal(size=(5, 4, 3))
        half = tab.project(x)
        assert np.allclose(half, np.matmul(proj, x), atol=1e-15)
        full = np.empty_like(x)
        full[..., :2, :] = half
        full[..., 2:, :] = tab.reconstruct_lower(half)
        assert np.allclose(full, np.matmul(recon @ proj, x), atol=1e-14)


class TestWilsonEquivalence:
    @pytest.mark.parametrize("csw", [0.0, 1.2], ids=["wilson", "clover"])
    @pytest.mark.parametrize(
        "bc", [PERIODIC, PHYSICAL, MIXED], ids=["per", "anti", "mixed"]
    )
    def test_apply_and_dagger_agree(self, csw, bc, rng):
        geom = Geometry((4, 6, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.3, rng=17)
        fast, ref = make_pair(gauge, mass=0.12, csw=csw, boundary=bc)
        x = SpinorField.random(geom, rng=rng).data
        scale = np.abs(ref.apply(x)).max()
        assert np.abs(fast.apply(x) - ref.apply(x)).max() < TOL * scale
        assert (
            np.abs(fast.apply_dagger(x) - ref.apply_dagger(x)).max()
            < TOL * scale
        )

    def test_cached_dagger_shared_by_with_boundary(self, weak_gauge, rng):
        fast, ref = make_pair(weak_gauge, csw=1.0)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        fast.apply(x)  # build the link caches
        cut = fast.with_boundary(MIXED)
        assert cut._link_cols is fast._link_cols
        assert cut._link_dag_cols is fast._link_dag_cols
        ref_cut = ref.with_boundary(MIXED)
        assert np.abs(cut.apply(x) - ref_cut.apply(x)).max() < TOL

    def test_block_restriction_rebuilds_caches(self, weak_gauge, rng):
        fast, ref = make_pair(weak_gauge, csw=1.0)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        fast.apply(x)  # caches for the *global* gauge
        part = BlockPartition(weak_gauge.geometry, ProcessGrid((1, 1, 2, 2)))
        block_fast = fast.restrict_to_block(part, 1)
        block_ref = ref.restrict_to_block(part, 1)
        assert block_fast._link_cols is None  # sliced gauge: fresh caches
        xb = SpinorField.random(block_fast.geometry, rng=rng).data
        assert np.abs(block_fast.apply(xb) - block_ref.apply(xb)).max() < TOL


class TestEvenOddEquivalence:
    def test_schur_complement_agrees(self, weak_gauge, rng):
        fast, ref = make_pair(weak_gauge, mass=0.2, csw=1.0)
        eo_fast = EvenOddPreconditionedWilson(fast)
        eo_ref = EvenOddPreconditionedWilson(ref)
        geom = weak_gauge.geometry
        x = parity_project(geom, SpinorField.random(geom, rng=rng).data, 0)
        assert np.abs(eo_fast.apply(x) - eo_ref.apply(x)).max() < TOL


class TestDistributedEquivalence:
    @pytest.mark.parametrize("split", [False, True], ids=["fused", "split"])
    def test_distributed_paths_agree(self, split, rng):
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.3, rng=23)
        grid = ProcessGrid((1, 1, 2, 2))
        fast = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.0, grid, boundary=PHYSICAL, kernel="numpy"
        )
        ref = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.0, grid, boundary=PHYSICAL, kernel="numpy_ref"
        )
        x = SpinorField.random(geom, rng=rng).data
        run = (lambda op: op.apply_split(op.scatter(x))) if split else (
            lambda op: op.apply(op.scatter(x))
        )
        out = fast.gather(run(fast))
        expected = ref.gather(run(ref))
        assert np.abs(out - expected).max() < TOL * np.abs(expected).max()


GEOM = Geometry((4, 4, 4, 4))
_BCS = st.sampled_from(["periodic", "antiperiodic", "zero"])


@st.composite
def operator_pairs(draw):
    seed = draw(st.integers(0, 10**6))
    mass = draw(st.floats(0.05, 1.0))
    csw = draw(st.sampled_from([0.0, 1.0, 1.5]))
    bc = BoundarySpec(tuple(draw(_BCS) for _ in range(4)))
    gauge = GaugeField.weak(GEOM, epsilon=0.3, rng=seed)
    return make_pair(gauge, mass=mass, csw=csw, boundary=bc)


class TestProperties:
    @given(pair=operator_pairs(), seed=st.integers(0, 10**6))
    @settings(**SETTINGS)
    def test_paths_agree_for_random_operators(self, pair, seed):
        fast, ref = pair
        x = SpinorField.random(GEOM, rng=seed).data
        expected = ref.apply(x)
        scale = max(np.abs(expected).max(), 1.0)
        assert np.abs(fast.apply(x) - expected).max() < TOL * scale
        assert (
            np.abs(fast.apply_dagger(x) - ref.apply_dagger(x)).max()
            < TOL * scale
        )
