"""Batched (multi-RHS) stencils must agree with stacked single-RHS
applications: the leading batch axis is layout, never different
arithmetic.  The batched Wilson fast path evaluates the same contraction
through stacked GEMMs (a different association order), so its agreement
is to tight rounding; paths that broadcast the single-RHS kernels
verbatim (reference Wilson, staggered, asqtad) stay bit-exact.  Covered:
Wilson-clover (projected fast path, reference path, daggers), staggered,
asqtad, and the even-odd Schur complement."""

import numpy as np
import pytest

from repro.dirac.evenodd import EvenOddPreconditionedWilson
from repro.dirac.staggered import AsqtadOperator, NaiveStaggeredOperator
from repro.dirac.wilson import WilsonCloverOperator
from repro.gauge.asqtad import build_asqtad_links
from repro.lattice import SpinorField
from repro.util.counters import tally

B = 3


def assert_close(a, b):
    """Rounding-level agreement for the GEMM-reassociated fast path."""
    assert np.allclose(a, b, rtol=1e-13, atol=1e-13)


@pytest.fixture()
def wilson_batch(geom44, rng):
    return np.stack(
        [SpinorField.random(geom44, rng=100 + i).data for i in range(B)]
    )


@pytest.fixture()
def staggered_batch(geom44, rng):
    return np.stack(
        [SpinorField.random(geom44, nspin=1, rng=200 + i).data for i in range(B)]
    )


def stacked(apply_fn, xb):
    return np.stack([apply_fn(xb[i]) for i in range(xb.shape[0])])


class TestWilsonBatched:
    def test_projected_fast_path(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        assert_close(op.apply(wilson_batch), stacked(op.apply, wilson_batch))

    def test_reference_path(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(
            weak_gauge, mass=0.1, csw=1.0, kernel="numpy_ref"
        )
        assert np.array_equal(op.apply(wilson_batch), stacked(op.apply, wilson_batch))

    def test_dagger(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        assert_close(
            op.apply_dagger(wilson_batch), stacked(op.apply_dagger, wilson_batch)
        )

    def test_flops_scale_with_batch(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        with tally() as t1:
            op.apply(wilson_batch[0])
        with tally() as tb:
            op.apply(wilson_batch)
        assert tb.flops == B * t1.flops


class TestEvenOddBatched:
    def test_schur_apply(self, weak_gauge, wilson_batch):
        eo = EvenOddPreconditionedWilson(
            WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        )
        assert_close(eo.apply(wilson_batch), stacked(eo.apply, wilson_batch))

    def test_prepare_and_reconstruct(self, weak_gauge, wilson_batch):
        eo = EvenOddPreconditionedWilson(
            WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        )
        rhs_b = eo.prepare_rhs(wilson_batch)
        assert_close(rhs_b, stacked(eo.prepare_rhs, wilson_batch))
        rec_b = eo.reconstruct(rhs_b, wilson_batch)
        rec_s = np.stack(
            [eo.reconstruct(rhs_b[i], wilson_batch[i]) for i in range(B)]
        )
        assert_close(rec_b, rec_s)


class TestStaggeredBatched:
    def test_naive_staggered(self, weak_gauge, staggered_batch):
        op = NaiveStaggeredOperator(weak_gauge, mass=0.1)
        assert np.array_equal(
            op.apply(staggered_batch), stacked(op.apply, staggered_batch)
        )

    def test_asqtad(self, weak_gauge, staggered_batch):
        links = build_asqtad_links(weak_gauge)
        op = AsqtadOperator(links, mass=0.1)
        assert np.array_equal(
            op.apply(staggered_batch), stacked(op.apply, staggered_batch)
        )

    def test_asqtad_dagger(self, weak_gauge, staggered_batch):
        links = build_asqtad_links(weak_gauge)
        op = AsqtadOperator(links, mass=0.1)
        assert np.array_equal(
            op.apply_dagger(staggered_batch),
            stacked(op.apply_dagger, staggered_batch),
        )


class TestLeadDetection:
    def test_rejects_bogus_rank(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        with pytest.raises(ValueError):
            op.field_lead(wilson_batch[None])  # two leading axes

    def test_batch_size(self, weak_gauge, wilson_batch):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        assert op.batch_size(wilson_batch) == B
        assert op.batch_size(wilson_batch[0]) == 1
