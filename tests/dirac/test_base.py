"""Operator composition: boundary specs, shifted and normal wrappers."""

import numpy as np
import pytest

from repro.dirac import (
    BoundarySpec,
    PERIODIC,
    PHYSICAL,
    WilsonCloverOperator,
    link_apply,
)
from repro.lattice import SpinorField
from repro.linalg import su3


class TestBoundarySpec:
    def test_default_periodic(self):
        assert all(PERIODIC[mu] == "periodic" for mu in range(4))

    def test_physical(self):
        assert PHYSICAL[3] == "antiperiodic"
        assert PHYSICAL[0] == "periodic"

    def test_with_dirichlet(self):
        cut = PHYSICAL.with_dirichlet((0, 2))
        assert cut[0] == "zero" and cut[2] == "zero"
        assert cut[1] == "periodic" and cut[3] == "antiperiodic"

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundarySpec(("periodic", "periodic", "periodic"))
        with pytest.raises(ValueError):
            BoundarySpec(("open", "periodic", "periodic", "periodic"))


class TestLinkApply:
    def test_wilson_spinor(self, rng):
        u = su3.random_su3((10,), rng=rng)
        x = rng.standard_normal((10, 4, 3)) + 1j * rng.standard_normal((10, 4, 3))
        out = link_apply(u, x)
        ref = np.einsum("nab,nsb->nsa", u, x)
        assert np.allclose(out, ref)

    def test_staggered_spinor(self, rng):
        u = su3.random_su3((10,), rng=rng)
        x = rng.standard_normal((10, 3)) + 1j * rng.standard_normal((10, 3))
        out = link_apply(u, x)
        ref = np.einsum("nab,nb->na", u, x)
        assert np.allclose(out, ref)

    def test_shape_mismatch(self, rng):
        u = su3.random_su3((10,), rng=rng)
        with pytest.raises(ValueError):
            link_apply(u, np.zeros((10, 2, 4, 3)))


class TestWrappers:
    def test_shifted_operator(self, weak_gauge, rng):
        op = WilsonCloverOperator(weak_gauge, mass=0.1)
        shifted = op.shifted(0.7)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        assert np.allclose(shifted.apply(x), op.apply(x) + 0.7 * x)
        assert "0.7" in shifted.name

    def test_shifted_dagger(self, weak_gauge, rng):
        op = WilsonCloverOperator(weak_gauge, mass=0.1)
        shifted = op.shifted(0.5)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        y = SpinorField.random(weak_gauge.geometry, rng=1).data
        lhs = np.vdot(y, shifted.apply(x))
        rhs = np.vdot(shifted.apply_dagger(y), x)
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_normal_operator_hermitian_positive(self, weak_gauge, rng):
        op = WilsonCloverOperator(weak_gauge, mass=0.1, csw=1.0)
        normal = op.normal()
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        y = SpinorField.random(weak_gauge.geometry, rng=2).data
        assert np.vdot(x, normal.apply(x)).real > 0
        lhs = np.vdot(y, normal.apply(x))
        rhs = np.vdot(normal.apply(y), x)
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_normal_equals_composition(self, weak_gauge, rng):
        op = WilsonCloverOperator(weak_gauge, mass=0.1)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        assert np.allclose(
            op.normal().apply(x), op.apply_dagger(op.apply(x))
        )
