"""Wilson and Wilson-clover operator: Eq. (2) structure and symmetries."""

import numpy as np
import pytest

from repro.dirac import PHYSICAL, BoundarySpec, WilsonCloverOperator
from repro.lattice import GaugeField, SpinorField
from repro.util.counters import tally


@pytest.fixture(scope="module")
def op(request):
    return None


def make_op(gauge, mass=0.1, csw=0.0, boundary=None):
    kwargs = {} if boundary is None else {"boundary": boundary}
    return WilsonCloverOperator(gauge, mass=mass, csw=csw, **kwargs)


class TestStructure:
    def test_free_field_constant_mode(self, geom44):
        """On the unit gauge, a constant spinor is an eigenvector of M with
        eigenvalue m (the dslash sums to 8 x 1/2 x ... the hopping exactly
        cancels the Wilson term's 4)."""
        unit = GaugeField.unit(geom44)
        op = make_op(unit, mass=0.3)
        x = np.ones(geom44.shape + (4, 3), dtype=np.complex128)
        out = op.apply(x)
        assert np.allclose(out, 0.3 * x, atol=1e-12)

    def test_diagonal_coefficient(self, weak_gauge):
        op = make_op(weak_gauge, mass=-0.2)
        assert op.diagonal_coefficient == pytest.approx(3.8)

    def test_zero_hopping_on_point_far_away(self, geom44, weak_gauge):
        """M is nearest-neighbor: applying it to a point source only
        populates the source site and its 8 neighbors."""
        op = make_op(weak_gauge, mass=0.1)
        src = SpinorField.point_source(geom44, (0, 0, 0, 0)).data
        out = op.apply(src)
        support = np.abs(out).sum(axis=(-1, -2)) > 1e-14
        assert support.sum() == 9
        assert support[0, 0, 0, 0]
        assert support[0, 0, 0, 1] and support[0, 0, 0, 3]  # x +- 1
        assert support[1, 0, 0, 0] and support[3, 0, 0, 0]  # t +- 1

    def test_linearity(self, weak_gauge, rng):
        op = make_op(weak_gauge, csw=1.0)
        geom = weak_gauge.geometry
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        a = 1.3 - 0.7j
        lhs = op.apply(a * x + y)
        rhs = a * op.apply(x) + op.apply(y)
        assert np.abs(lhs - rhs).max() < 1e-12

    def test_name_and_flops(self, weak_gauge):
        assert make_op(weak_gauge).name == "wilson"
        assert make_op(weak_gauge, csw=1.0).name == "wilson_clover"
        assert make_op(weak_gauge, csw=1.0).flops_per_site > make_op(
            weak_gauge
        ).flops_per_site


class TestGamma5Hermiticity:
    @pytest.mark.parametrize("csw", [0.0, 1.2])
    def test_dagger_consistency(self, weak_gauge, rng, csw):
        op = make_op(weak_gauge, mass=0.05, csw=csw)
        geom = weak_gauge.geometry
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        lhs = np.vdot(y, op.apply(x))
        rhs = np.vdot(op.apply_dagger(y), x)
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_dagger_with_antiperiodic_bc(self, weak_gauge, rng):
        op = make_op(weak_gauge, csw=1.0, boundary=PHYSICAL)
        geom = weak_gauge.geometry
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        assert abs(
            np.vdot(y, op.apply(x)) - np.vdot(op.apply_dagger(y), x)
        ) < 1e-10


class TestBoundaries:
    def test_antiperiodic_differs_from_periodic(self, weak_gauge, rng):
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        a = make_op(weak_gauge).apply(x)
        b = make_op(weak_gauge, boundary=PHYSICAL).apply(x)
        assert np.abs(a - b).max() > 1e-8

    def test_antiperiodic_only_touches_time_edge(self, weak_gauge, rng):
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        a = make_op(weak_gauge).apply(x)
        b = make_op(weak_gauge, boundary=PHYSICAL).apply(x)
        diff = np.abs(a - b).sum(axis=(-1, -2))
        assert np.all(diff[1:-1] == 0)

    def test_dirichlet_cut(self, weak_gauge, rng):
        bc = BoundarySpec(("zero", "periodic", "periodic", "periodic"))
        op = make_op(weak_gauge, boundary=bc)
        src = SpinorField.point_source(weak_gauge.geometry, (0, 2, 2, 2)).data
        out = op.apply(src)
        # The x=0 source must not couple to x=3 through the cut boundary.
        assert np.abs(out[..., 3, :, :]).max() == 0

    def test_with_boundary_clone(self, weak_gauge):
        op = make_op(weak_gauge, csw=1.0)
        cut = op.with_boundary(op.boundary.with_dirichlet((0, 1)))
        assert cut.boundary[0] == "zero"
        assert cut.clover is op.clover  # clover field reused, not rebuilt


class TestDiagonalHoppingSplit:
    def test_split_reassembles(self, weak_gauge, rng):
        op = make_op(weak_gauge, csw=1.1)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        total = op.apply(x)
        split = op.apply_site_diagonal(x) + op.apply_hopping(x)
        assert np.abs(total - split).max() < 1e-12


class TestAccounting:
    def test_apply_records(self, weak_gauge, rng):
        op = make_op(weak_gauge, csw=1.0)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        with tally() as t:
            op.apply(x)
        assert t.operator_applications == {"wilson_clover": 1}
        assert t.flops == op.flops_per_site * weak_gauge.geometry.volume

    def test_dslash_records_separately(self, weak_gauge, rng):
        op = make_op(weak_gauge)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        with tally() as t:
            op.dslash(x)
        assert "wilson_dslash" in t.operator_applications
