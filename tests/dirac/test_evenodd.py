"""Even-odd (Schur complement) preconditioning of Wilson-clover."""

import numpy as np
import pytest

from repro.dirac import EvenOddPreconditionedWilson, WilsonCloverOperator
from repro.dirac.evenodd import parity_project
from repro.lattice import GaugeField, SpinorField
from repro.solvers import bicgstab


@pytest.fixture(scope="module")
def setup():
    from repro.lattice import Geometry

    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.3, rng=77)
    op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
    return geom, op, EvenOddPreconditionedWilson(op)


class TestParityProject:
    def test_projection(self, geom44, rng):
        x = SpinorField.random(geom44, rng=rng).data
        e = parity_project(geom44, x, 0)
        o = parity_project(geom44, x, 1)
        assert np.allclose(e + o, x)
        assert np.abs(e * geom44.odd_mask[..., None, None]).max() == 0


class TestSchurIdentity:
    def test_schur_consistency(self, setup, rng):
        """If M x = b then Mhat x_e = prepared_rhs(b): the defining
        property of the Schur complement."""
        geom, op, eo = setup
        x_true = SpinorField.random(geom, rng=rng).data
        b = op.apply(x_true)
        lhs = eo.apply(parity_project(geom, x_true, 0))
        rhs = eo.prepare_rhs(b)
        assert np.abs(lhs - rhs).max() < 1e-11

    def test_reconstruction(self, setup, rng):
        geom, op, eo = setup
        x_true = SpinorField.random(geom, rng=rng).data
        b = op.apply(x_true)
        x_full = eo.reconstruct(parity_project(geom, x_true, 0), b)
        assert np.abs(x_full - x_true).max() < 1e-11

    def test_output_is_even_supported(self, setup, rng):
        geom, op, eo = setup
        x = SpinorField.random(geom, rng=rng).data
        out = eo.apply(x)
        assert np.abs(out * geom.odd_mask[..., None, None]).max() == 0

    def test_c_inverse(self, setup, rng):
        geom, op, eo = setup
        x = SpinorField.random(geom, rng=rng).data
        assert np.abs(eo.apply_cinv(eo.apply_c(x)) - x).max() < 1e-11

    def test_gamma5_hermiticity_of_schur(self, setup, rng):
        geom, op, eo = setup
        x = parity_project(geom, SpinorField.random(geom, rng=rng).data, 0)
        y = parity_project(geom, SpinorField.random(geom, rng=1).data, 0)
        lhs = np.vdot(y, eo.apply(x))
        rhs = np.vdot(eo.apply_dagger(y), x)
        assert abs(lhs - rhs) < 1e-10 * max(abs(lhs), 1)


class TestSchurSolve:
    def test_full_solution_via_schur(self, setup, rng):
        """Solving the preconditioned system + reconstruction equals
        solving the full system (Sec. 3.1's standard acceleration)."""
        geom, op, eo = setup
        b = SpinorField.random(geom, rng=rng).data
        rhs = eo.prepare_rhs(b)
        res = bicgstab(eo.apply, rhs, tol=1e-10, maxiter=500)
        assert res.converged
        x = eo.reconstruct(res.x, b)
        r = b - op.apply(x)
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-8

    def test_schur_converges_faster_than_full(self, setup, rng):
        geom, op, eo = setup
        b = SpinorField.random(geom, rng=rng).data
        full = bicgstab(op.apply, b, tol=1e-8, maxiter=500)
        schur = bicgstab(eo.apply, eo.prepare_rhs(b), tol=1e-8, maxiter=500)
        assert schur.converged and full.converged
        assert schur.iterations <= full.iterations
