"""The clover term: Hermiticity, chirality structure, inversion."""

import numpy as np
import pytest

from repro.dirac.clover import (
    apply_clover,
    build_clover_field,
    clover_site_matrices,
    invert_site_matrices,
)
from repro.lattice import GaugeField, SpinorField
from repro.linalg.gamma import GAMMA5


@pytest.fixture(scope="module")
def clover(weak_gauge_module):
    return build_clover_field(weak_gauge_module, csw=1.3)


@pytest.fixture(scope="module")
def weak_gauge_module():
    from repro.lattice import Geometry

    return GaugeField.weak(Geometry((4, 4, 4, 4)), epsilon=0.3, rng=101)


class TestCloverField:
    def test_shape(self, clover, weak_gauge_module):
        assert clover.shape == weak_gauge_module.geometry.shape + (12, 12)

    def test_vanishes_on_unit_gauge(self, geom44):
        a = build_clover_field(GaugeField.unit(geom44), csw=1.0)
        assert np.abs(a).max() < 1e-13

    def test_hermitian(self, clover):
        assert np.abs(clover - np.conj(np.swapaxes(clover, -1, -2))).max() < 1e-12

    def test_linear_in_csw(self, weak_gauge_module):
        a1 = build_clover_field(weak_gauge_module, csw=1.0)
        a2 = build_clover_field(weak_gauge_module, csw=2.0)
        assert np.allclose(a2, 2 * a1)

    def test_chirality_block_diagonal(self, clover):
        """[A, gamma5 (x) 1] = 0: the clover matrix never mixes the upper
        (spins 0,1) and lower (spins 2,3) chirality blocks — footnote 1's
        two-6x6-block structure."""
        g5 = np.kron(GAMMA5, np.eye(3))
        comm = clover @ g5 - g5 @ clover
        assert np.abs(comm).max() < 1e-12

    def test_off_chirality_blocks_zero(self, clover):
        assert np.abs(clover[..., :6, 6:]).max() < 1e-12
        assert np.abs(clover[..., 6:, :6]).max() < 1e-12


class TestApplyClover:
    def test_matches_dense_multiply(self, clover, rng):
        x = rng.standard_normal((4, 4, 4, 4, 4, 3)) + 1j * rng.standard_normal(
            (4, 4, 4, 4, 4, 3)
        )
        out = apply_clover(clover, x)
        ref = np.einsum("...ij,...j->...i", clover, x.reshape(4, 4, 4, 4, 12))
        assert np.allclose(out, ref.reshape(x.shape))

    def test_linearity(self, clover, rng):
        x = rng.standard_normal((4, 4, 4, 4, 4, 3)) + 0j
        assert np.allclose(apply_clover(clover, 2 * x), 2 * apply_clover(clover, x))


class TestSiteMatrices:
    def test_without_clover(self):
        c = clover_site_matrices(None, 4.1, (2, 2, 2, 2))
        assert c.shape == (2, 2, 2, 2, 12, 12)
        assert np.allclose(c, 4.1 * np.eye(12))

    def test_with_clover(self, clover):
        c = clover_site_matrices(clover, 4.1, clover.shape[:-2])
        assert np.allclose(c - clover, 4.1 * np.eye(12))

    def test_inversion(self, clover):
        c = clover_site_matrices(clover, 4.1, clover.shape[:-2])
        cinv = invert_site_matrices(c)
        prod = c @ cinv
        assert np.abs(prod - np.eye(12)).max() < 1e-10
