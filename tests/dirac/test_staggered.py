"""Staggered operators: phases, anti-Hermiticity, parity decoupling."""

import numpy as np
import pytest

from repro.dirac import (
    AsqtadOperator,
    NaiveStaggeredOperator,
    PHYSICAL,
    StaggeredNormalOperator,
)
from repro.dirac.staggered import staggered_phases
from repro.lattice import GaugeField, SpinorField


@pytest.fixture(scope="module")
def asqtad(geom44_mod, weak_gauge_mod):
    return AsqtadOperator.from_gauge(weak_gauge_mod, mass=0.08)


@pytest.fixture(scope="module")
def geom44_mod():
    from repro.lattice import Geometry

    return Geometry((4, 4, 4, 4))


@pytest.fixture(scope="module")
def weak_gauge_mod(geom44_mod):
    return GaugeField.weak(geom44_mod, epsilon=0.3, rng=101)


class TestPhases:
    def test_values_are_signs(self, geom44):
        eta = staggered_phases(geom44)
        assert set(np.unique(eta)) <= {-1.0, 1.0}

    def test_eta_x_is_one(self, geom44):
        assert np.all(staggered_phases(geom44)[0] == 1.0)

    def test_eta_y_depends_on_x(self, geom44):
        eta = staggered_phases(geom44)
        x = geom44.coordinate(0)
        assert np.array_equal(eta[1], (-1.0) ** x)

    def test_eta_t_definition(self, geom44):
        eta = staggered_phases(geom44)
        x, y, z = (geom44.coordinate(m) for m in range(3))
        assert np.array_equal(eta[3], (-1.0) ** (x + y + z))

    def test_origin_offset(self, geom44):
        """Phases on an offset sub-domain match the global phases — the
        property the padded multi-GPU domains rely on."""
        base = staggered_phases(geom44)
        shifted = staggered_phases(geom44, origin=(1, 0, 1, 0))
        x = geom44.coordinate(0)
        assert np.array_equal(shifted[1], (-1.0) ** (x + 1))
        assert not np.array_equal(shifted[1], base[1])


class TestNaiveStaggered:
    def test_dslash_anti_hermitian(self, weak_gauge_mod, rng):
        op = NaiveStaggeredOperator(weak_gauge_mod, mass=0.1)
        geom = weak_gauge_mod.geometry
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        y = SpinorField.random(geom, nspin=1, rng=rng).data
        lhs = np.vdot(y, op._dslash(x))
        rhs = np.vdot(op._dslash(y), x)
        assert abs(lhs + rhs) < 1e-10 * max(abs(lhs), 1)

    def test_dagger(self, weak_gauge_mod, rng):
        op = NaiveStaggeredOperator(weak_gauge_mod, mass=0.1)
        geom = weak_gauge_mod.geometry
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        y = SpinorField.random(geom, nspin=1, rng=rng).data
        assert abs(
            np.vdot(y, op.apply(x)) - np.vdot(op.apply_dagger(y), x)
        ) < 1e-10

    def test_dslash_changes_parity(self, weak_gauge_mod):
        geom = weak_gauge_mod.geometry
        op = NaiveStaggeredOperator(weak_gauge_mod, mass=0.0)
        x = np.ones(geom.shape + (3,), dtype=np.complex128)
        x = x * geom.even_mask[..., None]
        out = op._dslash(x)
        assert np.abs(out * geom.even_mask[..., None]).max() < 1e-13

    def test_ghost_depth(self, weak_gauge_mod):
        assert NaiveStaggeredOperator(weak_gauge_mod, 0.1).ghost_depth == 1

    def test_free_field_mass_term(self, geom44):
        """On the unit gauge a constant staggered field feels only the mass
        (the eta-weighted forward/backward hops cancel)."""
        op = NaiveStaggeredOperator(GaugeField.unit(geom44), mass=0.25)
        x = np.ones(geom44.shape + (3,), dtype=np.complex128)
        assert np.allclose(op.apply(x), 0.25 * x, atol=1e-13)

    def test_split_reassembles(self, weak_gauge_mod, rng):
        op = NaiveStaggeredOperator(weak_gauge_mod, mass=0.3)
        x = SpinorField.random(weak_gauge_mod.geometry, nspin=1, rng=rng).data
        assert np.allclose(
            op.apply(x), op.apply_site_diagonal(x) + op.apply_hopping(x)
        )


class TestAsqtad:
    def test_dslash_anti_hermitian(self, asqtad, rng):
        geom = asqtad.geometry
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        y = SpinorField.random(geom, nspin=1, rng=rng).data
        lhs = np.vdot(y, asqtad._dslash(x))
        rhs = np.vdot(asqtad._dslash(y), x)
        assert abs(lhs + rhs) < 1e-10 * max(abs(lhs), 1)

    def test_ghost_depth_three(self, asqtad):
        assert asqtad.ghost_depth == 3

    def test_three_hop_support(self, asqtad):
        """The asqtad stencil couples a point source to 3-hop neighbors —
        the decreased locality that throttles 1-D partitioning (Sec. 5)."""
        geom = asqtad.geometry
        src = SpinorField.point_source(geom, (0, 0, 0, 0), color=0, nspin=1).data
        out = asqtad.apply(src)
        # 3-hop neighbor along x at x=3 (wrapping: 3 = -1 mod 4... use t).
        assert np.abs(out[3, 0, 0, 0]).max() > 1e-8  # t+3 = 3
        assert np.abs(out[0, 0, 0, 1]).max() > 1e-8  # x+1

    def test_parity_preserving_normal_op(self, asqtad, rng):
        geom = asqtad.geometry
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        xe = x * geom.even_mask[..., None]
        out = StaggeredNormalOperator(asqtad).apply(xe)
        assert np.abs(out * geom.odd_mask[..., None]).max() < 1e-13

    def test_with_boundary(self, asqtad, rng):
        cut = asqtad.with_boundary(asqtad.boundary.with_dirichlet((3,)))
        x = SpinorField.random(asqtad.geometry, nspin=1, rng=rng).data
        assert np.abs(cut.apply(x) - asqtad.apply(x)).max() > 1e-8

    def test_boundary_antiperiodic(self, weak_gauge_mod, rng):
        a = AsqtadOperator.from_gauge(weak_gauge_mod, mass=0.08)
        b = AsqtadOperator.from_gauge(
            weak_gauge_mod, mass=0.08, boundary=PHYSICAL
        )
        x = SpinorField.random(weak_gauge_mod.geometry, nspin=1, rng=rng).data
        assert np.abs(a.apply(x) - b.apply(x)).max() > 1e-8


class TestNormalOperator:
    def test_hermitian(self, asqtad, rng):
        n = StaggeredNormalOperator(asqtad, sigma=0.05)
        geom = asqtad.geometry
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        y = SpinorField.random(geom, nspin=1, rng=rng).data
        lhs = np.vdot(y, n.apply(x))
        rhs = np.vdot(n.apply(y), x)
        assert abs(lhs - rhs) < 1e-10 * abs(lhs)

    def test_positive_definite(self, asqtad, rng):
        n = StaggeredNormalOperator(asqtad)
        x = SpinorField.random(asqtad.geometry, nspin=1, rng=rng).data
        assert np.vdot(x, n.apply(x)).real > 0

    def test_equals_mdagm(self, asqtad, rng):
        n = StaggeredNormalOperator(asqtad)
        x = SpinorField.random(asqtad.geometry, nspin=1, rng=rng).data
        ref = asqtad.apply_dagger(asqtad.apply(x))
        assert np.abs(n.apply(x) - ref).max() < 1e-11

    def test_shift_composition(self, asqtad, rng):
        n = StaggeredNormalOperator(asqtad, 0.1).shifted(0.2)
        assert n.sigma == pytest.approx(0.3)
        x = SpinorField.random(asqtad.geometry, nspin=1, rng=rng).data
        ref = StaggeredNormalOperator(asqtad, 0.3).apply(x)
        assert np.allclose(n.apply(x), ref)
