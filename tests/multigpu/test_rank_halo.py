"""Per-rank halo engine vs the global-view exchanger: same bits, same
layout arithmetic, same cost accounting — under every SPMD backend."""

import numpy as np
import pytest

from repro.comm.backends import process_backend_available, run_rank_programs
from repro.comm.grid import ProcessGrid
from repro.lattice import Geometry, SpinorField
from repro.multigpu.halo import HaloExchanger
from repro.multigpu.layout import HaloLayout
from repro.multigpu.partition import BlockPartition
from repro.multigpu.rank_halo import RankHaloEngine
from repro.util.counters import tally

backend_param = pytest.mark.parametrize(
    "backend",
    [
        "sequential",
        "threads",
        pytest.param(
            "processes",
            marks=pytest.mark.skipif(
                not process_backend_available(),
                reason="needs the POSIX fork start method",
            ),
        ),
    ],
)


def _partition(geom448):
    return BlockPartition(geom448, ProcessGrid((1, 1, 2, 2)))


def _exchange_program(comm, task):
    """One rank's whole spinor exchange, as an SPMD rank program."""
    partition, block, boundary = task
    layout = HaloLayout(partition, depth=1)
    engine = RankHaloEngine(layout, comm, boundary=boundary)
    return engine.exchange_spinor(block).copy()


class TestLayoutEquivalence:
    def test_layout_matches_exchanger_geometry(self, geom448):
        partition = _partition(geom448)
        exch = HaloExchanger(partition, depth=1)
        layout = HaloLayout(partition, depth=1)
        assert layout.padded_dims == exch.padded_dims
        assert layout.padded_geometry.dims == exch.padded_geometry.dims
        assert layout.partitioned_dims == exch.partitioned_dims
        for rank in range(partition.n_ranks):
            assert layout.padded_origin(rank) == exch.padded_origin(rank)

    def test_interior_roundtrip(self, geom448):
        partition = _partition(geom448)
        layout = HaloLayout(partition, depth=1)
        block = SpinorField.random(geom448, rng=5).data[
            partition.slices(0)
        ]
        pad = np.zeros(layout.padded_shape(block, 0), dtype=block.dtype)
        pad[layout.interior_slices()] = block
        assert np.array_equal(layout.extract_interior(pad), block)


class TestRankEnginesMatchGlobalExchanger:
    @backend_param
    def test_spinor_exchange_bitwise(self, geom448, backend):
        from repro.dirac.base import BoundarySpec

        partition = _partition(geom448)
        boundary = BoundarySpec(("periodic",) * 3 + ("antiperiodic",))
        field = SpinorField.random(geom448, rng=17).data
        blocks = partition.split(field)

        exch = HaloExchanger(partition, depth=1, boundary=boundary)
        reference = exch.exchange_spinor(blocks)

        outcomes = run_rank_programs(
            _exchange_program,
            partition.n_ranks,
            payloads=[(partition, blocks[r], boundary)
                      for r in range(partition.n_ranks)],
            backend=backend,
            timeout=30.0,
        )
        for rank, outcome in enumerate(outcomes):
            assert np.array_equal(outcome.value, reference[rank]), (
                f"rank {rank} padded array diverged under {backend}"
            )

    def test_gauge_exchange_bitwise(self, geom448, weak_gauge448):
        partition = _partition(geom448)
        exch = HaloExchanger(partition, depth=1)
        blocks = partition.split(weak_gauge448.data, lead=1)
        reference = exch.exchange_gauge(blocks)

        def program(comm, task):
            partition, block = task
            engine = RankHaloEngine(HaloLayout(partition, depth=1), comm)
            return engine.exchange_gauge(block)

        outcomes = run_rank_programs(
            program,
            partition.n_ranks,
            payloads=[(partition, blocks[r]) for r in range(partition.n_ranks)],
            backend="sequential",
            timeout=30.0,
        )
        for rank, outcome in enumerate(outcomes):
            assert np.array_equal(outcome.value, reference[rank])

    @backend_param
    def test_merged_tallies_match_global_view(self, geom448, backend):
        from repro.dirac.base import PERIODIC

        partition = _partition(geom448)
        field = SpinorField.random(geom448, rng=23).data
        blocks = partition.split(field)

        with tally() as globalview:
            exch = HaloExchanger(partition, depth=1)
            exch.exchange_spinor(blocks)
        with tally() as merged:
            run_rank_programs(
                _exchange_program,
                partition.n_ranks,
                payloads=[(partition, blocks[r], PERIODIC)
                          for r in range(partition.n_ranks)],
                backend=backend,
                timeout=30.0,
            )
        assert merged.comm_bytes == globalview.comm_bytes
        assert merged.messages == globalview.messages
        assert merged.bytes_moved == globalview.bytes_moved
        assert merged.flops == globalview.flops == 0

    def test_no_messages_left_behind(self, geom448):
        from repro.dirac.base import PERIODIC

        partition = _partition(geom448)
        blocks = partition.split(SpinorField.random(geom448, rng=3).data)
        outcomes = run_rank_programs(
            _exchange_program,
            partition.n_ranks,
            payloads=[(partition, blocks[r], PERIODIC)
                      for r in range(partition.n_ranks)],
            backend="sequential",
            timeout=30.0,
        )
        assert len(outcomes) == partition.n_ranks


def _driver_engines(partition, **kwargs):
    """All ranks' engines over one mailbox, driven from a single thread
    (driver mode) so the sends/receives pair up without a backend."""
    from repro.comm import Mailbox, MailboxCommunicator

    layout = HaloLayout(partition, depth=1)
    mailbox = Mailbox(partition.n_ranks)
    return layout, [
        RankHaloEngine(layout, MailboxCommunicator(mailbox, r), **kwargs)
        for r in range(partition.n_ranks)
    ]


def _driver_exchange(engines, blocks):
    """Full spinor exchange in the global-view phase order: all stages,
    then per-face all sends before all receives."""
    pads = [e.stage(b) for e, b in zip(engines, blocks)]
    for mu in engines[0].partitioned_dims:
        for sign in (+1, -1):
            for e, b in zip(engines, blocks):
                e.send_faces(b, mu, sign)
            for e, pad in zip(engines, pads):
                e.recv_face(pad, mu, sign)
    return pads


class TestGatherAccounting:
    """Satellite fix: ``bytes_moved`` of the gather kernel is recorded
    *after* boundary and precision handling — a zero-boundary fill never
    reads the field, a quantized face is written at wire size."""

    def test_interior_face_charges_read_plus_write(self, geom448):
        partition = _partition(geom448)
        layout, engines = _driver_engines(partition)
        block = partition.split(SpinorField.random(geom448, rng=41).data)[0]
        face = np.ascontiguousarray(block[layout.face_slices(3, +1)])
        # Rank 0's forward-t neighbor is rank 1: an interior face.
        with tally() as t:
            engines[0].send_faces(block, 3, +1)
        assert t.bytes_moved == 2 * face.nbytes
        assert t.comm_bytes == face.nbytes
        assert t.messages == 1

    def test_zero_boundary_face_is_write_only(self, geom448):
        from repro.dirac.base import BoundarySpec

        partition = _partition(geom448)
        boundary = BoundarySpec(("periodic",) * 3 + ("zero",))
        layout, engines = _driver_engines(partition, boundary=boundary)
        block = partition.split(SpinorField.random(geom448, rng=41).data)[0]
        face = np.ascontiguousarray(block[layout.face_slices(3, -1)])
        # Rank 0's backward-t face wraps the global boundary: with a zero
        # (Dirichlet) condition the gather is a fill, not a copy.
        with tally() as t:
            engines[0].send_faces(block, 3, -1)
        assert t.bytes_moved == face.nbytes
        assert t.comm_bytes == face.nbytes

    def test_quantized_face_charges_wire_bytes(self, geom448):
        from repro.multigpu.layout import halo_logical_nbytes
        from repro.precision import HALF

        partition = _partition(geom448)
        layout, engines = _driver_engines(partition, precision=HALF)
        block = partition.split(SpinorField.random(geom448, rng=41).data)[0]
        face = np.ascontiguousarray(block[layout.face_slices(3, +1)])
        wire = halo_logical_nbytes(
            HALF.convert(face, site_axes=2), HALF, site_axes=2
        )
        assert wire < face.nbytes
        with tally() as t:
            engines[0].send_faces(block, 3, +1)
        # Read at storage precision, written at wire precision.
        assert t.bytes_moved == face.nbytes + wire
        assert t.comm_bytes == wire

    def test_metric_equals_tally_for_quantized_halos(self, geom448):
        """Satellite fix: ``comm_bytes_total`` counts the same wire bytes
        the tally counts, even when the numpy carrier is bigger."""
        from repro.metrics.registry import metrics_scope
        from repro.precision import HALF

        partition = _partition(geom448)
        _, engines = _driver_engines(partition, precision=HALF)
        blocks = partition.split(SpinorField.random(geom448, rng=43).data)
        with metrics_scope() as reg, tally() as t:
            for mu in engines[0].partitioned_dims:
                for sign in (+1, -1):
                    for e, b in zip(engines, blocks):
                        e.send_faces(b, mu, sign)
        metric = sum(
            c.value for _, c in reg.counters.items()
            if c.name == "comm_bytes_total"
        )
        assert t.comm_bytes == metric > 0


class TestPadReuse:
    def test_spinor_pad_is_reused_gauge_is_not(self, geom448):
        partition = _partition(geom448)
        _, engines = _driver_engines(partition)
        blocks = partition.split(SpinorField.random(geom448, rng=9).data)
        first = [e.stage(b) for e, b in zip(engines, blocks)]
        second = [e.stage(b) for e, b in zip(engines, blocks)]
        for a, b in zip(first, second):
            assert a is b  # same staging buffer, GPU-ghost-buffer contract
        fresh = [e.stage(b, reuse=False) for e, b in zip(engines, blocks)]
        for a, b in zip(first, fresh):
            assert a is not b

    def test_distinct_shapes_do_not_alias(self, geom448):
        """One pooled buffer per (lead, shape, dtype): a batched exchange
        must never scribble over the single-field staging buffer."""
        partition = _partition(geom448)
        _, engines = _driver_engines(partition)
        engine = engines[0]
        block = partition.split(SpinorField.random(geom448, rng=9).data)[0]
        batch = np.stack([block, block])
        single = engine.stage(block)
        batched = engine.stage(batch, lead=1)
        assert single is not batched
        assert not np.shares_memory(single, batched)
        assert engine.stage(block) is single  # pool key survived
        assert engine.stage(batch, lead=1) is batched

    def test_reused_pad_matches_fresh_exchange_and_corners_stay_zero(
        self, geom448
    ):
        """The GPU-ghost-buffer contract, end to end: a second exchange
        through the *same* pooled buffer produces bit-identical ghosts,
        and the corner sites (which no exchange ever writes) are still
        zero."""
        partition = _partition(geom448)
        layout, engines = _driver_engines(partition)
        exch = HaloExchanger(partition, depth=1)
        for rng_seed in (9, 10):  # second iteration reuses the pads
            field = SpinorField.random(geom448, rng=rng_seed).data
            blocks = partition.split(field)
            reference = exch.exchange_spinor(blocks)
            pads = _driver_exchange(engines, blocks)
            written = np.zeros(pads[0].shape, dtype=bool)
            written[layout.interior_slices()] = True
            for mu in layout.partitioned_dims:
                for sign in (+1, -1):
                    written[layout.ghost_slices(mu, sign)] = True
            for rank, pad in enumerate(pads):
                assert np.array_equal(pad, reference[rank]), rank
                assert not pad[~written].any(), rank
