"""Per-rank halo engine vs the global-view exchanger: same bits, same
layout arithmetic, same cost accounting — under every SPMD backend."""

import numpy as np
import pytest

from repro.comm.backends import process_backend_available, run_rank_programs
from repro.comm.grid import ProcessGrid
from repro.lattice import Geometry, SpinorField
from repro.multigpu.halo import HaloExchanger
from repro.multigpu.layout import HaloLayout
from repro.multigpu.partition import BlockPartition
from repro.multigpu.rank_halo import RankHaloEngine
from repro.util.counters import tally

backend_param = pytest.mark.parametrize(
    "backend",
    [
        "sequential",
        "threads",
        pytest.param(
            "processes",
            marks=pytest.mark.skipif(
                not process_backend_available(),
                reason="needs the POSIX fork start method",
            ),
        ),
    ],
)


def _partition(geom448):
    return BlockPartition(geom448, ProcessGrid((1, 1, 2, 2)))


def _exchange_program(comm, task):
    """One rank's whole spinor exchange, as an SPMD rank program."""
    partition, block, boundary = task
    layout = HaloLayout(partition, depth=1)
    engine = RankHaloEngine(layout, comm, boundary=boundary)
    return engine.exchange_spinor(block).copy()


class TestLayoutEquivalence:
    def test_layout_matches_exchanger_geometry(self, geom448):
        partition = _partition(geom448)
        exch = HaloExchanger(partition, depth=1)
        layout = HaloLayout(partition, depth=1)
        assert layout.padded_dims == exch.padded_dims
        assert layout.padded_geometry.dims == exch.padded_geometry.dims
        assert layout.partitioned_dims == exch.partitioned_dims
        for rank in range(partition.n_ranks):
            assert layout.padded_origin(rank) == exch.padded_origin(rank)

    def test_interior_roundtrip(self, geom448):
        partition = _partition(geom448)
        layout = HaloLayout(partition, depth=1)
        block = SpinorField.random(geom448, rng=5).data[
            partition.slices(0)
        ]
        pad = np.zeros(layout.padded_shape(block, 0), dtype=block.dtype)
        pad[layout.interior_slices()] = block
        assert np.array_equal(layout.extract_interior(pad), block)


class TestRankEnginesMatchGlobalExchanger:
    @backend_param
    def test_spinor_exchange_bitwise(self, geom448, backend):
        from repro.dirac.base import BoundarySpec

        partition = _partition(geom448)
        boundary = BoundarySpec(("periodic",) * 3 + ("antiperiodic",))
        field = SpinorField.random(geom448, rng=17).data
        blocks = partition.split(field)

        exch = HaloExchanger(partition, depth=1, boundary=boundary)
        reference = exch.exchange_spinor(blocks)

        outcomes = run_rank_programs(
            _exchange_program,
            partition.n_ranks,
            payloads=[(partition, blocks[r], boundary)
                      for r in range(partition.n_ranks)],
            backend=backend,
            timeout=30.0,
        )
        for rank, outcome in enumerate(outcomes):
            assert np.array_equal(outcome.value, reference[rank]), (
                f"rank {rank} padded array diverged under {backend}"
            )

    def test_gauge_exchange_bitwise(self, geom448, weak_gauge448):
        partition = _partition(geom448)
        exch = HaloExchanger(partition, depth=1)
        blocks = partition.split(weak_gauge448.data, lead=1)
        reference = exch.exchange_gauge(blocks)

        def program(comm, task):
            partition, block = task
            engine = RankHaloEngine(HaloLayout(partition, depth=1), comm)
            return engine.exchange_gauge(block)

        outcomes = run_rank_programs(
            program,
            partition.n_ranks,
            payloads=[(partition, blocks[r]) for r in range(partition.n_ranks)],
            backend="sequential",
            timeout=30.0,
        )
        for rank, outcome in enumerate(outcomes):
            assert np.array_equal(outcome.value, reference[rank])

    @backend_param
    def test_merged_tallies_match_global_view(self, geom448, backend):
        from repro.dirac.base import PERIODIC

        partition = _partition(geom448)
        field = SpinorField.random(geom448, rng=23).data
        blocks = partition.split(field)

        with tally() as globalview:
            exch = HaloExchanger(partition, depth=1)
            exch.exchange_spinor(blocks)
        with tally() as merged:
            run_rank_programs(
                _exchange_program,
                partition.n_ranks,
                payloads=[(partition, blocks[r], PERIODIC)
                          for r in range(partition.n_ranks)],
                backend=backend,
                timeout=30.0,
            )
        assert merged.comm_bytes == globalview.comm_bytes
        assert merged.messages == globalview.messages
        assert merged.bytes_moved == globalview.bytes_moved
        assert merged.flops == globalview.flops == 0

    def test_no_messages_left_behind(self, geom448):
        from repro.dirac.base import PERIODIC

        partition = _partition(geom448)
        blocks = partition.split(SpinorField.random(geom448, rng=3).data)
        outcomes = run_rank_programs(
            _exchange_program,
            partition.n_ranks,
            payloads=[(partition, blocks[r], PERIODIC)
                      for r in range(partition.n_ranks)],
            backend="sequential",
            timeout=30.0,
        )
        assert len(outcomes) == partition.n_ranks


class TestPadReuse:
    def test_spinor_pad_is_reused_gauge_is_not(self, geom448):
        from repro.comm import Mailbox, MailboxCommunicator

        partition = _partition(geom448)
        layout = HaloLayout(partition, depth=1)
        # Drive all four engines from one thread (driver mode) so the
        # sends/receives pair up without a backend.
        mailbox = Mailbox(partition.n_ranks)
        engines = [
            RankHaloEngine(layout, MailboxCommunicator(mailbox, r))
            for r in range(partition.n_ranks)
        ]
        blocks = partition.split(SpinorField.random(geom448, rng=9).data)
        first = [e.stage(b) for e, b in zip(engines, blocks)]
        second = [e.stage(b) for e, b in zip(engines, blocks)]
        for a, b in zip(first, second):
            assert a is b  # same staging buffer, GPU-ghost-buffer contract
        fresh = [e.stage(b, reuse=False) for e, b in zip(engines, blocks)]
        for a, b in zip(first, fresh):
            assert a is not b
