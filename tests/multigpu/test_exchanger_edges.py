"""Halo-exchanger edge cases: serial grids, self-neighbors, repeated use."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dirac import PHYSICAL, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition, DistributedOperator, HaloExchanger


class TestSerialGrid:
    def test_no_padding_no_messages(self, geom44, rng):
        part = BlockPartition(geom44, ProcessGrid((1, 1, 1, 1)))
        ex = HaloExchanger(part, depth=1)
        x = SpinorField.random(geom44, rng=rng).data
        padded = ex.exchange_spinor([x])
        assert padded[0].shape == x.shape  # nothing partitioned: no pad
        assert ex.mailbox.pending() == 0
        assert np.array_equal(ex.extract_interior(padded[0]), x)

    def test_distributed_op_on_one_rank_equals_serial(self, geom44, rng):
        gauge = GaugeField.weak(geom44, epsilon=0.25, rng=2)
        serial = WilsonCloverOperator(gauge, mass=0.2, csw=1.0,
                                      boundary=PHYSICAL)
        dist = DistributedOperator.wilson_clover(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 1, 1)), boundary=PHYSICAL
        )
        x = SpinorField.random(geom44, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-13


class TestSelfNeighbor:
    def test_two_rank_wraparound_both_ghosts_from_same_peer(self, rng):
        """With a 2-rank grid each rank's forward and backward neighbors
        are the same peer; both ghosts must still land correctly."""
        geom = Geometry((4, 4, 4, 8))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        ex = HaloExchanger(part, depth=1)
        t_field = np.broadcast_to(
            geom.coordinate(3)[..., None, None].astype(complex),
            geom.shape + (4, 3),
        ).copy()
        padded = ex.exchange_spinor(part.split(t_field))
        # rank 0 holds t=0..3: backward ghost t=7, forward ghost t=4.
        assert np.all(padded[0][0].real == 7)
        assert np.all(padded[0][-1].real == 4)
        # rank 1 holds t=4..7: backward ghost t=3, forward ghost t=0.
        assert np.all(padded[1][0].real == 3)
        assert np.all(padded[1][-1].real == 0)


class TestRepeatedUse:
    def test_exchanger_is_reusable(self, geom448, rng):
        """Mailbox queues must drain completely every exchange so the
        engine can run thousands of applications (one per matvec)."""
        part = BlockPartition(geom448, ProcessGrid((1, 1, 2, 2)))
        ex = HaloExchanger(part, depth=1)
        for i in range(5):
            x = SpinorField.random(geom448, rng=i).data
            padded = ex.exchange_spinor(part.split(x))
            assert ex.mailbox.pending() == 0
            for rank, pad in enumerate(padded):
                assert np.array_equal(
                    ex.extract_interior(pad), part.split(x)[rank]
                )

    def test_mismatched_rank_count_rejected(self, geom448, rng):
        part = BlockPartition(geom448, ProcessGrid((1, 1, 2, 2)))
        ex = HaloExchanger(part, depth=1)
        with pytest.raises(ValueError):
            ex.exchange_spinor([SpinorField.random(geom448, rng=rng).data])
