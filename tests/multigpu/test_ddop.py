"""Distributed operators: equality with the serial reference for every
discretization, partitioning, boundary condition and execution path."""

import numpy as np
import pytest

from repro.comm import CommLog, ProcessGrid
from repro.dirac import (
    AsqtadOperator,
    NaiveStaggeredOperator,
    PERIODIC,
    PHYSICAL,
    WilsonCloverOperator,
)
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import DistributedOperator


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 8))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.3, rng=55)


GRIDS = [
    ProcessGrid((1, 1, 1, 2)),
    ProcessGrid((1, 1, 2, 2)),
    ProcessGrid((2, 1, 1, 2)),
    ProcessGrid((2, 2, 2, 2)),
]


class TestWilsonDistributed:
    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: g.label)
    @pytest.mark.parametrize("bc", [PERIODIC, PHYSICAL], ids=["per", "anti"])
    def test_fused_equals_serial(self, geom, gauge, grid, bc, rng):
        serial = WilsonCloverOperator(gauge, mass=0.1, csw=1.1, boundary=bc)
        dist = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.1, grid, boundary=bc
        )
        x = SpinorField.random(geom, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-12

    @pytest.mark.parametrize("grid", GRIDS, ids=lambda g: g.label)
    def test_split_kernel_path_equals_serial(self, geom, gauge, grid, rng):
        """Interior kernel + per-dimension exterior kernels == full
        operator (the Sec. 6.2 decomposition)."""
        serial = WilsonCloverOperator(gauge, mass=0.1, csw=1.1)
        dist = DistributedOperator.wilson_clover(gauge, 0.1, 1.1, grid)
        x = SpinorField.random(geom, rng=rng).data
        out = dist.gather(dist.apply_split(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-11

    def test_dagger_equals_serial(self, geom, gauge, rng):
        grid = ProcessGrid((1, 1, 2, 2))
        serial = WilsonCloverOperator(gauge, mass=0.1, csw=1.1, boundary=PHYSICAL)
        dist = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.1, grid, boundary=PHYSICAL
        )
        x = SpinorField.random(geom, rng=rng).data
        out = dist.gather(dist.apply_dagger(dist.scatter(x)))
        assert np.abs(out - serial.apply_dagger(x)).max() < 1e-12

    def test_plain_wilson_no_clover(self, geom, gauge, rng):
        grid = ProcessGrid((2, 1, 2, 1))
        serial = WilsonCloverOperator(gauge, mass=0.1, csw=0.0)
        dist = DistributedOperator.wilson_clover(gauge, 0.1, 0.0, grid)
        x = SpinorField.random(geom, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-12


class TestStaggeredDistributed:
    @pytest.mark.parametrize(
        "grid",
        [ProcessGrid((1, 1, 1, 2)), ProcessGrid((1, 2, 2, 2))],
        ids=lambda g: g.label,
    )
    def test_naive_staggered(self, geom, gauge, grid, rng):
        serial = NaiveStaggeredOperator(gauge, mass=0.1, boundary=PHYSICAL)
        dist = DistributedOperator.naive_staggered(
            gauge, 0.1, grid, boundary=PHYSICAL
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-12

    def test_asqtad_depth3_halo(self, geom, gauge, rng):
        """The 3-hop Naik term across T with depth-3 ghosts."""
        serial = AsqtadOperator.from_gauge(gauge, mass=0.05, boundary=PHYSICAL)
        dist = DistributedOperator.asqtad(
            serial.links, 0.05, ProcessGrid((1, 1, 1, 2)), boundary=PHYSICAL
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-12

    @pytest.mark.slow
    def test_asqtad_multi_dim(self, rng):
        geom = Geometry((4, 8, 8, 8))
        gauge = GaugeField.weak(geom, epsilon=0.3, rng=77)
        serial = AsqtadOperator.from_gauge(gauge, mass=0.05)
        dist = DistributedOperator.asqtad(
            serial.links, 0.05, ProcessGrid((1, 2, 2, 2))
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        assert (
            np.abs(
                dist.gather(dist.apply(dist.scatter(x))) - serial.apply(x)
            ).max()
            < 1e-12
        )

    def test_asqtad_split_kernels(self, geom, gauge, rng):
        serial = AsqtadOperator.from_gauge(gauge, mass=0.05)
        dist = DistributedOperator.asqtad(
            serial.links, 0.05, ProcessGrid((1, 1, 1, 2))
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        out = dist.gather(dist.apply_split(dist.scatter(x)))
        assert np.abs(out - serial.apply(x)).max() < 1e-12

    def test_asqtad_rejects_thin_blocks(self, geom, gauge):
        links = AsqtadOperator.from_gauge(gauge, mass=0.05).links
        with pytest.raises(ValueError):
            DistributedOperator.asqtad(links, 0.05, ProcessGrid((2, 1, 1, 1)))


class TestNormalAndLogging:
    def test_distributed_normal(self, geom, gauge, rng):
        serial = NaiveStaggeredOperator(gauge, mass=0.2, boundary=PHYSICAL)
        dist = DistributedOperator.naive_staggered(
            gauge, 0.2, ProcessGrid((1, 1, 2, 2)), boundary=PHYSICAL
        )
        normal = dist.normal()
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        ref = serial.apply_dagger(serial.apply(x))
        out = dist.gather(normal.apply(dist.scatter(x)))
        assert np.abs(out - ref).max() < 1e-12

    def test_shifted_normal(self, geom, gauge, rng):
        dist = DistributedOperator.naive_staggered(
            gauge, 0.2, ProcessGrid((1, 1, 1, 2))
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        xs = dist.scatter(x)
        base = dist.gather(dist.normal().apply(xs))
        shifted = dist.gather(dist.normal().shifted(0.3).apply(xs))
        assert np.allclose(shifted, base + 0.3 * x)

    def test_gauge_exchanged_once(self, geom, gauge, rng):
        log = CommLog()
        dist = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.0, ProcessGrid((1, 1, 1, 2)), log=log
        )
        gauge_msgs = sum(1 for e in log.events if e.kind == "gauge")
        x = dist.scatter(SpinorField.random(geom, rng=rng).data)
        dist.apply(x)
        dist.apply(x)
        after = sum(1 for e in log.events if e.kind == "gauge")
        assert after == gauge_msgs  # no further gauge traffic
        spinor_msgs = sum(1 for e in log.events if e.kind == "spinor")
        assert spinor_msgs == 2 * 2 * 2  # 2 applies x 2 dirs x 2 ranks
