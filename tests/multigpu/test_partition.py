"""Lattice block decomposition."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.lattice import Geometry, SpinorField
from repro.multigpu import BlockPartition


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 8, 8))
    grid = ProcessGrid((1, 1, 2, 4))
    return geom, grid, BlockPartition(geom, grid)


class TestConstruction:
    def test_local_dims(self, setup):
        geom, grid, part = setup
        assert part.local_dims == (4, 4, 4, 2)
        assert part.local_volume == 128
        assert part.n_ranks == 8

    def test_indivisible_rejected(self):
        with pytest.raises(ValueError):
            BlockPartition(Geometry((4, 4, 4, 8)), ProcessGrid((1, 1, 1, 3)))

    def test_odd_local_extent_rejected(self):
        # 6 / 1... 6 over 3 ranks would give local extent 2 (fine), but 6
        # over... use 12 over 2 = 6 fine; over 6 = 2 fine; over 3 = 4 fine.
        # Use extent 4 over 2 ranks -> local 2 (ok); extent 2 over 2 -> 1.
        with pytest.raises(ValueError):
            BlockPartition(Geometry((2, 4, 4, 4)), ProcessGrid((2, 1, 1, 1)))

    def test_origin(self, setup):
        geom, grid, part = setup
        origins = {part.origin(r) for r in range(part.n_ranks)}
        assert (0, 0, 0, 0) in origins
        assert (0, 0, 4, 6) in origins
        assert len(origins) == 8


class TestSplitAssemble:
    def test_roundtrip_spinor(self, setup, rng):
        geom, grid, part = setup
        x = SpinorField.random(geom, rng=rng).data
        blocks = part.split(x)
        assert len(blocks) == 8
        assert blocks[0].shape == (2, 4, 4, 4, 4, 3)
        assert np.array_equal(part.assemble(blocks), x)

    def test_roundtrip_gauge(self, setup, rng):
        from repro.lattice import GaugeField

        geom, grid, part = setup
        u = GaugeField.hot(geom, rng=rng)
        blocks = part.split(u.data, lead=1)
        assert blocks[0].shape == (4, 2, 4, 4, 4, 3, 3)
        assert np.array_equal(part.assemble(blocks, lead=1), u.data)

    def test_split_gauge_wrapper(self, setup):
        from repro.lattice import GaugeField

        geom, grid, part = setup
        u = GaugeField.unit(geom)
        locals_ = part.split_gauge(u)
        assert len(locals_) == 8
        assert locals_[0].geometry == part.local_geometry

    def test_blocks_are_copies(self, setup, rng):
        geom, grid, part = setup
        x = SpinorField.random(geom, rng=rng).data
        blocks = part.split(x)
        blocks[0][...] = 0
        assert np.abs(x).max() > 0

    def test_blocks_tile_disjointly(self, setup):
        geom, grid, part = setup
        cover = np.zeros(geom.shape)
        for r in range(part.n_ranks):
            cover[part.slices(r)] += 1
        assert np.all(cover == 1)

    def test_block_content_matches_origin(self, setup):
        geom, grid, part = setup
        t_coord = geom.coordinate(3).astype(float)
        blocks = part.split(t_coord)
        for r in range(part.n_ranks):
            origin = part.origin(r)
            assert blocks[r].min() == origin[3]

    def test_assemble_wrong_count(self, setup):
        geom, grid, part = setup
        with pytest.raises(ValueError):
            part.assemble([np.zeros((2, 4, 4, 4))] * 3)

    def test_split_wrong_shape(self, setup):
        geom, grid, part = setup
        with pytest.raises(ValueError):
            part.split(np.zeros((2, 2, 2, 2)))
