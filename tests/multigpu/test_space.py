"""DistributedSpace: global reductions over per-rank blocks."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.lattice import Geometry, SpinorField
from repro.multigpu import BlockPartition, DistributedSpace
from repro.util.counters import tally


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 8))
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    return geom, part, DistributedSpace(part)


class TestReductions:
    def test_dot_matches_global(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        assert space.dot(space.scatter(x), space.scatter(y)) == pytest.approx(
            complex(np.vdot(x, y))
        )

    def test_norm2_matches_global(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        assert space.norm2(space.scatter(x)) == pytest.approx(
            float(np.vdot(x, x).real)
        )

    def test_rdot(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        assert space.rdot(space.scatter(x), space.scatter(y)) == pytest.approx(
            float(np.vdot(x, y).real)
        )

    def test_each_reduction_counted_once(self, setup, rng):
        geom, part, space = setup
        xs = space.scatter(SpinorField.random(geom, rng=rng).data)
        with tally() as t:
            space.norm2(xs)
            space.dot(xs, xs)
        assert t.reductions == 2


class TestUpdates:
    def test_axpy(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        out = space.asarray(space.axpy(2.0, space.scatter(x), space.scatter(y)))
        assert np.allclose(out, y + 2 * x)

    def test_xpay_scale_copy(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        xs, ys = space.scatter(x), space.scatter(y)
        assert np.allclose(space.asarray(space.xpay(xs, -1.5, ys)), x - 1.5 * y)
        assert np.allclose(space.asarray(space.scale(1j, xs)), 1j * x)
        copied = space.copy(xs)
        copied[0][...] = 0
        assert np.allclose(space.asarray(xs), x)

    def test_zeros_like(self, setup, rng):
        geom, part, space = setup
        xs = space.scatter(SpinorField.random(geom, rng=rng).data)
        assert space.norm2(space.zeros_like(xs)) == 0.0

    def test_convert_precision(self, setup, rng):
        from repro.precision import HALF

        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        out = space.convert(space.scatter(x), HALF)
        assert out[0].dtype == np.complex64
        assert np.abs(space.asarray(out) - x).max() < 1e-3 * np.abs(x).max()

    def test_scatter_asarray_roundtrip(self, setup, rng):
        geom, part, space = setup
        x = SpinorField.random(geom, rng=rng).data
        assert np.array_equal(space.asarray(space.scatter(x)), x)
