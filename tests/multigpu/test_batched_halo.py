"""Multi-RHS halo exchange: the message count of a distributed stencil
application must be independent of the batch size (all N faces ride one
message per neighbor per direction), while the payload grows N-fold.
This is the property that keeps the latency term of the strong-scaling
communication model flat under multi-RHS batching."""

import numpy as np
import pytest

from repro.comm.grid import ProcessGrid
from repro.lattice import SpinorField
from repro.multigpu.ddop import DistributedOperator
from repro.util.counters import tally


@pytest.fixture(scope="module")
def dist_op(weak_gauge448):
    return DistributedOperator.wilson_clover(
        weak_gauge448, 0.1, 1.0, ProcessGrid((1, 1, 2, 2))
    )


def _comm_profile(dist_op, global_field):
    xs = dist_op.scatter(global_field)
    with tally() as t:
        dist_op.apply(xs)
    return t.messages, t.comm_bytes


@pytest.mark.parametrize("batch", [2, 4, 12])
def test_message_count_independent_of_batch(dist_op, geom448, batch):
    single = SpinorField.random(geom448, rng=1).data
    batched = np.stack(
        [SpinorField.random(geom448, rng=1 + i).data for i in range(batch)]
    )
    messages_1, bytes_1 = _comm_profile(dist_op, single)
    messages_b, bytes_b = _comm_profile(dist_op, batched)
    assert messages_1 > 0
    assert messages_b == messages_1
    assert bytes_b == batch * bytes_1


def test_batched_apply_matches_stacked(dist_op, geom448):
    """Rounding-level agreement: the batched rank-local stencil runs the
    stacked-GEMM fast path, which reassociates the same contraction."""
    batched = np.stack(
        [SpinorField.random(geom448, rng=50 + i).data for i in range(3)]
    )
    out_b = dist_op.gather(dist_op.apply(dist_op.scatter(batched)))
    out_s = np.stack(
        [
            dist_op.gather(dist_op.apply(dist_op.scatter(batched[i])))
            for i in range(3)
        ]
    )
    assert np.allclose(out_b, out_s, rtol=1e-13, atol=1e-13)


def test_split_path_matches_batched(dist_op, geom448):
    """The interior/exterior decomposition gives the same batched answer
    as the fused apply."""
    batched = np.stack(
        [SpinorField.random(geom448, rng=70 + i).data for i in range(3)]
    )
    xs = dist_op.scatter(batched)
    fused = dist_op.gather(dist_op.apply(xs))
    split = dist_op.gather(dist_op.apply_split(xs))
    assert np.allclose(fused, split, rtol=1e-13, atol=1e-13)


def test_batched_allreduce_single_event(geom448, weak_gauge448):
    """A batched distributed reduction is ONE allreduce carrying B
    scalars, with payload (not event count) scaling with B."""
    from repro.multigpu.partition import BlockPartition
    from repro.multigpu.space import BatchedDistributedSpace, DistributedSpace

    partition = BlockPartition(geom448, ProcessGrid((1, 1, 2, 2)))
    space1 = DistributedSpace(partition, site_axes=2)
    spaceB = BatchedDistributedSpace(partition, site_axes=2)
    single = SpinorField.random(geom448, rng=5).data
    batched = np.stack(
        [SpinorField.random(geom448, rng=5 + i).data for i in range(4)]
    )
    with tally() as t1:
        space1.norm2(space1.scatter(single))
    with tally() as tb:
        norms = spaceB.norm2(spaceB.scatter(batched))
    assert norms.shape == (4,)
    assert tb.reductions == t1.reductions == 1
    assert tb.comm_bytes == 4 * t1.comm_bytes
