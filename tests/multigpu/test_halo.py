"""Ghost-zone halo exchange: layout, contents, boundary conditions."""

import numpy as np
import pytest

from repro.comm import CommLog, ProcessGrid
from repro.dirac import PERIODIC, PHYSICAL, BoundarySpec
from repro.lattice import Geometry, SpinorField
from repro.multigpu import BlockPartition, HaloExchanger


@pytest.fixture()
def setup():
    geom = Geometry((4, 4, 4, 8))
    grid = ProcessGrid((1, 1, 2, 2))
    part = BlockPartition(geom, grid)
    log = CommLog()
    ex = HaloExchanger(part, depth=1, boundary=PERIODIC, log=log)
    return geom, part, ex, log


class TestLayout:
    def test_padded_dims(self, setup):
        geom, part, ex, log = setup
        assert part.local_dims == (4, 4, 2, 4)
        assert ex.padded_dims == (4, 4, 4, 6)  # +2 in z and t only

    def test_padding_only_on_partitioned_dims(self, setup):
        geom, part, ex, log = setup
        assert ex.padded_dims[0] == part.local_dims[0]
        assert ex.padded_dims[1] == part.local_dims[1]

    def test_padded_origin(self, setup):
        geom, part, ex, log = setup
        assert ex.padded_origin(0) == (0, 0, -1, -1)

    def test_depth_validation(self, setup):
        geom, part, ex, log = setup
        with pytest.raises(ValueError):
            HaloExchanger(part, depth=0)
        with pytest.raises(ValueError):
            HaloExchanger(part, depth=3)  # z local extent 2 < 3

    def test_interior_extraction_roundtrip(self, setup, rng):
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data
        blocks = part.split(x)
        padded = ex.exchange_spinor(blocks)
        for blk, pad in zip(blocks, padded):
            assert np.array_equal(ex.extract_interior(pad), blk)


class TestGhostContents:
    def test_ghosts_match_serial_shift(self, setup, rng):
        """The padded arrays must agree with the corresponding slab of the
        global field: ghost[x] = global[x] for every ghost site."""
        geom, part, ex, log = setup
        # Use the global t-coordinate as a recognizable payload.
        x = np.broadcast_to(
            geom.coordinate(3)[..., None, None].astype(complex),
            geom.shape + (4, 3),
        ).copy()
        padded = ex.exchange_spinor(part.split(x))
        # Rank at t-block 0: its backward t ghost holds t = 7 (wrap).
        rank0 = part.grid.rank_of((0, 0, 0, 0))
        pad = padded[rank0]
        assert np.all(pad[0, 1:-1, :, :].real == 7)  # backward ghost slab
        assert np.all(pad[-1, 1:-1, :, :].real == 4)  # forward ghost: t=4

    def test_corner_regions_stay_zero(self, setup, rng):
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data + 1.0
        padded = ex.exchange_spinor(part.split(x))
        # Corners (ghost in both z and t) are never filled.
        for pad in padded:
            assert np.abs(pad[0, 0]).max() == 0
            assert np.abs(pad[-1, -1]).max() == 0

    def test_no_pending_messages(self, setup, rng):
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data
        ex.exchange_spinor(part.split(x))
        assert ex.mailbox.pending() == 0

    def test_only_partitioned_dims_exchanged(self, setup, rng):
        geom, part, ex, log = setup
        ex.exchange_spinor(part.split(SpinorField.random(geom, rng=rng).data))
        assert log.dimensions_exchanged() == {2, 3}

    def test_message_sizes_match_faces(self, setup, rng):
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data
        ex.exchange_spinor(part.split(x))
        by_dim = log.bytes_by_dimension()
        # Per rank, per direction: one face of 24 complex doubles per site.
        t_face_sites = 4 * 4 * 2  # x*y*z local extents
        expected_t = part.n_ranks * 2 * t_face_sites * 12 * 16
        assert by_dim[3] == expected_t


class TestBoundaryConditions:
    def test_antiperiodic_flips_wrapped_faces(self, rng):
        geom = Geometry((4, 4, 4, 8))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        ex = HaloExchanger(part, depth=1, boundary=PHYSICAL)
        x = np.ones(geom.shape + (4, 3), dtype=np.complex128)
        padded = ex.exchange_spinor(part.split(x))
        # Block 0's backward-t ghost crossed the global boundary: -1.
        assert np.all(padded[0][0].real == -1)
        assert np.all(padded[0][-1].real == 1)  # forward ghost: interior hop
        # Top block's forward ghost wrapped: -1.
        assert np.all(padded[1][-1].real == -1)
        assert np.all(padded[1][0].real == 1)

    def test_zero_bc_blanks_wrapped_faces(self, rng):
        geom = Geometry((4, 4, 4, 8))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        bc = BoundarySpec(("periodic", "periodic", "periodic", "zero"))
        ex = HaloExchanger(part, depth=1, boundary=bc)
        x = np.ones(geom.shape + (4, 3), dtype=np.complex128)
        padded = ex.exchange_spinor(part.split(x))
        assert np.abs(padded[0][0]).max() == 0
        assert np.all(padded[0][-1].real == 1)

    def test_gauge_exchange_ignores_fermion_bc(self, rng):
        geom = Geometry((4, 4, 4, 8))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        ex = HaloExchanger(part, depth=1, boundary=PHYSICAL)
        u = np.ones((4,) + geom.shape + (3, 3), dtype=np.complex128)
        padded = ex.exchange_gauge(part.split(u, lead=1))
        assert np.all(padded[0][:, 0].real == 1)  # no sign flip


class TestDepth3:
    def test_three_deep_ghosts(self, rng):
        geom = Geometry((4, 4, 4, 8))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        ex = HaloExchanger(part, depth=3)
        x = np.broadcast_to(
            geom.coordinate(3)[..., None].astype(complex), geom.shape + (3,)
        ).copy()
        padded = ex.exchange_spinor(part.split(x))
        # Block 0 covers t = 0..3; backward ghost slabs hold t = 5, 6, 7.
        assert padded[0].shape[0] == 4 + 6
        assert np.all(padded[0][0].real == 5)
        assert np.all(padded[0][2].real == 7)
        assert np.all(padded[0][-3].real == 4)
        assert np.all(padded[0][-1].real == 6)


class TestBufferReuse:
    def test_spinor_staging_buffers_are_reused(self, setup, rng):
        """Consecutive spinor exchanges of same-shaped fields return the
        same padded arrays (one allocation for the exchanger lifetime)."""
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data
        first = ex.exchange_spinor(part.split(x))
        second = ex.exchange_spinor(part.split(x))
        for a, b in zip(first, second):
            assert a is b

    def test_reused_buffers_hold_correct_contents(self, setup, rng):
        """The second exchange fully overwrites interior and ghosts, and
        the never-written corners stay zero."""
        geom, part, ex, log = setup
        x = SpinorField.random(geom, rng=rng).data
        y = SpinorField.random(geom, rng=rng).data
        ex.exchange_spinor(part.split(x))
        padded = ex.exchange_spinor(part.split(y))
        locals_y = part.split(y)
        for rank, pad in enumerate(padded):
            assert np.array_equal(pad[ex.interior_slices()], locals_y[rank])
            # z/t corner of the padded array was never written by either
            # exchange and must still be zero.
            assert np.abs(pad[0, 0, 0, 0]).max() == 0.0

    def test_gauge_exchange_allocates_fresh(self, setup, rng):
        """Gauge ghosts are retained by local operators, so consecutive
        gauge exchanges must not alias each other."""
        geom, part, ex, log = setup
        u = np.asarray(
            SpinorField.random(geom, rng=rng).data[..., :3]
        )[None].repeat(4, axis=0)  # (4, sites..., 4, 3) link-like field
        first = ex.exchange_gauge(part.split(u, lead=1))
        second = ex.exchange_gauge(part.split(u, lead=1))
        for a, b in zip(first, second):
            assert a is not b
