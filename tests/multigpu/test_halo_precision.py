"""Reduced-precision ghost-zone communication."""

import numpy as np
import pytest

from repro.comm import CommLog, ProcessGrid
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition, DistributedOperator, DistributedSpace, HaloExchanger
from repro.multigpu.halo import halo_logical_nbytes
from repro.precision import HALF, SINGLE


@pytest.fixture(scope="module")
def geom():
    return Geometry((4, 4, 4, 8))


@pytest.fixture(scope="module")
def gauge(geom):
    return GaugeField.weak(geom, epsilon=0.25, rng=606)


class TestHaloPrecision:
    def test_logged_bytes_shrink(self, geom, rng):
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        x = SpinorField.random(geom, rng=rng).data
        sizes = {}
        for name, prec in [("double", None), ("single", SINGLE), ("half", HALF)]:
            log = CommLog()
            ex = HaloExchanger(part, depth=1, log=log, precision=prec)
            ex.exchange_spinor(part.split(x))
            sizes[name] = log.events[0].nbytes
        assert sizes["single"] == sizes["double"] // 2
        # Half = int16 mantissas (a quarter of the double payload) PLUS one
        # float32 norm per face site — the per-site scale of the fixed-point
        # format is real traffic and must be modeled.
        t_face_sites = 4 * 4 * 4
        assert sizes["half"] == sizes["double"] // 4 + t_face_sites * 4

    def test_modeled_face_bytes_match_helper(self, geom, rng):
        """The logged wire bytes equal halo_logical_nbytes of the face."""
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        x = SpinorField.random(geom, rng=rng).data
        face = np.empty((4, 4, 4, 1, 4, 3), dtype=np.complex128)
        for prec in (SINGLE, HALF):
            log = CommLog()
            ex = HaloExchanger(part, depth=1, log=log, precision=prec)
            ex.exchange_spinor(part.split(x))
            expected = halo_logical_nbytes(face, prec, site_axes=2)
            assert all(ev.nbytes == expected for ev in log.events)

    def test_gauge_faces_not_quantized(self, geom, rng):
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        log = CommLog()
        ex = HaloExchanger(part, depth=1, log=log, precision=HALF)
        u = GaugeField.hot(geom, rng=rng)
        padded = ex.exchange_gauge(part.split(u.data, lead=1))
        # Gauge ghosts are exchanged once per solve, in full precision.
        # Block 0 covers t=0..3; its backward-t ghost wraps to global t=7.
        ghost = padded[0][(slice(None),) + ex._ghost_slices(3, -1)]
        interior_src = u.data[:, 7, ...]
        assert np.abs(np.squeeze(ghost, axis=1) - interior_src).max() == 0

    def test_half_halo_error_bounded(self, geom, gauge, rng):
        """The distributed operator with half-precision halos matches the
        serial operator to the fixed-point format's accuracy."""
        serial = WilsonCloverOperator(gauge, mass=0.1, csw=1.0)
        dist = DistributedOperator.wilson_clover(
            gauge, 0.1, 1.0, ProcessGrid((1, 1, 2, 2)), halo_precision=HALF
        )
        x = SpinorField.random(geom, rng=rng).data
        out = dist.gather(dist.apply(dist.scatter(x)))
        ref = serial.apply(x)
        err = np.abs(out - ref).max()
        assert 0 < err < 1e-3 * np.abs(ref).max()

    def test_solver_converges_with_half_halos(self, geom, gauge, rng):
        """Mixed-precision logic tolerates quantized ghosts: a distributed
        solve with half halos still reaches single-level accuracy."""
        from repro.solvers import gcr

        dist = DistributedOperator.wilson_clover(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 1, 2)), halo_precision=HALF
        )
        exact = DistributedOperator.wilson_clover(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 1, 2))
        )
        space = DistributedSpace(dist.partition, site_axes=2)
        b = space.scatter(SpinorField.random(geom, rng=rng).data)
        # Quantized-halo operator builds the Krylov space; the exact one
        # computes the restart residuals (the QUDA pattern).
        res = gcr(
            exact.apply, b, inner_op=dist.apply, tol=1e-6, maxiter=400,
            space=space,
        )
        assert res.converged
        assert res.residual < 2e-6
