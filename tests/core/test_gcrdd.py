"""The assembled GCR-DD solver."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.core import GCRDDConfig, GCRDDSolver
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.precision import DOUBLE, PrecisionPolicy
from repro.solvers import bicgstab
from repro.util.counters import tally


@pytest.fixture(scope="module")
def system():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=404)
    op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
    b = SpinorField.random(geom, rng=11).data
    return geom, op, b


class TestGCRDD:
    def test_converges_to_bicgstab_solution(self, system):
        geom, op, b = system
        solver = GCRDDSolver(
            op, ProcessGrid((1, 1, 2, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        )
        res = solver.solve(b)
        assert res.converged
        ref = bicgstab(op.apply, b, tol=1e-10, maxiter=500)
        rel = np.linalg.norm(res.x - ref.x) / np.linalg.norm(ref.x)
        assert rel < 1e-4

    def test_true_residual_reported(self, system):
        geom, op, b = system
        solver = GCRDDSolver(
            op, ProcessGrid((1, 1, 1, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        )
        res = solver.solve(b)
        r = b - op.apply(res.x)
        assert res.residual == pytest.approx(
            np.linalg.norm(r) / np.linalg.norm(b), rel=1e-2
        )

    def test_communication_profile(self, system):
        """Most reductions must be domain-local — the communication-
        avoiding property the paper builds GCR-DD for."""
        geom, op, b = system
        solver = GCRDDSolver(
            op, ProcessGrid((1, 1, 2, 2)), GCRDDConfig(tol=1e-5, precond_steps=10)
        )
        with tally() as t:
            res = solver.solve(b)
        assert res.converged
        assert t.local_reductions > 5 * t.reductions

    def test_double_policy_reaches_tight_tolerance(self, system):
        geom, op, b = system
        cfg = GCRDDConfig(
            tol=1e-10,
            precond_steps=8,
            policy=PrecisionPolicy(DOUBLE, DOUBLE, DOUBLE),
        )
        res = GCRDDSolver(op, ProcessGrid((1, 1, 1, 2)), cfg).solve(b)
        assert res.converged
        assert res.residual < 1e-10

    def test_single_half_half_reaches_single_accuracy(self, system):
        geom, op, b = system
        res = GCRDDSolver(
            op, ProcessGrid((1, 1, 1, 2)), GCRDDConfig(tol=1e-6)
        ).solve(b)
        assert res.converged
        assert res.residual < 2e-6

    def test_initial_guess(self, system):
        geom, op, b = system
        solver = GCRDDSolver(
            op, ProcessGrid((1, 1, 1, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        )
        first = solver.solve(b)
        warm = solver.solve(b, x0=first.x)
        assert warm.iterations <= 1

    @pytest.mark.slow
    def test_more_blocks_weaker_preconditioner(self, system):
        """Shrinking the Dirichlet blocks costs outer iterations — the
        iteration-growth input of the performance model."""
        geom, op, b = system
        few = GCRDDSolver(
            op, ProcessGrid((1, 1, 1, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        ).solve(b)
        many = GCRDDSolver(
            op, ProcessGrid((2, 2, 2, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        ).solve(b)
        assert few.converged and many.converged
        assert many.iterations >= few.iterations

    def test_repr(self, system):
        geom, op, b = system
        s = GCRDDSolver(op, ProcessGrid((1, 1, 2, 2)))
        assert "ZT" in repr(s)
        assert "single-half-half" in repr(s)
