"""The overlapped halo schedule (Fig. 4, live): the nonblocking
interior/exterior path must be bit-identical to the blocking split path
on every backend, publish a measurable overlap fraction, and reuse the
persistent process pool across solves."""

import numpy as np
import pytest

from repro.comm.backends import process_backend_available
from repro.comm.grid import ProcessGrid
from repro.core.api import SolveRequest, solve
from repro.core.gcrdd import GCRDDConfig
from repro.core.spmd import SPMDGCRDDSolver
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.metrics.registry import metrics_scope
from repro.metrics.solve_report import overlap_summary, render_report
from repro.trace import tracing
from repro.util.counters import tally

BACKENDS_AVAILABLE = ["sequential", "threads"] + (
    ["processes"] if process_backend_available() else []
)


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
    grid = ProcessGrid((1, 1, 2, 2))
    cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
    b = SpinorField.random(geom, rng=30).data
    return geom, gauge, grid, cfg, b


class TestOverlapBackendParity:
    """The acceptance bar: overlap path bit-identical to the blocking
    path — solution, residual history AND cost tallies — per backend."""

    @pytest.fixture(scope="class")
    def results(self, setup):
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=cfg, schedule="split"
        )
        out = {}
        with tally() as t:
            res = solver.solve(b, backend="sequential", overlap=False)
        out["blocking"] = (res, t)
        for backend in BACKENDS_AVAILABLE:
            with tally() as t:
                res = solver.solve(b, backend=backend, overlap=True)
            out[backend] = (res, t)
        return out

    def test_all_converge_and_flag_overlap(self, results):
        for backend in BACKENDS_AVAILABLE:
            res, _ = results[backend]
            assert res.converged, backend
            assert res.extras["overlap"] is True, backend
        assert results["blocking"][0].extras["overlap"] is False

    def test_overlap_solution_bit_identical_to_blocking(self, results):
        reference, _ = results["blocking"]
        for backend in BACKENDS_AVAILABLE:
            res, _ = results[backend]
            assert np.array_equal(res.x, reference.x), backend

    def test_overlap_residual_history_bit_identical(self, results):
        reference, _ = results["blocking"]
        for backend in BACKENDS_AVAILABLE:
            res, _ = results[backend]
            assert res.iterations == reference.iterations, backend
            assert res.residual == reference.residual, backend
            assert tuple(res.residual_history) == tuple(
                reference.residual_history
            ), backend

    def test_overlap_tallies_identical_to_blocking(self, results):
        """Same wire bytes, same messages, same flops, same data motion:
        the overlapped schedule reorders work but never changes it."""
        _, reference = results["blocking"]
        for backend in BACKENDS_AVAILABLE:
            _, t = results[backend]
            assert t.comm_bytes == reference.comm_bytes, backend
            assert t.messages == reference.messages, backend
            assert t.reductions == reference.reductions, backend
            assert t.flops == reference.flops, backend
            assert t.bytes_moved == reference.bytes_moved, backend


class TestOverlapMetrics:
    def test_overlap_counters_published_per_rank(self, setup):
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=cfg, overlap=True
        )
        with metrics_scope() as reg:
            res = solver.solve(b, backend="sequential")
        assert res.converged
        exchanges = {
            int(c.labels["rank"]): c.value
            for _, c in reg.counters.items()
            if c.name == "halo_overlapped_exchanges_total"
        }
        # Every rank ran the same deterministic schedule.
        assert sorted(exchanges) == list(range(grid.size))
        assert len(set(exchanges.values())) == 1
        assert min(exchanges.values()) > 0

    def test_overlap_summary_shape(self, setup):
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=cfg, overlap=True
        )
        with metrics_scope() as reg:
            solver.solve(b, backend="sequential")
        summary = overlap_summary(reg)
        assert summary is not None
        assert summary["exchanges"] > 0
        assert summary["window_seconds"] > 0.0
        assert 0.0 <= summary["wait_seconds"] <= summary["window_seconds"] * (
            1.0 + 1e-9
        )
        assert summary["fraction"] is not None
        assert 0.0 <= summary["fraction"] <= 1.0

    def test_no_overlap_counters_on_blocking_path(self, setup):
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        with metrics_scope() as reg:
            solver.solve(b, backend="sequential")
        assert overlap_summary(reg) is None


class TestOverlapSolveReport:
    @pytest.fixture(scope="class")
    def solved(self, setup):
        _, gauge, _, cfg, b = setup
        request = SolveRequest(
            operator="wilson_clover", gauge=gauge, rhs=b, mass=0.2,
            csw=1.0, method="gcr-dd", grid=ProcessGrid((1, 1, 2, 2)),
            config=cfg, backend="sequential", overlap=True,
        )
        result = solve(request)
        assert result.converged
        return request, result

    def test_report_carries_nonzero_overlap_fraction(self, solved):
        _, result = solved
        overlap = result.report.to_dict()["ranks"]["overlap"]
        assert overlap["exchanges"] > 0
        assert overlap["fraction"] is not None
        assert 0.0 <= overlap["fraction"] <= 1.0

    def test_fingerprint_records_the_schedule(self, solved):
        _, result = solved
        fp = result.report.to_dict()["fingerprint"]["config"]
        assert fp["overlap"] is True
        assert fp["backend"] == "sequential"

    def test_render_shows_the_overlap_line(self, solved):
        _, result = solved
        text = render_report(result.report.to_dict())
        assert "halo overlap" in text
        assert "Fig. 4" in text


class TestOverlapValidation:
    def test_overlap_needs_an_spmd_backend(self, setup):
        _, gauge, _, cfg, b = setup
        with pytest.raises(ValueError, match="SPMD backend"):
            solve(SolveRequest(
                operator="wilson_clover", gauge=gauge, rhs=b, mass=0.2,
                method="gcr-dd", grid=ProcessGrid((1, 1, 2, 2)),
                config=cfg, overlap=True,
            ))

    def test_overlap_needs_gcrdd(self, setup):
        _, gauge, _, _, b = setup
        with pytest.raises(ValueError, match="gcr-dd"):
            solve(SolveRequest(
                operator="wilson_clover", gauge=gauge, rhs=b, mass=0.2,
                method="bicgstab", overlap=True,
            ))


class TestOverlapTrace:
    def test_traced_schedule_has_interior_wait_and_exterior_spans(
        self, setup
    ):
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=cfg, overlap=True
        )
        with tracing() as tr:
            res = solver.solve(b, backend="sequential")
        assert res.converged
        names = {ev.name for ev in tr.events}
        assert "interior_kernel" in names
        assert "wait_face" in names
        assert "scatter" in names
        assert any(n.startswith("exterior_") for n in names)
        waits = [ev for ev in tr.events if ev.name == "wait_face"]
        assert all(ev.stream == "comm wait" for ev in waits)
        assert all(ev.rank in range(grid.size) for ev in waits)

    def test_drain_follows_the_interior_kernel_per_rank(self, setup):
        """The Fig. 4 ordering: each rank posts its exchange, runs the
        interior kernel, then drains faces — so every wait_face span
        starts after that rank's interior kernel started."""
        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=cfg, overlap=True
        )
        with tracing() as tr:
            solver.solve(b, backend="sequential")
        for rank in range(grid.size):
            interiors = [
                ev for ev in tr.events
                if ev.name == "interior_kernel" and ev.rank == rank
            ]
            waits = [
                ev for ev in tr.events
                if ev.name == "wait_face" and ev.rank == rank
            ]
            assert interiors and waits, rank
            first_interior = min(ev.start for ev in interiors)
            assert all(ev.start >= first_interior for ev in waits), rank


@pytest.mark.skipif(
    not process_backend_available(),
    reason="needs the POSIX fork start method",
)
class TestPersistentRankPool:
    def test_workers_reused_across_solves(self, setup):
        from repro.comm.shm import pool_worker_pids

        _, gauge, grid, cfg, b = setup
        solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        first = solver.solve(b, backend="processes")
        pids = pool_worker_pids(grid.size)
        assert pids is not None and len(pids) == grid.size
        second = solver.solve(b, backend="processes")
        assert pool_worker_pids(grid.size) == pids
        assert np.array_equal(first.x, second.x)

    def test_closure_programs_fall_back_to_fork_per_call(self):
        """A program a queue cannot carry (closure over local state) still
        runs — via the legacy fork-per-call path — without killing the
        persistent pool."""
        from repro.comm.backends import run_rank_programs
        from repro.comm.shm import pool_worker_pids

        captured = 3.0

        def closure_program(comm, payload):
            return comm.allreduce_sum(np.float64(captured + comm.rank))

        before = pool_worker_pids(4)
        outcomes = run_rank_programs(
            closure_program, 4, backend="processes", timeout=30.0
        )
        expected = sum(3.0 + r for r in range(4))
        assert all(o.value == expected for o in outcomes)
        assert pool_worker_pids(4) == before
