"""GCR-DD on the even-odd preconditioned system (QUDA's production mode).

The paper's Wilson-clover solves run on the red-black Schur complement;
combining it with the Schwarz preconditioner means every Schwarz block
solves a *cut* Schur system.  These tests assert the combination is
consistent and converges to the full-system solution.
"""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.core import GCRDDConfig, GCRDDSolver
from repro.dirac import EvenOddPreconditionedWilson, WilsonCloverOperator
from repro.dirac.evenodd import parity_project
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.precision import DOUBLE, PrecisionPolicy
from repro.solvers import bicgstab


@pytest.fixture(scope="module")
def system():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=515)
    op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
    eo = EvenOddPreconditionedWilson(op)
    b = SpinorField.random(geom, rng=16).data
    return geom, op, eo, b


class TestBlockRestriction:
    def test_block_schur_is_cut_then_eliminated(self, system, rng):
        """The restricted Schur operator equals building the Schur
        complement of the restricted Wilson operator."""
        geom, op, eo, b = system
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        block = eo.restrict_to_block(part, 0)
        # Build the same object manually.
        manual = EvenOddPreconditionedWilson(op.restrict_to_block(part, 0))
        x = SpinorField.random(block.geometry, rng=rng).data
        x = parity_project(block.geometry, x, 0)
        assert np.abs(block.apply(x) - manual.apply(x)).max() < 1e-13

    def test_block_boundary_is_cut(self, system):
        geom, op, eo, b = system
        part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
        block = eo.restrict_to_block(part, 0)
        assert block.wilson.boundary[2] == "zero"
        assert block.wilson.boundary[3] == "zero"


class TestEvenOddGCRDD:
    def test_converges_and_matches_full_solve(self, system):
        geom, op, eo, b = system
        rhs = eo.prepare_rhs(b)
        solver = GCRDDSolver(
            eo, ProcessGrid((1, 1, 2, 2)),
            GCRDDConfig(tol=1e-6, precond_steps=8),
        )
        res = solver.solve(rhs)
        assert res.converged
        x_full = eo.reconstruct(res.x, b)
        r = b - op.apply(x_full)
        assert np.linalg.norm(r) / np.linalg.norm(b) < 5e-6

    def test_fewer_outer_iterations_than_unpreconditioned(self, system):
        """Even-odd halves the condition number; the eo GCR-DD needs no
        more outer iterations than the full-system GCR-DD."""
        geom, op, eo, b = system
        cfg = GCRDDConfig(
            tol=1e-8, precond_steps=8,
            policy=PrecisionPolicy(DOUBLE, DOUBLE, DOUBLE),
        )
        full = GCRDDSolver(op, ProcessGrid((1, 1, 1, 2)), cfg).solve(b)
        eo_res = GCRDDSolver(eo, ProcessGrid((1, 1, 1, 2)), cfg).solve(
            eo.prepare_rhs(b)
        )
        assert full.converged and eo_res.converged
        assert eo_res.iterations <= full.iterations

    def test_matches_eo_bicgstab(self, system):
        geom, op, eo, b = system
        rhs = eo.prepare_rhs(b)
        ref = bicgstab(eo.apply, rhs, tol=1e-10, maxiter=500)
        res = GCRDDSolver(
            eo, ProcessGrid((1, 1, 1, 2)), GCRDDConfig(tol=1e-6, precond_steps=8)
        ).solve(rhs)
        rel = np.linalg.norm(res.x - ref.x) / np.linalg.norm(ref.x)
        assert rel < 1e-4
