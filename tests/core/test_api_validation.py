"""validate_request: field-named errors with valid choices."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import SolveRequest, validate_request
from repro.lattice import GaugeField, Geometry, SpinorField


@pytest.fixture(scope="module")
def base():
    geo = Geometry((4, 4, 4, 4))
    gauge = GaugeField.unit(geo)
    rhs = SpinorField.random(geo, rng=0).data
    return gauge, rhs


def request(base, **overrides):
    gauge, rhs = base
    kw = dict(operator="wilson_clover", gauge=gauge, rhs=rhs, mass=0.1)
    kw.update(overrides)
    return SolveRequest(**kw)


class TestFieldNamedErrors:
    def test_unknown_operator_names_field_and_choices(self, base):
        with pytest.raises(ValueError, match="unknown operator") as exc:
            validate_request(request(base, operator="twisted_mass"))
        msg = str(exc.value)
        assert msg.startswith("SolveRequest.operator:")
        assert "valid choices" in msg and "asqtad_multishift" in msg

    def test_unknown_method_lists_operator_methods(self, base):
        with pytest.raises(ValueError, match="unknown method") as exc:
            validate_request(request(base, method="cg"))
        msg = str(exc.value)
        assert msg.startswith("SolveRequest.method:")
        assert "bicgstab" in msg and "gcr-dd" in msg

    def test_unknown_backend_lists_backends(self, base):
        with pytest.raises(ValueError, match="unknown backend") as exc:
            validate_request(
                request(base, method="gcr-dd", backend="mpi")
            )
        assert "sequential, threads, processes" in str(exc.value)

    def test_backend_without_gcrdd_names_field(self, base):
        with pytest.raises(ValueError, match="gcr-dd") as exc:
            validate_request(request(base, backend="threads"))
        assert str(exc.value).startswith("SolveRequest.backend:")

    def test_overlap_without_backend_mentions_spmd(self, base):
        from repro.comm.grid import ProcessGrid

        with pytest.raises(ValueError, match="SPMD backend") as exc:
            validate_request(
                request(base, method="gcr-dd",
                        grid=ProcessGrid((2, 1, 1, 1)), overlap=True)
            )
        assert str(exc.value).startswith("SolveRequest.overlap:")

    def test_unknown_kernel_names_field_and_choices(self, base):
        with pytest.raises(ValueError, match="unknown kernel") as exc:
            validate_request(request(base, kernel="cuda"))
        msg = str(exc.value)
        assert msg.startswith("SolveRequest.kernel:")
        assert "valid choices" in msg and "auto" in msg and "numpy" in msg

    def test_unavailable_kernel_reports_reason_and_choices(self, base):
        from repro.kernels import get_backend

        if get_backend("numba").available:
            pytest.skip("numba installed: the tier is selectable here")
        with pytest.raises(ValueError, match="not available") as exc:
            validate_request(request(base, kernel="numba"))
        msg = str(exc.value)
        assert msg.startswith("SolveRequest.kernel:")
        assert "valid choices" in msg and "numpy" in msg

    def test_wilson_only_kernel_rejected_for_staggered(self, base):
        gauge, _ = base
        rhs1 = SpinorField.random(gauge.geometry, nspin=1, rng=1).data
        with pytest.raises(ValueError, match="does not support") as exc:
            validate_request(request(
                base, operator="asqtad", rhs=rhs1, kernel="numpy_ref"
            ))
        assert str(exc.value).startswith("SolveRequest.kernel:")

    def test_unknown_schedule_names_field_and_choices(self, base):
        with pytest.raises(ValueError, match="unknown schedule") as exc:
            validate_request(request(base, schedule="pipelined"))
        msg = str(exc.value)
        assert msg.startswith("SolveRequest.schedule:")
        assert "fused" in msg and "split" in msg

    def test_explicit_schedule_needs_spmd_gcrdd(self, base):
        with pytest.raises(ValueError, match="gcr-dd") as exc:
            validate_request(request(base, schedule="split"))
        assert str(exc.value).startswith("SolveRequest.schedule:")

    def test_overlap_with_fused_schedule_rejected(self, base):
        from repro.comm.grid import ProcessGrid

        with pytest.raises(ValueError, match="split") as exc:
            validate_request(request(
                base, method="gcr-dd", grid=ProcessGrid((2, 1, 1, 1)),
                backend="sequential", overlap=True, schedule="fused",
            ))
        assert str(exc.value).startswith("SolveRequest.schedule:")

    def test_gcrdd_without_grid(self, base):
        with pytest.raises(ValueError, match="process grid") as exc:
            validate_request(request(base, method="gcr-dd"))
        assert str(exc.value).startswith("SolveRequest.grid:")

    def test_multishift_without_shifts(self, base):
        with pytest.raises(ValueError, match="needs shifts") as exc:
            validate_request(request(base, operator="asqtad_multishift"))
        assert str(exc.value).startswith("SolveRequest.shifts:")

    def test_nonpositive_tol_and_maxiter(self, base):
        with pytest.raises(ValueError, match="SolveRequest.tol"):
            validate_request(request(base, tol=0.0))
        with pytest.raises(ValueError, match="SolveRequest.maxiter"):
            validate_request(request(base, maxiter=-1))

    def test_even_odd_only_for_wilson(self, base):
        with pytest.raises(ValueError, match="wilson_clover") as exc:
            validate_request(
                request(base, operator="asqtad", method="cg",
                        even_odd=True)
            )
        assert str(exc.value).startswith("SolveRequest.even_odd:")


class TestSolveIntegration:
    def test_solve_validates_before_building_operators(self, base):
        from repro.core.api import solve

        # A bogus gauge object would explode in operator construction;
        # validation must fire first on the schema-level mistake.
        _, rhs = base
        req = SolveRequest(
            operator="nope", gauge=object(), rhs=rhs, mass=0.1
        )
        with pytest.raises(ValueError, match="SolveRequest.operator"):
            solve(req)

    def test_valid_request_passes_and_solves(self, base):
        from repro.core.api import solve

        res = solve(request(base, tol=1e-6))
        assert res.converged
        assert np.isfinite(res.residual)
