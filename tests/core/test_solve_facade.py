"""The SolveRequest/solve facade: one entry point, every operator and
execution path, with batched requests equal to N independent solves to
rounding (GCR-DD lanes individually meet the tolerance — its restarts
are shared across the batch)."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.core import GCRDDConfig, SolveRequest, solve
from repro.dirac import AsqtadOperator, WilsonCloverOperator
from repro.gauge.asqtad import build_asqtad_links
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.precision import SINGLE

B = 3
TOL = 1e-8


@pytest.fixture(scope="module")
def wilson_setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=505)
    batch = np.stack(
        [SpinorField.random(geom, rng=600 + i).data for i in range(B)]
    )
    return geom, gauge, batch


@pytest.fixture(scope="module")
def staggered_setup():
    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=606)
    batch = np.stack(
        [SpinorField.random(geom, nspin=1, rng=700 + i).data for i in range(B)]
    )
    return geom, gauge, batch


def wilson_request(gauge, rhs, **kw):
    kw.setdefault("tol", TOL)
    return SolveRequest(
        operator="wilson_clover", gauge=gauge, rhs=rhs, mass=0.2, csw=1.0,
        **kw,
    )


class TestWilsonFacade:
    def test_batched_equals_independent(self, wilson_setup):
        geom, gauge, batch = wilson_setup
        res = solve(wilson_request(gauge, batch))
        assert res.all_converged
        for i in range(B):
            ref = solve(wilson_request(gauge, batch[i]))
            assert res.iterations[i] == ref.iterations
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-9

    def test_even_odd_batched_equals_independent(self, wilson_setup):
        geom, gauge, batch = wilson_setup
        res = solve(wilson_request(gauge, batch, even_odd=True))
        assert res.all_converged
        assert np.all(res.residuals < 1e-7)
        for i in range(B):
            ref = solve(wilson_request(gauge, batch[i], even_odd=True))
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-9

    def test_mixed_precision_batched(self, wilson_setup):
        geom, gauge, batch = wilson_setup
        res = solve(wilson_request(gauge, batch, inner_precision=SINGLE))
        assert res.all_converged
        assert np.all(res.residuals < TOL)

    def test_gcr_dd_batched_lanes_meet_tolerance(self, wilson_setup):
        geom, gauge, batch = wilson_setup
        res = solve(
            wilson_request(
                gauge, batch, method="gcr-dd", grid=ProcessGrid((1, 1, 2, 2)),
                config=GCRDDConfig(tol=1e-6, precond_steps=6), tol=None,
            )
        )
        assert res.all_converged
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
        for i in range(B):
            r = batch[i] - op.apply(res.x[i])
            assert np.linalg.norm(r) / np.linalg.norm(batch[i]) < 1e-5

    def test_unknown_operator_and_method(self, wilson_setup):
        geom, gauge, batch = wilson_setup
        with pytest.raises(ValueError):
            solve(SolveRequest(operator="overlap", gauge=gauge, rhs=batch[0],
                               mass=0.2))
        with pytest.raises(ValueError):
            solve(wilson_request(gauge, batch[0], method="gmres"))


class TestAsqtadFacade:
    def test_batched_equals_independent(self, staggered_setup):
        geom, gauge, batch = staggered_setup
        req = lambda rhs: SolveRequest(
            operator="asqtad", gauge=gauge, rhs=rhs, mass=0.2, tol=TOL,
        )
        res = solve(req(batch))
        assert res.all_converged
        for i in range(B):
            ref = solve(req(batch[i]))
            assert res.iterations[i] == ref.iterations
            rel = np.linalg.norm(res.x[i] - ref.x) / np.linalg.norm(ref.x)
            assert rel < 1e-9

    def test_prebuilt_links_batched(self, staggered_setup):
        geom, gauge, batch = staggered_setup
        links = build_asqtad_links(gauge)
        res = solve(SolveRequest(
            operator="asqtad", gauge=links, rhs=batch, mass=0.2, tol=TOL,
        ))
        assert res.all_converged
        op = AsqtadOperator(links, mass=0.2)
        for i in range(B):
            r = batch[i] - op.apply(res.x[i])
            assert np.linalg.norm(r) / np.linalg.norm(batch[i]) < 1e-6

    def test_multishift_rejects_batch(self, staggered_setup):
        geom, gauge, batch = staggered_setup
        with pytest.raises(ValueError):
            solve(SolveRequest(
                operator="asqtad_multishift", gauge=gauge, rhs=batch,
                mass=0.2, shifts=[0.0, 0.1],
            ))

    def test_multishift_single(self, staggered_setup):
        geom, gauge, batch = staggered_setup
        be = batch[0] * geom.even_mask[..., None]
        out = solve(SolveRequest(
            operator="asqtad_multishift", gauge=gauge, rhs=be, mass=0.15,
            shifts=[0.0, 0.1], tol=1e-10,
        ))
        assert out.converged


class TestDistributedBatched:
    def test_distributed_gcrdd_batched(self, wilson_setup):
        from repro.core import DistributedGCRDDSolver

        geom, gauge, batch = wilson_setup
        solver = DistributedGCRDDSolver(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 2, 2)),
            config=GCRDDConfig(tol=1e-6, precond_steps=6),
        )
        res = solver.solve(batch)
        assert res.all_converged
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
        for i in range(B):
            r = batch[i] - op.apply(res.x[i])
            assert np.linalg.norm(r) / np.linalg.norm(batch[i]) < 1e-5

    def test_distributed_split_path_batched(self, wilson_setup):
        from repro.core import DistributedGCRDDSolver

        geom, gauge, batch = wilson_setup
        solver = DistributedGCRDDSolver(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 2, 2)),
            config=GCRDDConfig(tol=1e-6, precond_steps=6), schedule="split",
        )
        res = solver.solve(batch)
        assert res.all_converged


class TestPropagators:
    def test_wilson_propagator_uses_batched_path(self):
        from repro.analysis.propagator import wilson_propagator
        from repro.dirac import PHYSICAL

        geom = Geometry((4, 4, 4, 4))
        gauge = GaugeField.weak(geom, epsilon=0.2, rng=42)
        prop = wilson_propagator(gauge, mass=0.3, tol=1e-7)
        op = WilsonCloverOperator(gauge, mass=0.3, csw=1.0, boundary=PHYSICAL)
        b = SpinorField.point_source(geom, (0, 0, 0, 0), spin=1, color=2).data
        r = b - op.apply(prop[..., 1, 2])
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-6

    def test_staggered_propagator_uses_batched_path(self):
        from repro.analysis.propagator import staggered_propagator
        from repro.dirac import PHYSICAL

        geom = Geometry((4, 4, 4, 4))
        gauge = GaugeField.weak(geom, epsilon=0.2, rng=43)
        prop = staggered_propagator(gauge, mass=0.3, tol=1e-7)
        links = build_asqtad_links(gauge)
        op = AsqtadOperator(links, mass=0.3, boundary=PHYSICAL)
        b = SpinorField.point_source(geom, (0, 0, 0, 0), color=1, nspin=1).data
        r = b - op.apply(prop[..., 1])
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-6
