"""Backend parity for the SPMD GCR-DD solver: every execution backend
(sequential / threads / processes) must produce bit-identical solutions,
residual histories and communication tallies — and the sequential SPMD
run must be bit-identical to the global-view DistributedGCRDDSolver."""

import numpy as np
import pytest

from repro.comm.backends import (
    SPMDError,
    process_backend_available,
    run_rank_programs,
)
from repro.comm.grid import ProcessGrid
from repro.core.gcrdd import DistributedGCRDDSolver, GCRDDConfig
from repro.core.spmd import SPMDGCRDDSolver
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.util.counters import tally

BACKENDS_AVAILABLE = ["sequential", "threads"] + (
    ["processes"] if process_backend_available() else []
)


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
    grid = ProcessGrid((1, 1, 2, 2))
    cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
    return geom, gauge, grid, cfg


def _solve_all_backends(solver, b):
    """(result, tally) per backend; construction is shared, each solve
    re-runs the full rank programs (including the gauge ghost exchange)."""
    out = {}
    for backend in BACKENDS_AVAILABLE:
        with tally() as t:
            res = solver.solve(b, backend=backend)
        out[backend] = (res, t)
    return out


class TestWilsonBackendParity:
    @pytest.fixture(scope="class")
    def results(self, setup):
        geom, gauge, grid, cfg = setup
        solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        b = SpinorField.random(geom, rng=30).data
        return _solve_all_backends(solver, b)

    def test_all_converge(self, results):
        for backend, (res, _) in results.items():
            assert res.converged, f"{backend} failed to converge"
            assert res.extras["backend"] == backend

    def test_bit_identical_solutions(self, results):
        reference = results["sequential"][0]
        for backend, (res, _) in results.items():
            assert np.array_equal(res.x, reference.x), backend

    def test_bit_identical_residual_histories(self, results):
        reference = results["sequential"][0]
        for backend, (res, _) in results.items():
            assert res.iterations == reference.iterations, backend
            assert res.residual == reference.residual, backend
            assert tuple(res.residual_history) == tuple(
                reference.residual_history
            ), backend

    def test_identical_comm_tallies(self, results):
        reference = results["sequential"][1]
        for backend, (_, t) in results.items():
            assert t.comm_bytes == reference.comm_bytes, backend
            assert t.messages == reference.messages, backend
            assert t.reductions == reference.reductions, backend
            assert t.flops == reference.flops, backend
            assert (
                t.operator_applications == reference.operator_applications
            ), backend


class TestStaggeredBackendParity:
    @pytest.fixture(scope="class")
    def results(self, setup):
        geom, gauge, grid, cfg = setup
        solver = SPMDGCRDDSolver(
            gauge, 0.5, 0.0, grid, config=cfg, operator="staggered"
        )
        b = SpinorField.random(geom, nspin=1, rng=11).data
        return _solve_all_backends(solver, b)

    def test_all_converge(self, results):
        for backend, (res, _) in results.items():
            assert res.converged, f"{backend} failed to converge"

    def test_bit_identical_solutions_and_histories(self, results):
        reference = results["sequential"][0]
        for backend, (res, _) in results.items():
            assert np.array_equal(res.x, reference.x), backend
            assert tuple(res.residual_history) == tuple(
                reference.residual_history
            ), backend

    def test_identical_comm_tallies(self, results):
        reference = results["sequential"][1]
        for backend, (_, t) in results.items():
            assert t.comm_bytes == reference.comm_bytes, backend
            assert t.messages == reference.messages, backend
            assert t.reductions == reference.reductions, backend


class TestAgainstGlobalView:
    def test_spmd_is_bit_identical_to_global_view(self, setup):
        geom, gauge, grid, cfg = setup
        b = SpinorField.random(geom, rng=30).data
        # Parity includes the tallies, so both tallies must cover the
        # one-time gauge ghost exchange: the global-view solver does it at
        # construction, the SPMD solver inside each rank program.
        with tally() as t_global:
            reference = DistributedGCRDDSolver(
                gauge, 0.2, 1.0, grid, config=cfg
            ).solve(b)
        with tally() as t_spmd:
            res = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg).solve(b)
        assert np.array_equal(res.x, reference.x)
        assert res.iterations == reference.iterations
        assert res.residual == reference.residual
        assert tuple(res.residual_history) == tuple(reference.residual_history)
        assert t_spmd.flops == t_global.flops
        assert t_spmd.comm_bytes == t_global.comm_bytes
        assert t_spmd.messages == t_global.messages
        assert t_spmd.reductions == t_global.reductions
        assert t_spmd.local_reductions == t_global.local_reductions
        assert (
            t_spmd.operator_applications == t_global.operator_applications
        )

    def test_batched_rhs_round_trips(self, setup):
        geom, gauge, grid, cfg = setup
        solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        b = np.stack([
            SpinorField.random(geom, rng=40 + i).data for i in range(2)
        ])
        res = solver.solve(b)
        assert res.x.shape == b.shape
        assert np.all(res.converged)


class TestDeadlockDetection:
    def test_threaded_mismatch_times_out_with_diagnostic(self):
        """A rank program with mismatched sends/receives must surface the
        deadlock diagnostic under the threaded backend, not hang."""

        def bad_program(comm, payload):
            if comm.rank == 0:
                # Waits forever: rank 1 never sends with this tag.
                return comm.recv(1, tag="missing_face")
            comm.barrier()
            return None

        with pytest.raises(SPMDError) as err:
            run_rank_programs(bad_program, 2, backend="threads", timeout=1.0)
        message = str(err.value)
        assert "missing_face" in message or "stalled" in message

    def test_sequential_mismatch_is_detected_without_waiting(self):
        def bad_program(comm, payload):
            return comm.recv((comm.rank + 1) % comm.size, tag="nope")

        with pytest.raises(SPMDError, match="deadlock|blocked|pending"):
            run_rank_programs(
                bad_program, 2, backend="sequential", timeout=30.0
            )


class TestValidation:
    def test_unknown_operator(self, setup):
        _, gauge, grid, cfg = setup
        with pytest.raises(ValueError, match="unknown operator"):
            SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, operator="overlap")

    def test_bad_rhs_shape(self, setup):
        _, gauge, grid, cfg = setup
        solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        with pytest.raises(ValueError, match="ndim"):
            solver.solve(np.zeros((4, 4)))
