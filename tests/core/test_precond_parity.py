"""Bitwise-parity guard for the preconditioner registry refactor.

The Schwarz machinery moved from ad-hoc construction inside the solvers
into ``repro.precond`` registry entries.  These tests pin the contract
of that refactor: ``precond="schwarz"`` (and its alias through
``precond="auto"``) must reproduce the pre-registry GCR-DD behavior
EXACTLY — solutions, residual histories and communication tallies, bit
for bit, on every SPMD execution backend and on the global-view solver.
Any drift here means the registry build path reordered a floating-point
operation and broke cross-backend reproducibility.
"""

import numpy as np
import pytest

from repro.comm.backends import process_backend_available
from repro.comm.grid import ProcessGrid
from repro.core.gcrdd import DistributedGCRDDSolver, GCRDDConfig, GCRDDSolver
from repro.core.spmd import SPMDGCRDDSolver
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.util.counters import tally

BACKENDS_AVAILABLE = ["sequential", "threads"] + (
    ["processes"] if process_backend_available() else []
)


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
    grid = ProcessGrid((1, 1, 2, 2))
    b = SpinorField.random(geom, rng=30).data
    return geom, gauge, grid, b


def _solve(gauge, grid, b, cfg, backend):
    solver = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
    with tally() as t:
        res = solver.solve(b, backend=backend)
    return res, t


class TestAutoIsSchwarz:
    """"auto" must resolve to the schwarz entry and be bit-identical to
    requesting it by name — on every backend."""

    @pytest.mark.parametrize("backend", BACKENDS_AVAILABLE)
    def test_auto_matches_explicit_schwarz(self, setup, backend):
        geom, gauge, grid, b = setup
        auto, t_auto = _solve(
            gauge, grid, b, GCRDDConfig(tol=1e-6, precond_steps=8), backend
        )
        named, t_named = _solve(
            gauge, grid, b,
            GCRDDConfig(tol=1e-6, precond_steps=8, precond="schwarz"),
            backend,
        )
        assert auto.converged and named.converged
        assert auto.extras["precond"] == "schwarz"
        assert named.extras["precond"] == "schwarz"
        assert np.array_equal(auto.x, named.x)
        assert tuple(auto.residual_history) == tuple(named.residual_history)
        assert t_auto.comm_bytes == t_named.comm_bytes
        assert t_auto.messages == t_named.messages
        assert t_auto.reductions == t_named.reductions
        assert t_auto.local_reductions == t_named.local_reductions
        assert (
            t_auto.operator_applications == t_named.operator_applications
        )

    def test_schwarz_tally_carries_registry_record_name(self, setup):
        """The registry entry's record tag must match the historical
        "schwarz_precond" operator tally key."""
        geom, gauge, grid, b = setup
        _, t = _solve(
            gauge, grid, b, GCRDDConfig(tol=1e-6, precond_steps=8),
            "sequential",
        )
        assert t.operator_applications.get("schwarz_precond", 0) > 0


class TestBackendParityThroughRegistry:
    @pytest.fixture(scope="class")
    def results(self, setup):
        geom, gauge, grid, b = setup
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8, precond="schwarz")
        return {
            backend: _solve(gauge, grid, b, cfg, backend)
            for backend in BACKENDS_AVAILABLE
        }

    def test_bit_identical_solutions_and_histories(self, results):
        reference = results["sequential"][0]
        for backend, (res, _) in results.items():
            assert res.converged, backend
            assert np.array_equal(res.x, reference.x), backend
            assert res.iterations == reference.iterations, backend
            assert tuple(res.residual_history) == tuple(
                reference.residual_history
            ), backend

    def test_identical_comm_tallies(self, results):
        reference = results["sequential"][1]
        for backend, (_, t) in results.items():
            assert t.comm_bytes == reference.comm_bytes, backend
            assert t.messages == reference.messages, backend
            assert t.reductions == reference.reductions, backend
            assert t.flops == reference.flops, backend
            assert (
                t.operator_applications == reference.operator_applications
            ), backend


class TestAgainstGlobalView:
    def test_registry_spmd_matches_global_view(self, setup):
        """The registry build path must agree bit-for-bit between the
        SPMD rank programs and the global-view distributed solver."""
        geom, gauge, grid, b = setup
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8, precond="schwarz")
        with tally() as t_global:
            reference = DistributedGCRDDSolver(
                gauge, 0.2, 1.0, grid, config=cfg
            ).solve(b)
        with tally() as t_spmd:
            res = SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg).solve(b)
        assert np.array_equal(res.x, reference.x)
        assert tuple(res.residual_history) == tuple(reference.residual_history)
        assert t_spmd.flops == t_global.flops
        assert t_spmd.comm_bytes == t_global.comm_bytes
        assert t_spmd.reductions == t_global.reductions
        assert t_spmd.local_reductions == t_global.local_reductions
        assert (
            t_spmd.operator_applications == t_global.operator_applications
        )

    def test_single_process_solver_matches_distributed(self, setup):
        """GCRDDSolver (single-process reference) through the registry
        still matches the distributed solver's answer."""
        geom, gauge, grid, b = setup
        from repro.dirac import WilsonCloverOperator

        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
        res = GCRDDSolver(op, grid, cfg).solve(b)
        assert res.converged
        assert res.extras["precond"] == "schwarz"


class TestSPMDRejectsRankGlobalEntries:
    @pytest.mark.parametrize("name", ["ras", "twolevel", "multisplit"])
    def test_non_spmd_precond_raises_with_choices(self, setup, name):
        """RAS / twolevel / multisplit apply on the global view only;
        asking for them in an SPMD solve must fail with a field-named
        error listing the usable choices, not a deadlock."""
        geom, gauge, grid, b = setup
        from repro.precond import PrecondUnavailableError

        cfg = GCRDDConfig(tol=1e-6, precond_steps=8, precond=name)
        with pytest.raises(PrecondUnavailableError, match="rank-local") as err:
            SPMDGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg)
        assert "schwarz" in err.value.choices
