"""Preconditioner selection through the SolveRequest facade, and the
GCRDDConfig legacy-field shims."""

import dataclasses

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.core import GCRDDConfig, SolveRequest, solve
from repro.lattice import GaugeField, Geometry, SpinorField


@pytest.fixture(scope="module")
def wilson_setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=505)
    b = SpinorField.random(geom, rng=3).data
    return geom, gauge, b


@pytest.fixture(scope="module")
def staggered_setup():
    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=606)
    b = SpinorField.random(geom, nspin=1, rng=4).data
    return geom, gauge, b


def gcrdd_request(gauge, rhs, **kw):
    kw.setdefault("tol", 1e-6)
    kw.setdefault("grid", ProcessGrid((1, 1, 2, 2)))
    return SolveRequest(
        operator="wilson_clover", gauge=gauge, rhs=rhs, mass=0.2, csw=1.0,
        method="gcr-dd", **kw,
    )


class TestWilsonPrecondSelection:
    def test_auto_resolves_to_schwarz_and_matches_it(self, wilson_setup):
        geom, gauge, b = wilson_setup
        auto = solve(gcrdd_request(gauge, b))
        named = solve(gcrdd_request(gauge, b, precond="schwarz"))
        assert auto.extras["precond"] == "schwarz"
        assert named.extras["precond"] == "schwarz"
        assert np.array_equal(auto.x, named.x)

    @pytest.mark.parametrize("name", ["ras", "twolevel", "multisplit"])
    def test_alternative_preconds_converge(self, wilson_setup, name):
        geom, gauge, b = wilson_setup
        res = solve(gcrdd_request(gauge, b, precond=name))
        assert res.converged, name
        assert res.extras["precond"] == name

    def test_none_costs_more_iterations(self, wilson_setup):
        geom, gauge, b = wilson_setup
        plain = solve(gcrdd_request(gauge, b, precond="none"))
        schwarz = solve(gcrdd_request(gauge, b, precond="schwarz"))
        assert plain.converged and schwarz.converged
        assert schwarz.iterations < plain.iterations

    def test_precond_overlap_threads_through(self, wilson_setup):
        geom, gauge, b = wilson_setup
        res = solve(gcrdd_request(gauge, b, precond="ras",
                                  precond_overlap=0))
        assert res.converged


class TestAsqtadPrecondSelection:
    def test_auto_is_plain_cg_bitwise(self, staggered_setup):
        """"auto" on asqtad means no preconditioner: the historical
        plain-CG path, bit for bit."""
        geom, gauge, b = staggered_setup
        plain = solve(SolveRequest(
            operator="asqtad", gauge=gauge, rhs=b, mass=0.2, tol=1e-8,
        ))
        auto = solve(SolveRequest(
            operator="asqtad", gauge=gauge, rhs=b, mass=0.2, tol=1e-8,
            precond="auto",
        ))
        assert np.array_equal(plain.x, auto.x)

    @pytest.mark.parametrize("name", ["ras", "multisplit"])
    def test_preconditioned_cg_fewer_iterations(self, staggered_setup,
                                                name):
        geom, gauge, b = staggered_setup
        plain = solve(SolveRequest(
            operator="asqtad", gauge=gauge, rhs=b, mass=0.2, tol=1e-8,
        ))
        pre = solve(SolveRequest(
            operator="asqtad", gauge=gauge, rhs=b, mass=0.2, tol=1e-8,
            precond=name, grid=ProcessGrid((1, 1, 2, 2)),
        ))
        assert plain.converged and pre.converged
        assert pre.iterations < plain.iterations
        assert pre.extras["precond"] == name

    def test_batched_preconditioned(self, staggered_setup):
        geom, gauge, b = staggered_setup
        rhs = np.stack([b, 2.0 * b])
        res = solve(SolveRequest(
            operator="asqtad", gauge=gauge, rhs=rhs, mass=0.2, tol=1e-8,
            precond="multisplit", grid=ProcessGrid((1, 1, 2, 2)),
        ))
        assert np.all(res.converged)
        assert res.x.shape == rhs.shape


class TestValidation:
    def test_unknown_precond_lists_choices(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError, match="SolveRequest.precond"):
            solve(gcrdd_request(gauge, b, precond="ilu"))

    def test_precond_requires_supporting_method(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError, match="SolveRequest.precond"):
            solve(SolveRequest(
                operator="wilson_clover", gauge=gauge, rhs=b, mass=0.2,
                csw=1.0, tol=1e-6, precond="schwarz",
            ))

    def test_asqtad_precond_requires_grid(self, staggered_setup):
        geom, gauge, b = staggered_setup
        with pytest.raises(ValueError, match="SolveRequest.grid"):
            solve(SolveRequest(
                operator="asqtad", gauge=gauge, rhs=b, mass=0.2,
                precond="multisplit",
            ))

    def test_asqtad_precond_conflicts_with_inner_precision(
        self, staggered_setup
    ):
        from repro.precision import SINGLE

        geom, gauge, b = staggered_setup
        with pytest.raises(ValueError, match="inner_precision"):
            solve(SolveRequest(
                operator="asqtad", gauge=gauge, rhs=b, mass=0.2,
                precond="multisplit", grid=ProcessGrid((1, 1, 2, 2)),
                inner_precision=SINGLE,
            ))

    def test_precond_steps_must_be_positive(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError, match="precond_steps"):
            solve(gcrdd_request(gauge, b, precond_steps=0))

    def test_precond_overlap_must_be_nonnegative(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError, match="precond_overlap"):
            solve(gcrdd_request(gauge, b, precond_overlap=-1))


class TestConfigShims:
    def test_mr_steps_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="precond_steps"):
            cfg = GCRDDConfig(tol=1e-6, mr_steps=8)
        assert cfg.precond_steps == 8

    def test_omega_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="precond_omega"):
            cfg = GCRDDConfig(tol=1e-6, omega=0.9)
        assert cfg.precond_omega == 0.9

    def test_legacy_read_property_warns(self):
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
        with pytest.warns(DeprecationWarning, match="precond_steps"):
            assert cfg.mr_steps == 8

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="both"):
            with pytest.warns(DeprecationWarning):
                GCRDDConfig(mr_steps=8, precond_steps=8)

    def test_replace_round_trips_without_warning(self, recwarn):
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
        copy = dataclasses.replace(cfg, tol=1e-8)
        assert copy.precond_steps == 8
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]
