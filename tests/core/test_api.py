"""High-level solve entry points (the deprecated per-operator shims).

These tests exercise the legacy ``solve_wilson_clover`` /
``solve_asqtad`` / ``solve_asqtad_multishift`` wrappers, so the
deprecation warning that is an error everywhere else is silenced here.
The facade itself is covered in test_solve_facade.py.
"""

import numpy as np
import pytest

pytestmark = pytest.mark.filterwarnings(
    "ignore:.*deprecated. use repro.core.api.solve.*:DeprecationWarning"
)

from repro.comm import ProcessGrid
from repro.core import solve_asqtad, solve_asqtad_multishift, solve_wilson_clover
from repro.dirac import AsqtadOperator, StaggeredNormalOperator, WilsonCloverOperator
from repro.gauge.asqtad import build_asqtad_links
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.precision import SINGLE


@pytest.fixture(scope="module")
def wilson_setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=505)
    b = SpinorField.random(geom, rng=3).data
    return geom, gauge, b


@pytest.fixture(scope="module")
def staggered_setup():
    geom = Geometry((4, 4, 4, 4))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=606)
    b = SpinorField.random(geom, nspin=1, rng=4).data
    return geom, gauge, b


class TestWilsonCloverAPI:
    def test_bicgstab_default(self, wilson_setup):
        geom, gauge, b = wilson_setup
        res = solve_wilson_clover(gauge, b, mass=0.2, csw=1.0, tol=1e-8)
        assert res.converged
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
        r = b - op.apply(res.x)
        assert np.linalg.norm(r) / np.linalg.norm(b) < 1e-7

    def test_even_odd_path(self, wilson_setup):
        geom, gauge, b = wilson_setup
        res = solve_wilson_clover(
            gauge, b, mass=0.2, csw=1.0, tol=1e-8, even_odd=True
        )
        assert res.converged
        assert res.residual < 1e-7

    def test_even_odd_matches_full(self, wilson_setup):
        geom, gauge, b = wilson_setup
        full = solve_wilson_clover(gauge, b, mass=0.2, csw=1.0, tol=1e-10)
        eo = solve_wilson_clover(
            gauge, b, mass=0.2, csw=1.0, tol=1e-10, even_odd=True
        )
        assert np.linalg.norm(full.x - eo.x) / np.linalg.norm(full.x) < 1e-7

    def test_mixed_precision_bicgstab(self, wilson_setup):
        geom, gauge, b = wilson_setup
        res = solve_wilson_clover(
            gauge, b, mass=0.2, csw=1.0, tol=1e-9, inner_precision=SINGLE
        )
        assert res.converged
        assert res.restarts >= 1

    def test_gcr_dd_method(self, wilson_setup):
        geom, gauge, b = wilson_setup
        res = solve_wilson_clover(
            gauge, b, mass=0.2, csw=1.0, method="gcr-dd", tol=1e-6,
            grid=ProcessGrid((1, 1, 2, 2)),
        )
        assert res.converged

    def test_gcr_dd_requires_grid(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError):
            solve_wilson_clover(gauge, b, mass=0.2, method="gcr-dd")

    def test_unknown_method(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.raises(ValueError):
            solve_wilson_clover(gauge, b, mass=0.2, method="gmres")


class TestAsqtadAPI:
    def test_solve_asqtad(self, staggered_setup):
        geom, gauge, b = staggered_setup
        res = solve_asqtad(gauge, b, mass=0.2, tol=1e-8)
        assert res.converged
        assert res.residual < 1e-6

    def test_solve_asqtad_accepts_prebuilt_links(self, staggered_setup):
        geom, gauge, b = staggered_setup
        links = build_asqtad_links(gauge)
        res = solve_asqtad(links, b, mass=0.2, tol=1e-8)
        assert res.converged

    def test_multishift(self, staggered_setup):
        geom, gauge, b = staggered_setup
        be = b * geom.even_mask[..., None]
        shifts = [0.0, 0.05, 0.3]
        out = solve_asqtad_multishift(gauge, be, mass=0.15, shifts=shifts,
                                      tol=1e-10)
        assert out.converged
        links = build_asqtad_links(gauge)
        op = AsqtadOperator(links, mass=0.15)
        for sigma, x in zip(shifts, out.solutions):
            r = be - StaggeredNormalOperator(op, sigma).apply(x)
            assert np.linalg.norm(r) / np.linalg.norm(be) < 1e-9


class TestShimBehaviour:
    def test_shims_emit_deprecation_warning(self, wilson_setup):
        geom, gauge, b = wilson_setup
        with pytest.warns(DeprecationWarning,
                          match="deprecated; use repro.core.api.solve"):
            solve_wilson_clover(gauge, b, mass=0.2, csw=1.0, tol=1e-6)

    def test_gcr_dd_config_not_mutated(self, wilson_setup):
        """Regression: the shim used to clobber the caller's config with
        its own tol/maxiter arguments."""
        from repro.core import GCRDDConfig

        geom, gauge, b = wilson_setup
        cfg = GCRDDConfig(tol=1e-4, maxiter=55, precond_steps=4)
        res = solve_wilson_clover(
            gauge, b, mass=0.2, csw=1.0, method="gcr-dd",
            grid=ProcessGrid((1, 1, 2, 2)), config=cfg,
        )
        assert res.converged
        assert (cfg.tol, cfg.maxiter) == (1e-4, 55)

    def test_gcr_dd_explicit_tol_overrides_config(self, wilson_setup):
        from repro.core import GCRDDConfig
        from repro.core.api import SolveRequest, _gcrdd_config

        resolved = _gcrdd_config(SolveRequest(
            operator="wilson_clover", gauge=None, rhs=None, mass=0.0,
            tol=1e-3, config=GCRDDConfig(tol=1e-4, maxiter=55),
        ))
        assert resolved.tol == 1e-3
        assert resolved.maxiter == 55
