"""Scaling-study drivers (the harness behind the figure benches)."""

import pytest

from repro.core.scaling import (
    DslashScalingStudy,
    MultishiftScalingStudy,
    WeakScalingStudy,
    WilsonSolverScalingStudy,
)
from repro.perfmodel.kernels import OperatorKind
from repro.precision import DOUBLE, SINGLE


class TestDslashStudy:
    def test_point_metadata(self):
        study = DslashScalingStudy(
            (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, SINGLE, 12
        )
        p = study.point(32)
        assert p.gpus == 32
        assert p.grid.size == 32
        local_total = 1
        for v in p.local_dims:
            local_total *= v
        assert local_total * 32 == 32**3 * 256

    def test_partition_policy_respected(self):
        study = DslashScalingStudy(
            (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE, 18,
            partition_dims=(3, 2),
        )
        p = study.point(64)
        assert p.grid.dims[0] == 1 and p.grid.dims[1] == 1

    def test_run_ordering(self):
        study = DslashScalingStudy(
            (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, SINGLE, 12
        )
        points = study.run([8, 32, 128])
        assert [p.gpus for p in points] == [8, 32, 128]


class TestWeakStudy:
    def test_local_volume_fixed(self):
        study = WeakScalingStudy(local_volume=(8, 8, 8, 16))
        for n in (1, 4, 64):
            assert study.point(n).local_dims == (8, 8, 8, 16)

    def test_global_volume_grows(self):
        study = WeakScalingStudy(local_volume=(8, 8, 8, 16))
        p = study.point(16)
        assert p.grid.size == 16

    def test_default_precision_single(self):
        assert WeakScalingStudy().precision.name == "single"

    def test_serial_point_has_no_comm(self):
        p = WeakScalingStudy().point(1)
        assert p.timeline.comm_time == 0.0


class TestSolverStudy:
    def test_grids_consistent_between_solvers(self):
        study = WilsonSolverScalingStudy()
        for n in (16, 128):
            assert (
                study.bicgstab_point(n).grid.dims
                == study.gcr_point(n).grid.dims
            )

    def test_double_precision_dslash_slower(self):
        sp = DslashScalingStudy(
            (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, SINGLE, 12
        ).point(32)
        dp = DslashScalingStudy(
            (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, DOUBLE, 18
        ).point(32)
        assert dp.gflops_per_gpu < sp.gflops_per_gpu


class TestMultishiftStudy:
    def test_minimum_gpus_enforced_by_partitioning(self):
        ms = MultishiftScalingStudy()
        # ZT partitioning cannot factor 512 GPUs into 64^3x192's Z and T
        # while keeping even local extents of reasonable size.
        p = ms.point(64, (3, 2))
        assert p.grid.size == 64

    def test_breakdown_exposed(self):
        ms = MultishiftScalingStudy()
        p = ms.point(128, (3, 2, 1))
        assert p.breakdown.matvec > 0
        assert p.breakdown.blas > 0  # the multi-shift BLAS1 burden
