"""The fully distributed GCR-DD solver."""

import numpy as np
import pytest

from repro.comm import CommLog, ProcessGrid
from repro.core import GCRDDConfig, GCRDDSolver
from repro.core.gcrdd import DistributedGCRDDSolver
from repro.dirac import PHYSICAL, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.util.counters import tally


@pytest.fixture(scope="module")
def system():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
    b = SpinorField.random(geom, rng=30).data
    return geom, gauge, b


class TestDistributedGCRDD:
    def test_matches_serial_gcrdd(self, system):
        geom, gauge, b = system
        grid = ProcessGrid((1, 1, 2, 2))
        cfg = GCRDDConfig(tol=1e-6, precond_steps=8)
        serial = GCRDDSolver(
            WilsonCloverOperator(gauge, mass=0.2, csw=1.0), grid, cfg
        ).solve(b)
        dist = DistributedGCRDDSolver(gauge, 0.2, 1.0, grid, config=cfg).solve(b)
        assert serial.converged and dist.converged
        rel = np.linalg.norm(dist.x - serial.x) / np.linalg.norm(serial.x)
        assert rel < 1e-4

    def test_solution_satisfies_system(self, system):
        geom, gauge, b = system
        solver = DistributedGCRDDSolver(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 1, 2)),
            boundary=PHYSICAL, config=GCRDDConfig(tol=1e-6, precond_steps=8),
        )
        res = solver.solve(b)
        op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0, boundary=PHYSICAL)
        r = b - op.apply(res.x)
        assert np.linalg.norm(r) / np.linalg.norm(b) < 5e-6

    def test_preconditioner_moves_no_ghost_data(self, system):
        """The communication ledger of the paper in one test: spinor halo
        traffic comes only from the outer matvecs; the Schwarz solve adds
        none.  (matvecs = outer iterations + restarts' true residuals.)"""
        geom, gauge, b = system
        log = CommLog()
        grid = ProcessGrid((1, 1, 2, 2))
        solver = DistributedGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=GCRDDConfig(tol=1e-5, precond_steps=10),
            log=log,
        )
        with tally() as t:
            res = solver.solve(b)
        assert res.converged
        spinor_msgs = sum(1 for e in log.events if e.kind == "spinor")
        msgs_per_matvec = 2 * len(grid.partitioned_dims) * grid.size
        n_matvecs = t.operator_applications.get("dist_wilson_clover", 0)
        assert spinor_msgs == n_matvecs * msgs_per_matvec
        # The preconditioner did far more operator work than the matvecs...
        block_apps = t.operator_applications.get("wilson_clover", 0)
        assert block_apps > 4 * n_matvecs
        # ... and its reductions were all local.
        assert t.local_reductions > t.reductions

    def test_warm_start(self, system):
        geom, gauge, b = system
        solver = DistributedGCRDDSolver(
            gauge, 0.2, 1.0, ProcessGrid((1, 1, 1, 2)),
            config=GCRDDConfig(tol=1e-5, precond_steps=8),
        )
        first = solver.solve(b)
        warm = solver.solve(b, x0=first.x)
        assert warm.iterations <= 1
