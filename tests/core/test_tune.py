"""The configuration autotuner."""

import pytest

from repro.core.tune import (
    DslashTuning,
    SolverTuning,
    tune_dslash_partitioning,
    tune_precision_policy,
    tune_wilson_solver,
)
from repro.perfmodel.kernels import OperatorKind
from repro.precision import HALF, SINGLE


class TestDslashTuning:
    def test_small_counts_prefer_few_dims(self):
        """The Fig. 6 logic, discovered automatically: at low GPU counts
        the tuner picks few partitioned dimensions."""
        t = tune_dslash_partitioning(
            8, (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE
        )
        assert len(t.grid.partitioned_dims) <= 2

    def test_large_counts_prefer_many_dims(self):
        t = tune_dslash_partitioning(
            256, (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE
        )
        assert len(t.grid.partitioned_dims) >= 3

    def test_tuned_beats_fixed_zt_at_256(self):
        from repro.core.scaling import DslashScalingStudy

        tuned = tune_dslash_partitioning(
            256, (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE
        )
        zt = DslashScalingStudy(
            (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE, 18,
            partition_dims=(3, 2),
        ).point(256)
        assert tuned.gflops_per_gpu >= zt.gflops_per_gpu

    def test_grid_size_matches_request(self):
        t = tune_dslash_partitioning(
            32, (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, SINGLE
        )
        assert t.grid.size == 32
        assert t.gflops_per_gpu > 0

    def test_impossible_partitioning_raises(self):
        with pytest.raises(ValueError):
            tune_dslash_partitioning(
                4096, (4, 4, 4, 8), OperatorKind.WILSON_CLOVER, SINGLE
            )

    def test_asqtad_respects_naik_depth(self):
        """Local extents thinner than the 3-hop reach are never chosen."""
        t = tune_dslash_partitioning(
            64, (64, 64, 64, 192), OperatorKind.ASQTAD, SINGLE
        )
        local = tuple(
            v // g for v, g in zip((64, 64, 64, 192), t.grid.dims)
        )
        for mu in t.grid.partitioned_dims:
            assert local[mu] >= 3


class TestSolverTuning:
    def test_small_partition_chooses_bicgstab(self):
        t = tune_wilson_solver(8)
        assert t.method == "bicgstab"

    def test_large_partition_chooses_gcr_dd(self):
        """The paper's bottom line, rediscovered by the tuner."""
        t = tune_wilson_solver(128)
        assert t.method == "gcr-dd"
        assert t.mr_steps in (5, 10, 20)

    def test_crossover_monotone(self):
        methods = [tune_wilson_solver(n).method for n in (8, 16, 64, 128, 256)]
        # Once gcr-dd wins it keeps winning.
        first_gcr = methods.index("gcr-dd") if "gcr-dd" in methods else len(methods)
        assert all(m == "gcr-dd" for m in methods[first_gcr:])

    def test_returns_timing(self):
        t = tune_wilson_solver(64)
        assert t.seconds > 0
        assert t.grid.size == 64


class TestPrecisionTuning:
    def test_half_wins_on_fermi(self):
        """Bandwidth-bound kernels: the tuner picks half precision — the
        Sec. 8.1 production choice."""
        assert tune_precision_policy(128) is HALF

    def test_half_wins_at_every_scale(self):
        for n in (8, 64, 256):
            assert tune_precision_policy(n) is HALF
