"""Field I/O: save/load roundtrips and validation."""

import numpy as np
import pytest

from repro import io
from repro.lattice import GaugeField, Geometry, SpinorField


class TestGaugeIO:
    def test_roundtrip(self, tmp_path, geom44):
        gauge = GaugeField.weak(geom44, epsilon=0.3, rng=1)
        path = tmp_path / "config.npz"
        io.save_gauge(path, gauge, extra={"beta": 5.7, "sweeps": 100})
        loaded, extra = io.load_gauge(path)
        assert loaded.geometry == geom44
        assert np.array_equal(loaded.data, gauge.data)
        assert extra == {"beta": 5.7, "sweeps": 100}

    def test_roundtrip_without_extra(self, tmp_path, geom44):
        gauge = GaugeField.unit(geom44)
        path = tmp_path / "unit.npz"
        io.save_gauge(path, gauge)
        loaded, extra = io.load_gauge(path)
        assert extra == {}
        assert loaded.plaquette() == pytest.approx(1.0)

    def test_kind_mismatch_rejected(self, tmp_path, geom44):
        spinor = SpinorField.random(geom44, rng=2)
        path = tmp_path / "spinor.npz"
        io.save_spinor(path, spinor)
        with pytest.raises(ValueError, match="expected 'gauge'"):
            io.load_gauge(path)

    def test_not_a_field_file(self, tmp_path):
        path = tmp_path / "junk.npz"
        np.savez(path, whatever=np.zeros(3))
        with pytest.raises(ValueError, match="metadata"):
            io.load_gauge(path)


class TestSpinorIO:
    def test_wilson_roundtrip(self, tmp_path, geom44):
        spinor = SpinorField.random(geom44, rng=3)
        path = tmp_path / "prop.npz"
        io.save_spinor(path, spinor, extra={"mass": 0.1})
        loaded, extra = io.load_spinor(path)
        assert loaded.nspin == 4
        assert np.array_equal(loaded.data, spinor.data)
        assert extra == {"mass": 0.1}

    def test_staggered_roundtrip(self, tmp_path, geom44):
        spinor = SpinorField.random(geom44, nspin=1, rng=4)
        path = tmp_path / "stag.npz"
        io.save_spinor(path, spinor)
        loaded, _ = io.load_spinor(path)
        assert loaded.nspin == 1
        assert np.array_equal(loaded.data, spinor.data)

    def test_loaded_field_usable_in_solver(self, tmp_path, geom44):
        """End-to-end: generate, save, load, solve."""
        from repro.core import SolveRequest, solve

        gauge = GaugeField.weak(geom44, epsilon=0.25, rng=5)
        b = SpinorField.random(geom44, rng=6)
        gp, bp = tmp_path / "u.npz", tmp_path / "b.npz"
        io.save_gauge(gp, gauge)
        io.save_spinor(bp, b)
        gauge2, _ = io.load_gauge(gp)
        b2, _ = io.load_spinor(bp)
        res = solve(SolveRequest(
            operator="wilson_clover", gauge=gauge2, rhs=b2.data,
            mass=0.2, csw=1.0, tol=1e-7,
        ))
        assert res.converged
