"""Span recording: LIFO close order, zero-cost disabled path, inheritance,
thread locality."""

import threading
import time

from repro.trace import (
    Tracer,
    active_tracer,
    emit_complete,
    instant,
    span,
    tracing,
)


class TestDisabled:
    def test_no_tracer_by_default(self):
        assert active_tracer() is None

    def test_span_is_noop_without_tracer(self):
        with span("k", kind="interior") as rec:
            pass
        assert rec is None

    def test_disabled_adds_no_events(self):
        with tracing() as tr:
            pass
        with span("outside"):  # tracer no longer installed
            pass
        instant("outside")
        emit_complete("outside", "kernel", 0.0, 1.0)
        assert tr.events == []

    def test_tracer_uninstalled_after_exit(self):
        with tracing():
            assert active_tracer() is not None
        assert active_tracer() is None


class TestSpans:
    def test_single_span(self):
        with tracing() as tr:
            with span("work", kind="interior", rank=3, stream="compute",
                      mu=2):
                time.sleep(0.001)
        (ev,) = tr.events
        assert ev.name == "work"
        assert ev.kind == "interior"
        assert ev.rank == 3
        assert ev.stream == "compute"
        assert ev.args == {"mu": 2}
        assert ev.duration >= 0.001
        assert ev.end == ev.start + ev.duration

    def test_lifo_close_order(self):
        with tracing() as tr:
            with span("outer"):
                with span("mid"):
                    with span("inner"):
                        pass
        assert [ev.name for ev in tr.events] == ["inner", "mid", "outer"]
        inner, mid, outer = tr.events
        # Proper interval nesting.
        assert outer.start <= mid.start <= inner.start
        assert inner.end <= mid.end <= outer.end

    def test_rank_and_stream_inherited_from_parent(self):
        with tracing() as tr:
            with span("parent", rank=1, stream="compute"):
                with span("child"):
                    pass
                with span("override", rank=2, stream="comm X+"):
                    pass
        child, override, _parent = tr.events
        assert (child.rank, child.stream) == (1, "compute")
        assert (override.rank, override.stream) == (2, "comm X+")

    def test_nested_tracing_scopes(self):
        with tracing() as outer:
            with tracing() as inner:
                with span("a"):
                    pass
            with span("b"):
                pass
        assert [ev.name for ev in inner.events] == ["a"]
        assert [ev.name for ev in outer.events] == ["b"]


class TestInstantAndComplete:
    def test_instant_zero_duration(self):
        with tracing() as tr:
            instant("restart", kind="mark", cycle=2)
        (ev,) = tr.events
        assert ev.duration == 0.0
        assert ev.args == {"cycle": 2}

    def test_emit_complete_rebases_to_epoch(self):
        with tracing() as tr:
            start = time.perf_counter()
            emit_complete("k", "kernel", start, 0.5, rank=0)
        (ev,) = tr.events
        assert ev.duration == 0.5
        assert 0.0 <= ev.start < 1.0  # rebased, not an absolute clock value


class TestThreadLocality:
    def test_tracer_not_visible_in_other_thread(self):
        seen = {}

        def worker():
            seen["tracer"] = active_tracer()
            with span("other-thread"):
                pass

        with tracing() as tr:
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["tracer"] is None
        assert tr.events == []

    def test_shared_tracer_collects_from_both_threads(self):
        tr = Tracer()

        def worker():
            with tracing(tr):
                with span("from-worker"):
                    pass

        th = threading.Thread(target=worker)
        with tracing(tr):
            with span("from-main"):
                th.start()
                th.join()
        assert sorted(ev.name for ev in tr.events) == [
            "from-main", "from-worker",
        ]
