"""Chrome/Perfetto trace_event export: schema validity and round-trip."""

import json

import pytest

from repro.trace import (
    MODEL_RANK,
    TraceEvent,
    TraceFormatError,
    events_to_chrome,
    load_chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)

EVENTS = [
    TraceEvent("gather", "gather", 0.0, 1e-3, rank=0, stream="compute",
               args={"mu": 3}),
    TraceEvent("send", "comm", 1e-3, 2e-3, rank=0, stream="comm T+"),
    TraceEvent("interior_kernel", "interior", 1e-3, 5e-3, rank=1,
               stream="compute"),
    TraceEvent("true_residual", "solver", 6e-3, 1e-3, rank=None),
    TraceEvent("interior", "interior", 0.0, 4e-3, rank=MODEL_RANK,
               stream="compute"),
]


class TestExport:
    def test_document_shape(self):
        doc = events_to_chrome(EVENTS)
        complete = validate_chrome_trace(doc)
        assert len(complete) == len(EVENTS)
        assert doc["displayTimeUnit"] == "ms"

    def test_microsecond_units(self):
        doc = events_to_chrome(EVENTS[:1])
        (ev,) = validate_chrome_trace(doc)
        assert ev["ts"] == pytest.approx(0.0)
        assert ev["dur"] == pytest.approx(1000.0)  # 1 ms -> 1000 us

    def test_process_and_thread_metadata(self):
        doc = events_to_chrome(EVENTS)
        names = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "process_name"
        }
        assert {"rank 0", "rank 1", "host", "model (Fig. 4)"} <= names
        threads = {
            ev["args"]["name"]
            for ev in doc["traceEvents"]
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        assert {"compute", "comm T+", "main"} <= threads

    def test_distinct_ranks_get_distinct_pids(self):
        doc = events_to_chrome(EVENTS)
        pids = {ev["pid"] for ev in validate_chrome_trace(doc)}
        assert len(pids) == 4  # rank 0, rank 1, host, model

    def test_json_serializable(self):
        json.dumps(events_to_chrome(EVENTS))


class TestRoundTrip:
    def test_write_then_load(self, tmp_path):
        path = write_chrome_trace(tmp_path / "trace.json", EVENTS)
        loaded = load_chrome_trace(path)
        assert len(loaded) == len(EVENTS)
        for orig, back in zip(EVENTS, loaded):
            assert back.name == orig.name
            assert back.kind == orig.kind
            assert back.rank == orig.rank
            assert back.stream == (orig.stream or "main")
            assert back.start == pytest.approx(orig.start, abs=1e-12)
            assert back.duration == pytest.approx(orig.duration, abs=1e-12)
        assert loaded[0].args == {"mu": 3}


class TestValidation:
    def test_missing_trace_events(self):
        with pytest.raises(TraceFormatError):
            validate_chrome_trace({"foo": []})

    def test_non_list_trace_events(self):
        with pytest.raises(TraceFormatError):
            validate_chrome_trace({"traceEvents": {}})

    def test_negative_duration_rejected(self):
        doc = events_to_chrome(EVENTS[:1])
        doc["traceEvents"][-1]["dur"] = -1.0
        with pytest.raises(TraceFormatError):
            validate_chrome_trace(doc)

    def test_missing_name_rejected(self):
        doc = events_to_chrome(EVENTS[:1])
        del doc["traceEvents"][-1]["name"]
        with pytest.raises(TraceFormatError):
            validate_chrome_trace(doc)

    def test_unsupported_phase_rejected(self):
        with pytest.raises(TraceFormatError):
            validate_chrome_trace({"traceEvents": [{"ph": "B", "name": "x"}]})

    def test_load_rejects_corrupt_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": [{"ph": "X", "name": 3}]}')
        with pytest.raises(TraceFormatError):
            load_chrome_trace(path)
