"""The modeled Fig. 4 track: schedule layout and trace-event conversion."""

import pytest

from repro.perfmodel.device import M2050
from repro.perfmodel.interconnect import InterconnectSpec
from repro.perfmodel.kernels import KernelModel, OperatorKind
from repro.perfmodel.streams import model_dslash_time
from repro.trace import MODEL_RANK
from repro.trace.model import timeline_events


@pytest.fixture(scope="module")
def timeline():
    kernel = KernelModel(OperatorKind.WILSON_CLOVER, "single", reconstruct=12)
    return model_dslash_time(
        kernel, M2050, InterconnectSpec(), (32, 32, 32, 8), (2, 3)
    )


class TestSchedule:
    def test_fig4_block_structure(self, timeline):
        entries = timeline.schedule()
        by_kind = {}
        for name, kind, stream, start, dur in entries:
            by_kind.setdefault(kind, []).append((name, stream, start, dur))
        assert set(by_kind) >= {"gather", "comm", "interior", "exterior"}
        # Gather leads on the compute stream.
        (gather,) = by_kind["gather"]
        assert gather[1] == "compute" and gather[2] == 0.0
        # One comm block per partitioned dimension, each on its own
        # stream, all starting when the gathers finish.
        comms = by_kind["comm"]
        assert len(comms) == 2
        assert len({c[1] for c in comms}) == 2
        assert all(c[2] == pytest.approx(timeline.gather_time) for c in comms)
        # The interior kernel overlaps the comm blocks.
        (interior,) = by_kind["interior"]
        assert interior[2] == pytest.approx(timeline.gather_time)
        # Exterior kernels are sequential, starting once both the interior
        # kernel and communication are done.
        exteriors = sorted(by_kind["exterior"], key=lambda e: e[2])
        t_ready = timeline.gather_time + max(
            timeline.interior_time, timeline.comm_time
        )
        assert exteriors[0][2] == pytest.approx(t_ready)
        assert exteriors[1][2] == pytest.approx(t_ready + exteriors[0][3])

    def test_schedule_ends_at_total_time(self, timeline):
        end = max(start + dur for _, _, _, start, dur in timeline.schedule())
        assert end == pytest.approx(timeline.total_time)


class TestTimelineEvents:
    def test_events_on_model_rank(self, timeline):
        events = timeline_events(timeline)
        assert events
        assert all(ev.rank == MODEL_RANK for ev in events)
        assert all(ev.args["modeled"] for ev in events)

    def test_repeat_tiles_back_to_back(self, timeline):
        events = timeline_events(timeline, repeat=3)
        per_app = {ev.args["application"] for ev in events}
        assert per_app == {0, 1, 2}
        first_app_end = max(
            ev.end for ev in events if ev.args["application"] == 0
        )
        second_start = min(
            ev.start for ev in events if ev.args["application"] == 1
        )
        assert second_start == pytest.approx(timeline.total_time)
        assert first_app_end <= second_start + 1e-15

    def test_scale_stretches_durations(self, timeline):
        base = timeline_events(timeline)
        scaled = timeline_events(timeline, scale=10.0)
        for b, s in zip(base, scaled):
            assert s.duration == pytest.approx(10.0 * b.duration)

    def test_repeat_must_be_positive(self, timeline):
        with pytest.raises(ValueError):
            timeline_events(timeline, repeat=0)
