"""Virtual message passing: the mailbox and QMP layers."""

import numpy as np
import pytest

from repro.comm import CommLog, Mailbox, QMPChannel
from repro.comm.traffic import CommEvent
from repro.util.counters import tally


class TestMailbox:
    def test_send_recv_roundtrip(self, rng):
        box = Mailbox(4)
        payload = rng.standard_normal(10)
        box.send(0, 2, payload)
        out = box.recv(2, 0)
        assert np.array_equal(out, payload)

    def test_payload_is_copied(self):
        box = Mailbox(2)
        payload = np.ones(4)
        box.send(0, 1, payload)
        payload[...] = -1
        assert np.array_equal(box.recv(1, 0), np.ones(4))

    def test_fifo_ordering(self):
        box = Mailbox(2)
        box.send(0, 1, np.array([1.0]))
        box.send(0, 1, np.array([2.0]))
        assert box.recv(1, 0)[0] == 1.0
        assert box.recv(1, 0)[0] == 2.0

    def test_tags_are_separate_queues(self):
        box = Mailbox(2)
        box.send(0, 1, np.array([1.0]), tag="a")
        box.send(0, 1, np.array([2.0]), tag="b")
        assert box.recv(1, 0, tag="b")[0] == 2.0
        assert box.recv(1, 0, tag="a")[0] == 1.0

    def test_recv_empty_raises(self):
        with pytest.raises(RuntimeError, match="deadlock"):
            Mailbox(2).recv(1, 0)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            Mailbox(2).send(0, 5, np.zeros(1))

    def test_pending(self):
        box = Mailbox(2)
        assert box.pending() == 0
        box.send(0, 1, np.zeros(3))
        assert box.pending() == 1
        box.recv(1, 0)
        assert box.pending() == 0

    def test_traffic_accounting(self):
        box = Mailbox(2)
        payload = np.zeros(16)
        with tally() as t:
            box.send(0, 1, payload)
        assert t.comm_bytes == payload.nbytes
        assert t.messages == 1

    def test_commlog(self):
        log = CommLog()
        box = Mailbox(2, log=log)
        box.send(0, 1, np.zeros(4), event=CommEvent(0, 1, mu=2, sign=1, nbytes=32))
        assert log.message_count == 1
        assert log.events[0].mu == 2

    def test_allreduce(self):
        box = Mailbox(4)
        with tally() as t:
            total = box.allreduce_sum([1.0, 2.0, 3.0, 4.0])
        assert total == 10.0
        assert t.reductions == 1

    def test_allreduce_charges_one_message_per_rank(self):
        # Regression: the collective recorded its payload bytes but zero
        # messages, so message counts disagreed between the global-view
        # allreduce and the summed per-rank SPMD charges.
        box = Mailbox(4)
        parts = [np.float64(r) for r in range(4)]
        with tally() as t:
            box.allreduce_sum(parts)
        assert t.messages == 4
        assert t.comm_bytes == 8 * 4

    def test_allreduce_arity_check(self):
        with pytest.raises(ValueError):
            Mailbox(4).allreduce_sum([1.0, 2.0])


class TestBlockingRecv:
    def test_blocks_until_sent(self):
        import threading

        box = Mailbox(2)
        payload = np.arange(4.0)

        def sender():
            box.send(0, 1, payload)

        t = threading.Timer(0.05, sender)
        t.start()
        try:
            out = box.recv(1, 0, block=True, timeout=10.0)
        finally:
            t.join()
        assert np.array_equal(out, payload)

    def test_timeout_raises_diagnostic(self):
        box = Mailbox(2)
        box.send(0, 1, np.zeros(2), tag="other")
        with pytest.raises(RuntimeError, match="timed out") as err:
            box.recv(1, 0, tag="wanted", block=True, timeout=0.05)
        # The diagnostic names the missing edge and dumps what IS pending.
        message = str(err.value)
        assert "with tag 'wanted'" in message
        assert "tag='other'" in message

    def test_probe(self):
        box = Mailbox(2)
        assert not box.probe(1, 0)
        box.send(0, 1, np.zeros(1))
        assert box.probe(1, 0)
        assert not box.probe(1, 0, tag="elsewhere")


class TestDeadlockDiagnostics:
    def test_empty_mailbox_summary(self):
        assert "no pending messages" in Mailbox(2).pending_summary()

    def test_summary_lists_src_dst_tag_and_count(self):
        box = Mailbox(4)
        box.send(0, 1, np.zeros(2), tag="halo")
        box.send(0, 1, np.zeros(2), tag="halo")
        box.send(3, 2, np.zeros(2))
        summary = box.pending_summary()
        assert "0 -> 1  tag='halo'  (2 messages)" in summary
        assert "3 -> 2  tag=0  (1 message)" in summary

    def test_recv_error_includes_pending_queues(self):
        box = Mailbox(3)
        box.send(0, 2, np.zeros(1), tag="stray")
        with pytest.raises(RuntimeError) as err:
            box.recv(1, 0)
        message = str(err.value)
        assert "no message from 0 to 1" in message
        assert "0 -> 2  tag='stray'  (1 message)" in message

    def test_drained_queues_are_not_listed(self):
        box = Mailbox(2)
        box.send(0, 1, np.zeros(1))
        box.recv(1, 0)
        assert "no pending messages" in box.pending_summary()


class TestQMP:
    def test_declare_start_wait(self, rng):
        box = Mailbox(2)
        tx = QMPChannel(box, 0)
        rx = QMPChannel(box, 1)
        payload = rng.standard_normal(8)
        send = tx.declare_send(1, payload)
        recv = rx.declare_receive(0)
        send.start()
        recv.start()
        send.wait()
        assert np.array_equal(recv.wait(), payload)

    def test_wait_before_start_raises(self):
        box = Mailbox(2)
        ch = QMPChannel(box, 0)
        with pytest.raises(RuntimeError):
            ch.declare_send(1, np.zeros(1)).wait()
        with pytest.raises(RuntimeError):
            ch.declare_receive(1).wait()

    def test_wait_is_idempotent(self, rng):
        box = Mailbox(2)
        tx, rx = QMPChannel(box, 0), QMPChannel(box, 1)
        payload = rng.standard_normal(4)
        h = tx.declare_send(1, payload)
        h.start()
        r = rx.declare_receive(0)
        r.start()
        first = r.wait()
        second = r.wait()
        assert np.array_equal(first, second)


class TestCommLog:
    def _event(self, mu, nbytes, src=0, dst=1):
        return CommEvent(src=src, dst=dst, mu=mu, sign=1, nbytes=nbytes)

    def test_totals(self):
        log = CommLog()
        log.add(self._event(0, 100))
        log.add(self._event(3, 50))
        assert log.total_bytes == 150
        assert log.message_count == 2

    def test_bytes_by_dimension(self):
        log = CommLog()
        log.add(self._event(3, 100))
        log.add(self._event(3, 100))
        log.add(self._event(1, 30))
        assert log.bytes_by_dimension() == {3: 200, 1: 30}
        assert log.dimensions_exchanged() == {1, 3}

    def test_bytes_per_rank(self):
        log = CommLog()
        log.add(self._event(0, 10, src=0))
        log.add(self._event(0, 20, src=2))
        assert log.bytes_per_rank(4) == [10, 0, 20, 0]

    def test_clear(self):
        log = CommLog()
        log.add(self._event(0, 10))
        log.clear()
        assert log.message_count == 0
