"""Per-rank wait/comm metrics across the SPMD backends.

The communicators observe every blocking recv wait and allreduce/barrier
rendezvous into per-rank histograms; the backends merge the per-rank
registries at join in rank order.  The communication *pattern* of a
GCR-DD solve is deterministic, so the observation counts — and the
message/byte counters — must be identical whichever backend executed the
ranks; only the measured durations are machine noise."""

import numpy as np
import pytest

from repro.comm.backends import process_backend_available
from repro.comm.grid import ProcessGrid
from repro.core.gcrdd import GCRDDConfig
from repro.core.spmd import SPMDGCRDDSolver
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.metrics.registry import metrics_scope
from repro.metrics.straggler import (
    ALLREDUCE_WAIT,
    WAIT_METRICS,
    rank_wait_stats,
    straggler_summary,
)

BACKENDS_AVAILABLE = ["sequential", "threads"] + (
    ["processes"] if process_backend_available() else []
)

N_RANKS = 4


@pytest.fixture(scope="module")
def registries():
    """One merged registry per backend, same solve."""
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
    grid = ProcessGrid((1, 1, 2, 2))
    solver = SPMDGCRDDSolver(
        gauge, 0.2, 1.0, grid, config=GCRDDConfig(tol=1e-6, precond_steps=8)
    )
    b = SpinorField.random(geom, rng=30).data
    out = {}
    for backend in BACKENDS_AVAILABLE:
        with metrics_scope() as reg:
            res = solver.solve(b, backend=backend)
        assert res.converged, backend
        out[backend] = reg
    return out


def _counts_fingerprint(reg):
    """Everything deterministic about a merged registry: counter values
    and per-histogram observation counts/bucket counts for the
    backend-comparable wait families (durations excluded)."""
    counters = {
        key: c.value for key, c in sorted(reg.counters.items())
    }
    hist_counts = {
        key: (h.edges, tuple(h.bucket_counts), h.count)
        for key, h in sorted(reg.histograms.items())
        if h.name in WAIT_METRICS
    }
    return counters, hist_counts


class TestBackendIdenticalMerge:
    def test_counter_totals_identical_across_backends(self, registries):
        ref_counters, _ = _counts_fingerprint(registries["sequential"])
        assert ref_counters, "no comm counters recorded"
        for backend, reg in registries.items():
            counters, _ = _counts_fingerprint(reg)
            assert counters == ref_counters, backend

    def test_wait_observation_counts_identical_across_backends(
        self, registries
    ):
        """Bit-identical merge: same histogram instances, same bucket
        layout, same observation count per rank on every backend.  (The
        bucket *distribution* over duration buckets is timing-dependent,
        so only the per-instance totals are compared; the allreduce
        rendezvous count additionally equals the solver's deterministic
        reduction schedule, checked below.)"""
        ref = {
            key: (h.edges, h.count)
            for key, h in sorted(
                registries["sequential"].histograms.items()
            )
            if h.name in WAIT_METRICS
        }
        assert ref, "no wait observations recorded"
        for backend, reg in registries.items():
            got = {
                key: (h.edges, h.count)
                for key, h in sorted(reg.histograms.items())
                if h.name in WAIT_METRICS
            }
            assert got == ref, backend

    def test_allreduce_waits_match_reduction_count(self, registries):
        """Every rank joins every allreduce: each rank's rendezvous-wait
        histogram carries the same number of observations."""
        for backend, reg in registries.items():
            counts = {
                int(h.labels["rank"]): h.count
                for _, h in reg.histograms.items()
                if h.name == ALLREDUCE_WAIT
            }
            assert len(set(counts.values())) == 1, backend
            assert min(counts.values()) > 0, backend


class TestOneInstancePerRank:
    def test_wait_histograms_carry_one_instance_per_rank(self, registries):
        for backend, reg in registries.items():
            by_metric = {}
            for _, h in reg.histograms.items():
                if h.name in WAIT_METRICS:
                    assert "rank" in h.labels, (backend, h.name)
                    by_metric.setdefault(h.name, []).append(
                        int(h.labels["rank"])
                    )
            for name, ranks in by_metric.items():
                assert sorted(ranks) == sorted(set(ranks)), (backend, name)
                assert set(ranks) <= set(range(N_RANKS)), (backend, name)

    def test_every_rank_observed_waiting(self, registries):
        for backend, reg in registries.items():
            per_rank = rank_wait_stats(reg)
            assert sorted(per_rank) == list(range(N_RANKS)), backend
            for rank, metrics in per_rank.items():
                assert any(m["count"] > 0 for m in metrics.values()), (
                    backend, rank,
                )


class TestStragglerSummary:
    def test_summary_present_and_consistent(self, registries):
        for backend, reg in registries.items():
            summary = straggler_summary(reg)
            assert summary is not None, backend
            waits = summary["rank_wait_seconds"]
            assert sorted(waits) == [str(r) for r in range(N_RANKS)]
            assert summary["max_wait_seconds"] == max(waits.values())
            assert summary["max_over_median"] >= 1.0

    def test_empty_registry_has_no_summary(self):
        from repro.metrics.registry import MetricsRegistry

        assert straggler_summary(MetricsRegistry()) is None


class TestSolutionUnchangedByMetrics:
    def test_metrics_scope_does_not_perturb_the_solve(self):
        """Observability must be read-only: the solution with metrics on
        is bit-identical to the solution with metrics off."""
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
        grid = ProcessGrid((1, 1, 2, 2))
        solver = SPMDGCRDDSolver(
            gauge, 0.2, 1.0, grid, config=GCRDDConfig(tol=1e-6, precond_steps=8)
        )
        b = SpinorField.random(geom, rng=30).data
        bare = solver.solve(b)
        with metrics_scope():
            observed = solver.solve(b)
        assert np.array_equal(bare.x, observed.x)
        assert tuple(bare.residual_history) == tuple(
            observed.residual_history
        )
