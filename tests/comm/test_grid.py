"""Process grids: rank maps, neighbors, grid selection."""

import pytest

from repro.comm import ProcessGrid, choose_grid


class TestProcessGrid:
    def test_size(self):
        assert ProcessGrid((2, 1, 2, 4)).size == 16

    def test_partitioned_dims(self):
        g = ProcessGrid((1, 1, 2, 4))
        assert g.partitioned_dims == (2, 3)

    def test_label(self):
        assert ProcessGrid((1, 1, 2, 4)).label == "ZT"
        assert ProcessGrid((2, 2, 2, 2)).label == "XYZT"
        assert ProcessGrid((1, 1, 1, 1)).label == "serial"

    def test_coords_roundtrip(self):
        g = ProcessGrid((2, 3, 2, 4))
        for rank in g.all_ranks():
            assert g.rank_of(g.coords(rank)) == rank

    def test_coords_x_fastest(self):
        g = ProcessGrid((2, 2, 1, 1))
        assert g.coords(0) == (0, 0, 0, 0)
        assert g.coords(1) == (1, 0, 0, 0)
        assert g.coords(2) == (0, 1, 0, 0)

    def test_rank_of_wraps(self):
        g = ProcessGrid((2, 2, 2, 2))
        assert g.rank_of((2, 0, 0, 0)) == g.rank_of((0, 0, 0, 0))

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            ProcessGrid((2, 2, 2, 2)).coords(16)

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            ProcessGrid((0, 1, 1, 1))


class TestNeighbor:
    def test_forward_backward_inverse(self):
        g = ProcessGrid((2, 2, 2, 4))
        for rank in g.all_ranks():
            for mu in range(4):
                fwd, _ = g.neighbor(rank, mu, +1)
                back, _ = g.neighbor(fwd, mu, -1)
                assert back == rank

    def test_wrap_detection(self):
        g = ProcessGrid((1, 1, 1, 4))
        top = g.rank_of((0, 0, 0, 3))
        nbr, wrapped = g.neighbor(top, 3, +1)
        assert wrapped and nbr == g.rank_of((0, 0, 0, 0))
        nbr, wrapped = g.neighbor(top, 3, -1)
        assert not wrapped

    def test_self_neighbor_on_unpartitioned_dim(self):
        g = ProcessGrid((1, 1, 1, 2))
        nbr, wrapped = g.neighbor(0, 0, +1)
        assert nbr == 0 and wrapped

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            ProcessGrid((2, 2, 2, 2)).neighbor(0, 0, 0)


class TestChooseGrid:
    def test_one_rank(self):
        g = choose_grid(1, (3,), (8, 8, 8, 16))
        assert g.size == 1 and g.partitioned_dims == ()

    def test_t_only(self):
        g = choose_grid(4, (3,), (8, 8, 8, 32))
        assert g.dims == (1, 1, 1, 4)

    def test_prefers_largest_extent(self):
        g = choose_grid(2, (2, 3), (8, 8, 8, 32))
        assert g.dims == (1, 1, 1, 2)

    def test_spreads_over_dims(self):
        g = choose_grid(16, (0, 1, 2, 3), (16, 16, 16, 16))
        assert g.size == 16
        assert sorted(g.dims) == [2, 2, 2, 2]

    def test_keeps_local_extents_even(self):
        vol = (32, 32, 32, 256)
        for n in (8, 16, 32, 64, 128, 256):
            g = choose_grid(n, (3, 2, 1, 0), vol)
            assert g.size == n
            for mu in range(4):
                local = vol[mu] // g.dims[mu]
                assert local % 2 == 0 and local >= 2

    def test_refuses_overpartitioning(self):
        with pytest.raises(ValueError):
            choose_grid(64, (3,), (8, 8, 8, 16))

    def test_refuses_odd_rank_count(self):
        with pytest.raises(ValueError):
            choose_grid(6, (3,), (8, 8, 8, 32))

    def test_paper_asqtad_zt(self):
        g = choose_grid(256, (3, 2), (64, 64, 64, 192))
        assert g.size == 256
        assert g.partitioned_dims == (2, 3)
