"""The interchangeable SPMD execution backends (sequential / threads /
processes): same rank program, bit-identical results, merged accounting,
and deadlock diagnostics instead of hangs."""

import numpy as np
import pytest

from repro.comm.backends import (
    BACKENDS,
    DeadlockError,
    SPMDError,
    process_backend_available,
    run_rank_programs,
)
from repro.comm.communicator import reduce_in_rank_order
from repro.util.counters import tally

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")

backend_param = pytest.mark.parametrize(
    "backend",
    [
        "sequential",
        "threads",
        pytest.param(
            "processes",
            marks=pytest.mark.skipif(
                not process_backend_available(),
                reason="needs the POSIX fork start method",
            ),
        ),
    ],
)


def ring_program(comm, payload):
    """Pass a value once around the ring; every rank returns what it got."""
    right = (comm.rank + 1) % comm.size
    left = (comm.rank - 1) % comm.size
    comm.isend(right, np.array([float(payload)]), tag="ring")
    return float(comm.recv(left, tag="ring")[0])


def allreduce_program(comm, payload):
    return comm.allreduce_sum(np.float64(payload))


class TestRingExchange:
    @backend_param
    def test_ring_pass(self, backend):
        outcomes = run_rank_programs(
            ring_program, 4, payloads=[10.0, 11.0, 12.0, 13.0],
            backend=backend, timeout=20.0,
        )
        assert [o.rank for o in outcomes] == [0, 1, 2, 3]
        assert [o.value for o in outcomes] == [13.0, 10.0, 11.0, 12.0]

    @backend_param
    def test_send_accounting_merges(self, backend):
        payload = np.array([1.0])
        with tally() as t:
            run_rank_programs(
                ring_program, 3, payloads=[0.0, 1.0, 2.0],
                backend=backend, timeout=20.0,
            )
        assert t.messages == 3
        assert t.comm_bytes == 3 * payload.nbytes


class TestAllreduce:
    @backend_param
    def test_every_rank_gets_the_identical_fold(self, backend):
        parts = [0.1, 0.2, 0.3, 1e16]
        outcomes = run_rank_programs(
            allreduce_program, 4, payloads=parts, backend=backend,
            timeout=20.0,
        )
        expected = reduce_in_rank_order([np.float64(p) for p in parts])
        assert all(o.value == expected for o in outcomes)

    @backend_param
    def test_array_allreduce(self, backend):
        def program(comm, payload):
            return comm.allreduce_sum(np.full(5, float(payload)))

        outcomes = run_rank_programs(
            program, 3, payloads=[1.0, 2.0, 3.0], backend=backend,
            timeout=20.0,
        )
        for o in outcomes:
            assert np.array_equal(o.value, np.full(5, 6.0))

    @backend_param
    def test_merged_accounting_matches_global_view(self, backend):
        # One allreduce of one float64: reductions=1, messages=size,
        # comm_bytes=8*size — exactly Mailbox.allreduce_sum's charges.
        with tally() as t:
            run_rank_programs(
                allreduce_program, 4, payloads=[1.0, 2.0, 3.0, 4.0],
                backend=backend, timeout=20.0,
            )
        assert t.reductions == 1
        assert t.messages == 4
        assert t.comm_bytes == 8 * 4

    @backend_param
    def test_repeated_collectives(self, backend):
        def program(comm, payload):
            total = np.float64(0.0)
            for i in range(5):
                total = comm.allreduce_sum(total + payload + i)
            return float(total)

        outcomes = run_rank_programs(
            program, 3, payloads=[1.0, 2.0, 3.0], backend=backend,
            timeout=20.0,
        )
        assert len({o.value for o in outcomes}) == 1


class TestBarrier:
    @backend_param
    def test_barrier_releases_all_ranks(self, backend):
        def program(comm, payload):
            comm.barrier()
            comm.barrier()
            return comm.rank

        outcomes = run_rank_programs(program, 3, backend=backend, timeout=20.0)
        assert [o.value for o in outcomes] == [0, 1, 2]


class TestBitIdentityAcrossBackends:
    def test_same_program_same_bits(self):
        def program(comm, payload):
            # A mixed send/reduce recurrence with rounding-sensitive sums.
            acc = np.float64(payload)
            for i in range(4):
                right = (comm.rank + 1) % comm.size
                comm.isend(right, np.array([acc * (i + 1)]), tag=i)
                acc = acc + comm.recv((comm.rank - 1) % comm.size, tag=i)[0]
                acc = comm.allreduce_sum(acc * 0.3)
            return acc

        payloads = [0.1, 0.2, 0.7, 1.3]
        backends = [b for b in BACKENDS
                    if b != "processes" or process_backend_available()]
        results = {
            b: [o.value for o in run_rank_programs(
                program, 4, payloads=payloads, backend=b, timeout=20.0)]
            for b in backends
        }
        reference = results["sequential"]
        for b, values in results.items():
            assert values == reference, f"{b} diverged from sequential"


class TestFailures:
    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="unknown backend"):
            run_rank_programs(ring_program, 2, backend="mpi")

    def test_payload_arity(self):
        with pytest.raises(ValueError, match="payloads"):
            run_rank_programs(ring_program, 3, payloads=[1.0], backend="sequential")

    @backend_param
    def test_rank_error_is_reported_with_rank_detail(self, backend):
        def program(comm, payload):
            if comm.rank == 1:
                raise ValueError("boom on rank one")
            return comm.rank

        with pytest.raises(SPMDError, match="rank 1.*boom on rank one"):
            run_rank_programs(program, 3, backend=backend, timeout=20.0)


class TestDeadlockDetection:
    def test_sequential_detects_cycle_immediately(self):
        def program(comm, payload):
            # Rank 0 waits for a message nobody sends while rank 1 sits in
            # a collective: a genuine cycle, not a slow rank.
            if comm.rank == 0:
                return comm.recv(1, tag="never")
            comm.barrier()
            return None

        with pytest.raises(SPMDError, match="pending|blocked|deadlock"):
            run_rank_programs(program, 2, backend="sequential", timeout=5.0)

    def test_threads_time_out_with_diagnostic_not_hang(self):
        def program(comm, payload):
            if comm.rank == 0:
                return comm.recv(1, tag="never")
            comm.barrier()
            return None

        with pytest.raises(SPMDError) as err:
            run_rank_programs(program, 2, backend="threads", timeout=1.0)
        # The diagnostic names the missing message or the stalled
        # collective instead of hanging forever.
        assert "never" in str(err.value) or "stalled" in str(err.value) \
            or "timed out" in str(err.value)

    def test_sequential_deadlock_lists_blocked_ranks(self):
        def program(comm, payload):
            return comm.recv((comm.rank + 1) % comm.size, tag="x")

        with pytest.raises(SPMDError) as err:
            run_rank_programs(program, 2, backend="sequential", timeout=5.0)
        message = str(err.value)
        assert "rank 0" in message and "rank 1" in message


@pytest.mark.skipif(
    not process_backend_available(),
    reason="needs the POSIX fork start method",
)
class TestProcessBackend:
    def test_large_payload_goes_through_shared_memory(self):
        from repro.comm.shm import INLINE_LIMIT

        n = INLINE_LIMIT // 8 + 1024  # float64 payload safely above the limit

        def program(comm, payload):
            if comm.rank == 0:
                comm.isend(1, np.arange(float(n)), tag="big")
                return None
            return float(comm.recv(0, tag="big").sum())

        outcomes = run_rank_programs(program, 2, backend="processes",
                                     timeout=30.0)
        assert outcomes[1].value == float(np.arange(float(n)).sum())

    def test_scalar_allreduce_stays_scalar(self):
        def program(comm, payload):
            return comm.allreduce_sum(np.float64(payload))

        outcomes = run_rank_programs(
            program, 2, payloads=[1.5, 2.5], backend="processes", timeout=30.0
        )
        for o in outcomes:
            assert np.asarray(o.value).ndim == 0
            assert float(o.value) == 4.0

    def test_out_of_order_tags_are_buffered(self):
        def program(comm, payload):
            if comm.rank == 0:
                comm.isend(1, np.array([1.0]), tag="first")
                comm.isend(1, np.array([2.0]), tag="second")
                return None
            # Receive in the opposite order they were sent.
            second = comm.recv(0, tag="second")[0]
            first = comm.recv(0, tag="first")[0]
            return (first, second)

        outcomes = run_rank_programs(program, 2, backend="processes",
                                     timeout=30.0)
        assert outcomes[1].value == (1.0, 2.0)
