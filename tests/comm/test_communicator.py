"""The rank-local Communicator protocol and its mailbox endpoint."""

import threading

import numpy as np
import pytest

from repro.comm import Mailbox, MailboxCommunicator, QMPChannel
from repro.comm.communicator import (
    BACKENDS,
    record_collective,
    reduce_in_rank_order,
    wire_nbytes,
)
from repro.comm.traffic import CommEvent
from repro.metrics.registry import metrics_scope
from repro.metrics.straggler import RECV_WAIT
from repro.util.counters import tally


class TestReduceInRankOrder:
    def test_left_fold_order(self):
        # Floating-point addition is not associative; the canonical fold
        # is the left fold ((p0+p1)+p2)+p3 — assert exact bit equality
        # with the hand-written chain, not with a different grouping.
        parts = [0.1, 0.2, 0.3, 1e16]
        assert reduce_in_rank_order(parts) == ((0.1 + 0.2) + 0.3) + 1e16

    def test_matches_mailbox_allreduce(self):
        parts = [np.float64(0.1 * (r + 1)) for r in range(4)]
        assert reduce_in_rank_order(parts) == Mailbox(4).allreduce_sum(parts)

    def test_array_contributions(self):
        parts = [np.arange(3.0) + r for r in range(3)]
        assert np.array_equal(reduce_in_rank_order(parts), np.arange(3.0) * 3 + 3)


class TestRecordCollective:
    def test_rank0_owns_the_reduction_event(self):
        value = np.complex128(1.0)
        tallies = []
        for rank in range(4):
            with tally() as t:
                record_collective(rank, value)
            tallies.append(t)
        assert [t.reductions for t in tallies] == [1, 0, 0, 0]
        # Every participant pays its own wire share.
        assert all(t.comm_bytes == value.nbytes for t in tallies)
        assert all(t.messages == 1 for t in tallies)

    def test_per_rank_shares_sum_to_global_accounting(self):
        box = Mailbox(4)
        parts = [np.complex128(r) for r in range(4)]
        with tally() as globalview:
            box.allreduce_sum(parts)
        with tally() as merged:
            for rank in range(4):
                record_collective(rank, parts[rank])
        assert merged.reductions == globalview.reductions == 1
        assert merged.messages == globalview.messages == 4
        assert merged.comm_bytes == globalview.comm_bytes


class TestMailboxCommunicator:
    def test_rank_and_size(self):
        comm = MailboxCommunicator(Mailbox(3), 1)
        assert (comm.rank, comm.size) == (1, 3)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            MailboxCommunicator(Mailbox(2), 5)

    def test_isend_recv_roundtrip(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        payload = rng.standard_normal(8)
        handle = tx.isend(1, payload)
        handle.wait()  # sends are eager: wait is a no-op
        assert np.array_equal(rx.recv(0), payload)

    def test_irecv_wait(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        payload = rng.standard_normal(4)
        handle = rx.irecv(0, tag="h")
        tx.send(1, payload, tag="h")
        assert np.array_equal(rx.wait(handle), payload)

    def test_wait_is_idempotent(self, rng):
        box = Mailbox(2)
        MailboxCommunicator(box, 0).send(1, rng.standard_normal(4))
        handle = MailboxCommunicator(box, 1).irecv(0)
        assert np.array_equal(handle.wait(), handle.wait())

    def test_tags_are_separate(self):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        tx.send(1, np.array([1.0]), tag="a")
        tx.send(1, np.array([2.0]), tag="b")
        assert rx.recv(0, tag="b")[0] == 2.0
        assert rx.recv(0, tag="a")[0] == 1.0

    def test_driver_mode_missing_message_raises(self):
        comm = MailboxCommunicator(Mailbox(2), 0)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(1)

    def test_driver_mode_collectives_raise(self):
        comm = MailboxCommunicator(Mailbox(2), 0)
        with pytest.raises(RuntimeError, match="rendezvous"):
            comm.allreduce_sum(1.0)
        with pytest.raises(RuntimeError, match="rendezvous"):
            comm.barrier()

    def test_send_charges_the_sender(self):
        box = Mailbox(2)
        payload = np.zeros(16)
        with tally() as t:
            MailboxCommunicator(box, 0).send(1, payload)
        assert t.comm_bytes == payload.nbytes
        assert t.messages == 1


def _event(src, dst, nbytes):
    return CommEvent(src=src, dst=dst, mu=0, sign=1, nbytes=nbytes,
                     kind="spinor", wrapped=False)


class TestWireBytes:
    def test_physical_bytes_without_event(self):
        assert wire_nbytes(np.zeros(16), None) == 128

    def test_event_overrides_physical_bytes(self):
        # Reduced-precision halos travel smaller than the numpy carrier.
        assert wire_nbytes(np.zeros(16), _event(0, 1, 40)) == 40

    def test_metric_equals_tally_for_logical_sends(self):
        """Satellite fix: comm_bytes_total must count the same *wire*
        bytes the tally counts, not the physical payload bytes."""
        box = Mailbox(2)
        tx = MailboxCommunicator(box, 0)
        payload = np.zeros(16)  # 128 physical bytes, 40 on the wire
        with metrics_scope() as reg, tally() as t:
            tx.send(1, payload, event=_event(0, 1, 40))
        metric = sum(
            c.value for _, c in reg.counters.items()
            if c.name == "comm_bytes_total"
        )
        assert t.comm_bytes == metric == 40


class TestWaitAny:
    def test_irecv_is_posted_not_received(self):
        """The original bug: irecv must return an incomplete handle that
        never pulls the message eagerly."""
        box = Mailbox(2)
        rx = MailboxCommunicator(box, 1)
        handle = rx.irecv(0, tag="face")
        assert not handle.complete
        assert handle.test() is False  # nothing sent yet; never blocks

    def test_test_claims_an_arrived_message(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        handle = rx.irecv(0, tag="face")
        payload = rng.standard_normal(4)
        tx.send(1, payload, tag="face")
        assert handle.test() is True
        assert handle.complete
        assert np.array_equal(handle.wait(), payload)  # no further wait

    def test_returns_lowest_index_ready_handle(self, rng):
        box = Mailbox(3)
        rx = MailboxCommunicator(box, 2)
        handles = [rx.irecv(0, tag="a"), rx.irecv(1, tag="b")]
        MailboxCommunicator(box, 1).send(2, rng.standard_normal(2), tag="b")
        MailboxCommunicator(box, 0).send(2, rng.standard_normal(2), tag="a")
        # Both are ready; determinism requires the lowest index wins.
        assert rx.wait_any(handles) == 0
        assert rx.wait_any(handles) == 1

    def test_completes_exactly_one_handle_per_call(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        handles = [rx.irecv(0, tag=i) for i in range(3)]
        for i in range(3):
            tx.send(1, rng.standard_normal(2), tag=i)
        assert rx.wait_any(handles) == 0
        assert [h.complete for h in handles] == [True, False, False]

    def test_all_complete_raises(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        handle = rx.irecv(0)
        tx.send(1, rng.standard_normal(2))
        handle.wait()
        with pytest.raises(ValueError, match="already complete"):
            rx.wait_any([handle])

    def test_driver_mode_deadlock_raises(self):
        rx = MailboxCommunicator(Mailbox(2), 1)
        with pytest.raises(RuntimeError, match="deadlock"):
            rx.wait_any([rx.irecv(0, tag="never")])

    def test_threaded_wait_blocks_until_arrival(self, rng):
        box = Mailbox(2)
        tx = MailboxCommunicator(box, 0)
        rx = MailboxCommunicator(box, 1, blocking=True, timeout=10.0)
        payload = rng.standard_normal(4)
        handle = rx.irecv(0, tag="late")
        timer = threading.Timer(
            0.05, lambda: tx.send(1, payload, tag="late")
        )
        timer.start()
        try:
            assert rx.wait_any([handle]) == 0
        finally:
            timer.cancel()
        assert np.array_equal(handle._data, payload)

    def test_threaded_wait_any_times_out_with_diagnostic(self):
        box = Mailbox(2)
        rx = MailboxCommunicator(box, 1, blocking=True, timeout=0.05)
        with pytest.raises(RuntimeError, match="timed out"):
            rx.wait_any([rx.irecv(0, tag="never")])

    def test_one_wait_observation_per_completion(self, rng):
        """Count invariance: draining N handles through wait_any costs
        exactly N recv-wait observations — the same as N blocking recvs,
        whatever the arrival order."""
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        with metrics_scope() as reg:
            handles = [rx.irecv(0, tag=i) for i in range(4)]
            for i in range(4):
                tx.send(1, rng.standard_normal(2), tag=i)
            remaining = list(handles)
            while remaining:
                index = rx.wait_any(remaining)
                remaining.pop(index)
        observations = sum(
            h.count for _, h in reg.histograms.items()
            if h.name == RECV_WAIT
        )
        assert observations == 4


class TestBackendsConstant:
    def test_names(self):
        assert BACKENDS == ("sequential", "threads", "processes")


class TestQMPOverCommunicator:
    def test_channel_over_endpoint(self, rng):
        box = Mailbox(2)
        tx = QMPChannel.over(MailboxCommunicator(box, 0))
        rx = QMPChannel.over(MailboxCommunicator(box, 1))
        payload = rng.standard_normal(6)
        send = tx.declare_send(1, payload)
        recv = rx.declare_receive(0)
        send.start()
        recv.start()
        send.wait()
        assert np.array_equal(recv.wait(), payload)

    def test_legacy_and_over_interoperate(self, rng):
        box = Mailbox(2)
        legacy = QMPChannel(box, 0)
        modern = QMPChannel.over(MailboxCommunicator(box, 1))
        payload = rng.standard_normal(3)
        h = legacy.declare_send(1, payload)
        h.start()
        r = modern.declare_receive(0)
        r.start()
        assert np.array_equal(r.wait(), payload)
