"""The rank-local Communicator protocol and its mailbox endpoint."""

import numpy as np
import pytest

from repro.comm import Mailbox, MailboxCommunicator, QMPChannel
from repro.comm.communicator import (
    BACKENDS,
    record_collective,
    reduce_in_rank_order,
)
from repro.util.counters import tally


class TestReduceInRankOrder:
    def test_left_fold_order(self):
        # Floating-point addition is not associative; the canonical fold
        # is the left fold ((p0+p1)+p2)+p3 — assert exact bit equality
        # with the hand-written chain, not with a different grouping.
        parts = [0.1, 0.2, 0.3, 1e16]
        assert reduce_in_rank_order(parts) == ((0.1 + 0.2) + 0.3) + 1e16

    def test_matches_mailbox_allreduce(self):
        parts = [np.float64(0.1 * (r + 1)) for r in range(4)]
        assert reduce_in_rank_order(parts) == Mailbox(4).allreduce_sum(parts)

    def test_array_contributions(self):
        parts = [np.arange(3.0) + r for r in range(3)]
        assert np.array_equal(reduce_in_rank_order(parts), np.arange(3.0) * 3 + 3)


class TestRecordCollective:
    def test_rank0_owns_the_reduction_event(self):
        value = np.complex128(1.0)
        tallies = []
        for rank in range(4):
            with tally() as t:
                record_collective(rank, value)
            tallies.append(t)
        assert [t.reductions for t in tallies] == [1, 0, 0, 0]
        # Every participant pays its own wire share.
        assert all(t.comm_bytes == value.nbytes for t in tallies)
        assert all(t.messages == 1 for t in tallies)

    def test_per_rank_shares_sum_to_global_accounting(self):
        box = Mailbox(4)
        parts = [np.complex128(r) for r in range(4)]
        with tally() as globalview:
            box.allreduce_sum(parts)
        with tally() as merged:
            for rank in range(4):
                record_collective(rank, parts[rank])
        assert merged.reductions == globalview.reductions == 1
        assert merged.messages == globalview.messages == 4
        assert merged.comm_bytes == globalview.comm_bytes


class TestMailboxCommunicator:
    def test_rank_and_size(self):
        comm = MailboxCommunicator(Mailbox(3), 1)
        assert (comm.rank, comm.size) == (1, 3)

    def test_rank_validation(self):
        with pytest.raises(ValueError):
            MailboxCommunicator(Mailbox(2), 5)

    def test_isend_recv_roundtrip(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        payload = rng.standard_normal(8)
        handle = tx.isend(1, payload)
        handle.wait()  # sends are eager: wait is a no-op
        assert np.array_equal(rx.recv(0), payload)

    def test_irecv_wait(self, rng):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        payload = rng.standard_normal(4)
        handle = rx.irecv(0, tag="h")
        tx.send(1, payload, tag="h")
        assert np.array_equal(rx.wait(handle), payload)

    def test_wait_is_idempotent(self, rng):
        box = Mailbox(2)
        MailboxCommunicator(box, 0).send(1, rng.standard_normal(4))
        handle = MailboxCommunicator(box, 1).irecv(0)
        assert np.array_equal(handle.wait(), handle.wait())

    def test_tags_are_separate(self):
        box = Mailbox(2)
        tx, rx = MailboxCommunicator(box, 0), MailboxCommunicator(box, 1)
        tx.send(1, np.array([1.0]), tag="a")
        tx.send(1, np.array([2.0]), tag="b")
        assert rx.recv(0, tag="b")[0] == 2.0
        assert rx.recv(0, tag="a")[0] == 1.0

    def test_driver_mode_missing_message_raises(self):
        comm = MailboxCommunicator(Mailbox(2), 0)
        with pytest.raises(RuntimeError, match="deadlock"):
            comm.recv(1)

    def test_driver_mode_collectives_raise(self):
        comm = MailboxCommunicator(Mailbox(2), 0)
        with pytest.raises(RuntimeError, match="rendezvous"):
            comm.allreduce_sum(1.0)
        with pytest.raises(RuntimeError, match="rendezvous"):
            comm.barrier()

    def test_send_charges_the_sender(self):
        box = Mailbox(2)
        payload = np.zeros(16)
        with tally() as t:
            MailboxCommunicator(box, 0).send(1, payload)
        assert t.comm_bytes == payload.nbytes
        assert t.messages == 1


class TestBackendsConstant:
    def test_names(self):
        assert BACKENDS == ("sequential", "threads", "processes")


class TestQMPOverCommunicator:
    def test_channel_over_endpoint(self, rng):
        box = Mailbox(2)
        tx = QMPChannel.over(MailboxCommunicator(box, 0))
        rx = QMPChannel.over(MailboxCommunicator(box, 1))
        payload = rng.standard_normal(6)
        send = tx.declare_send(1, payload)
        recv = rx.declare_receive(0)
        send.start()
        recv.start()
        send.wait()
        assert np.array_equal(recv.wait(), payload)

    def test_legacy_and_over_interoperate(self, rng):
        box = Mailbox(2)
        legacy = QMPChannel(box, 0)
        modern = QMPChannel.over(MailboxCommunicator(box, 1))
        payload = rng.standard_normal(3)
        h = legacy.declare_send(1, payload)
        h.start()
        r = modern.declare_receive(0)
        r.start()
        assert np.array_equal(r.wait(), payload)
