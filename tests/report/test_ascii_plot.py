"""ASCII log-log charts and timeline charts."""

import pytest

from repro.report import AsciiPlot, loglog_chart


class TestAsciiPlot:
    def test_renders_all_series(self):
        plot = AsciiPlot("demo", "GPUs", "Gf")
        plot.add_series("a", [1, 10, 100], [100, 50, 20])
        plot.add_series("b", [1, 10, 100], [200, 120, 60])
        out = plot.render()
        assert "demo" in out
        assert "* a" in out and "o b" in out
        assert "GPUs" in out and "Gf" in out

    def test_markers_placed(self):
        plot = AsciiPlot("t", width=20, height=8)
        plot.add_series("s", [1, 100], [1, 100])
        grid_lines = [l for l in plot.render().splitlines() if "|" in l]
        assert sum(l.count("*") for l in grid_lines) == 2

    def test_extremes_on_axis_labels(self):
        plot = AsciiPlot("t")
        plot.add_series("s", [2, 64], [5, 500])
        out = plot.render()
        assert "500" in out and "5" in out
        assert "64" in out and "2" in out

    def test_monotone_series_renders_monotone(self):
        """Higher y values must land on higher rows."""
        plot = AsciiPlot("t", width=30, height=10)
        plot.add_series("s", [1, 10, 100], [1, 10, 100])
        lines = plot.render().splitlines()
        rows_cols = [
            (i, line.index("*"))
            for i, line in enumerate(lines)
            if "|" in line and "*" in line
        ]
        assert len(rows_cols) == 3
        # Lower rows (later lines) hold smaller y, which is smaller x here:
        # columns must decrease as the row index increases.
        cols = [c for _, c in rows_cols]
        assert cols == sorted(cols, reverse=True)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            AsciiPlot("t").render()

    def test_rejects_nonpositive(self):
        plot = AsciiPlot("t")
        with pytest.raises(ValueError):
            plot.add_series("s", [0, 1], [1, 1])

    def test_rejects_mismatched_lengths(self):
        plot = AsciiPlot("t")
        with pytest.raises(ValueError):
            plot.add_series("s", [1, 2], [1])

    def test_constant_series_ok(self):
        plot = AsciiPlot("t")
        plot.add_series("s", [1, 2, 4], [5, 5, 5])
        assert "5" in plot.render()


class TestLogLogChart:
    def test_one_call_api(self):
        out = loglog_chart(
            "fig", "x", "y",
            {"a": ([1, 10], [10, 1]), "b": ([1, 10], [20, 2])},
        )
        assert "fig" in out
        assert "a" in out and "b" in out

    def test_cli_report_command(self, capsys):
        from repro.cli import main

        assert main(["report"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out and "Fig. 7" in out
        assert "BiCGstab" in out and "GCR-DD" in out


class TestTimelineChart:
    def test_bars_and_labels(self):
        from repro.report import timeline_chart

        out = timeline_chart(
            "tl",
            {
                "rank0/comm": [(0.0, 0.5)],
                "rank0/interior": [(0.0, 1.0)],
                "rank0/exterior": [(1.0, 0.25)],
            },
            width=40,
        )
        lines = out.splitlines()
        assert lines[0] == "tl"
        assert "rank0/comm" in lines[1]
        # The comm bar covers roughly the first 40% of the axis; the
        # interior bar covers ~80% (the window ends at 1.25 s).
        comm_bar = lines[1].split("|")[1]
        interior_bar = lines[2].split("|")[1]
        assert comm_bar.count("#") < interior_bar.count("#")

    def test_tiny_interval_still_visible(self):
        from repro.report import timeline_chart

        out = timeline_chart(
            "tl", {"a": [(0.0, 1e-9)], "b": [(0.0, 1.0)]}, width=30
        )
        assert "#" in out.splitlines()[1]

    def test_empty_tracks_rejected(self):
        from repro.report import timeline_chart

        with pytest.raises(ValueError):
            timeline_chart("tl", {})
