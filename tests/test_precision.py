"""Precision emulation: dtype mapping and the 16-bit fixed-point format."""

import numpy as np
import pytest

from repro.precision import (
    DOUBLE,
    HALF,
    SINGLE,
    SINGLE_HALF_HALF,
    DOUBLE_SINGLE,
    PrecisionPolicy,
    precision,
    quantize_half,
)


class TestLookup:
    def test_by_name(self):
        assert precision("double") is DOUBLE
        assert precision("single") is SINGLE
        assert precision("half") is HALF

    def test_idempotent(self):
        assert precision(HALF) is HALF

    def test_unknown(self):
        with pytest.raises(ValueError):
            precision("quad")

    def test_storage_sizes(self):
        assert DOUBLE.bytes_per_real == 8
        assert SINGLE.bytes_per_real == 4
        assert HALF.bytes_per_real == 2

    def test_eps_ordering(self):
        assert DOUBLE.eps < SINGLE.eps < HALF.eps
        assert HALF.eps == pytest.approx(1 / 32767.0)


class TestConvert:
    def test_double_passthrough(self, rng):
        x = rng.standard_normal((4, 4, 4, 4, 4, 3)) + 0j
        out = DOUBLE.convert(x)
        assert out.dtype == np.complex128
        assert np.array_equal(out, x)

    def test_single_rounds(self, rng):
        x = rng.standard_normal((2, 2, 2, 2, 4, 3)) + 1j * rng.standard_normal(
            (2, 2, 2, 2, 4, 3)
        )
        out = SINGLE.convert(x)
        assert out.dtype == np.complex64
        assert np.abs(out - x).max() < 1e-6

    def test_half_accuracy(self, rng):
        x = rng.standard_normal((2, 2, 2, 2, 4, 3)) + 1j * rng.standard_normal(
            (2, 2, 2, 2, 4, 3)
        )
        out = HALF.convert(x)
        # Relative error per site bounded by the fixed-point resolution
        # times the site max-norm.
        site_max = np.abs(x).reshape(x.shape[:-2] + (-1,)).max(-1)
        err = np.abs(out - x).reshape(x.shape[:-2] + (-1,)).max(-1)
        assert np.all(err <= 3.0 * site_max / 32767.0)


class TestQuantizeHalf:
    def test_zero_field_unchanged(self):
        z = np.zeros((4, 4, 3), dtype=np.complex128)
        assert not np.any(quantize_half(z, site_axes=1))

    def test_idempotent(self, rng):
        x = rng.standard_normal((8, 4, 3)) + 1j * rng.standard_normal((8, 4, 3))
        q1 = quantize_half(x)
        q2 = quantize_half(q1.astype(np.complex128))
        assert np.abs(q1 - q2).max() < 2e-4 * np.abs(x).max()

    def test_scale_invariance_per_site(self, rng):
        # Scaling one site's values scales its quantization identically:
        # the per-site scale makes the format relative, not absolute.
        x = rng.standard_normal((2, 4, 3)) + 1j * rng.standard_normal((2, 4, 3))
        q = quantize_half(x)
        scaled = x.copy()
        scaled[0] *= 1000.0
        q_scaled = quantize_half(scaled)
        assert np.allclose(q_scaled[0], 1000.0 * q[0], rtol=1e-5)
        assert np.allclose(q_scaled[1], q[1])

    def test_staggered_site_axes(self, rng):
        x = rng.standard_normal((4, 4, 4, 4, 3)) + 1j * rng.standard_normal(
            (4, 4, 4, 4, 3)
        )
        out = quantize_half(x, site_axes=1)
        assert out.dtype == np.complex64
        assert np.abs(out - x).max() < np.abs(x).max() * 1e-3

    def test_quantization_actually_rounds(self, rng):
        x = rng.standard_normal((8, 4, 3)) + 1j * rng.standard_normal((8, 4, 3))
        assert np.abs(quantize_half(x) - x).max() > 0


class TestPolicy:
    def test_labels(self):
        assert SINGLE_HALF_HALF.label() == "single-half-half"
        assert DOUBLE_SINGLE.label() == "double-single"

    def test_from_names(self):
        p = PrecisionPolicy("double", "single", "half")
        assert p.outer is DOUBLE and p.inner is SINGLE and p.preconditioner is HALF

    def test_no_preconditioner(self):
        p = PrecisionPolicy(DOUBLE, SINGLE)
        assert p.preconditioner is None
        assert p.label() == "double-single"
