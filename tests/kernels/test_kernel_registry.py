"""Kernel-backend registry: resolution order, fallback, error shapes."""

from __future__ import annotations

import pytest

from repro.kernels import (
    KernelBackend,
    KernelCapabilities,
    KernelUnavailableError,
    available_backends,
    availability_note,
    backend_names,
    capability_matrix,
    get_backend,
    kernel_choices,
    register_backend,
    resolve_kernel,
)
from repro.kernels import registry as registry_mod


@pytest.fixture()
def scratch_registry():
    """Snapshot/restore the global registry around mutation tests."""
    saved = dict(registry_mod._REGISTRY)
    yield registry_mod._REGISTRY
    registry_mod._REGISTRY.clear()
    registry_mod._REGISTRY.update(saved)


class _Fake(KernelBackend):
    capabilities = KernelCapabilities(operators=("wilson",))

    def __init__(self, name, priority, available=True, reason=None):
        self.name = name
        self.priority = priority
        self._available = available
        self._reason = reason

    @property
    def available(self):
        return self._available

    @property
    def unavailable_reason(self):
        return None if self._available else self._reason


class TestRegistryContents:
    def test_builtin_backends_registered(self):
        names = backend_names()
        assert "numpy" in names and "numpy_ref" in names
        assert "numba" in names  # registered even when uninstallable

    def test_names_in_resolution_order(self):
        names = backend_names()
        prios = [get_backend(n).priority for n in names]
        assert prios == sorted(prios, reverse=True)
        assert names.index("numba") < names.index("numpy")
        assert names.index("numpy") < names.index("numpy_ref")

    def test_kernel_choices_lead_with_auto(self):
        choices = kernel_choices()
        assert choices[0] == "auto"
        assert set(choices[1:]) == set(backend_names())

    def test_register_rejects_reserved_names(self):
        with pytest.raises(ValueError):
            register_backend(_Fake("auto", 99))
        with pytest.raises(ValueError):
            register_backend(_Fake("", 99))

    def test_capability_matrix_mirrors_registry(self):
        rows = {row["name"]: row for row in capability_matrix()}
        assert set(rows) == set(backend_names())
        np_row = rows["numpy"]
        assert np_row["available"] is True
        assert np_row["operators"] == ["wilson", "staggered"]
        assert np_row["batched"] and np_row["split"]
        ref_row = rows["numpy_ref"]
        assert ref_row["operators"] == ["wilson"]
        numba_row = rows["numba"]
        assert numba_row["available"] == get_backend("numba").available
        if not numba_row["available"]:
            assert "numba" in numba_row["unavailable_reason"]

    def test_availability_note_names_every_backend(self):
        note = availability_note()
        for name in backend_names():
            assert name in note


class TestResolution:
    def test_auto_resolves_to_highest_priority_available(self):
        resolved = resolve_kernel("auto", operator="wilson")
        assert resolved.name == available_backends("wilson")[0]
        assert resolved.available

    def test_explicit_numpy(self):
        assert resolve_kernel("numpy", operator="wilson").name == "numpy"
        assert resolve_kernel("numpy", operator="staggered").name == "numpy"

    def test_unknown_kernel_error_carries_choices(self):
        with pytest.raises(KernelUnavailableError) as exc:
            resolve_kernel("cuda", operator="wilson")
        assert "cuda" in str(exc.value)
        assert exc.value.choices[0] == "auto"
        assert "numpy" in exc.value.choices

    def test_family_mismatch_rejected(self):
        with pytest.raises(KernelUnavailableError) as exc:
            resolve_kernel("numpy_ref", operator="staggered")
        assert "staggered" in str(exc.value)
        assert "numpy_ref" not in exc.value.choices

    def test_unavailable_backend_rejected_with_reason(self):
        numba = get_backend("numba")
        if numba.available:
            pytest.skip("numba installed: the tier is selectable here")
        with pytest.raises(KernelUnavailableError) as exc:
            resolve_kernel("numba", operator="wilson")
        assert "not available" in str(exc.value)
        assert "numba" in str(exc.value)

    def test_auto_skips_unavailable_high_priority(self, scratch_registry):
        register_backend(
            _Fake("broken", 1000, available=False, reason="no dep")
        )
        resolved = resolve_kernel("auto", operator="wilson")
        assert resolved.name != "broken"
        assert resolved.available

    def test_auto_prefers_new_available_high_priority(self, scratch_registry):
        register_backend(_Fake("turbo", 1000))
        assert resolve_kernel("auto", operator="wilson").name == "turbo"
        # ...but only for the families it serves.
        assert (
            resolve_kernel("auto", operator="staggered").name != "turbo"
        )


class TestOperatorIntegration:
    def test_wilson_records_resolved_kernel(self, weak_gauge):
        from repro.dirac import WilsonCloverOperator

        op = WilsonCloverOperator(weak_gauge, mass=0.1, kernel="auto")
        assert op.kernel == resolve_kernel("auto", "wilson").name
        ref = WilsonCloverOperator(weak_gauge, mass=0.1, kernel="numpy_ref")
        assert ref.kernel == "numpy_ref"

    def test_staggered_records_resolved_kernel(self, weak_gauge):
        from repro.dirac import NaiveStaggeredOperator

        op = NaiveStaggeredOperator(weak_gauge, mass=0.1, kernel="numpy")
        assert op.kernel == "numpy"

    def test_wilson_rejects_staggered_only_kernel(
        self, weak_gauge, scratch_registry
    ):
        class _StagOnly(_Fake):
            capabilities = KernelCapabilities(operators=("staggered",))

        register_backend(_StagOnly("stag_only", 5))
        from repro.dirac import WilsonCloverOperator

        with pytest.raises(KernelUnavailableError):
            WilsonCloverOperator(weak_gauge, mass=0.1, kernel="stag_only")


class TestDeprecationShims:
    def test_use_projection_constructor_warns_and_maps(self, weak_gauge):
        from repro.dirac import WilsonCloverOperator

        with pytest.warns(DeprecationWarning, match="use kernel="):
            fast = WilsonCloverOperator(
                weak_gauge, mass=0.1, use_projection=True
            )
        assert fast.kernel == "numpy"
        with pytest.warns(DeprecationWarning, match="use kernel="):
            ref = WilsonCloverOperator(
                weak_gauge, mass=0.1, use_projection=False
            )
        assert ref.kernel == "numpy_ref"

    def test_use_projection_property_warns(self, weak_gauge):
        from repro.dirac import WilsonCloverOperator

        op = WilsonCloverOperator(weak_gauge, mass=0.1, kernel="numpy")
        with pytest.warns(DeprecationWarning, match="use kernel="):
            assert op.use_projection is True

    def test_use_split_solver_shim_warns_and_maps(self, weak_gauge448):
        from repro.comm import ProcessGrid
        from repro.core import SPMDGCRDDSolver

        with pytest.warns(DeprecationWarning, match="use schedule="):
            solver = SPMDGCRDDSolver(
                weak_gauge448, 0.2, 1.0, ProcessGrid((1, 1, 1, 2)),
                use_split=True,
            )
        assert solver.schedule == "split"

    def test_explicit_kernel_wins_over_shim(self, weak_gauge):
        from repro.dirac import WilsonCloverOperator

        with pytest.warns(DeprecationWarning, match="use kernel="):
            op = WilsonCloverOperator(
                weak_gauge, mass=0.1, kernel="numpy", use_projection=False
            )
        assert op.kernel == "numpy"
