"""NumPy <-> Numba kernel equivalence at rounding level.

Two layers of coverage:

* Table layer (runs everywhere): the numba backend's neighbor/phase/link
  tables are pure NumPy.  A vectorized mirror of the jitted site loop —
  the *same* gather + contraction the compiled kernel performs — is
  evaluated from those tables and compared against the in-tree NumPy
  stencils, so the table construction (the part that encodes layout and
  boundary semantics) is verified even on hosts without numba.
* Compiled layer (``skipif`` numba missing): the actual jitted kernels,
  via the operators' ``kernel="numba"`` path, against ``kernel="numpy"``
  — Wilson and staggered/asqtad, single and batched, mixed boundaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dirac import (
    AsqtadOperator,
    BoundarySpec,
    NaiveStaggeredOperator,
    PERIODIC,
    PHYSICAL,
    WilsonCloverOperator,
)
from repro.kernels import get_backend
from repro.kernels.numba_backend import NumbaBackend
from repro.lattice import GaugeField, Geometry, SpinorField

HAVE_NUMBA = get_backend("numba").available
needs_numba = pytest.mark.skipif(
    not HAVE_NUMBA, reason="numba not installed (the 'compiled' extra)"
)

#: Same association order per site -> rounding-level agreement.
TOL = 1e-14

MIXED = BoundarySpec(("zero", "antiperiodic", "periodic", "antiperiodic"))
BCS = [PERIODIC, PHYSICAL, MIXED]
BC_IDS = ["per", "anti", "mixed"]


def _mirror_wilson(cache, x, vol):
    """Vectorized replay of the jitted Wilson site loop from its tables."""
    xr = np.asarray(x).reshape(-1, vol, 4, 3)
    out = np.zeros_like(xr)
    for mu in range(4):
        jf = cache["nfwd"][mu]
        t = np.einsum("vcd,bvsd->bvsc", cache["u"][mu], xr[:, jf])
        out += cache["phf"][mu][None, :, None, None] * np.einsum(
            "st,bvtc->bvsc", cache["pf"][mu], t
        )
        jb = cache["nbwd"][mu]
        t = np.einsum("vcd,bvsd->bvsc", cache["udag"][mu][jb], xr[:, jb])
        out += cache["phb"][mu][None, :, None, None] * np.einsum(
            "st,bvtc->bvsc", cache["pb"][mu], t
        )
    return out.reshape(np.asarray(x).shape)


def _mirror_staggered_hops(part, eta, x, vol, out):
    """Vectorized replay of one jitted staggered hop family."""
    xr = np.asarray(x).reshape(-1, vol, 3)
    for mu in range(4):
        jf = part["nfwd"][mu]
        ph = (eta[mu] * part["phf"][mu])[None, :, None]
        out += ph * np.einsum("vcd,bvd->bvc", part["lk"][mu], xr[:, jf])
        jb = part["nbwd"][mu]
        ph = (eta[mu] * part["phb"][mu])[None, :, None]
        out -= ph * np.einsum(
            "vcd,bvd->bvc", part["lkdag"][mu][jb], xr[:, jb]
        )
    return out


class TestTableLayer:
    """The backend's tables reproduce the NumPy stencils by construction."""

    @pytest.mark.parametrize("bc", BCS, ids=BC_IDS)
    def test_wilson_tables_match_reference(self, bc, rng):
        geom = Geometry((4, 6, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.3, rng=31)
        op = WilsonCloverOperator(
            gauge, mass=0.1, csw=1.0, boundary=bc, kernel="numpy"
        )
        cache = NumbaBackend()._wilson_cache(op, np.complex128)
        x = SpinorField.random(geom, rng=rng).data
        expected = op._dslash_reference(x)
        got = _mirror_wilson(cache, x, geom.volume)
        scale = np.abs(expected).max()
        assert np.abs(got - expected).max() < TOL * scale

    def test_wilson_tables_batched(self, weak_gauge448, rng):
        geom = weak_gauge448.geometry
        op = WilsonCloverOperator(
            weak_gauge448, mass=0.1, boundary=PHYSICAL, kernel="numpy"
        )
        cache = NumbaBackend()._wilson_cache(op, np.complex128)
        xb = np.stack(
            [SpinorField.random(geom, rng=rng).data for _ in range(3)]
        )
        expected = np.stack([op._dslash_reference(xb[i]) for i in range(3)])
        got = _mirror_wilson(cache, xb, geom.volume)
        assert np.abs(got - expected).max() < TOL * np.abs(expected).max()

    @pytest.mark.parametrize("bc", BCS, ids=BC_IDS)
    def test_naive_staggered_tables_match(self, weak_gauge, bc, rng):
        geom = weak_gauge.geometry
        op = NaiveStaggeredOperator(
            weak_gauge, mass=0.1, boundary=bc, kernel="numpy"
        )
        cache = NumbaBackend()._staggered_cache(op, np.complex128)
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        expected = op._dslash_numpy(x)
        out = np.zeros_like(x).reshape(1, geom.volume, 3)
        part = dict(cache, lk=cache["fat"], lkdag=cache["fatdag"])
        got = _mirror_staggered_hops(
            part, cache["eta"], x, geom.volume, out
        ).reshape(x.shape)
        scale = np.abs(expected).max()
        assert np.abs(got - expected).max() < TOL * scale

    def test_asqtad_tables_include_long_links(self, weak_gauge, rng):
        geom = weak_gauge.geometry
        op = AsqtadOperator.from_gauge(
            weak_gauge, mass=0.1, boundary=PHYSICAL, kernel="numpy"
        )
        assert op.long is not None
        cache = NumbaBackend()._staggered_cache(op, np.complex128)
        assert cache["long"] is not None
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        expected = op._dslash_numpy(x)
        out = np.zeros_like(x).reshape(1, geom.volume, 3)
        part = dict(cache, lk=cache["fat"], lkdag=cache["fatdag"])
        _mirror_staggered_hops(part, cache["eta"], x, geom.volume, out)
        _mirror_staggered_hops(
            cache["long"], cache["eta"], x, geom.volume, out
        )
        got = out.reshape(x.shape)
        scale = np.abs(expected).max()
        assert np.abs(got - expected).max() < TOL * scale


@needs_numba
class TestCompiledWilson:
    @pytest.mark.parametrize("bc", BCS, ids=BC_IDS)
    def test_dslash_single(self, bc, rng):
        geom = Geometry((4, 6, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.3, rng=31)
        ref = WilsonCloverOperator(
            gauge, mass=0.1, csw=1.0, boundary=bc, kernel="numpy"
        )
        jit = WilsonCloverOperator(
            gauge, mass=0.1, csw=1.0, boundary=bc, kernel="numba"
        )
        assert jit.kernel == "numba"
        x = SpinorField.random(geom, rng=rng).data
        expected = ref.apply(x)
        scale = np.abs(expected).max()
        assert np.abs(jit.apply(x) - expected).max() < TOL * scale
        assert (
            np.abs(jit.apply_dagger(x) - ref.apply_dagger(x)).max()
            < TOL * scale
        )

    def test_dslash_batched(self, weak_gauge448, rng):
        geom = weak_gauge448.geometry
        ref = WilsonCloverOperator(
            weak_gauge448, mass=0.1, csw=1.0, kernel="numpy"
        )
        jit = WilsonCloverOperator(
            weak_gauge448, mass=0.1, csw=1.0, kernel="numba"
        )
        xb = np.stack(
            [SpinorField.random(geom, rng=rng).data for _ in range(4)]
        )
        expected = ref.apply(xb)
        scale = np.abs(expected).max()
        assert np.abs(jit.apply(xb) - expected).max() < TOL * scale

    def test_boundary_rebuild_after_with_boundary(self, weak_gauge, rng):
        ref = WilsonCloverOperator(weak_gauge, mass=0.1, kernel="numpy")
        jit = WilsonCloverOperator(weak_gauge, mass=0.1, kernel="numba")
        jit.apply(SpinorField.random(weak_gauge.geometry, rng=1).data)
        cut_ref = ref.with_boundary(MIXED)
        cut_jit = jit.with_boundary(MIXED)
        x = SpinorField.random(weak_gauge.geometry, rng=rng).data
        expected = cut_ref.apply(x)
        scale = np.abs(expected).max()
        assert np.abs(cut_jit.apply(x) - expected).max() < TOL * scale


@needs_numba
class TestCompiledStaggered:
    @pytest.mark.parametrize("bc", BCS, ids=BC_IDS)
    def test_naive_single(self, weak_gauge, bc, rng):
        ref = NaiveStaggeredOperator(
            weak_gauge, mass=0.1, boundary=bc, kernel="numpy"
        )
        jit = NaiveStaggeredOperator(
            weak_gauge, mass=0.1, boundary=bc, kernel="numba"
        )
        assert jit.kernel == "numba"
        x = SpinorField.random(weak_gauge.geometry, nspin=1, rng=rng).data
        expected = ref.apply(x)
        scale = np.abs(expected).max()
        assert np.abs(jit.apply(x) - expected).max() < TOL * scale

    def test_asqtad_batched(self, weak_gauge, rng):
        geom = weak_gauge.geometry
        ref = AsqtadOperator.from_gauge(
            weak_gauge, mass=0.1, boundary=PHYSICAL, kernel="numpy"
        )
        jit = AsqtadOperator.from_gauge(
            weak_gauge, mass=0.1, boundary=PHYSICAL, kernel="numba"
        )
        xb = np.stack(
            [SpinorField.random(geom, nspin=1, rng=rng).data
             for _ in range(3)]
        )
        expected = ref.apply(xb)
        scale = np.abs(expected).max()
        assert np.abs(jit.apply(xb) - expected).max() < TOL * scale


@needs_numba
class TestCompiledSolve:
    def test_bicgstab_solve_converges_on_numba_tier(self):
        from repro.core.api import SolveRequest, solve

        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=5)
        rhs = SpinorField.random(geom, rng=6).data
        result = solve(SolveRequest(
            operator="wilson_clover", gauge=gauge, rhs=rhs, mass=0.1,
            csw=1.0, tol=1e-6, kernel="numba",
        ))
        assert result.converged
