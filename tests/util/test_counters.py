"""Tally stack: nesting, merging, domain-local scoping, thread locality,
and the timed() bridge into the trace subsystem."""

import threading

import pytest

from repro import trace
from repro.util.counters import (
    Tally,
    current_tally,
    domain_local,
    record,
    record_operator,
    record_seconds,
    tally,
    timed,
)


class TestBasics:
    def test_no_active_tally(self):
        assert current_tally() is None
        record(flops=10)  # silently ignored

    def test_record_inside(self):
        with tally() as t:
            record(flops=100, bytes_moved=200, comm_bytes=30, messages=2)
        assert t.flops == 100
        assert t.bytes_moved == 200
        assert t.comm_bytes == 30
        assert t.messages == 2

    def test_operator_counting(self):
        with tally() as t:
            record_operator("wilson")
            record_operator("wilson")
            record_operator("asqtad", 3)
        assert t.operator_applications == {"wilson": 2, "asqtad": 3}

    def test_stack_restored_after_exit(self):
        with tally():
            pass
        assert current_tally() is None


class TestNesting:
    def test_inner_merges_into_outer(self):
        with tally() as outer:
            record(flops=1)
            with tally() as inner:
                record(flops=10, reductions=2)
            record(flops=100)
        assert inner.flops == 10
        assert outer.flops == 111
        assert outer.reductions == 2

    def test_inner_sees_only_its_region(self):
        with tally():
            record(flops=5)
            with tally() as inner:
                record(flops=7)
            assert inner.flops == 7

    def test_operator_counts_merge(self):
        with tally() as outer:
            with tally():
                record_operator("schwarz")
        assert outer.operator_applications == {"schwarz": 1}


class TestDomainLocal:
    def test_redirects_reductions(self):
        with tally() as t:
            with domain_local():
                record(reductions=3)
            record(reductions=1)
        assert t.reductions == 1
        assert t.local_reductions == 3

    def test_nested_scopes(self):
        with tally() as t:
            with domain_local():
                with domain_local():
                    record(reductions=1)
                record(reductions=1)
        assert t.local_reductions == 2
        assert t.reductions == 0

    def test_flops_unaffected(self):
        with tally() as t:
            with domain_local():
                record(flops=42, reductions=1)
        assert t.flops == 42


class TestSerialization:
    def _populated(self):
        t = Tally(
            flops=12, bytes_moved=34, comm_bytes=56, messages=7,
            reductions=8, local_reductions=9, seconds=1.25,
        )
        t.add_operator("wilson", 3)
        t.add_seconds("wilson_dslash", 0.75)
        t.add_seconds("halo_exchange", 0.5)
        return t

    def test_round_trip_exact(self):
        t = self._populated()
        clone = Tally.from_dict(t.to_dict())
        assert clone == t
        assert clone.to_dict() == t.to_dict()

    def test_round_trip_survives_json(self):
        import json

        t = self._populated()
        assert Tally.from_dict(json.loads(json.dumps(t.to_dict()))) == t

    def test_to_dict_snapshots_are_independent(self):
        t = self._populated()
        doc = t.to_dict()
        doc["kernel_seconds"]["wilson_dslash"] = 99.0
        doc["operator_applications"]["wilson"] = 99
        assert t.kernel_seconds["wilson_dslash"] == 0.75
        assert t.operator_applications["wilson"] == 3

    def test_missing_keys_default_to_zero(self):
        t = Tally.from_dict({})
        assert t == Tally()


class TestDomainLocalSeconds:
    def test_record_forwards_seconds_inside_domain_local(self):
        """Regression guard: the domain-local branch of record() passes
        ``seconds`` positionally through add() — dropping it there would
        silently zero kernel time measured inside Schwarz block solves."""
        with tally() as t:
            with domain_local():
                record(reductions=2, seconds=0.5)
        assert t.local_reductions == 2
        assert t.seconds == 0.5

    def test_seconds_recorded_identically_outside(self):
        with tally() as t:
            record(seconds=0.25)
        assert t.seconds == 0.25


class TestMerge:
    def test_manual_merge(self):
        a = Tally(flops=1, reductions=2)
        b = Tally(flops=10, local_reductions=5)
        b.add_operator("x")
        a.merge(b)
        assert a.flops == 11
        assert a.reductions == 2
        assert a.local_reductions == 5
        assert a.operator_applications == {"x": 1}


class TestTiming:
    def test_record_seconds_accumulates_per_kernel(self):
        with tally() as t:
            record_seconds("wilson_dslash", 0.5)
            record_seconds("wilson_dslash", 0.25)
            record_seconds("halo_exchange", 1.0)
        assert t.seconds == 1.75
        assert t.kernel_seconds == {
            "wilson_dslash": 0.75,
            "halo_exchange": 1.0,
        }

    def test_timed_charges_elapsed_time(self):
        with tally() as t:
            with timed("kernel"):
                sum(range(1000))
        assert t.kernel_seconds["kernel"] > 0.0
        assert t.seconds == t.kernel_seconds["kernel"]

    def test_timed_noop_without_tally(self):
        with timed("kernel"):
            pass  # must not raise
        assert current_tally() is None

    def test_timing_merges_into_outer_tally(self):
        with tally() as outer:
            with tally() as inner:
                record_seconds("k", 0.5)
            record_seconds("k", 0.25)
        assert inner.kernel_seconds == {"k": 0.5}
        assert outer.kernel_seconds == {"k": 0.75}
        assert outer.seconds == 0.75


class TestThreadLocality:
    def test_tally_not_visible_in_other_thread(self):
        seen = {}

        def worker():
            seen["tally"] = current_tally()
            record(flops=999)  # must vanish, not leak into main's tally

        with tally() as t:
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["tally"] is None
        assert t.flops == 0

    def test_threads_nest_independently(self):
        results = {}

        def worker():
            with tally() as inner:
                record(flops=7)
            results["flops"] = inner.flops

        with tally() as t:
            record(flops=1)
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert results["flops"] == 7
        assert t.flops == 1  # worker's tally never merged across threads


class TestTimedTraceBridge:
    def test_timed_emits_span_with_identical_duration(self):
        with trace.tracing() as tr, tally() as t:
            with timed("kernel", kind="interior"):
                sum(range(1000))
        (ev,) = tr.events
        assert ev.name == "kernel"
        assert ev.kind == "interior"
        assert ev.args["source"] == "timed"
        # One shared measurement: exactly equal, not approximately.
        assert ev.duration == t.kernel_seconds["kernel"]

    def test_timed_traces_without_tally(self):
        with trace.tracing() as tr:
            with timed("kernel"):
                pass
        assert [ev.name for ev in tr.events] == ["kernel"]
        assert current_tally() is None

    def test_timed_tallies_without_tracer(self):
        with tally() as t:
            with timed("kernel"):
                pass
        assert "kernel" in t.kernel_seconds

    def test_timed_inherits_rank_from_enclosing_span(self):
        with trace.tracing() as tr:
            with trace.span("interior_kernel", kind="interior", rank=5,
                            stream="compute"):
                with timed("wilson_dslash", kind="dslash"):
                    pass
        dslash = next(ev for ev in tr.events if ev.name == "wilson_dslash")
        assert dslash.rank == 5
        assert dslash.stream == "compute"


class TestNestedTimedGuard:
    def test_nesting_raises_under_debug_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_TIMING", "1")
        with tally():
            with timed("outer"):
                with pytest.raises(RuntimeError, match="nested timed"):
                    with timed("inner"):
                        pass

    def test_nesting_tolerated_without_debug_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_TIMING", raising=False)
        with tally() as t:
            with timed("outer"):
                with timed("inner"):
                    pass
        assert set(t.kernel_seconds) == {"outer", "inner"}

    def test_nested_span_flagged_in_trace(self, monkeypatch):
        monkeypatch.delenv("REPRO_DEBUG_TIMING", raising=False)
        with trace.tracing() as tr, tally():
            with timed("outer"):
                with timed("inner"):
                    pass
        by_name = {ev.name: ev for ev in tr.events}
        assert by_name["inner"].args.get("nested") is True
        assert "nested" not in by_name["outer"].args

    def test_nested_flag_surfaces_in_summary_table(self, monkeypatch):
        from repro.trace.summary import format_table, summarize

        monkeypatch.delenv("REPRO_DEBUG_TIMING", raising=False)
        with trace.tracing() as tr, tally():
            with timed("outer"):
                with timed("inner"):
                    pass
        stats = {s.name: s for s in summarize(tr.events)}
        assert stats["inner"].nested == 1
        assert stats["outer"].nested == 0
        table = format_table(tr.events)
        assert "NESTED x1" in table
        assert "double-count" in table

    def test_depth_resets_after_exception(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_TIMING", "1")
        with tally():
            with pytest.raises(ValueError):
                with timed("outer"):
                    raise ValueError("kernel blew up")
            # The guard must not think we are still inside "outer".
            with timed("again"):
                pass

    def test_sibling_regions_are_not_nested(self, monkeypatch):
        monkeypatch.setenv("REPRO_DEBUG_TIMING", "1")
        with tally() as t:
            with timed("first"):
                pass
            with timed("second"):
                pass
        assert set(t.kernel_seconds) == {"first", "second"}


class TestAllreduceAccounting:
    """Regression: allreduce_sum recorded the reduction event but zero
    wire bytes — global sums looked free in the communication ledger."""

    def test_scalar_allreduce_charges_bytes(self):
        import numpy as np

        from repro.comm.mailbox import Mailbox

        box = Mailbox(4)
        parts = [np.complex128(r + 1) for r in range(4)]
        with tally() as t:
            total = box.allreduce_sum(parts)
        assert total == np.complex128(10)
        assert t.reductions == 1
        assert t.comm_bytes == 16 * 4  # one complex128 per rank

    def test_batched_allreduce_scales_with_payload(self):
        import numpy as np

        from repro.comm.mailbox import Mailbox

        box = Mailbox(2)
        nb = 12
        parts = [np.ones(nb, dtype=np.complex128) for _ in range(2)]
        with tally() as t:
            total = box.allreduce_sum(parts)
        assert np.all(total == 2.0)
        # Payload grows with the batch, the event count does not.
        assert t.reductions == 1
        assert t.comm_bytes == nb * 16 * 2

    def test_allreduce_charges_one_message_per_rank(self):
        # Regression: allreduce_sum charged bytes and the reduction event
        # but zero messages, while each SPMD rank endpoint charges one
        # message for its contribution — merged per-rank tallies then
        # disagreed with the global-view message count.  The convention:
        # an allreduce costs one message per participating rank.
        import numpy as np

        from repro.comm.mailbox import Mailbox

        box = Mailbox(4)
        parts = [np.complex128(r) for r in range(4)]
        with tally() as t:
            box.allreduce_sum(parts)
        assert t.messages == box.size
        assert t.comm_bytes == 16 * box.size
        assert t.reductions == 1

    def test_global_view_equals_summed_spmd_shares(self):
        import numpy as np

        from repro.comm.communicator import record_collective
        from repro.comm.mailbox import Mailbox

        size = 4
        parts = [np.float64(r + 0.5) for r in range(size)]
        with tally() as globalview:
            Mailbox(size).allreduce_sum(parts)
        with tally() as merged:
            for rank in range(size):
                record_collective(rank, parts[rank])
        assert merged.messages == globalview.messages
        assert merged.comm_bytes == globalview.comm_bytes
        assert merged.reductions == globalview.reductions
