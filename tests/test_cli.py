"""The command-line driver."""

import pytest

from repro.cli import build_parser, main
from repro import io


class TestHelp:
    def test_every_subcommand_listed_with_help(self, capsys):
        """The --help table derives from the subparser registry: every
        registered command must appear with a one-line description."""
        parser = build_parser()
        sub = next(
            a for a in parser._subparsers._group_actions
            if hasattr(a, "choices")
        )
        commands = set(sub.choices)
        assert {
            "solve", "generate", "trace", "report", "info",
            "bench-multirhs", "bench",
        } <= commands
        with pytest.raises(SystemExit):
            main(["--help"])
        out = capsys.readouterr().out
        assert "commands:" in out
        for name in commands:
            assert name in out

    def test_epilog_lines_carry_descriptions(self):
        parser = build_parser()
        lines = parser.epilog.splitlines()[1:]
        table = lines[: lines.index("")]  # the availability note follows
        assert len(table) == 18  # fig5..fig10 + 12 named commands
        for line in table:
            name, _, help_ = line.strip().partition(" ")
            assert help_.strip(), f"command {name} has no help line"


class TestFigures:
    @pytest.mark.parametrize("n", [5, 6, 7, 8, 9, 10])
    def test_fig_commands_run(self, n, capsys):
        assert main([f"fig{n}"]) == 0
        out = capsys.readouterr().out
        assert f"Fig" in out
        assert len(out.splitlines()) >= 3

    def test_fig5_mentions_precisions(self, capsys):
        main(["fig5"])
        out = capsys.readouterr().out
        assert "SP" in out and "HP" in out

    def test_fig10_mentions_partitionings(self, capsys):
        main(["fig10"])
        out = capsys.readouterr().out
        for label in ("ZT", "YZT", "XYZT"):
            assert label in out


class TestSolve:
    def test_bicgstab(self, capsys):
        rc = main(["solve", "--dims", "4", "4", "4", "8", "--tol", "1e-6"])
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    def test_gcr_dd(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--method", "gcr-dd",
            "--blocks", "4", "--tol", "1e-5", "--mr-steps", "4",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "gcr-dd" in out and "blocks=4" in out

    def test_gcr_dd_spmd_backend(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--method", "gcr-dd",
            "--blocks", "4", "--tol", "1e-5", "--mr-steps", "4",
            "--backend", "threads",
        ])
        assert rc == 0
        assert "backend=threads" in capsys.readouterr().out

    def test_backend_requires_gcr_dd(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--backend", "threads",
        ])
        assert rc == 2
        assert "gcr-dd" in capsys.readouterr().err


class TestBenchSPMD:
    def test_bench_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "bench.json"
        rc = main([
            "bench", "--dims", "4", "4", "4", "8", "--ranks", "4",
            "--repeats", "1", "--backend", "sequential",
            "--backend", "threads", "--output", str(out_path),
        ])
        assert rc == 0
        import json

        report = json.loads(out_path.read_text())
        from repro.metrics.bench_schema import validate_bench

        assert validate_bench(report) == []
        assert report["config"]["ranks"] == 4
        assert report["host"]["cpu_count"] is not None
        assert report["metrics"]["threads_speedup_vs_sequential"] > 0
        backends = [e["backend"] for e in report["results"]]
        assert backends == ["sequential", "threads"]
        assert all(e["bitwise_equal_to_first_backend"]
                   for e in report["results"])
        assert report["results"][1]["speedup_vs_sequential"] > 0


class TestKernels:
    def test_capability_matrix_printed(self, capsys):
        assert main(["kernels"]) == 0
        out = capsys.readouterr().out
        from repro.kernels import backend_names

        for name in backend_names():
            assert name in out
        assert "kernel backends:" in out

    def test_help_epilog_carries_availability_note(self):
        from repro.kernels import availability_note

        assert availability_note() in build_parser().epilog

    def test_solve_accepts_explicit_kernel(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--tol", "1e-6",
            "--kernel", "numpy",
        ])
        assert rc == 0
        assert "converged" in capsys.readouterr().out

    def test_solve_rejects_unknown_kernel(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8",
            "--kernel", "cuda",
        ])
        assert rc == 2
        assert "SolveRequest.kernel" in capsys.readouterr().err


class TestPrecond:
    def test_capability_matrix_printed(self, capsys):
        assert main(["precond"]) == 0
        out = capsys.readouterr().out
        from repro.precond import precond_names

        for name in precond_names():
            assert name in out
        assert "preconditioners:" in out

    def test_help_epilog_carries_availability_note(self):
        from repro.precond import availability_note

        assert availability_note() in build_parser().epilog

    def test_solve_accepts_explicit_precond(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--method", "gcr-dd",
            "--blocks", "4", "--tol", "1e-5", "--mr-steps", "4",
            "--precond", "ras",
        ])
        assert rc == 0
        assert "precond=ras" in capsys.readouterr().out

    def test_solve_rejects_unknown_precond(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--method", "gcr-dd",
            "--blocks", "4", "--precond", "ilu",
        ])
        assert rc == 2
        assert "precond" in capsys.readouterr().err

    def test_precond_requires_gcr_dd(self, capsys):
        rc = main([
            "solve", "--dims", "4", "4", "4", "8", "--precond", "ras",
        ])
        assert rc == 2
        assert "gcr-dd" in capsys.readouterr().err

    def test_bench_precond_sweep_writes_report(self, tmp_path, capsys):
        out_path = tmp_path / "bench_precond.json"
        rc = main([
            "bench", "--dims", "4", "4", "4", "8", "--ranks", "4",
            "--repeats", "1", "--tol", "1e-5", "--mr-steps", "4",
            "--precond", "none", "--precond", "schwarz",
            "--output", str(out_path),
        ])
        assert rc == 0
        import json

        report = json.loads(out_path.read_text())
        from repro.metrics.bench_schema import validate_bench

        assert validate_bench(report) == []
        assert [e["precond"] for e in report["results"]] == [
            "none", "schwarz",
        ]
        assert all(e["converged"] for e in report["results"])
        assert (report["metrics"]["schwarz_iterations"]
                < report["metrics"]["none_iterations"])


class TestGenerate:
    def test_generate_and_save(self, tmp_path, capsys):
        out_path = tmp_path / "gen.npz"
        rc = main([
            "generate", "--dims", "4", "4", "4", "4", "--beta", "5.7",
            "--sweeps", "4", "--output", str(out_path),
        ])
        assert rc == 0
        assert "plaquette" in capsys.readouterr().out
        gauge, extra = io.load_gauge(out_path)
        assert extra["beta"] == 5.7
        assert 0.0 < gauge.plaquette() < 1.0

    def test_hot_start(self, capsys):
        rc = main([
            "generate", "--dims", "4", "4", "4", "4", "--beta", "1.0",
            "--sweeps", "2", "--start", "hot",
        ])
        assert rc == 0


class TestInfo:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Edge" in out and "M2050" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])
