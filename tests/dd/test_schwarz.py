"""The additive Schwarz (block-Jacobi) preconditioner."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dd import AdditiveSchwarzPreconditioner
from repro.dirac import NaiveStaggeredOperator, StaggeredNormalOperator, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.precision import HALF
from repro.util.counters import tally


@pytest.fixture(scope="module")
def setup():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=88)
    op = WilsonCloverOperator(gauge, mass=0.2, csw=1.0)
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    return geom, op, part


class TestConstruction:
    def test_one_block_per_rank(self, setup):
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part, mr_steps=4)
        assert k.n_blocks == 4
        assert len(k.block_ops) == 4

    def test_block_ops_have_dirichlet_cuts(self, setup):
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part)
        for block in k.block_ops:
            assert block.boundary[2] == "zero"
            assert block.boundary[3] == "zero"
            assert block.boundary[0] == "periodic"

    def test_geometry_mismatch_rejected(self, setup):
        geom, op, part = setup
        other = BlockPartition(Geometry((4, 4, 4, 4)), ProcessGrid((1, 1, 1, 2)))
        with pytest.raises(ValueError):
            AdditiveSchwarzPreconditioner(op, other)


class TestAction:
    def test_is_approximate_inverse(self, setup, rng):
        """K M x ~ x: applying the preconditioner to M x must roughly
        recover x (it is an approximate block inverse)."""
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part, mr_steps=20, precision=None)
        x = SpinorField.random(geom, rng=rng).data
        recovered = k(op.apply(x))
        rel = np.linalg.norm(recovered - x) / np.linalg.norm(x)
        assert rel < 0.6  # loose approximation — that's all GCR needs

    def test_more_mr_steps_solve_blocks_better(self, setup, rng):
        """More MR steps converge each *block* system further (the error
        against the global inverse saturates at the Dirichlet-cut level,
        so the block residual is the right convergence measure)."""
        geom, op, part = setup
        r = SpinorField.random(geom, rng=rng).data
        block_res = []
        for steps in (2, 8, 24):
            k = AdditiveSchwarzPreconditioner(op, part, mr_steps=steps,
                                              precision=None)
            z = k(r)
            total = 0.0
            for rank, block_op in enumerate(k.block_ops):
                sl = part.slices(rank)
                total += np.linalg.norm(
                    block_op.apply(np.ascontiguousarray(z[sl])) - r[sl]
                )
            block_res.append(total)
        assert block_res[0] > block_res[1] > block_res[2]

    def test_no_global_reductions(self, setup, rng):
        """The defining property: applying K performs no global
        reductions (all dots are block-local)."""
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part, mr_steps=5)
        r = SpinorField.random(geom, rng=rng).data
        with tally() as t:
            k(r)
        assert t.reductions == 0
        assert t.local_reductions > 0
        assert t.comm_bytes == 0

    def test_blocks_are_independent(self, setup, rng):
        """Changing the residual inside one block must not change the
        correction in any other block (zero overlap = block Jacobi)."""
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part, mr_steps=5, precision=None)
        r = SpinorField.random(geom, rng=rng).data
        z1 = k(r)
        r2 = r.copy()
        r2[part.slices(0)] *= 2.0
        z2 = k(r2)
        for rank in range(1, part.n_ranks):
            sl = part.slices(rank)
            assert np.abs(z1[sl] - z2[sl]).max() < 1e-12

    def test_half_precision_block_solve(self, setup, rng):
        geom, op, part = setup
        k = AdditiveSchwarzPreconditioner(op, part, mr_steps=8, precision=HALF)
        r = SpinorField.random(geom, rng=rng).data
        z = k(r)
        # Still a useful approximate inverse despite the rounding.
        x = op.apply(z)
        assert np.linalg.norm(x - r) < np.linalg.norm(r)

    def test_staggered_blocks(self, rng):
        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=99)
        normal = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, 0.3))
        part = BlockPartition(geom, ProcessGrid((1, 1, 1, 2)))
        k = AdditiveSchwarzPreconditioner(normal, part, mr_steps=10,
                                          precision=None)
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        recovered = k(normal.apply(x))
        assert np.linalg.norm(recovered - x) < np.linalg.norm(x)
