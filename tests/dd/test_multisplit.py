"""Multi-splitting preconditioner (O'Leary-White overlapping splittings
blended with partition-of-unity weights)."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dd import AdditiveSchwarzPreconditioner, MultiSplittingPreconditioner
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.solvers import gcr
from repro.util.counters import tally


@pytest.fixture(scope="module")
def system():
    geom = Geometry((8, 8, 8, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=23)
    op = WilsonCloverOperator(gauge, mass=0.15, csw=1.0)
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    b = SpinorField.random(geom, rng=24).data
    return geom, op, part, b


class TestMultiSplitting:
    def test_zero_overlap_equals_block_jacobi(self, system, rng):
        """With no overlap every site is covered exactly once, all the
        partition-of-unity weights are exactly 1.0, and the splittings
        are the Schwarz blocks: bitwise block-Jacobi."""
        geom, op, part, b = system
        jacobi = AdditiveSchwarzPreconditioner(op, part, mr_steps=5,
                                               precision=None)
        ms0 = MultiSplittingPreconditioner(op, part, overlap=0, mr_steps=5,
                                           precision=None)
        r = SpinorField.random(geom, rng=rng).data
        assert np.array_equal(jacobi(r), ms0(r))

    def test_zero_overlap_bitwise_in_half_precision(self, system, rng):
        geom, op, part, b = system
        jacobi = AdditiveSchwarzPreconditioner(op, part, mr_steps=5)
        ms0 = MultiSplittingPreconditioner(op, part, overlap=0, mr_steps=5)
        r = SpinorField.random(geom, rng=rng).data
        assert np.array_equal(jacobi(r), ms0(r))

    def test_partition_of_unity(self, system):
        """The diagonal weights E_l sum to the identity: overlapping
        splittings share credit, they do not double-count."""
        geom, op, part, b = system
        k = MultiSplittingPreconditioner(op, part, overlap=1, mr_steps=4)
        assert k.n_splittings == part.n_ranks
        assert k.redundancy > 1.0
        total = np.zeros(geom.shape)
        for rank in range(k.n_splittings):
            index = k._region_index(rank)
            total[index] += k._weights[rank][..., 0, 0]
        assert np.allclose(total, 1.0)

    def test_preconditions_gcr_fewer_iterations(self, system):
        """Convergence on the parity-grid blocks: the preconditioned
        outer needs strictly fewer iterations than unpreconditioned."""
        geom, op, part, b = system
        plain = gcr(op.apply, b, tol=1e-7, maxiter=400)
        k = MultiSplittingPreconditioner(op, part, overlap=1, mr_steps=8)
        pre = gcr(op.apply, b, preconditioner=k, tol=1e-7, maxiter=400)
        assert plain.converged and pre.converged
        assert pre.iterations < plain.iterations

    def test_domain_local_reduction_accounting(self, system, rng):
        """Every splitting solve is rank-local work: no global
        reductions, only domain-local ones, and one operator record."""
        geom, op, part, b = system
        k = MultiSplittingPreconditioner(op, part, overlap=1, mr_steps=5)
        with tally() as t:
            k(SpinorField.random(geom, rng=rng).data)
        assert t.reductions == 0
        assert t.local_reductions > 0
        assert t.operator_applications.get("multisplit_precond") == 1

    def test_batched_matches_per_lane(self, system):
        """A leading multi-RHS axis must reproduce the per-lane scalar
        results (batched MR reorders reductions at the epsilon level,
        so matching is to tight tolerance, not bitwise)."""
        geom, op, part, b = system
        k = MultiSplittingPreconditioner(op, part, overlap=1, mr_steps=5,
                                         precision=None)
        r = np.stack([b, 2.0 * b, SpinorField.random(geom, rng=77).data])
        batched = k(r)
        assert batched.shape == r.shape
        for lane in range(r.shape[0]):
            single = k(r[lane])
            assert np.allclose(batched[lane], single, rtol=1e-12,
                               atol=1e-12 * np.abs(single).max())

    def test_overlap_wrap_validation(self, system):
        geom, op, part, b = system
        with pytest.raises(ValueError):
            MultiSplittingPreconditioner(op, part, overlap=5)
        with pytest.raises(ValueError):
            MultiSplittingPreconditioner(op, part, overlap=-1)
