"""Multiplicative Schwarz (SAP) and two-level blocking."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dd import (
    AdditiveSchwarzPreconditioner,
    SAPPreconditioner,
    TwoLevelSchwarzPreconditioner,
)
from repro.dirac import WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.solvers import gcr
from repro.util.counters import tally


@pytest.fixture(scope="module")
def system():
    geom = Geometry((8, 8, 8, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=23)
    op = WilsonCloverOperator(gauge, mass=0.15, csw=1.0)
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    b = SpinorField.random(geom, rng=24).data
    return geom, op, part, b


class TestSAP:
    def test_block_coloring_balanced(self, system):
        geom, op, part, b = system
        k = SAPPreconditioner(op, part, mr_steps=5)
        assert sorted(k.colors) == [0, 0, 1, 1]

    @pytest.mark.slow
    def test_converges_as_preconditioner(self, system):
        geom, op, part, b = system
        k = SAPPreconditioner(op, part, mr_steps=6, precision=None)
        res = gcr(op.apply, b, preconditioner=k, tol=1e-7, maxiter=300)
        assert res.converged

    @pytest.mark.slow
    def test_multiplicative_beats_additive_per_application(self, system):
        """One SAP cycle uses the red corrections when solving black, so it
        needs no more outer iterations than one additive application with
        the same block solves."""
        geom, op, part, b = system
        additive = AdditiveSchwarzPreconditioner(op, part, mr_steps=6,
                                                 precision=None)
        sap = SAPPreconditioner(op, part, mr_steps=6, cycles=1,
                                precision=None)
        res_a = gcr(op.apply, b, preconditioner=additive, tol=1e-7, maxiter=300)
        res_s = gcr(op.apply, b, preconditioner=sap, tol=1e-7, maxiter=300)
        assert res_s.converged and res_a.converged
        assert res_s.iterations <= res_a.iterations

    def test_sap_costs_global_operator_applications(self, system, rng):
        """The flip side: every color sweep re-applies the *global*
        operator (a halo exchange on a real cluster) — the reason the
        paper prefers the additive variant for communication avoidance."""
        geom, op, part, b = system
        sap = SAPPreconditioner(op, part, mr_steps=4, cycles=2)
        with tally() as t:
            sap(SpinorField.random(geom, rng=rng).data)
        # 2 cycles x 2 colors = 4 global applications.
        assert t.operator_applications.get("wilson_clover", 0) >= 4

    def test_more_cycles_stronger(self, system, rng):
        geom, op, part, b = system
        x = SpinorField.random(geom, rng=rng).data
        r = op.apply(x)
        e1 = np.linalg.norm(
            SAPPreconditioner(op, part, mr_steps=5, cycles=1, precision=None)(r) - x
        )
        e2 = np.linalg.norm(
            SAPPreconditioner(op, part, mr_steps=5, cycles=2, precision=None)(r) - x
        )
        assert e2 < e1


class TestTwoLevel:
    @pytest.mark.slow
    def test_converges_as_preconditioner(self, system):
        geom, op, part, b = system
        k = TwoLevelSchwarzPreconditioner(
            op, part, ProcessGrid((1, 1, 2, 2)), inner_mr_steps=4,
            outer_sweeps=2, precision=None,
        )
        res = gcr(op.apply, b, preconditioner=k, tol=1e-7, maxiter=300)
        assert res.converged

    def test_sub_block_count(self, system):
        geom, op, part, b = system
        k = TwoLevelSchwarzPreconditioner(op, part, ProcessGrid((2, 2, 1, 1)))
        assert k.n_blocks == 4
        assert k.n_sub_blocks == 16

    def test_no_global_reductions(self, system, rng):
        geom, op, part, b = system
        k = TwoLevelSchwarzPreconditioner(
            op, part, ProcessGrid((1, 1, 2, 2)), precision=None
        )
        with tally() as t:
            k(SpinorField.random(geom, rng=rng).data)
        assert t.reductions == 0

    def test_batched_matches_per_lane_bitwise(self, system, rng):
        """The batched path loops the lanes internally (np.stack of the
        scalar applications), so a multi-RHS residual must reproduce the
        per-lane results bit for bit."""
        geom, op, part, b = system
        k = TwoLevelSchwarzPreconditioner(
            op, part, ProcessGrid((1, 1, 2, 2)), inner_mr_steps=4,
            precision=None,
        )
        r = np.stack([b, SpinorField.random(geom, rng=rng).data])
        batched = k(r)
        assert batched.shape == r.shape
        for lane in range(r.shape[0]):
            assert np.array_equal(batched[lane], k(r[lane]))

    def test_more_outer_sweeps_stronger(self, system, rng):
        geom, op, part, b = system
        x = SpinorField.random(geom, rng=rng).data
        r = op.apply(x)
        errs = []
        for sweeps in (1, 3):
            k = TwoLevelSchwarzPreconditioner(
                op, part, ProcessGrid((1, 1, 2, 2)), inner_mr_steps=4,
                outer_sweeps=sweeps, precision=None,
            )
            errs.append(np.linalg.norm(k(r) - x))
        assert errs[1] < errs[0]
