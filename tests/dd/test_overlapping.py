"""Overlapping (restricted additive) Schwarz."""

import numpy as np
import pytest

from repro.comm import ProcessGrid
from repro.dd import (
    AdditiveSchwarzPreconditioner,
    OverlappingSchwarzPreconditioner,
)
from repro.dd.overlapping import extract_region
from repro.dirac import NaiveStaggeredOperator, StaggeredNormalOperator, WilsonCloverOperator
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.multigpu import BlockPartition
from repro.solvers import gcr
from repro.util.counters import tally


@pytest.fixture(scope="module")
def system():
    geom = Geometry((8, 8, 8, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=17)
    op = WilsonCloverOperator(gauge, mass=0.15, csw=1.0)
    part = BlockPartition(geom, ProcessGrid((1, 1, 2, 2)))
    b = SpinorField.random(geom, rng=18).data
    return geom, op, part, b


class TestExtractRegion:
    def test_interior_region(self, geom44, rng):
        a = rng.standard_normal(geom44.shape)
        out = extract_region(a, geom44, (0, 0, 0, 0), (2, 2, 2, 2))
        assert np.array_equal(out, a[:2, :2, :2, :2])

    def test_wrapped_region(self, geom44, rng):
        a = rng.standard_normal(geom44.shape)
        out = extract_region(a, geom44, (-1, 0, 0, 3), (2, 4, 4, 2))
        # x indices (-1, 0) -> (3, 0); t indices (3, 4) -> (3, 0).
        assert out[0, 0, 0, 0] == a[3, 0, 0, 3]
        assert out[1, 0, 0, 1] == a[0, 0, 0, 0]

    def test_lead_axes(self, geom44, rng):
        a = rng.standard_normal((4,) + geom44.shape)
        out = extract_region(a, geom44, (1, 1, 1, 1), (2, 2, 2, 2), lead=1)
        assert out.shape == (4, 2, 2, 2, 2)
        assert np.array_equal(out, a[:, 1:3, 1:3, 1:3, 1:3])


class TestOverlap:
    def test_zero_overlap_equals_block_jacobi(self, system, rng):
        """overlap=0 regions ARE the Schwarz blocks: the restricted
        operators must be built identically (same kernel backend, same
        boundary cuts), so the correction is bitwise block-Jacobi."""
        geom, op, part, b = system
        jacobi = AdditiveSchwarzPreconditioner(op, part, mr_steps=5,
                                               precision=None)
        ras0 = OverlappingSchwarzPreconditioner(op, part, overlap=0,
                                                mr_steps=5, precision=None)
        r = SpinorField.random(geom, rng=rng).data
        assert np.array_equal(jacobi(r), ras0(r))

    def test_zero_overlap_bitwise_in_half_precision(self, system, rng):
        """The bitwise guarantee must survive the production half-
        precision block solves (quantization is deterministic)."""
        geom, op, part, b = system
        jacobi = AdditiveSchwarzPreconditioner(op, part, mr_steps=5)
        ras0 = OverlappingSchwarzPreconditioner(op, part, overlap=0,
                                                mr_steps=5)
        r = SpinorField.random(geom, rng=rng).data
        assert np.array_equal(jacobi(r), ras0(r))

    @pytest.mark.slow
    def test_overlap_reduces_outer_iterations(self, system):
        """The Sec. 3.2 claim: larger overlap -> fewer iterations."""
        geom, op, part, b = system
        iters = {}
        for overlap in (0, 2):
            k = OverlappingSchwarzPreconditioner(
                op, part, overlap=overlap, mr_steps=6, precision=None
            )
            res = gcr(op.apply, b, preconditioner=k, tol=1e-7, maxiter=300)
            assert res.converged
            iters[overlap] = res.iterations
        assert iters[2] < iters[0]

    def test_overlap_costs_redundant_work(self, system):
        geom, op, part, b = system
        k0 = OverlappingSchwarzPreconditioner(op, part, overlap=0, mr_steps=5)
        k2 = OverlappingSchwarzPreconditioner(op, part, overlap=2, mr_steps=5)
        assert k0.redundancy == pytest.approx(1.0)
        assert k2.redundancy > 1.5

    def test_no_global_reductions(self, system, rng):
        geom, op, part, b = system
        k = OverlappingSchwarzPreconditioner(op, part, overlap=2, mr_steps=5)
        with tally() as t:
            k(SpinorField.random(geom, rng=rng).data)
        assert t.reductions == 0
        assert t.local_reductions > 0

    def test_overlap_wrap_validation(self, system):
        geom, op, part, b = system
        with pytest.raises(ValueError):
            OverlappingSchwarzPreconditioner(op, part, overlap=3)

    def test_negative_overlap_rejected(self, system):
        geom, op, part, b = system
        with pytest.raises(ValueError):
            OverlappingSchwarzPreconditioner(op, part, overlap=-1)

    def test_staggered_normal_operator_supported(self, rng):
        geom = Geometry((8, 8, 4, 4))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=19)
        normal = StaggeredNormalOperator(NaiveStaggeredOperator(gauge, 0.3))
        part = BlockPartition(geom, ProcessGrid((2, 2, 1, 1)))
        k = OverlappingSchwarzPreconditioner(
            normal, part, overlap=1, mr_steps=6, precision=None
        )
        x = SpinorField.random(geom, nspin=1, rng=rng).data
        z = k(normal.apply(x))
        # A useful approximate inverse.
        assert np.linalg.norm(z - x) < np.linalg.norm(x)
