"""SolveReport: every solve() emits one; validate, round-trip, render,
and the diff regression gate (self-diff passes, injected kernel-seconds
regression fails)."""

import copy
import json

import pytest

from repro.core.api import SolveRequest, solve
from repro.lattice import GaugeField, Geometry, SpinorField
from repro.metrics.solve_report import (
    SolveReport,
    config_fingerprint,
    diff_reports,
    format_diff,
    render_report,
    validate_report,
)


@pytest.fixture(scope="module")
def solved():
    geom = Geometry((4, 4, 4, 8))
    gauge = GaugeField.weak(geom, epsilon=0.25, rng=11)
    b = SpinorField.random(geom, rng=12).data
    request = SolveRequest(
        operator="wilson_clover", gauge=gauge, rhs=b,
        mass=0.1, csw=1.0, method="bicgstab", tol=1e-6,
    )
    result = solve(request)
    assert result.converged
    return request, result


class TestEverySolveEmitsAReport:
    def test_report_attached_and_valid(self, solved):
        _, result = solved
        report = result.report
        assert isinstance(report, SolveReport)
        assert validate_report(report.to_dict()) == []

    def test_solve_block_matches_result(self, solved):
        _, result = solved
        doc = result.report.to_dict()
        assert doc["solve"]["converged"] is True
        assert doc["solve"]["iterations"] == int(result.iterations)
        assert doc["solve"]["residual"] == float(result.residual)
        assert doc["residual_history"] == [
            float(r) for r in result.residual_history
        ]

    def test_tally_block_carries_kernel_seconds(self, solved):
        _, result = solved
        tally = result.report.to_dict()["tally"]
        assert tally["flops"] > 0
        assert tally["kernel_seconds"]
        assert all(v >= 0.0 for v in tally["kernel_seconds"].values())

    def test_iterations_by_precision_sums_to_iterations(self, solved):
        _, result = solved
        doc = result.report.to_dict()
        split = doc["iterations_by_precision"]
        assert split == {"double": int(result.iterations)}

    def test_wall_seconds_positive(self, solved):
        _, result = solved
        assert result.report.wall_seconds > 0.0


class TestFingerprint:
    def test_same_request_same_fingerprint(self, solved):
        request, _ = solved
        assert (
            config_fingerprint(request)["sha256"]
            == config_fingerprint(request)["sha256"]
        )

    def test_fingerprint_distinguishes_mass(self, solved):
        request, _ = solved
        other = copy.copy(request)
        other.mass = 0.2
        assert (
            config_fingerprint(request)["sha256"]
            != config_fingerprint(other)["sha256"]
        )


class TestSerialization:
    def test_json_round_trip(self, solved, tmp_path):
        _, result = solved
        path = tmp_path / "report.json"
        result.report.write(str(path))
        loaded = SolveReport.load(str(path))
        assert loaded.to_dict() == result.report.to_dict()

    def test_from_dict_rejects_invalid(self):
        with pytest.raises(ValueError):
            SolveReport.from_dict({"schema_version": 0})

    def test_validator_lists_missing_blocks(self):
        problems = validate_report({})
        joined = "\n".join(problems)
        for token in ("schema_version", "kind", "fingerprint", "solve",
                      "tally", "wall_seconds"):
            assert token in joined


class TestDiffGate:
    def test_self_diff_passes(self, solved):
        _, result = solved
        doc = result.report.to_dict()
        regressions, _ = diff_reports(doc, doc)
        assert regressions == []

    def test_injected_kernel_seconds_regression_fails(self, solved):
        """The acceptance criterion: >= 20% more kernel seconds at the
        default 20% tolerance must register as a regression."""
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["tally"]["kernel_seconds"] = {
            k: 1.25 * v
            for k, v in current["tally"]["kernel_seconds"].items()
        }
        regressions, _ = diff_reports(current, baseline)
        names = {r["metric"] for r in regressions}
        assert "kernel_seconds_total" in names
        assert format_diff(regressions, []).startswith(
            f"{len(regressions)} regression(s):"
        )

    def test_regression_within_tolerance_passes(self, solved):
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["tally"]["kernel_seconds"] = {
            k: 1.1 * v
            for k, v in current["tally"]["kernel_seconds"].items()
        }
        current["wall_seconds"] *= 1.1
        regressions, _ = diff_reports(current, baseline)
        assert regressions == []

    def test_count_growth_is_a_regression_at_zero_tolerance(self, solved):
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["solve"]["iterations"] += 1
        current["tally"]["flops"] += 1
        regressions, _ = diff_reports(current, baseline)
        names = {r["metric"] for r in regressions}
        assert {"iterations", "flops"} <= names

    def test_count_shrink_is_not_a_regression(self, solved):
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["tally"]["flops"] -= 1
        regressions, _ = diff_reports(current, baseline)
        assert regressions == []

    def test_convergence_loss_always_fails(self, solved):
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["solve"]["converged"] = False
        regressions, _ = diff_reports(current, baseline, tolerance=1e9,
                                      count_tolerance=1e9)
        assert any(r["metric"] == "converged" for r in regressions)

    def test_fingerprint_mismatch_is_a_note(self, solved):
        _, result = solved
        baseline = result.report.to_dict()
        current = json.loads(json.dumps(baseline))
        current["fingerprint"]["sha256"] = "0" * 64
        regressions, notes = diff_reports(current, baseline)
        assert regressions == []
        assert any("fingerprint" in n for n in notes)


class TestRender:
    def test_render_mentions_the_essentials(self, solved):
        _, result = solved
        text = render_report(result.report.to_dict())
        assert "solve report" in text
        assert "converged=True" in text
        assert "residual history" in text
        assert "kernel seconds:" in text

    def test_no_regressions_message(self):
        assert "no regressions" in format_diff([], [])


class TestSPMDReport:
    def test_spmd_solve_report_carries_rank_waits(self):
        from repro.comm.grid import ProcessGrid
        from repro.core.gcrdd import GCRDDConfig

        geom = Geometry((4, 4, 4, 8))
        gauge = GaugeField.weak(geom, epsilon=0.25, rng=929)
        b = SpinorField.random(geom, rng=30).data
        request = SolveRequest(
            operator="wilson_clover", gauge=gauge, rhs=b,
            mass=0.2, csw=1.0, method="gcr-dd",
            grid=ProcessGrid((1, 1, 2, 2)),
            config=GCRDDConfig(tol=1e-6, precond_steps=8),
            backend="threads",
        )
        result = solve(request)
        assert result.converged
        doc = result.report.to_dict()
        assert validate_report(doc) == []
        ranks = doc["ranks"]
        assert ranks["count"] == 4
        assert sorted(ranks["wait"]) == ["0", "1", "2", "3"]
        for stats in ranks["wait"].values():
            assert any(m["count"] > 0 for m in stats.values())
        straggler = ranks["straggler"]
        assert straggler["max_over_median"] >= 1.0
        assert "per-rank waits" in render_report(doc)
