"""The metrics registry: thread-local scoping, zero cost when disabled,
deterministic buckets, exact merging, and the export formats."""

import json
import threading

import pytest

from repro.metrics.export import to_jsonl, to_prometheus
from repro.metrics.registry import (
    DEFAULT_BUCKET_SPEC,
    MetricsRegistry,
    current_registry,
    histogram_quantile,
    inc,
    log_buckets,
    metrics_scope,
    observe,
    set_gauge,
)


class TestLogBuckets:
    def test_deterministic_pure_function_of_spec(self):
        assert log_buckets(1e-7, 100.0, 3) == log_buckets(1e-7, 100.0, 3)

    def test_edges_span_the_range(self):
        edges = log_buckets(1e-3, 10.0, 2)
        assert edges[0] == 1e-3
        assert edges[-1] >= 10.0

    def test_rejects_bad_specs(self):
        with pytest.raises(ValueError):
            log_buckets(0.0, 1.0)
        with pytest.raises(ValueError):
            log_buckets(1.0, 0.5)
        with pytest.raises(ValueError):
            log_buckets(1.0, 2.0, per_decade=0)


class TestScope:
    def test_no_registry_by_default(self):
        assert current_registry() is None

    def test_helpers_record_inside_scope(self):
        with metrics_scope() as reg:
            inc("solves_total")
            inc("solves_total")
            set_gauge("queue_depth", 3.0)
            observe("wait_seconds", 0.01)
        key = ("solves_total", ())
        assert reg.counters[key].value == 2.0
        assert reg.gauges[("queue_depth", ())].value == 3.0
        assert reg.histograms[("wait_seconds", ())].count == 1

    def test_scope_restored_after_exit(self):
        with metrics_scope():
            pass
        assert current_registry() is None

    def test_nested_scopes_innermost_wins(self):
        with metrics_scope() as outer:
            with metrics_scope() as inner:
                inc("x")
            inc("x")
        assert inner.counters[("x", ())].value == 1.0
        assert outer.counters[("x", ())].value == 1.0

    def test_registry_not_visible_in_other_thread(self):
        seen = {}

        def worker():
            seen["registry"] = current_registry()
            inc("leaked")  # must vanish

        with metrics_scope() as reg:
            th = threading.Thread(target=worker)
            th.start()
            th.join()
        assert seen["registry"] is None
        assert not reg.counters


class TestZeroCostWhenDisabled:
    def test_disabled_helpers_do_exactly_one_attribute_check(self):
        """The contract from the module docstring, asserted literally:
        with no registry installed, each helper touches thread-local
        state exactly once (``_STATE.stack``) and returns — no registry
        lookup, no metric construction."""
        from repro.metrics import registry as mod

        class CountingState:
            def __init__(self):
                self.reads = 0
                self._stack = []

            @property
            def stack(self):
                self.reads += 1
                return self._stack

        counting = CountingState()
        original = mod._STATE
        mod._STATE = counting
        try:
            inc("c", 5.0, rank=0)
            assert counting.reads == 1
            set_gauge("g", 1.0)
            assert counting.reads == 2
            observe("h", 0.5)
            assert counting.reads == 3
        finally:
            mod._STATE = original

    def test_disabled_helpers_never_construct_metrics(self, monkeypatch):
        def boom(*a, **kw):
            raise AssertionError("registry touched while disabled")

        monkeypatch.setattr(MetricsRegistry, "counter", boom)
        monkeypatch.setattr(MetricsRegistry, "gauge", boom)
        monkeypatch.setattr(MetricsRegistry, "histogram", boom)
        inc("c")
        set_gauge("g", 1.0)
        observe("h", 0.1)


class TestCountersAndGauges:
    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError):
            reg.counter("n").inc(-1.0)

    def test_labels_distinguish_instances(self):
        reg = MetricsRegistry()
        reg.counter("n", rank=0).inc()
        reg.counter("n", rank=1).inc(2.0)
        assert reg.counter("n", rank=0).value == 1.0
        assert reg.counter("n", rank=1).value == 2.0

    def test_label_order_is_irrelevant(self):
        reg = MetricsRegistry()
        reg.counter("n", a=1, b=2).inc()
        reg.counter("n", b=2, a=1).inc()
        assert len(reg.counters) == 1
        assert reg.counter("n", a=1, b=2).value == 2.0


class TestHistogram:
    def test_observe_fills_the_right_bucket(self):
        reg = MetricsRegistry()
        h = reg.histogram("h", buckets=(1.0, 10.0))
        h.observe(0.5)   # <= 1.0
        h.observe(5.0)   # <= 10.0
        h.observe(50.0)  # overflow
        assert h.bucket_counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == 55.5

    def test_default_buckets_come_from_the_spec(self):
        reg = MetricsRegistry()
        h = reg.histogram("h")
        assert h.edges == log_buckets(*DEFAULT_BUCKET_SPEC)

    def test_bucket_layout_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.histogram("h", buckets=(1.0, 2.0), rank=0)
        with pytest.raises(ValueError, match="bucket layout"):
            reg.histogram("h", buckets=(1.0, 3.0), rank=0)


class TestMerge:
    def test_merge_is_exact_addition(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.counter("n", rank=0).inc(3.0)
        b.counter("n", rank=0).inc(4.0)
        b.counter("n", rank=1).inc(1.0)
        for value in (0.5, 5.0):
            a.histogram("h", buckets=(1.0, 10.0)).observe(value)
            b.histogram("h", buckets=(1.0, 10.0)).observe(value)
        a.merge(b)
        assert a.counter("n", rank=0).value == 7.0
        assert a.counter("n", rank=1).value == 1.0
        h = a.histogram("h", buckets=(1.0, 10.0))
        assert h.bucket_counts == [2, 2, 0]
        assert h.count == 4
        assert h.sum == 11.0

    def test_merge_gauges_last_write_wins(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("g").set(1.0)
        b.gauge("g").set(2.0)
        a.merge(b)
        assert a.gauge("g").value == 2.0

    def test_merge_rejects_mismatched_buckets(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0,))
        b.histogram("h", buckets=(2.0,))
        with pytest.raises(ValueError):
            a.merge(b)

    def test_rank_order_fold_equals_any_order_for_counts(self):
        """Counter/histogram merging is commutative exact addition —
        the SPMD join can fold per-rank registries in rank order and
        get the same totals as any other order."""
        regs = []
        for rank in range(3):
            r = MetricsRegistry()
            r.counter("n").inc(rank + 1)
            r.histogram("h", buckets=(1.0,)).observe(0.5)
            regs.append(r)
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for r in regs:
            forward.merge(r)
        for r in reversed(regs):
            backward.merge(r)
        assert forward.to_dict() == backward.to_dict()


class TestSerialization:
    def _populated(self):
        reg = MetricsRegistry()
        reg.counter("n", rank=0).inc(2.0)
        reg.gauge("g").set(-1.5)
        reg.histogram("h", buckets=(1.0, 10.0), rank=0).observe(0.5)
        return reg

    def test_round_trip_exact(self):
        reg = self._populated()
        clone = MetricsRegistry.from_dict(reg.to_dict())
        assert clone.to_dict() == reg.to_dict()

    def test_round_trip_survives_json(self):
        reg = self._populated()
        doc = json.loads(json.dumps(reg.to_dict()))
        assert MetricsRegistry.from_dict(doc).to_dict() == reg.to_dict()

    def test_bool_reflects_content(self):
        assert not MetricsRegistry()
        assert self._populated()


class TestExport:
    def test_prometheus_counter_and_type_line(self):
        reg = MetricsRegistry()
        reg.counter("solves_total", rank=0).inc(3.0)
        page = to_prometheus(reg)
        assert "# TYPE solves_total counter" in page
        assert 'solves_total{rank="0"} 3' in page

    def test_prometheus_histogram_series_is_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait_seconds", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        h.observe(50.0)
        page = to_prometheus(reg)
        assert 'wait_seconds_bucket{le="1.0"} 1' in page
        assert 'wait_seconds_bucket{le="10.0"} 2' in page
        assert 'wait_seconds_bucket{le="+Inf"} 3' in page
        assert "wait_seconds_count 3" in page
        assert "wait_seconds_sum 55.5" in page

    def test_type_line_emitted_once_per_family(self):
        reg = MetricsRegistry()
        reg.counter("n", rank=0).inc()
        reg.counter("n", rank=1).inc()
        page = to_prometheus(reg)
        assert page.count("# TYPE n counter") == 1

    def test_jsonl_one_object_per_instance(self):
        reg = MetricsRegistry()
        reg.counter("n", rank=0).inc()
        reg.histogram("h", buckets=(1.0,)).observe(0.5)
        lines = to_jsonl(reg).strip().splitlines()
        docs = [json.loads(line) for line in lines]
        assert [d["type"] for d in docs] == ["counter", "histogram"]
        assert docs[0]["labels"] == {"rank": 0}

    def test_empty_registry_exports_empty(self):
        assert to_prometheus(MetricsRegistry()) == ""
        assert to_jsonl(MetricsRegistry()) == ""


class TestHistogramQuantile:
    """The bucket-interpolation estimator behind /v1/stats percentiles."""

    def _hist(self, samples, buckets=(1.0, 2.0, 4.0)):
        h = MetricsRegistry().histogram("h", buckets=buckets)
        for s in samples:
            h.observe(s)
        return h

    def test_interpolates_within_a_bucket(self):
        # Four samples in (1, 2]: the median sits mid-bucket.
        h = self._hist([1.1, 1.4, 1.6, 1.9])
        assert histogram_quantile(h, 0.5) == pytest.approx(1.5)

    def test_spans_buckets_by_cumulative_count(self):
        h = self._hist([0.5, 0.5, 3.0, 3.0])
        assert histogram_quantile(h, 0.25) == pytest.approx(0.5)
        assert histogram_quantile(h, 1.0) == pytest.approx(4.0)

    def test_overflow_clamps_to_last_edge(self):
        h = self._hist([100.0])
        assert histogram_quantile(h, 0.5) == 4.0

    def test_monotone_in_q(self):
        h = self._hist([0.3, 1.5, 1.7, 3.0, 9.0])
        qs = [histogram_quantile(h, q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert qs == sorted(qs)

    def test_rejects_empty_and_out_of_range(self):
        h = self._hist([])
        with pytest.raises(ValueError):
            histogram_quantile(h, 0.5)
        with pytest.raises(ValueError):
            histogram_quantile(self._hist([1.0]), -0.1)
