"""The unified BENCH_*.json schema: wrap, validate, the bench-kind
registry, CLI, and the committed reference files."""

import json
from pathlib import Path

import pytest

from repro.metrics.bench_schema import (
    BENCH_KINDS,
    BENCH_SCHEMA_VERSION,
    BenchKind,
    host_info,
    main,
    register_bench_kind,
    validate_bench,
    validate_bench_file,
    wrap_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


def _spmd_doc(**overrides):
    doc = wrap_bench(
        "spmd",
        config={"dims": [4, 4, 4, 8], "ranks": 4, "grid": [1, 1, 2, 2]},
        metrics={"speedup": 1.5},
        results=[{
            "backend": "threads", "seconds": 1.0,
            "converged": True, "iterations": 20,
        }],
    )
    doc.update(overrides)
    return doc


class TestWrap:
    def test_wrap_produces_valid_document(self):
        doc = _spmd_doc()
        assert validate_bench(doc) == []
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["bench"] == "spmd"
        assert doc["config"]["ranks"] == 4
        assert doc["metrics"]["speedup"] == 1.5

    def test_wrap_fills_host_block(self):
        doc = _spmd_doc()
        for key in ("cpu_count", "platform", "python"):
            assert key in doc["host"]

    def test_wrap_rejects_non_scalar_metrics(self):
        with pytest.raises(ValueError):
            wrap_bench(
                "spmd",
                config={"dims": [4], "ranks": 1, "grid": [1]},
                metrics={"bad": [1, 2]},
                results=[{
                    "backend": "x", "seconds": 1.0,
                    "converged": True, "iterations": 1,
                }],
            )

    def test_host_info_reports_this_machine(self):
        host = host_info()
        assert host["cpu_count"] >= 1
        assert host["python"]


class TestValidate:
    def test_flags_every_problem(self):
        problems = validate_bench({"schema_version": 99})
        joined = "\n".join(problems)
        assert "schema_version" in joined
        assert "bench" in joined
        assert "host" in joined
        assert "metrics" in joined

    def test_non_object_rejected(self):
        assert validate_bench([]) != []

    def test_file_validator(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(_spmd_doc()))
        assert validate_bench_file(str(good)) == []
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_bench_file(str(bad)) != []


class TestKindRegistry:
    """The per-kind requirements that make bench-smoke reject malformed
    artifacts (ISSUE 10 satellite)."""

    def test_known_kinds_registered(self):
        for kind in ("spmd", "multirhs", "precond", "wilson_dslash_hotpath",
                     "serve", "scaling"):
            assert kind in BENCH_KINDS

    def test_unknown_kind_is_a_violation(self):
        doc = _spmd_doc(bench="made_up_kind")
        problems = validate_bench(doc)
        assert any("unknown bench kind" in p for p in problems)
        # The violation names the known kinds so the writer can fix it.
        assert any("scaling" in p for p in problems)

    def test_wrap_refuses_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown bench kind"):
            wrap_bench("made_up_kind", config={}, metrics={})

    def test_missing_required_config_key(self):
        doc = _spmd_doc()
        del doc["config"]["grid"]
        problems = validate_bench(doc)
        assert any("missing 'grid'" in p for p in problems)

    def test_missing_required_result_key(self):
        doc = _spmd_doc()
        del doc["results"][0]["seconds"]
        problems = validate_bench(doc)
        assert any("missing 'seconds'" in p for p in problems)

    def test_results_required(self):
        doc = _spmd_doc()
        del doc["results"]
        problems = validate_bench(doc)
        assert any("non-empty results" in p for p in problems)

    def test_non_object_result_entry(self):
        doc = _spmd_doc()
        doc["results"].append("oops")
        problems = validate_bench(doc)
        assert any("must be an object" in p for p in problems)

    def test_serve_kind_requirements(self):
        doc = wrap_bench(
            "serve",
            config={"dims": [4, 4, 4, 4], "max_batch_values": [1, 2],
                    "concurrency": 4},
            metrics={"rps_max_batch_1": 2.0},
            results=[{
                "max_batch": 1, "requests_per_second": 2.0,
                "p50_latency_seconds": 0.5, "p99_latency_seconds": 0.9,
            }],
        )
        assert validate_bench(doc) == []
        del doc["results"][0]["p99_latency_seconds"]
        assert validate_bench(doc) != []

    def test_scaling_kind_requirements(self):
        entry = {
            "ranks": 2, "grid": [1, 1, 1, 2], "measured_seconds": 1.0,
            "model_seconds": 0.5, "measured_efficiency": 0.9,
            "model_efficiency": 0.95, "measured_comm_fraction": 0.1,
            "model_comm_fraction": 0.2,
        }
        doc = wrap_bench(
            "scaling",
            config={"dims": [4, 4, 4, 8], "ranks": [1, 2],
                    "backend": "threads"},
            metrics={"min_measured_efficiency": 0.9},
            results=[entry],
        )
        assert validate_bench(doc) == []
        del doc["results"][0]["model_seconds"]
        problems = validate_bench(doc)
        assert any("model_seconds" in p for p in problems)

    def test_register_is_idempotent_per_name(self):
        before = BENCH_KINDS["spmd"]
        try:
            register_bench_kind(BenchKind("spmd"))
            assert BENCH_KINDS["spmd"].required_config == ()
        finally:
            register_bench_kind(before)


class TestCLI:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(_spmd_doc()))
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main([str(path)]) == 1

    def test_no_args_exit_two(self, capsys):
        assert main([]) == 2


class TestCommittedReferences:
    @pytest.mark.parametrize(
        "name",
        [
            "BENCH_spmd.json",
            "BENCH_multirhs.json",
            "BENCH_hotpath.json",
            "BENCH_precond.json",
            "BENCH_serve.json",
            "BENCH_scaling.json",
        ],
    )
    def test_committed_bench_files_valid(self, name):
        path = REPO_ROOT / name
        doc = json.loads(path.read_text())
        assert validate_bench(doc) == [], name
