"""The unified BENCH_*.json schema: wrap, validate, CLI, and the
committed reference files."""

import json
from pathlib import Path

import pytest

from repro.metrics.bench_schema import (
    BENCH_SCHEMA_VERSION,
    host_info,
    main,
    validate_bench,
    validate_bench_file,
    wrap_bench,
)

REPO_ROOT = Path(__file__).resolve().parent.parent.parent


class TestWrap:
    def test_wrap_produces_valid_document(self):
        doc = wrap_bench(
            "spmd", config={"ranks": 4}, metrics={"speedup": 1.5},
            results=[{"backend": "threads"}],
        )
        assert validate_bench(doc) == []
        assert doc["schema_version"] == BENCH_SCHEMA_VERSION
        assert doc["bench"] == "spmd"
        assert doc["config"]["ranks"] == 4
        assert doc["metrics"]["speedup"] == 1.5

    def test_wrap_fills_host_block(self):
        doc = wrap_bench("x", config={}, metrics={})
        for key in ("cpu_count", "platform", "python"):
            assert key in doc["host"]

    def test_wrap_rejects_non_scalar_metrics(self):
        with pytest.raises(ValueError):
            wrap_bench("x", config={}, metrics={"bad": [1, 2]})

    def test_host_info_reports_this_machine(self):
        host = host_info()
        assert host["cpu_count"] >= 1
        assert host["python"]


class TestValidate:
    def test_flags_every_problem(self):
        problems = validate_bench({"schema_version": 99})
        joined = "\n".join(problems)
        assert "schema_version" in joined
        assert "bench" in joined
        assert "host" in joined
        assert "metrics" in joined

    def test_non_object_rejected(self):
        assert validate_bench([]) != []

    def test_file_validator(self, tmp_path):
        good = tmp_path / "good.json"
        good.write_text(json.dumps(wrap_bench("x", config={}, metrics={})))
        assert validate_bench_file(str(good)) == []
        bad = tmp_path / "bad.json"
        bad.write_text("{}")
        assert validate_bench_file(str(bad)) != []


class TestCLI:
    def test_ok_exit_zero(self, tmp_path, capsys):
        path = tmp_path / "ok.json"
        path.write_text(json.dumps(wrap_bench("x", config={}, metrics={})))
        assert main([str(path)]) == 0
        assert "ok" in capsys.readouterr().out

    def test_invalid_exit_one(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        assert main([str(path)]) == 1

    def test_no_args_exit_two(self, capsys):
        assert main([]) == 2


class TestCommittedReferences:
    @pytest.mark.parametrize(
        "name", ["BENCH_spmd.json", "BENCH_multirhs.json", "BENCH_hotpath.json"]
    )
    def test_committed_bench_files_valid(self, name):
        path = REPO_ROOT / name
        doc = json.loads(path.read_text())
        assert validate_bench(doc) == [], name
