"""The padded ghost-zone layout of one rank's sub-lattice (Fig. 2).

Pure geometry, shared by every component that touches padded arrays: the
global-view :class:`~repro.multigpu.halo.HaloExchanger` driver, the
per-rank :class:`~repro.multigpu.rank_halo.RankHaloEngine` of the SPMD
execution model, and the distributed operators.  A :class:`HaloLayout`
binds a :class:`~repro.multigpu.partition.BlockPartition` to a stencil
``depth`` and answers every slicing question about the padded local
array: where the interior block sits, where each ghost slab sits, and
which face of the *unpadded* local field feeds each neighbor.

Ghost zones exist only along partitioned dimensions ("so as to ensure
that GPU memory as well as PCI-E and interconnect bandwidth are not
wasted"); corner regions are never addressed by any slice here —
axis-aligned stencils never read them.
"""

from __future__ import annotations

import numpy as np

from repro.dirac.base import BoundarySpec
from repro.lattice.geometry import Geometry, axis_of_mu
from repro.multigpu.partition import BlockPartition


def halo_logical_nbytes(buf: np.ndarray, precision, site_axes: int) -> int:
    """Logical wire bytes of one ghost-face buffer in ``precision``.

    Double/single transfer the raw complex payload.  QUDA's half format
    sends int16 mantissas (2 bytes per real) *plus one float32 norm per
    site* — the per-site scale of the fixed-point format — so the face
    bytes are ``reals * 2 + sites * 4``, not just ``reals * 2``.
    ``site_axes`` counts the trailing per-site axes of the buffer (2 for
    Wilson ``(spin, color)``, 1 for staggered ``(color,)``).
    """
    if precision is None:
        return buf.nbytes
    nbytes = buf.size * 2 * precision.bytes_per_real
    if precision.name == "half":
        sites = int(np.prod(buf.shape[: buf.ndim - site_axes], dtype=np.int64))
        nbytes += sites * 4
    return int(nbytes)


def local_boundary(
    global_bc: BoundarySpec, partitioned: tuple[int, ...]
) -> BoundarySpec:
    """Boundary spec for the padded local operator: partitioned directions
    become periodic within the padded array (their wrap only pollutes ghost
    outputs, which are discarded); the rest keep the global condition."""
    conds = list(global_bc.conditions)
    for mu in partitioned:
        conds[mu] = "periodic"
    return BoundarySpec(tuple(conds))


class HaloLayout:
    """Slicing arithmetic of the depth-padded local array."""

    def __init__(self, partition: BlockPartition, depth: int = 1):
        if depth < 1:
            raise ValueError("ghost depth must be >= 1")
        self.partition = partition
        self.depth = depth
        for mu in self.partitioned_dims:
            if partition.local_dims[mu] < depth:
                raise ValueError(
                    f"local extent {partition.local_dims[mu]} in dir {mu} is "
                    f"thinner than the ghost depth {depth}"
                )
        # Memoized slice tuples (pure functions of the static layout).
        self._slice_cache: dict[tuple, tuple[slice, ...]] = {}

    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return self.partition.grid.partitioned_dims

    @property
    def padded_dims(self) -> tuple[int, int, int, int]:
        """Local extents grown by 2*depth in each partitioned dimension."""
        dims = list(self.partition.local_dims)
        for mu in self.partitioned_dims:
            dims[mu] += 2 * self.depth
        return tuple(dims)

    @property
    def padded_geometry(self) -> Geometry:
        return Geometry(self.padded_dims)

    def padded_origin(self, rank: int) -> tuple[int, int, int, int]:
        """Global coordinate of the padded array's (0,0,0,0) site."""
        origin = list(self.partition.origin(rank))
        for mu in self.partitioned_dims:
            origin[mu] -= self.depth
        return tuple(origin)

    def padded_shape(self, field: np.ndarray, lead: int = 0) -> tuple[int, ...]:
        """Shape of the padded staging array for one local field."""
        return (
            field.shape[:lead]
            + tuple(reversed(self.padded_dims))
            + field.shape[lead + 4 :]
        )

    # -- slices ----------------------------------------------------------
    def interior_slices(self, lead: int = 0) -> tuple[slice, ...]:
        """Slicing of the padded array that selects the true local block."""
        key = ("interior", lead)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        site = [slice(None)] * 4
        for mu in self.partitioned_dims:
            axis = axis_of_mu(mu)
            site[axis] = slice(
                self.depth, self.depth + self.partition.local_dims[mu]
            )
        result = (slice(None),) * lead + tuple(site)
        self._slice_cache[key] = result
        return result

    def ghost_slices(self, mu: int, side: int, lead: int = 0) -> tuple[slice, ...]:
        """Ghost slab of the padded array beyond the ``side`` face in mu."""
        key = ("ghost", mu, side, lead)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        axis = axis_of_mu(mu)
        n_local = self.partition.local_dims[mu]
        site = list(self.interior_slices())
        if side == +1:
            site[axis] = slice(
                self.depth + n_local, self.depth + n_local + self.depth
            )
        else:
            site[axis] = slice(0, self.depth)
        result = (slice(None),) * lead + tuple(site)
        self._slice_cache[key] = result
        return result

    def face_slices(self, mu: int, sign: int, lead: int = 0) -> tuple[slice, ...]:
        """Face of the *unpadded* local field sent to the ``sign`` neighbor."""
        key = ("face", mu, sign, lead)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        result = (slice(None),) * lead + self.partition.local_geometry.face_slice(
            mu, sign, self.depth
        )
        self._slice_cache[key] = result
        return result

    # -- padded-array helpers --------------------------------------------
    def extract_interior(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return np.ascontiguousarray(padded[self.interior_slices(lead)])

    def zero_ghosts(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        """Copy of a padded array with every ghost slab zeroed (the input
        the *interior kernel* effectively sees)."""
        out = padded.copy()
        for mu in self.partitioned_dims:
            for side in (+1, -1):
                out[self.ghost_slices(mu, side, lead)] = 0
        return out

    def only_ghost(self, padded: np.ndarray, mu: int, lead: int = 0) -> np.ndarray:
        """Array with only dimension-mu ghost slabs kept (the input the
        mu *exterior kernel* effectively sees)."""
        out = np.zeros_like(padded)
        for side in (+1, -1):
            sl = self.ghost_slices(mu, side, lead)
            out[sl] = padded[sl]
        return out


__all__ = ["HaloLayout", "halo_logical_nbytes", "local_boundary"]
