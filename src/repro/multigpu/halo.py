"""The ghost-zone halo exchange engine (Secs. 6.1-6.3, Figs. 2-3).

For every partitioned dimension, each rank

1. *gathers* its boundary face of thickness ``depth`` into a contiguous
   send buffer (the "gather kernels" — only the T face is contiguous in
   memory; X/Y/Z faces require a strided gather, which is why they are
   modeled with their own kernel cost),
2. exchanges the buffers with its two neighbors through the mailbox
   (D2H copy -> host copies -> MPI -> H2D in the real system; here one
   logged message), and
3. *scatters* the received faces into the ghost slabs of a padded local
   array, placed adjacent to the local sub-volume exactly as in Fig. 2.

The per-rank mechanics — staging, face gather/boundary/quantize, send,
receive, scatter, all the cost accounting and trace spans — live in
:class:`~repro.multigpu.rank_halo.RankHaloEngine`; the slicing arithmetic
lives in :class:`~repro.multigpu.layout.HaloLayout`.  This module's
:class:`HaloExchanger` is the *global-view driver*: it owns one engine
per rank (each with a driver-mode
:class:`~repro.comm.communicator.MailboxCommunicator` endpoint) and
iterates them from a single thread in a fixed order — all sends of a
(dimension, direction) pair posted before any receive, exactly the
non-blocking discipline of the SPMD execution model
(docs/architecture.md, "Execution model"), which runs the same engines
concurrently instead.

Ghost zones are only allocated and exchanged for partitioned dimensions
("so as to ensure that GPU memory as well as PCI-E and interconnect
bandwidth are not wasted").  The global fermion boundary condition is
applied to faces that wrap the lattice.  Corner regions of the padded
array are never filled: axis-aligned stencils (1-hop Wilson, 1+3-hop
asqtad) never read them — a property the tests assert.

Spinor exchanges *reuse* their padded staging arrays (one allocation per
shape/dtype per engine); the returned padded arrays are only valid until
the next exchange of a same-shaped field — exactly the contract of a GPU
ghost buffer.  Gauge exchanges always allocate fresh arrays.
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import MailboxCommunicator
from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommLog
from repro.dirac.base import BoundarySpec, PERIODIC
from repro.lattice.geometry import Geometry
from repro.multigpu.layout import HaloLayout, halo_logical_nbytes  # noqa: F401
from repro.multigpu.partition import BlockPartition
from repro.multigpu.rank_halo import RankHaloEngine
from repro.util.counters import timed

__all__ = ["HaloExchanger", "halo_logical_nbytes"]


class HaloExchanger:
    """Global-view ghost-zone exchange: one rank engine per virtual rank,
    driven sequentially for one partition / stencil depth / boundary."""

    def __init__(
        self,
        partition: BlockPartition,
        depth: int = 1,
        boundary: BoundarySpec = PERIODIC,
        mailbox: Mailbox | None = None,
        log: CommLog | None = None,
        precision=None,
        site_axes: int = 2,
    ):
        """``precision`` (optional) transfers spinor ghost faces in a
        reduced storage format — QUDA communicates halos in the solver's
        inner precision, halving (single) or quartering (half) the face
        bytes relative to double.  The emulation quantizes each face
        buffer before it is sent and logs the format's *logical* byte
        count; ``site_axes`` parametrizes the per-site scaling of the
        half format (2 for Wilson, 1 for staggered)."""
        self.partition = partition
        self.depth = depth
        self.boundary = boundary
        self.precision = precision
        self.site_axes = site_axes
        self.log = log if log is not None else CommLog()
        self.mailbox = mailbox or Mailbox(partition.n_ranks, log=self.log)
        self.layout = HaloLayout(partition, depth)
        self.engines = [
            RankHaloEngine(
                self.layout,
                MailboxCommunicator(self.mailbox, rank),
                boundary=boundary,
                precision=precision,
                site_axes=site_axes,
            )
            for rank in range(partition.n_ranks)
        ]

    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return self.partition.grid.partitioned_dims

    # ------------------------------------------------------------------
    # padded layout (delegated to the shared HaloLayout)
    # ------------------------------------------------------------------
    @property
    def padded_dims(self) -> tuple[int, int, int, int]:
        """Local extents grown by 2*depth in each partitioned dimension."""
        return self.layout.padded_dims

    @property
    def padded_geometry(self) -> Geometry:
        return self.layout.padded_geometry

    def padded_origin(self, rank: int) -> tuple[int, int, int, int]:
        """Global coordinate of the padded array's (0,0,0,0) site."""
        return self.layout.padded_origin(rank)

    def interior_slices(self, lead: int = 0) -> tuple[slice, ...]:
        """Slicing of the padded array that selects the true local block."""
        return self.layout.interior_slices(lead)

    def _ghost_slices(self, mu: int, side: int, lead: int = 0) -> tuple[slice, ...]:
        """Ghost slab of the padded array beyond the ``side`` face in mu."""
        return self.layout.ghost_slices(mu, side, lead)

    # ------------------------------------------------------------------
    # the exchange itself
    # ------------------------------------------------------------------
    def exchange(
        self,
        local_fields: list[np.ndarray],
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
    ) -> list[np.ndarray]:
        """Return padded arrays with ghost zones filled from the neighbors.

        ``lead`` leading axes (e.g. the direction axis of a gauge field)
        pass through unsliced.  ``apply_boundary=False`` gives plain
        periodic wrapping regardless of the fermion BC (used for gauge
        fields, which are periodic).
        """
        part = self.partition
        if len(local_fields) != part.n_ranks:
            raise ValueError(
                f"need {part.n_ranks} local fields, got {len(local_fields)}"
            )
        # A batched (multi-RHS) spinor exchange packs all B faces into ONE
        # message per neighbor per direction: the lead axis rides inside
        # the face buffer, so the message count is independent of B while
        # the payload scales xB.
        batch = (
            int(np.prod(local_fields[0].shape[:lead]))
            if (lead and kind == "spinor")
            else 1
        )
        with timed("halo_exchange", kind="halo"):
            # Gauge exchange results are retained by the local operators,
            # so only spinor exchanges may reuse the staging pool.
            reuse = kind == "spinor"
            padded = [
                engine.stage(field, lead, reuse=reuse)
                for engine, field in zip(self.engines, local_fields)
            ]
            # Post all sends first (non-blocking semantics), then receive:
            # the gather kernel extracts the *opposite* face to the ghost
            # it fills on the neighbor.
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    for engine, field in zip(self.engines, local_fields):
                        engine.send_faces(
                            field, mu, sign, lead=lead, kind=kind,
                            apply_boundary=apply_boundary, batch=batch,
                        )
                    for engine, pad in zip(self.engines, padded):
                        engine.recv_face(pad, mu, sign, lead=lead, kind=kind)
        return padded

    def exchange_spinor(
        self, local_fields: list[np.ndarray], lead: int = 0
    ) -> list[np.ndarray]:
        """Spinor-field exchange (applies the fermion boundary condition).

        ``lead=1`` exchanges a *batched* multi-RHS field ``(B, ...)``: all
        B ghost faces travel in one message per neighbor per direction, so
        the message count is independent of the batch size while the bytes
        scale xB — the per-message-latency amortization multi-RHS buys.
        """
        return self.exchange(local_fields, lead=lead, kind="spinor")

    def exchange_gauge(self, local_links: list[np.ndarray]) -> list[np.ndarray]:
        """Gauge/link-field exchange — done once per solve (Sec. 6.1)."""
        return self.exchange(
            local_links, lead=1, kind="gauge", apply_boundary=False
        )

    # ------------------------------------------------------------------
    def extract_interior(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return self.layout.extract_interior(padded, lead)

    def zero_ghosts(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        """Copy of a padded array with every ghost slab zeroed (the input
        the *interior kernel* effectively sees)."""
        return self.layout.zero_ghosts(padded, lead)

    def only_ghost(self, padded: np.ndarray, mu: int, lead: int = 0) -> np.ndarray:
        """Array with only dimension-mu ghost slabs kept (the input the
        mu *exterior kernel* effectively sees)."""
        return self.layout.only_ghost(padded, mu, lead)
