"""The ghost-zone halo exchange engine (Secs. 6.1-6.3, Figs. 2-3).

For every partitioned dimension, each rank

1. *gathers* its boundary face of thickness ``depth`` into a contiguous
   send buffer (the "gather kernels" — only the T face is contiguous in
   memory; X/Y/Z faces require a strided gather, which is why they are
   modeled with their own kernel cost),
2. exchanges the buffers with its two neighbors through the mailbox
   (D2H copy -> host copies -> MPI -> H2D in the real system; here one
   logged message), and
3. *scatters* the received faces into the ghost slabs of a padded local
   array, placed adjacent to the local sub-volume exactly as in Fig. 2.

Ghost zones are only allocated and exchanged for partitioned dimensions
("so as to ensure that GPU memory as well as PCI-E and interconnect
bandwidth are not wasted").  The global fermion boundary condition is
applied to faces that wrap the lattice.  Corner regions of the padded
array are never filled: axis-aligned stencils (1-hop Wilson, 1+3-hop
asqtad) never read them — a property the tests assert.

Spinor exchanges *reuse* their padded staging arrays and precomputed
slice tuples across calls (one allocation per shape/dtype for the
lifetime of the exchanger) instead of ``np.zeros``-ing fresh arrays per
application: every exchange overwrites the interior and all ghost slabs,
and the never-written corners stay zero from the initial allocation.
The returned padded arrays are therefore only valid until the next
exchange of a same-shaped field — exactly the contract of a GPU ghost
buffer.  Gauge exchanges (done once per solve, and whose results are
retained by the local operators) always allocate fresh arrays.
"""

from __future__ import annotations

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommEvent, CommLog
from repro.dirac.base import BoundarySpec, PERIODIC
from repro.lattice.geometry import DIR_NAMES, Geometry, axis_of_mu
from repro.multigpu.partition import BlockPartition
from repro.trace import span
from repro.util.counters import record, timed


def halo_logical_nbytes(
    buf: np.ndarray, precision, site_axes: int
) -> int:
    """Logical wire bytes of one ghost-face buffer in ``precision``.

    Double/single transfer the raw complex payload.  QUDA's half format
    sends int16 mantissas (2 bytes per real) *plus one float32 norm per
    site* — the per-site scale of the fixed-point format — so the face
    bytes are ``reals * 2 + sites * 4``, not just ``reals * 2``.
    ``site_axes`` counts the trailing per-site axes of the buffer (2 for
    Wilson ``(spin, color)``, 1 for staggered ``(color,)``).
    """
    if precision is None:
        return buf.nbytes
    nbytes = buf.size * 2 * precision.bytes_per_real
    if precision.name == "half":
        sites = int(np.prod(buf.shape[: buf.ndim - site_axes], dtype=np.int64))
        nbytes += sites * 4
    return int(nbytes)


class HaloExchanger:
    """Ghost-zone exchange for one partition / stencil depth / boundary."""

    def __init__(
        self,
        partition: BlockPartition,
        depth: int = 1,
        boundary: BoundarySpec = PERIODIC,
        mailbox: Mailbox | None = None,
        log: CommLog | None = None,
        precision=None,
        site_axes: int = 2,
    ):
        """``precision`` (optional) transfers spinor ghost faces in a
        reduced storage format — QUDA communicates halos in the solver's
        inner precision, halving (single) or quartering (half) the face
        bytes relative to double.  The emulation quantizes each face
        buffer before it is sent and logs the format's *logical* byte
        count; ``site_axes`` parametrizes the per-site scaling of the
        half format (2 for Wilson, 1 for staggered)."""
        if depth < 1:
            raise ValueError("ghost depth must be >= 1")
        self.partition = partition
        self.depth = depth
        self.boundary = boundary
        self.precision = precision
        self.site_axes = site_axes
        self.log = log if log is not None else CommLog()
        self.mailbox = mailbox or Mailbox(partition.n_ranks, log=self.log)
        for mu in self.partitioned_dims:
            if partition.local_dims[mu] < depth:
                raise ValueError(
                    f"local extent {partition.local_dims[mu]} in dir {mu} is "
                    f"thinner than the ghost depth {depth}"
                )
        # Reusable padded staging buffers for spinor exchanges, keyed by
        # (lead, local field shape, dtype); see the module docstring.
        self._pad_pool: dict[tuple, list[np.ndarray]] = {}
        # Memoized slice tuples (pure functions of the static layout).
        self._slice_cache: dict[tuple, tuple[slice, ...]] = {}

    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return self.partition.grid.partitioned_dims

    # ------------------------------------------------------------------
    # padded layout
    # ------------------------------------------------------------------
    @property
    def padded_dims(self) -> tuple[int, int, int, int]:
        """Local extents grown by 2*depth in each partitioned dimension."""
        dims = list(self.partition.local_dims)
        for mu in self.partitioned_dims:
            dims[mu] += 2 * self.depth
        return tuple(dims)

    @property
    def padded_geometry(self) -> Geometry:
        return Geometry(self.padded_dims)

    def padded_origin(self, rank: int) -> tuple[int, int, int, int]:
        """Global coordinate of the padded array's (0,0,0,0) site."""
        origin = list(self.partition.origin(rank))
        for mu in self.partitioned_dims:
            origin[mu] -= self.depth
        return tuple(origin)

    def interior_slices(self, lead: int = 0) -> tuple[slice, ...]:
        """Slicing of the padded array that selects the true local block."""
        key = ("interior", lead)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        site = [slice(None)] * 4
        for mu in self.partitioned_dims:
            axis = axis_of_mu(mu)
            site[axis] = slice(self.depth, self.depth + self.partition.local_dims[mu])
        result = (slice(None),) * lead + tuple(site)
        self._slice_cache[key] = result
        return result

    def _ghost_slices(self, mu: int, side: int, lead: int = 0) -> tuple[slice, ...]:
        """Ghost slab of the padded array beyond the ``side`` face in mu."""
        key = ("ghost", mu, side, lead)
        cached = self._slice_cache.get(key)
        if cached is not None:
            return cached
        axis = axis_of_mu(mu)
        n_local = self.partition.local_dims[mu]
        site = list(self.interior_slices())
        if side == +1:
            site[axis] = slice(self.depth + n_local, self.depth + n_local + self.depth)
        else:
            site[axis] = slice(0, self.depth)
        result = (slice(None),) * lead + tuple(site)
        self._slice_cache[key] = result
        return result

    def _padded_buffers(
        self, local_fields: list[np.ndarray], lead: int, reuse: bool
    ) -> list[np.ndarray]:
        """Padded staging arrays for one exchange.

        With ``reuse`` the per-(shape, dtype) pool is returned (allocated
        and zeroed once; corners stay zero because no exchange ever writes
        them); otherwise fresh zeroed arrays are built.
        """
        field = local_fields[0]
        shape = (
            field.shape[:lead]
            + tuple(reversed(self.padded_dims))
            + field.shape[lead + 4 :]
        )
        if not reuse:
            return [np.zeros(shape, dtype=field.dtype) for _ in local_fields]
        key = (lead, field.shape, field.dtype)
        pool = self._pad_pool.get(key)
        if pool is None:
            pool = [np.zeros(shape, dtype=field.dtype) for _ in local_fields]
            self._pad_pool[key] = pool
        return pool

    # ------------------------------------------------------------------
    # the exchange itself
    # ------------------------------------------------------------------
    def exchange(
        self,
        local_fields: list[np.ndarray],
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
    ) -> list[np.ndarray]:
        """Return padded arrays with ghost zones filled from the neighbors.

        ``lead`` leading axes (e.g. the direction axis of a gauge field)
        pass through unsliced.  ``apply_boundary=False`` gives plain
        periodic wrapping regardless of the fermion BC (used for gauge
        fields, which are periodic).
        """
        part, grid = self.partition, self.partition.grid
        if len(local_fields) != part.n_ranks:
            raise ValueError(
                f"need {part.n_ranks} local fields, got {len(local_fields)}"
            )
        local_geom = part.local_geometry

        with timed("halo_exchange", kind="halo"):
            # Gauge exchange results are retained by the local operators,
            # so only spinor exchanges may reuse the staging pool.
            padded = self._padded_buffers(
                local_fields, lead, reuse=(kind == "spinor")
            )
            interior = self.interior_slices(lead)
            for rank, (pad, field) in enumerate(zip(padded, local_fields)):
                with span("stage_interior", kind="gather", rank=rank,
                          stream="compute"):
                    pad[interior] = field
                # Staging copy reads the field and writes the padded
                # interior: read + write traffic.
                record(bytes_moved=2 * field.nbytes)

            # Post all sends first (non-blocking semantics), then receive:
            # the gather kernel extracts the *opposite* face to the ghost
            # it fills on the neighbor.
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    face_key = ("face", mu, sign, lead)
                    face = self._slice_cache.get(face_key)
                    if face is None:
                        face = (slice(None),) * lead + local_geom.face_slice(
                            mu, sign, self.depth
                        )
                        self._slice_cache[face_key] = face
                    # A batched (multi-RHS) spinor exchange packs all B
                    # faces into ONE message per neighbor per direction:
                    # the lead axis rides inside the face buffer, so the
                    # message count below is independent of B while the
                    # payload scales xB.
                    batch = (
                        int(np.prod(local_fields[0].shape[:lead]))
                        if (lead and kind == "spinor")
                        else 1
                    )
                    comm_stream = f"comm {DIR_NAMES[mu]}{'+' if sign > 0 else '-'}"
                    for rank in grid.all_ranks():
                        dst, wrapped = grid.neighbor(rank, mu, sign)
                        # Gather/pack: extract the face and quantize it to
                        # the wire format (the strided gather kernels of
                        # Sec. 6.1, on the compute stream in Fig. 4).
                        with span("gather", kind="gather", rank=rank,
                                  stream="compute", mu=mu, sign=sign,
                                  batch=batch):
                            buf = np.ascontiguousarray(local_fields[rank][face])
                            record(bytes_moved=2 * buf.nbytes)  # gather r/w
                            if apply_boundary and wrapped:
                                bc = self.boundary[mu]
                                if bc == "antiperiodic":
                                    buf = -buf
                                elif bc == "zero":
                                    buf = np.zeros_like(buf)
                            logical_nbytes = buf.nbytes
                            if self.precision is not None and kind == "spinor":
                                buf = self.precision.convert(
                                    buf, site_axes=self.site_axes
                                )
                                logical_nbytes = halo_logical_nbytes(
                                    buf, self.precision, self.site_axes
                                )
                        with span("send", kind="comm", rank=rank,
                                  stream=comm_stream, mu=mu, sign=sign,
                                  dst=dst, nbytes=logical_nbytes,
                                  batch=batch):
                            self.mailbox.send(
                                rank,
                                dst,
                                buf,
                                tag=("halo", mu, sign, kind),
                                event=CommEvent(
                                    src=rank,
                                    dst=dst,
                                    mu=mu,
                                    sign=sign,
                                    nbytes=logical_nbytes,
                                    kind=kind,
                                    wrapped=wrapped,
                                ),
                            )
                    for rank in grid.all_ranks():
                        src, _ = grid.neighbor(rank, mu, -sign)
                        with span("recv", kind="comm", rank=rank,
                                  stream=comm_stream, mu=mu, sign=sign,
                                  src=src):
                            data = self.mailbox.recv(
                                rank, src, tag=("halo", mu, sign, kind)
                            )
                        # A face sent forward (+1) fills the receiver's
                        # backward (-1) ghost slab, and vice versa.
                        ghost = self._ghost_slices(mu, -sign, lead)
                        with span("scatter", kind="scatter", rank=rank,
                                  stream="compute", mu=mu, sign=sign):
                            padded[rank][ghost] = data
                        # Scatter reads the receive buffer and writes the
                        # ghost slab: read + write traffic.
                        record(bytes_moved=2 * data.nbytes)
        return padded

    def exchange_spinor(
        self, local_fields: list[np.ndarray], lead: int = 0
    ) -> list[np.ndarray]:
        """Spinor-field exchange (applies the fermion boundary condition).

        ``lead=1`` exchanges a *batched* multi-RHS field ``(B, ...)``: all
        B ghost faces travel in one message per neighbor per direction, so
        the message count is independent of the batch size while the bytes
        scale xB — the per-message-latency amortization multi-RHS buys.
        """
        return self.exchange(local_fields, lead=lead, kind="spinor")

    def exchange_gauge(self, local_links: list[np.ndarray]) -> list[np.ndarray]:
        """Gauge/link-field exchange — done once per solve (Sec. 6.1)."""
        return self.exchange(
            local_links, lead=1, kind="gauge", apply_boundary=False
        )

    # ------------------------------------------------------------------
    def extract_interior(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return np.ascontiguousarray(padded[self.interior_slices(lead)])

    def zero_ghosts(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        """Copy of a padded array with every ghost slab zeroed (the input
        the *interior kernel* effectively sees)."""
        out = padded.copy()
        for mu in self.partitioned_dims:
            for side in (+1, -1):
                out[self._ghost_slices(mu, side, lead)] = 0
        return out

    def only_ghost(self, padded: np.ndarray, mu: int, lead: int = 0) -> np.ndarray:
        """Array with only dimension-mu ghost slabs kept (the input the
        mu *exterior kernel* effectively sees)."""
        out = np.zeros_like(padded)
        for side in (+1, -1):
            sl = self._ghost_slices(mu, side, lead)
            out[sl] = padded[sl]
        return out
