"""Per-rank ghost-zone exchange: the SPMD half of the halo machinery.

A :class:`RankHaloEngine` is ONE rank's view of the halo exchange of
Secs. 6.1-6.3: it stages the rank's own field into a padded array,
gathers and posts its boundary faces to its neighbors through a
:class:`~repro.comm.communicator.Communicator` endpoint, and scatters the
faces it receives into its ghost slabs.  The engine follows the eager
non-blocking send discipline — *every* send is posted before any receive
— so the exchange can never deadlock regardless of rank scheduling.

The same engine serves both execution models:

* the global-view :class:`~repro.multigpu.halo.HaloExchanger` drives one
  engine per rank from a single thread (calling the granular
  ``stage``/``send_faces``/``recv_face`` phases in its fixed order), and
* SPMD rank programs (:mod:`repro.core.spmd`) call the composite
  :meth:`exchange` concurrently, one engine per thread or process.

Cost accounting and trace spans are emitted here, per rank, identically
in both models — which is what makes merged per-rank tallies reproduce
the global-view numbers exactly (the backend-parity tests assert this).

Spinor exchanges reuse their padded staging array and slice tuples
across calls (one allocation per shape/dtype for the engine's lifetime);
corners stay zero because no exchange ever writes them.  The returned
padded array is only valid until the next exchange of a same-shaped
field — exactly the contract of a GPU ghost buffer.  Gauge exchanges
always allocate fresh arrays (their results are retained by the local
operators).
"""

from __future__ import annotations

import time

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.traffic import CommEvent
from repro.dirac.base import BoundarySpec, PERIODIC
from repro.lattice.geometry import DIR_NAMES
from repro.metrics.registry import current_registry
from repro.multigpu.layout import HaloLayout, halo_logical_nbytes
from repro.trace import span
from repro.util.counters import record, timed


class RankHaloEngine:
    """One rank's halo-exchange endpoint over a communicator."""

    def __init__(
        self,
        layout: HaloLayout,
        comm: Communicator,
        boundary: BoundarySpec = PERIODIC,
        precision=None,
        site_axes: int = 2,
    ):
        self.layout = layout
        self.comm = comm
        self.rank = comm.rank
        self.boundary = boundary
        self.precision = precision
        self.site_axes = site_axes
        self.grid = layout.partition.grid
        # Reusable padded staging buffer for spinor exchanges, keyed by
        # (lead, local field shape, dtype); see the module docstring.
        self._pad_pool: dict[tuple, np.ndarray] = {}

    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return self.layout.partitioned_dims

    # ------------------------------------------------------------------
    # exchange phases (driven either by self.exchange or by the
    # global-view HaloExchanger, in the same order)
    # ------------------------------------------------------------------
    def stage(self, field: np.ndarray, lead: int = 0, reuse: bool = True) -> np.ndarray:
        """Copy the local field into the interior of a padded array."""
        shape = self.layout.padded_shape(field, lead)
        if reuse:
            key = (lead, field.shape, field.dtype)
            pad = self._pad_pool.get(key)
            if pad is None:
                pad = np.zeros(shape, dtype=field.dtype)
                self._pad_pool[key] = pad
        else:
            pad = np.zeros(shape, dtype=field.dtype)
        with span("stage_interior", kind="gather", rank=self.rank,
                  stream="compute"):
            pad[self.layout.interior_slices(lead)] = field
        # Staging copy reads the field and writes the padded interior:
        # read + write traffic.
        record(bytes_moved=2 * field.nbytes)
        return pad

    def send_faces(
        self,
        field: np.ndarray,
        mu: int,
        sign: int,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
        batch: int = 1,
    ) -> None:
        """Gather the (mu, sign) face of the local field and post it to the
        neighbor (eager non-blocking send)."""
        dst, wrapped = self.grid.neighbor(self.rank, mu, sign)
        comm_stream = f"comm {DIR_NAMES[mu]}{'+' if sign > 0 else '-'}"
        # Gather/pack: extract the face and quantize it to the wire format
        # (the strided gather kernels of Sec. 6.1, on the compute stream
        # in Fig. 4).
        with span("gather", kind="gather", rank=self.rank, stream="compute",
                  mu=mu, sign=sign, batch=batch):
            buf = np.ascontiguousarray(field[self.layout.face_slices(mu, sign, lead)])
            read_nbytes = buf.nbytes
            if apply_boundary and wrapped:
                bc = self.boundary[mu]
                if bc == "antiperiodic":
                    buf = -buf
                elif bc == "zero":
                    # Write-only fill: the gather kernel never reads the
                    # field for a zeroed boundary face.
                    buf = np.zeros_like(buf)
                    read_nbytes = 0
            logical_nbytes = buf.nbytes
            if self.precision is not None and kind == "spinor":
                buf = self.precision.convert(buf, site_axes=self.site_axes)
                logical_nbytes = halo_logical_nbytes(
                    buf, self.precision, self.site_axes
                )
            # Gather/pack traffic, recorded after boundary and precision
            # handling: the kernel reads the face at storage precision
            # (nothing at all for a zero-boundary fill) and writes the
            # wire-format buffer.
            record(bytes_moved=read_nbytes + logical_nbytes)
        with span("send", kind="comm", rank=self.rank, stream=comm_stream,
                  mu=mu, sign=sign, dst=dst, nbytes=logical_nbytes,
                  batch=batch):
            self.comm.isend(
                dst,
                buf,
                tag=("halo", mu, sign, kind),
                event=CommEvent(
                    src=self.rank,
                    dst=dst,
                    mu=mu,
                    sign=sign,
                    nbytes=logical_nbytes,
                    kind=kind,
                    wrapped=wrapped,
                ),
            )

    def recv_face(
        self,
        padded: np.ndarray,
        mu: int,
        sign: int,
        lead: int = 0,
        kind: str = "spinor",
    ) -> None:
        """Receive the face a neighbor sent along (mu, sign) and scatter it
        into the corresponding ghost slab of the padded array."""
        src, _ = self.grid.neighbor(self.rank, mu, -sign)
        comm_stream = f"comm {DIR_NAMES[mu]}{'+' if sign > 0 else '-'}"
        with span("recv", kind="comm", rank=self.rank, stream=comm_stream,
                  mu=mu, sign=sign, src=src):
            data = self.comm.recv(src, tag=("halo", mu, sign, kind))
        # A face sent forward (+1) fills the receiver's backward (-1)
        # ghost slab, and vice versa.
        ghost = self.layout.ghost_slices(mu, -sign, lead)
        with span("scatter", kind="scatter", rank=self.rank,
                  stream="compute", mu=mu, sign=sign):
            padded[ghost] = data
        # Scatter reads the receive buffer and writes the ghost slab:
        # read + write traffic.
        record(bytes_moved=2 * data.nbytes)

    # ------------------------------------------------------------------
    # the composite per-rank exchange (SPMD rank programs)
    # ------------------------------------------------------------------
    def exchange(
        self,
        field: np.ndarray,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
    ) -> np.ndarray:
        """Full rank-local exchange: stage, post all sends, then receive.

        Returns this rank's padded array with ghost zones filled from the
        neighbors.  Safe under any backend scheduling: all sends are
        posted (eagerly, buffered) before the first receive.
        """
        batch = (
            int(np.prod(field.shape[:lead]))
            if (lead and kind == "spinor")
            else 1
        )
        with timed("halo_exchange", kind="halo"):
            padded = self.stage(field, lead, reuse=(kind == "spinor"))
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    self.send_faces(
                        field, mu, sign, lead=lead, kind=kind,
                        apply_boundary=apply_boundary, batch=batch,
                    )
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    self.recv_face(padded, mu, sign, lead=lead, kind=kind)
        return padded

    # ------------------------------------------------------------------
    # the overlapped exchange (Sec. 6.2 / Fig. 4 schedule, live)
    # ------------------------------------------------------------------
    def begin_exchange(
        self,
        field: np.ndarray,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
    ) -> "PendingExchange":
        """Start an overlapped exchange: stage, pre-post every receive,
        post every send, and return immediately with the faces in flight.

        The caller runs interior compute, then drains each dimension with
        :meth:`PendingExchange.complete_dim` — the live version of the
        Fig. 4 schedule, where gather/scatter kernels bracket in-flight
        communication that the interior dslash hides.
        """
        batch = (
            int(np.prod(field.shape[:lead]))
            if (lead and kind == "spinor")
            else 1
        )
        with timed("halo_exchange", kind="halo"):
            padded = self.stage(field, lead, reuse=(kind == "spinor"))
            # Pre-post one receive per incoming face (the genuinely
            # nonblocking irecv), then post all sends.
            handles = {}
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    src, _ = self.grid.neighbor(self.rank, mu, -sign)
                    handles[(mu, sign)] = self.comm.irecv(
                        src, tag=("halo", mu, sign, kind)
                    )
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    self.send_faces(
                        field, mu, sign, lead=lead, kind=kind,
                        apply_boundary=apply_boundary, batch=batch,
                    )
        return PendingExchange(self, padded, lead, handles)

    def exchange_overlapped(
        self,
        field: np.ndarray,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
        interior=None,
    ) -> np.ndarray:
        """Full overlapped exchange: post everything, run ``interior``
        (a callable taking the padded array) while faces fly, then drain
        every dimension.  Returns the filled padded array; bit-identical
        to :meth:`exchange` because face scatters touch disjoint ghost
        slabs."""
        pending = self.begin_exchange(
            field, lead=lead, kind=kind, apply_boundary=apply_boundary
        )
        if interior is not None:
            interior(pending.padded)
        for mu in self.partitioned_dims:
            pending.complete_dim(mu)
        return pending.padded

    def exchange_spinor(self, field: np.ndarray, lead: int = 0) -> np.ndarray:
        """Spinor-field exchange (applies the fermion boundary condition)."""
        return self.exchange(field, lead=lead, kind="spinor")

    def exchange_gauge(self, links: np.ndarray) -> np.ndarray:
        """Gauge/link-field exchange — done once per solve (Sec. 6.1)."""
        return self.exchange(links, lead=1, kind="gauge", apply_boundary=False)

    # -- padded-array helpers (delegate to the shared layout) -------------
    def extract_interior(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return self.layout.extract_interior(padded, lead)

    def zero_ghosts(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return self.layout.zero_ghosts(padded, lead)

    def only_ghost(self, padded: np.ndarray, mu: int, lead: int = 0) -> np.ndarray:
        return self.layout.only_ghost(padded, mu, lead)


class PendingExchange:
    """An overlapped exchange in flight: the padded staging array plus one
    posted receive per incoming face.

    :meth:`complete_dim` drains faces through
    :meth:`~repro.comm.communicator.Communicator.wait_any`, scattering
    *whichever* face arrives (disjoint ghost slabs make the scatter order
    irrelevant to the bits) until the requested dimension's pair is in.
    When the final face lands, the engine's overlap counters are
    published: the *window* (post-return to last-face) is the time
    communication had available to hide under compute, the *wait* is the
    part that actually blocked — their difference over the window is the
    measured overlap fraction the solve report compares against the
    Fig. 4 model track.
    """

    def __init__(self, engine: RankHaloEngine, padded: np.ndarray,
                 lead: int, handles: dict):
        self.engine = engine
        self.padded = padded
        self.lead = lead
        self.handles = handles
        self._scattered: set = set()
        self._wait_seconds = 0.0
        self._published = False
        self._t_post = time.perf_counter()

    @property
    def complete(self) -> bool:
        return len(self._scattered) == len(self.handles)

    def _scatter(self, face: tuple) -> None:
        mu, sign = face
        handle = self.handles[face]
        ghost = self.engine.layout.ghost_slices(mu, -sign, self.lead)
        with span("scatter", kind="scatter", rank=self.engine.rank,
                  stream="compute", mu=mu, sign=sign):
            self.padded[ghost] = handle._data
        record(bytes_moved=2 * handle._data.nbytes)
        self._scattered.add(face)

    def complete_dim(self, mu: int) -> None:
        """Block until both of dimension ``mu``'s faces are scattered.

        Every ``wait_any`` completes exactly one face — of *any*
        dimension, so early arrivals elsewhere are scattered on the way —
        which keeps the recv-wait observation count at one per face,
        identical to the blocking path, whatever the arrival order.
        """
        faces_of_mu = [(mu, +1), (mu, -1)]
        while any(f not in self._scattered for f in faces_of_mu):
            # mu's faces first, so the dimension being drained wins ties.
            outstanding = sorted(
                (f for f in self.handles if f not in self._scattered),
                key=lambda f: (f[0] != mu, f[0], -f[1]),
            )
            ready = [f for f in outstanding if self.handles[f].complete]
            if ready:
                self._scatter(ready[0])
                continue
            with span("wait_face", kind="comm", rank=self.engine.rank,
                      stream="comm wait", mu=mu):
                start = time.perf_counter()
                index = self.engine.comm.wait_any(
                    [self.handles[f] for f in outstanding]
                )
                self._wait_seconds += time.perf_counter() - start
            self._scatter(outstanding[index])
        if self.complete and not self._published:
            self._publish_overlap()

    def _publish_overlap(self) -> None:
        self._published = True
        window = time.perf_counter() - self._t_post
        reg = current_registry()
        if reg is not None:
            rank = self.engine.rank
            reg.counter("halo_overlap_window_seconds_total",
                        rank=rank).inc(window)
            reg.counter("halo_overlap_wait_seconds_total",
                        rank=rank).inc(self._wait_seconds)
            reg.counter("halo_overlapped_exchanges_total", rank=rank).inc()


__all__ = ["PendingExchange", "RankHaloEngine"]
