"""Per-rank ghost-zone exchange: the SPMD half of the halo machinery.

A :class:`RankHaloEngine` is ONE rank's view of the halo exchange of
Secs. 6.1-6.3: it stages the rank's own field into a padded array,
gathers and posts its boundary faces to its neighbors through a
:class:`~repro.comm.communicator.Communicator` endpoint, and scatters the
faces it receives into its ghost slabs.  The engine follows the eager
non-blocking send discipline — *every* send is posted before any receive
— so the exchange can never deadlock regardless of rank scheduling.

The same engine serves both execution models:

* the global-view :class:`~repro.multigpu.halo.HaloExchanger` drives one
  engine per rank from a single thread (calling the granular
  ``stage``/``send_faces``/``recv_face`` phases in its fixed order), and
* SPMD rank programs (:mod:`repro.core.spmd`) call the composite
  :meth:`exchange` concurrently, one engine per thread or process.

Cost accounting and trace spans are emitted here, per rank, identically
in both models — which is what makes merged per-rank tallies reproduce
the global-view numbers exactly (the backend-parity tests assert this).

Spinor exchanges reuse their padded staging array and slice tuples
across calls (one allocation per shape/dtype for the engine's lifetime);
corners stay zero because no exchange ever writes them.  The returned
padded array is only valid until the next exchange of a same-shaped
field — exactly the contract of a GPU ghost buffer.  Gauge exchanges
always allocate fresh arrays (their results are retained by the local
operators).
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import Communicator
from repro.comm.traffic import CommEvent
from repro.dirac.base import BoundarySpec, PERIODIC
from repro.lattice.geometry import DIR_NAMES
from repro.multigpu.layout import HaloLayout, halo_logical_nbytes
from repro.trace import span
from repro.util.counters import record, timed


class RankHaloEngine:
    """One rank's halo-exchange endpoint over a communicator."""

    def __init__(
        self,
        layout: HaloLayout,
        comm: Communicator,
        boundary: BoundarySpec = PERIODIC,
        precision=None,
        site_axes: int = 2,
    ):
        self.layout = layout
        self.comm = comm
        self.rank = comm.rank
        self.boundary = boundary
        self.precision = precision
        self.site_axes = site_axes
        self.grid = layout.partition.grid
        # Reusable padded staging buffer for spinor exchanges, keyed by
        # (lead, local field shape, dtype); see the module docstring.
        self._pad_pool: dict[tuple, np.ndarray] = {}

    @property
    def partitioned_dims(self) -> tuple[int, ...]:
        return self.layout.partitioned_dims

    # ------------------------------------------------------------------
    # exchange phases (driven either by self.exchange or by the
    # global-view HaloExchanger, in the same order)
    # ------------------------------------------------------------------
    def stage(self, field: np.ndarray, lead: int = 0, reuse: bool = True) -> np.ndarray:
        """Copy the local field into the interior of a padded array."""
        shape = self.layout.padded_shape(field, lead)
        if reuse:
            key = (lead, field.shape, field.dtype)
            pad = self._pad_pool.get(key)
            if pad is None:
                pad = np.zeros(shape, dtype=field.dtype)
                self._pad_pool[key] = pad
        else:
            pad = np.zeros(shape, dtype=field.dtype)
        with span("stage_interior", kind="gather", rank=self.rank,
                  stream="compute"):
            pad[self.layout.interior_slices(lead)] = field
        # Staging copy reads the field and writes the padded interior:
        # read + write traffic.
        record(bytes_moved=2 * field.nbytes)
        return pad

    def send_faces(
        self,
        field: np.ndarray,
        mu: int,
        sign: int,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
        batch: int = 1,
    ) -> None:
        """Gather the (mu, sign) face of the local field and post it to the
        neighbor (eager non-blocking send)."""
        dst, wrapped = self.grid.neighbor(self.rank, mu, sign)
        comm_stream = f"comm {DIR_NAMES[mu]}{'+' if sign > 0 else '-'}"
        # Gather/pack: extract the face and quantize it to the wire format
        # (the strided gather kernels of Sec. 6.1, on the compute stream
        # in Fig. 4).
        with span("gather", kind="gather", rank=self.rank, stream="compute",
                  mu=mu, sign=sign, batch=batch):
            buf = np.ascontiguousarray(field[self.layout.face_slices(mu, sign, lead)])
            record(bytes_moved=2 * buf.nbytes)  # gather r/w
            if apply_boundary and wrapped:
                bc = self.boundary[mu]
                if bc == "antiperiodic":
                    buf = -buf
                elif bc == "zero":
                    buf = np.zeros_like(buf)
            logical_nbytes = buf.nbytes
            if self.precision is not None and kind == "spinor":
                buf = self.precision.convert(buf, site_axes=self.site_axes)
                logical_nbytes = halo_logical_nbytes(
                    buf, self.precision, self.site_axes
                )
        with span("send", kind="comm", rank=self.rank, stream=comm_stream,
                  mu=mu, sign=sign, dst=dst, nbytes=logical_nbytes,
                  batch=batch):
            self.comm.isend(
                dst,
                buf,
                tag=("halo", mu, sign, kind),
                event=CommEvent(
                    src=self.rank,
                    dst=dst,
                    mu=mu,
                    sign=sign,
                    nbytes=logical_nbytes,
                    kind=kind,
                    wrapped=wrapped,
                ),
            )

    def recv_face(
        self,
        padded: np.ndarray,
        mu: int,
        sign: int,
        lead: int = 0,
        kind: str = "spinor",
    ) -> None:
        """Receive the face a neighbor sent along (mu, sign) and scatter it
        into the corresponding ghost slab of the padded array."""
        src, _ = self.grid.neighbor(self.rank, mu, -sign)
        comm_stream = f"comm {DIR_NAMES[mu]}{'+' if sign > 0 else '-'}"
        with span("recv", kind="comm", rank=self.rank, stream=comm_stream,
                  mu=mu, sign=sign, src=src):
            data = self.comm.recv(src, tag=("halo", mu, sign, kind))
        # A face sent forward (+1) fills the receiver's backward (-1)
        # ghost slab, and vice versa.
        ghost = self.layout.ghost_slices(mu, -sign, lead)
        with span("scatter", kind="scatter", rank=self.rank,
                  stream="compute", mu=mu, sign=sign):
            padded[ghost] = data
        # Scatter reads the receive buffer and writes the ghost slab:
        # read + write traffic.
        record(bytes_moved=2 * data.nbytes)

    # ------------------------------------------------------------------
    # the composite per-rank exchange (SPMD rank programs)
    # ------------------------------------------------------------------
    def exchange(
        self,
        field: np.ndarray,
        lead: int = 0,
        kind: str = "spinor",
        apply_boundary: bool = True,
    ) -> np.ndarray:
        """Full rank-local exchange: stage, post all sends, then receive.

        Returns this rank's padded array with ghost zones filled from the
        neighbors.  Safe under any backend scheduling: all sends are
        posted (eagerly, buffered) before the first receive.
        """
        batch = (
            int(np.prod(field.shape[:lead]))
            if (lead and kind == "spinor")
            else 1
        )
        with timed("halo_exchange", kind="halo"):
            padded = self.stage(field, lead, reuse=(kind == "spinor"))
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    self.send_faces(
                        field, mu, sign, lead=lead, kind=kind,
                        apply_boundary=apply_boundary, batch=batch,
                    )
            for mu in self.partitioned_dims:
                for sign in (+1, -1):
                    self.recv_face(padded, mu, sign, lead=lead, kind=kind)
        return padded

    def exchange_spinor(self, field: np.ndarray, lead: int = 0) -> np.ndarray:
        """Spinor-field exchange (applies the fermion boundary condition)."""
        return self.exchange(field, lead=lead, kind="spinor")

    def exchange_gauge(self, links: np.ndarray) -> np.ndarray:
        """Gauge/link-field exchange — done once per solve (Sec. 6.1)."""
        return self.exchange(links, lead=1, kind="gauge", apply_boundary=False)

    # -- padded-array helpers (delegate to the shared layout) -------------
    def extract_interior(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return self.layout.extract_interior(padded, lead)

    def zero_ghosts(self, padded: np.ndarray, lead: int = 0) -> np.ndarray:
        return self.layout.zero_ghosts(padded, lead)

    def only_ghost(self, padded: np.ndarray, mu: int, lead: int = 0) -> np.ndarray:
        return self.layout.only_ghost(padded, mu, lead)


__all__ = ["RankHaloEngine"]
