"""Distributed fields: per-rank blocks forming one global vector.

A distributed vector is a plain list of numpy arrays, one block per
virtual rank.  :class:`DistributedSpace` gives the Krylov solvers the same
interface as :class:`repro.solvers.space.ArraySpace`, with inner products
computed as genuine global reductions: each rank contributes a partial sum
and an allreduce combines them (one logged reduction event — the
communication that throttles traditional Krylov methods at scale,
Sec. 3.2).
"""

from __future__ import annotations

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.multigpu.partition import BlockPartition
from repro.precision import Precision
from repro.util.counters import record


class DistributedSpace:
    """Vector-space operations over per-rank field blocks."""

    def __init__(
        self,
        partition: BlockPartition,
        site_axes: int = 2,
        mailbox: Mailbox | None = None,
    ):
        self.partition = partition
        self.site_axes = site_axes
        self.mailbox = mailbox or Mailbox(partition.n_ranks)

    # -- reductions -----------------------------------------------------
    def _reduce(self, parts: list):
        total = self.mailbox.allreduce_sum(parts)
        return total

    def dot(self, xs: list, ys: list) -> complex:
        parts = [np.vdot(x, y) for x, y in zip(xs, ys)]
        record(
            flops=8 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes + y.nbytes for x, y in zip(xs, ys)),
        )
        return complex(self._reduce(parts))

    def rdot(self, xs: list, ys: list) -> float:
        parts = [np.vdot(x, y).real for x, y in zip(xs, ys)]
        record(
            flops=8 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes + y.nbytes for x, y in zip(xs, ys)),
        )
        return float(self._reduce(parts))

    def norm2(self, xs: list) -> float:
        parts = [np.vdot(x, x).real for x in xs]
        record(
            flops=4 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes for x in xs),
        )
        return float(self._reduce(parts))

    # -- updates ---------------------------------------------------------
    def axpy(self, a, xs: list, ys: list) -> list:
        record(flops=8 * sum(x.size for x in xs))
        return [y + a * x for x, y in zip(xs, ys)]

    def xpay(self, xs: list, a, ys: list) -> list:
        record(flops=8 * sum(x.size for x in xs))
        return [x + a * y for x, y in zip(xs, ys)]

    def scale(self, a, xs: list) -> list:
        record(flops=6 * sum(x.size for x in xs))
        return [a * x for x in xs]

    def copy(self, xs: list) -> list:
        record(bytes_moved=2 * sum(x.nbytes for x in xs))
        return [x.copy() for x in xs]

    def zeros_like(self, xs: list) -> list:
        return [np.zeros_like(x) for x in xs]

    # -- precision / interop ----------------------------------------------
    def convert(self, xs: list, precision: Precision) -> list:
        return [precision.convert(x, site_axes=self.site_axes) for x in xs]

    def asarray(self, xs: list) -> np.ndarray:
        """Gather the distributed vector into one global array."""
        return self.partition.assemble(xs)

    def scatter(self, global_array: np.ndarray) -> list:
        """Scatter a global array into a distributed vector."""
        return self.partition.split(global_array)


class BatchedDistributedSpace(DistributedSpace):
    """Multi-RHS distributed vectors: per-rank blocks ``(B,) + local``.

    Reductions compute per-rank *per-RHS* partial sums and combine them
    in ONE allreduce carrying B scalars — N right-hand sides cost the
    same number of global synchronizations as one, which is the whole
    point of batching for the reduction-latency-bound strong-scaling
    regime of Sec. 3.2.  Update coefficients are per-RHS ``(B,)``
    vectors broadcast over each block.
    """

    @staticmethod
    def _bparts(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """(B,) per-RHS partial inner product of one rank's blocks."""
        nb = x.shape[0]
        return np.einsum(
            "bi,bi->b", x.reshape(nb, -1).conj(), y.reshape(nb, -1)
        )

    @staticmethod
    def _bcoeff(a, x: np.ndarray):
        a = np.asarray(a)
        if a.ndim == 0:
            return a
        return a.reshape(a.shape + (1,) * (x.ndim - 1))

    def batch(self, xs: list) -> int:
        return xs[0].shape[0]

    # -- reductions (one allreduce carrying B scalars) -------------------
    def dot(self, xs: list, ys: list) -> np.ndarray:
        parts = [self._bparts(x, y) for x, y in zip(xs, ys)]
        record(
            flops=8 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes + y.nbytes for x, y in zip(xs, ys)),
        )
        return np.asarray(self._reduce(parts))

    def rdot(self, xs: list, ys: list) -> np.ndarray:
        parts = [self._bparts(x, y).real for x, y in zip(xs, ys)]
        record(
            flops=8 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes + y.nbytes for x, y in zip(xs, ys)),
        )
        return np.asarray(self._reduce(parts))

    def norm2(self, xs: list) -> np.ndarray:
        parts = [self._bparts(x, x).real for x in xs]
        record(
            flops=4 * sum(x.size for x in xs),
            bytes_moved=sum(x.nbytes for x in xs),
        )
        return np.asarray(self._reduce(parts))

    # -- updates (per-RHS coefficients) ----------------------------------
    def axpy(self, a, xs: list, ys: list) -> list:
        record(flops=8 * sum(x.size for x in xs))
        return [y + self._bcoeff(a, x) * x for x, y in zip(xs, ys)]

    def xpay(self, xs: list, a, ys: list) -> list:
        record(flops=8 * sum(x.size for x in xs))
        return [x + self._bcoeff(a, y) * y for x, y in zip(xs, ys)]

    def scale(self, a, xs: list) -> list:
        record(flops=6 * sum(x.size for x in xs))
        return [self._bcoeff(a, x) * x for x in xs]

    # -- interop -----------------------------------------------------------
    def asarray(self, xs: list) -> np.ndarray:
        """Gather into one global ``(B,) + lattice + site`` array."""
        return self.partition.assemble(xs, lead=1)

    def scatter(self, global_array: np.ndarray) -> list:
        """Scatter a batched global array into per-rank ``(B,...)`` blocks."""
        return self.partition.split(global_array, lead=1)
