"""Rank-local Dirac operator application: the SPMD compute kernels.

One rank's share of a distributed operator application is: halo-exchange
the rank's spinor block, run the stencil on the padded array, extract
the interior.  This module holds that per-rank logic once, in two
forms:

* the *kernel functions* (:func:`fused_apply`, :func:`split_apply`) —
  one rank's stencil body on an already-exchanged padded array, with the
  trace spans of Sec. 6.2 (``fused_stencil`` or ``interior_kernel`` +
  per-dimension ``exterior_*``).  The global-view
  :class:`~repro.multigpu.ddop.DistributedOperator` loops these over all
  ranks; SPMD rank programs call them for their own rank only.
* :class:`RankOperator` — a rank program's local operator endpoint: it
  owns the rank's padded local stencil and halo engine and exposes
  ``apply``/``apply_dagger`` on rank-local (unpadded) fields, the
  per-rank mirror of ``DistributedOperator.apply``.

Cost accounting convention (merged per-rank tallies must equal the
global-view tallies exactly): each rank charges the stencil flops of its
*local* volume — the per-rank shares sum to the global count — while the
single ``dist_*`` operator-application event is charged to rank 0 only.

Constructors (:func:`rank_wilson_clover`, :func:`rank_naive_staggered`)
perform the one-time SPMD gauge ghost exchange through the rank's own
engine.  The clover field cannot be built rank-locally: its field-
strength leaves read corner sites the halo exchange never fills, so the
parent builds it globally and passes each rank its (unpadded) block.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.dirac.base import BoundarySpec, LatticeOperator, PERIODIC
from repro.dirac.staggered import NaiveStaggeredOperator
from repro.dirac.wilson import WilsonCloverOperator
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import DIR_NAMES
from repro.multigpu.layout import local_boundary
from repro.multigpu.rank_halo import RankHaloEngine
from repro.trace import span
from repro.util.counters import record, record_operator


# ----------------------------------------------------------------------
# one rank's stencil body on a padded array (shared by both models)
# ----------------------------------------------------------------------
def fused_apply(
    op: LatticeOperator, exch, pad: np.ndarray, lead: int, rank: int,
    dagger: bool = False,
) -> np.ndarray:
    """Fused path: one local stencil on the padded array, interior out.

    ``exch`` is anything with ``extract_interior`` — the global
    :class:`~repro.multigpu.halo.HaloExchanger` or a per-rank
    :class:`~repro.multigpu.rank_halo.RankHaloEngine`.
    """
    name = "fused_stencil_dagger" if dagger else "fused_stencil"
    with span(name, kind="interior", rank=rank, stream="compute"):
        applied = op._apply_dagger(pad) if dagger else op._apply(pad)
        return exch.extract_interior(applied, lead=lead)


def split_apply(
    op: LatticeOperator, exch, pad: np.ndarray, lead: int, rank: int
) -> np.ndarray:
    """Interior/exterior kernel path (Sec. 6.2) for one rank.

    The interior kernel computes every contribution available without
    ghost data (including the diagonal/clover terms); each partitioned
    dimension's exterior kernel then adds the hopping contributions
    sourced from that dimension's ghost zones.  Sites on corners receive
    updates from several exterior kernels, reproducing the data
    dependency the paper serializes the exterior kernels over.
    """
    with span("interior_kernel", kind="interior", rank=rank,
              stream="compute"):
        interior_in = exch.zero_ghosts(pad, lead=lead)
        out = exch.extract_interior(op._apply(interior_in), lead=lead)
    for mu in exch.partitioned_dims:
        with span(f"exterior_{DIR_NAMES[mu]}", kind="exterior",
                  rank=rank, stream="compute", mu=mu):
            ghost_in = exch.only_ghost(pad, mu, lead=lead)
            out = out + exch.extract_interior(
                op.apply_hopping(ghost_in), lead=lead
            )
    return out


def split_apply_overlapped(
    op: LatticeOperator, engine: RankHaloEngine, x: np.ndarray, lead: int,
    rank: int,
) -> np.ndarray:
    """The overlapped interior/exterior schedule of Fig. 4, live.

    Starts the halo exchange (pre-posted receives, eager sends), runs the
    interior kernel while faces are in flight, then drains each
    partitioned dimension and applies its exterior kernel.  Bit-identical
    to exchange-then-:func:`split_apply`: the interior kernel reads a
    zero-ghost *copy* of the padded array, face scatters land in disjoint
    ghost slabs, and the exterior contributions are summed in the same
    fixed dimension order.
    """
    pending = engine.begin_exchange(x, lead=lead, kind="spinor")
    pad = pending.padded
    with span("interior_kernel", kind="interior", rank=rank,
              stream="compute"):
        interior_in = engine.zero_ghosts(pad, lead=lead)
        out = engine.extract_interior(op._apply(interior_in), lead=lead)
    for mu in engine.partitioned_dims:
        pending.complete_dim(mu)
        with span(f"exterior_{DIR_NAMES[mu]}", kind="exterior",
                  rank=rank, stream="compute", mu=mu):
            ghost_in = engine.only_ghost(pad, mu, lead=lead)
            out = out + engine.extract_interior(
                op.apply_hopping(ghost_in), lead=lead
            )
    return out


# ----------------------------------------------------------------------
# the SPMD rank operator
# ----------------------------------------------------------------------
def _warn_use_split(owner: str) -> None:
    warnings.warn(
        f"{owner}(use_split=...) is deprecated. use schedule='split' "
        "(use_split=True) or schedule='fused' (use_split=False)",
        DeprecationWarning,
        stacklevel=3,
    )


def _resolve_schedule(
    owner: str, schedule: str, overlap: bool, use_split: bool | None
) -> str:
    """Fold the deprecated ``use_split`` flag and ``overlap`` into a
    concrete ``"fused"``/``"split"`` schedule."""
    if use_split is not None:
        _warn_use_split(owner)
        if schedule == "auto":
            schedule = "split" if use_split else "auto"
    if schedule == "auto":
        # Overlapping halo comm with the interior kernel requires the
        # split interior/exterior path.
        return "split" if overlap else "fused"
    if schedule not in ("fused", "split"):
        raise ValueError(
            f"unknown schedule {schedule!r}; choose 'auto', 'fused' or "
            "'split'"
        )
    if overlap and schedule == "fused":
        raise ValueError(
            "overlap=True runs the interior/exterior split; use "
            "schedule='auto' or 'split'"
        )
    return schedule


class RankOperator:
    """One rank's endpoint of a distributed Dirac operator."""

    def __init__(
        self,
        engine: RankHaloEngine,
        local_op: LatticeOperator,
        name: str,
        flops_per_site: int,
        nspin: int,
        schedule: str = "auto",
        overlap: bool = False,
        use_split: bool | None = None,
    ):
        self.engine = engine
        self.local_op = local_op
        self.name = name
        self.flops_per_site = flops_per_site
        self.nspin = nspin
        self.schedule = _resolve_schedule(
            "RankOperator", schedule, overlap, use_split
        )
        self.overlap = overlap
        self.rank = engine.rank
        self.local_volume = engine.layout.partition.local_volume

    @property
    def use_split(self) -> bool:
        """Deprecated alias for ``schedule == "split"``."""
        _warn_use_split("RankOperator")
        return self.schedule == "split"

    def _field_lead(self, x: np.ndarray) -> int:
        expected = 4 + (2 if self.nspin == 4 else 1)
        extra = x.ndim - expected
        if extra in (0, 1):
            return extra
        raise ValueError(
            f"dist_{self.name} expects local field ndim {expected} "
            f"(or +1 batch axis), got shape {x.shape}"
        )

    def _record(self, batch: int = 1) -> None:
        # The collective event is counted once (on rank 0); the flops are
        # each rank's own local-volume share.
        if self.rank == 0:
            record_operator(f"dist_{self.name}")
        record(flops=self.flops_per_site * self.local_volume * batch)

    def apply(self, x: np.ndarray) -> np.ndarray:
        """Exchange ghosts, apply this rank's stencil, return the interior
        (or the interior/exterior path under ``schedule="split"``)."""
        lead = self._field_lead(x)
        self._record(batch=x.shape[0] if lead else 1)
        if self.overlap:
            return split_apply_overlapped(
                self.local_op, self.engine, x, lead, self.rank
            )
        pad = self.engine.exchange_spinor(x, lead=lead)
        if self.schedule == "split":
            return split_apply(self.local_op, self.engine, pad, lead, self.rank)
        return fused_apply(self.local_op, self.engine, pad, lead, self.rank)

    def apply_dagger(self, x: np.ndarray) -> np.ndarray:
        lead = self._field_lead(x)
        self._record(batch=x.shape[0] if lead else 1)
        pad = self.engine.exchange_spinor(x, lead=lead)
        return fused_apply(
            self.local_op, self.engine, pad, lead, self.rank, dagger=True
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x)


# ----------------------------------------------------------------------
# constructors (one-time SPMD gauge ghost exchange per rank)
# ----------------------------------------------------------------------
def rank_wilson_clover(
    engine: RankHaloEngine,
    gauge_block: np.ndarray,
    mass: float,
    csw: float,
    boundary: BoundarySpec = PERIODIC,
    clover_block: np.ndarray | None = None,
    kernel: str = "auto",
    schedule: str = "auto",
    overlap: bool = False,
    use_split: bool | None = None,
) -> RankOperator:
    """Build this rank's Wilson-clover endpoint from its (unpadded) local
    gauge block; ``clover_block`` is the rank's slice of the *globally
    built* clover field (required when ``csw != 0`` — see module
    docstring)."""
    if csw != 0.0 and clover_block is None:
        raise ValueError(
            "csw != 0 needs the parent-built clover block: clover leaves "
            "read corner sites the halo exchange never fills"
        )
    layout = engine.layout
    local_bc = local_boundary(boundary, engine.partitioned_dims)
    padded_links = engine.exchange_gauge(gauge_block)
    padded_clover = None
    if clover_block is not None:
        shape = tuple(reversed(layout.padded_dims)) + clover_block.shape[4:]
        padded_clover = np.zeros(shape, dtype=clover_block.dtype)
        padded_clover[layout.interior_slices()] = clover_block
    local_op = WilsonCloverOperator(
        GaugeField(layout.padded_geometry, padded_links),
        mass=mass,
        csw=csw,
        boundary=local_bc,
        clover=padded_clover,
        kernel=kernel,
    )
    return RankOperator(
        engine, local_op, local_op.name, local_op.flops_per_site, 4,
        schedule=schedule, overlap=overlap, use_split=use_split,
    )


def rank_naive_staggered(
    engine: RankHaloEngine,
    gauge_block: np.ndarray,
    mass: float,
    boundary: BoundarySpec = PERIODIC,
    kernel: str = "auto",
    schedule: str = "auto",
    overlap: bool = False,
    use_split: bool | None = None,
) -> RankOperator:
    """Build this rank's naive-staggered endpoint from its (unpadded)
    local gauge block; the padded origin keeps the Kogut-Susskind phases
    globally consistent."""
    layout = engine.layout
    local_bc = local_boundary(boundary, engine.partitioned_dims)
    padded = engine.exchange_gauge(gauge_block)
    local_op = NaiveStaggeredOperator(
        GaugeField(layout.padded_geometry, padded),
        mass=mass,
        boundary=local_bc,
        origin=layout.padded_origin(engine.rank),
        kernel=kernel,
    )
    return RankOperator(
        engine, local_op, local_op.name, local_op.flops_per_site, 1,
        schedule=schedule, overlap=overlap, use_split=use_split,
    )


__all__ = [
    "RankOperator",
    "fused_apply",
    "rank_naive_staggered",
    "rank_wilson_clover",
    "split_apply",
    "split_apply_overlapped",
]
