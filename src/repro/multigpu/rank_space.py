"""Rank-local vector space: one rank's share of a distributed vector.

The SPMD mirror of :class:`repro.multigpu.space.DistributedSpace`: a
vector is this rank's *block* (a plain numpy array), updates are local,
and every inner product is a genuine two-step global reduction — a local
partial sum followed by ``comm.allreduce_sum`` (the communication that
throttles traditional Krylov methods at scale, Sec. 3.2).

Because the allreduce folds contributions in fixed rank order and
returns the identical scalar to every rank, a Krylov solver written
against this space executes the *same* control flow on every rank — and
bit-identically to the global-view solver run over
``DistributedSpace``.  To keep the merged per-rank tallies equal to the
global-view tallies, the recording here mirrors ``DistributedSpace``
exactly (raw ``np.vdot`` partials plus explicit ``record`` — NOT the
:mod:`repro.linalg.blas` reduction helpers, which would charge an extra
``reductions=1`` on top of the communicator's collective accounting).
"""

from __future__ import annotations

import numpy as np

from repro.comm.communicator import Communicator
from repro.precision import Precision
from repro.util.counters import record


class RankSpace:
    """Vector-space operations on one rank's block of a distributed field."""

    def __init__(self, comm: Communicator, site_axes: int = 2):
        self.comm = comm
        self.site_axes = site_axes

    # -- reductions -----------------------------------------------------
    def dot(self, x, y) -> complex:
        part = np.vdot(x, y)
        record(flops=8 * x.size, bytes_moved=x.nbytes + y.nbytes)
        return complex(self.comm.allreduce_sum(part))

    def rdot(self, x, y) -> float:
        part = np.vdot(x, y).real
        record(flops=8 * x.size, bytes_moved=x.nbytes + y.nbytes)
        return float(self.comm.allreduce_sum(part))

    def norm2(self, x) -> float:
        part = np.vdot(x, x).real
        record(flops=4 * x.size, bytes_moved=x.nbytes)
        return float(self.comm.allreduce_sum(part))

    # -- updates ---------------------------------------------------------
    def axpy(self, a, x, y):
        record(flops=8 * x.size)
        return y + a * x

    def xpay(self, x, a, y):
        record(flops=8 * x.size)
        return x + a * y

    def scale(self, a, x):
        record(flops=6 * x.size)
        return a * x

    def copy(self, x):
        record(bytes_moved=2 * x.nbytes)
        return x.copy()

    def zeros_like(self, x):
        return np.zeros_like(x)

    # -- precision / interop ----------------------------------------------
    def convert(self, x, precision: Precision):
        return precision.convert(x, site_axes=self.site_axes)

    def asarray(self, x) -> np.ndarray:
        """The rank-local block (gathering is the parent's job)."""
        return x


class BatchedRankSpace(RankSpace):
    """Multi-RHS rank-local vectors: blocks ``(B,) + local lattice + site``.

    Reductions compute per-RHS partial sums and combine them in ONE
    allreduce carrying B scalars, mirroring
    :class:`repro.multigpu.space.BatchedDistributedSpace`.
    """

    @staticmethod
    def _bparts(x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """(B,) per-RHS partial inner product of this rank's blocks."""
        nb = x.shape[0]
        return np.einsum(
            "bi,bi->b", x.reshape(nb, -1).conj(), y.reshape(nb, -1)
        )

    @staticmethod
    def _bcoeff(a, x: np.ndarray):
        a = np.asarray(a)
        if a.ndim == 0:
            return a
        return a.reshape(a.shape + (1,) * (x.ndim - 1))

    def batch(self, x) -> int:
        return x.shape[0]

    # -- reductions (one allreduce carrying B scalars) -------------------
    def dot(self, x, y) -> np.ndarray:
        part = self._bparts(x, y)
        record(flops=8 * x.size, bytes_moved=x.nbytes + y.nbytes)
        return np.asarray(self.comm.allreduce_sum(part))

    def rdot(self, x, y) -> np.ndarray:
        part = self._bparts(x, y).real
        record(flops=8 * x.size, bytes_moved=x.nbytes + y.nbytes)
        return np.asarray(self.comm.allreduce_sum(part))

    def norm2(self, x) -> np.ndarray:
        part = self._bparts(x, x).real
        record(flops=4 * x.size, bytes_moved=x.nbytes)
        return np.asarray(self.comm.allreduce_sum(part))

    # -- updates (per-RHS coefficients) ----------------------------------
    def axpy(self, a, x, y):
        record(flops=8 * x.size)
        return y + self._bcoeff(a, x) * x

    def xpay(self, x, a, y):
        record(flops=8 * x.size)
        return x + self._bcoeff(a, y) * y

    def scale(self, a, x):
        record(flops=6 * x.size)
        return self._bcoeff(a, x) * x


__all__ = ["BatchedRankSpace", "RankSpace"]
