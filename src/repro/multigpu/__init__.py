"""Multi-dimensional lattice partitioning across the virtual GPU cluster
(Sec. 6 of the paper): block decomposition, ghost-zone halo exchange,
interior/exterior kernel split, and distributed operators/fields — in
both the global-view form (:class:`HaloExchanger`,
:class:`DistributedOperator`, :class:`DistributedSpace`) and the
per-rank SPMD form (:class:`RankHaloEngine`, :class:`RankOperator`,
:class:`RankSpace`) that shares the same layout arithmetic
(:class:`HaloLayout`) and stencil kernels."""

from repro.multigpu.partition import BlockPartition
from repro.multigpu.layout import HaloLayout
from repro.multigpu.halo import HaloExchanger
from repro.multigpu.rank_halo import RankHaloEngine
from repro.multigpu.rank_op import RankOperator
from repro.multigpu.rank_space import BatchedRankSpace, RankSpace
from repro.multigpu.space import DistributedSpace
from repro.multigpu.ddop import DistributedOperator

__all__ = [
    "BlockPartition",
    "HaloLayout",
    "HaloExchanger",
    "RankHaloEngine",
    "RankOperator",
    "RankSpace",
    "BatchedRankSpace",
    "DistributedSpace",
    "DistributedOperator",
]
