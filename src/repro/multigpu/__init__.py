"""Multi-dimensional lattice partitioning across the virtual GPU cluster
(Sec. 6 of the paper): block decomposition, ghost-zone halo exchange,
interior/exterior kernel split, and distributed operators/fields."""

from repro.multigpu.partition import BlockPartition
from repro.multigpu.halo import HaloExchanger
from repro.multigpu.space import DistributedSpace
from repro.multigpu.ddop import DistributedOperator

__all__ = [
    "BlockPartition",
    "HaloExchanger",
    "DistributedSpace",
    "DistributedOperator",
]
