"""Distributed (multi-GPU) application of the Dirac operators.

A :class:`DistributedOperator` owns one *local* operator per virtual rank,
built on the padded (ghost-zone) sub-lattice, and applies the global
operator by: halo exchange -> per-rank stencil on the padded array ->
interior extraction.  Two execution paths are provided:

* ``apply`` — the fused path (one local stencil per rank);
* ``apply_split`` — the *interior/exterior kernel* decomposition of
  Sec. 6.2: an interior kernel that sees zeroed ghosts (all the work that
  can overlap communication) plus one exterior kernel per partitioned
  dimension that adds exactly the ghost-zone contributions.  By linearity
  the two paths agree to rounding; tests assert both equal the serial
  operator.

The per-rank stencil bodies live in :mod:`repro.multigpu.rank_op`
(:func:`~repro.multigpu.rank_op.fused_apply` /
:func:`~repro.multigpu.rank_op.split_apply`) and are shared with the SPMD
rank programs; this class is the global-view driver looping them over
all ranks.

Gauge (and fat/long link) ghost zones are exchanged once at construction,
matching "the gauge field ... must only be transfered once at the
beginning of a solve".
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.comm.grid import ProcessGrid
from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommLog
from repro.dirac.base import BoundarySpec, LatticeOperator, PERIODIC
from repro.dirac.staggered import AsqtadOperator, NaiveStaggeredOperator
from repro.dirac.wilson import WilsonCloverOperator
from repro.dirac.clover import build_clover_field
from repro.gauge.asqtad import AsqtadLinks, build_asqtad_links
from repro.lattice.fields import GaugeField
from repro.multigpu.halo import HaloExchanger
from repro.multigpu.layout import local_boundary as _local_boundary
from repro.multigpu.partition import BlockPartition
from repro.multigpu.rank_op import _warn_use_split, fused_apply, split_apply
from repro.util.counters import record, record_operator


class DistributedOperator:
    """A Dirac operator executing across the virtual GPU cluster."""

    def __init__(
        self,
        partition: BlockPartition,
        exchanger: HaloExchanger,
        local_ops: list[LatticeOperator],
        name: str,
        flops_per_site: int,
        nspin: int,
    ):
        if len(local_ops) != partition.n_ranks:
            raise ValueError("one local operator per rank required")
        self.partition = partition
        self.exchanger = exchanger
        self.local_ops = local_ops
        self.name = name
        self.flops_per_site = flops_per_site
        self.nspin = nspin
        # ``"split"`` routes ``apply`` through the interior/exterior
        # kernel decomposition (the execution shape the paper actually
        # schedules, and the one whose spans a trace should show) instead
        # of the fused single-stencil path.  Both agree to rounding.
        self.schedule = "fused"

    @property
    def use_split(self) -> bool:
        """Deprecated alias for ``schedule == "split"``."""
        _warn_use_split("DistributedOperator")
        return self.schedule == "split"

    @use_split.setter
    def use_split(self, value: bool) -> None:
        _warn_use_split("DistributedOperator")
        self.schedule = "split" if value else "fused"

    # ------------------------------------------------------------------
    # constructors for each discretization
    # ------------------------------------------------------------------
    @classmethod
    def wilson_clover(
        cls,
        gauge: GaugeField,
        mass: float,
        csw: float,
        grid: ProcessGrid,
        boundary: BoundarySpec = PERIODIC,
        mailbox: Mailbox | None = None,
        log: CommLog | None = None,
        halo_precision=None,
        kernel: str = "auto",
        use_projection: bool | None = None,
    ) -> "DistributedOperator":
        if use_projection is not None:
            warnings.warn(
                "DistributedOperator.wilson_clover(use_projection=...) is "
                "deprecated. use kernel='numpy' (use_projection=True) or "
                "kernel='numpy_ref' (use_projection=False)",
                DeprecationWarning,
                stacklevel=2,
            )
            if kernel == "auto":
                kernel = "numpy" if use_projection else "numpy_ref"
        partition = BlockPartition(gauge.geometry, grid)
        exchanger = HaloExchanger(
            partition, depth=1, boundary=boundary, mailbox=mailbox, log=log,
            precision=halo_precision, site_axes=2,
        )
        local_bc = _local_boundary(boundary, grid.partitioned_dims)
        # One-time gauge ghost exchange.
        local_links = partition.split(gauge.data, lead=1)
        padded_links = exchanger.exchange_gauge(local_links)
        # The clover field is built globally (its leaves cross block
        # boundaries) and scattered; ghost sites keep zero clover, which is
        # harmless because ghost outputs are discarded.
        padded_clover = None
        if csw != 0.0:
            clover = build_clover_field(gauge, csw)
            local_clover = partition.split(clover)
            padded_clover = []
            for rank, block in enumerate(local_clover):
                shape = (
                    tuple(reversed(exchanger.padded_dims)) + block.shape[4:]
                )
                pad = np.zeros(shape, dtype=block.dtype)
                pad[exchanger.interior_slices()] = block
                padded_clover.append(pad)
        local_ops: list[LatticeOperator] = []
        for rank in range(partition.n_ranks):
            local_gauge = GaugeField(exchanger.padded_geometry, padded_links[rank])
            local_ops.append(
                WilsonCloverOperator(
                    local_gauge,
                    mass=mass,
                    csw=csw,
                    boundary=local_bc,
                    clover=None if padded_clover is None else padded_clover[rank],
                    kernel=kernel,
                )
            )
        proto = local_ops[0]
        return cls(
            partition, exchanger, local_ops, proto.name, proto.flops_per_site, 4
        )

    @classmethod
    def asqtad(
        cls,
        source: "GaugeField | AsqtadLinks",
        mass: float,
        grid: ProcessGrid,
        boundary: BoundarySpec = PERIODIC,
        u0: float = 1.0,
        mailbox: Mailbox | None = None,
        log: CommLog | None = None,
        halo_precision=None,
        kernel: str = "auto",
    ) -> "DistributedOperator":
        links = (
            build_asqtad_links(source, u0=u0)
            if isinstance(source, GaugeField)
            else source
        )
        partition = BlockPartition(links.geometry, grid)
        # The 3-hop Naik term needs depth-3 ghosts — the "decreased locality
        # of the asqtad operator" that makes its strong scaling harder.
        exchanger = HaloExchanger(
            partition, depth=3, boundary=boundary, mailbox=mailbox, log=log,
            precision=halo_precision, site_axes=1,
        )
        local_bc = _local_boundary(boundary, grid.partitioned_dims)
        padded_fat = exchanger.exchange_gauge(partition.split(links.fat, lead=1))
        padded_long = exchanger.exchange_gauge(partition.split(links.long, lead=1))
        local_ops = []
        for rank in range(partition.n_ranks):
            local_links = AsqtadLinks(
                geometry=exchanger.padded_geometry,
                fat=padded_fat[rank],
                long=padded_long[rank],
            )
            local_ops.append(
                AsqtadOperator(
                    local_links,
                    mass=mass,
                    boundary=local_bc,
                    origin=exchanger.padded_origin(rank),
                    kernel=kernel,
                )
            )
        proto = local_ops[0]
        return cls(
            partition, exchanger, local_ops, proto.name, proto.flops_per_site, 1
        )

    @classmethod
    def naive_staggered(
        cls,
        gauge: GaugeField,
        mass: float,
        grid: ProcessGrid,
        boundary: BoundarySpec = PERIODIC,
        mailbox: Mailbox | None = None,
        log: CommLog | None = None,
        kernel: str = "auto",
    ) -> "DistributedOperator":
        partition = BlockPartition(gauge.geometry, grid)
        exchanger = HaloExchanger(
            partition, depth=1, boundary=boundary, mailbox=mailbox, log=log
        )
        local_bc = _local_boundary(boundary, grid.partitioned_dims)
        padded = exchanger.exchange_gauge(partition.split(gauge.data, lead=1))
        local_ops = []
        for rank in range(partition.n_ranks):
            local_gauge = GaugeField(exchanger.padded_geometry, padded[rank])
            local_ops.append(
                NaiveStaggeredOperator(
                    local_gauge,
                    mass=mass,
                    boundary=local_bc,
                    origin=exchanger.padded_origin(rank),
                    kernel=kernel,
                )
            )
        proto = local_ops[0]
        return cls(
            partition, exchanger, local_ops, proto.name, proto.flops_per_site, 1
        )

    # ------------------------------------------------------------------
    # application paths
    # ------------------------------------------------------------------
    def _field_lead(self, xs: list[np.ndarray]) -> int:
        """Leading batch axes (0 or 1) of the per-rank blocks: batched
        multi-RHS fields are ``(B,) + local lattice + site`` arrays."""
        expected = 4 + (2 if self.nspin == 4 else 1)
        extra = xs[0].ndim - expected
        if extra in (0, 1):
            return extra
        raise ValueError(
            f"dist_{self.name} expects local field ndim {expected} "
            f"(or +1 batch axis), got shape {xs[0].shape}"
        )

    def _record(self, batch: int = 1) -> None:
        record_operator(f"dist_{self.name}")
        record(flops=self.flops_per_site * self.partition.geometry.volume * batch)

    def apply(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        """Fused path: exchange ghosts, one local stencil per rank
        (or the split path under ``schedule = "split"``)."""
        if self.schedule == "split":
            return self.apply_split(xs)
        lead = self._field_lead(xs)
        self._record(batch=xs[0].shape[0] if lead else 1)
        padded = self.exchanger.exchange_spinor(xs, lead=lead)
        return [
            fused_apply(op, self.exchanger, pad, lead, rank)
            for rank, (op, pad) in enumerate(zip(self.local_ops, padded))
        ]

    def apply_dagger(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        lead = self._field_lead(xs)
        self._record(batch=xs[0].shape[0] if lead else 1)
        padded = self.exchanger.exchange_spinor(xs, lead=lead)
        return [
            fused_apply(op, self.exchanger, pad, lead, rank, dagger=True)
            for rank, (op, pad) in enumerate(zip(self.local_ops, padded))
        ]

    def apply_split(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        """Interior/exterior kernel path (Sec. 6.2).

        The interior kernel computes every contribution available without
        ghost data (including the diagonal/clover terms); each partitioned
        dimension's exterior kernel then adds the hopping contributions
        sourced from that dimension's ghost zones.  Sites on corners
        receive updates from several exterior kernels, reproducing the
        data dependency the paper serializes the exterior kernels over.
        """
        lead = self._field_lead(xs)
        self._record(batch=xs[0].shape[0] if lead else 1)
        padded = self.exchanger.exchange_spinor(xs, lead=lead)
        return [
            split_apply(op, self.exchanger, pad, lead, rank)
            for rank, (op, pad) in enumerate(zip(self.local_ops, padded))
        ]

    def __call__(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        return self.apply(xs)

    # ------------------------------------------------------------------
    def normal(self) -> "DistributedNormalOperator":
        return DistributedNormalOperator(self)

    def scatter(self, global_array: np.ndarray) -> list[np.ndarray]:
        expected = 4 + (2 if self.nspin == 4 else 1)
        lead = global_array.ndim - expected
        return self.partition.split(global_array, lead=lead)

    def gather(self, xs: list[np.ndarray]) -> np.ndarray:
        return self.partition.assemble(xs, lead=self._field_lead(xs))


class DistributedNormalOperator:
    """``M^+ M (+ sigma)`` on distributed fields (two halo exchanges)."""

    def __init__(self, base: DistributedOperator, sigma: float = 0.0):
        self.base = base
        self.sigma = float(sigma)
        self.name = f"dist_{base.name}_normal"

    def apply(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        out = self.base.apply_dagger(self.base.apply(xs))
        if self.sigma:
            out = [o + self.sigma * x for o, x in zip(out, xs)]
        return out

    def shifted(self, sigma: float) -> "DistributedNormalOperator":
        return DistributedNormalOperator(self.base, self.sigma + sigma)

    def __call__(self, xs: list[np.ndarray]) -> list[np.ndarray]:
        return self.apply(xs)
