"""Splitting the global lattice into per-rank sub-volumes.

"Upon partitioning the lattice each GPU is assigned a 4-dimensional
subvolume that is bounded by at most eight 3-dimensional faces" (Sec. 6.1).
A :class:`BlockPartition` binds a :class:`~repro.lattice.geometry.Geometry`
to a :class:`~repro.comm.grid.ProcessGrid` and provides the array slicing
to scatter/gather fields, plus the per-rank origins the staggered phases
and ghost layout need.
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.comm.grid import ProcessGrid
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import Geometry, axis_of_mu


class BlockPartition:
    """A division of the global lattice into equal rectangular blocks."""

    def __init__(self, geometry: Geometry, grid: ProcessGrid):
        self.geometry = geometry
        self.grid = grid
        local = []
        for mu in range(4):
            n, p = geometry.dims[mu], grid.dims[mu]
            if n % p:
                raise ValueError(
                    f"lattice extent {n} (dir {mu}) not divisible by grid {p}"
                )
            if (n // p) % 2 or n // p < 2:
                raise ValueError(
                    f"local extent {n // p} (dir {mu}) must be even and >= 2"
                )
            local.append(n // p)
        #: Local block extents (nx, ny, nz, nt).
        self.local_dims = tuple(local)
        self.local_geometry = Geometry(self.local_dims)

    @property
    def n_ranks(self) -> int:
        return self.grid.size

    @cached_property
    def local_volume(self) -> int:
        return self.local_geometry.volume

    def origin(self, rank: int) -> tuple[int, int, int, int]:
        """Global (x, y, z, t) coordinate of the block's first site."""
        coords = self.grid.coords(rank)
        return tuple(coords[mu] * self.local_dims[mu] for mu in range(4))

    def slices(self, rank: int, lead: int = 0) -> tuple[slice, ...]:
        """Array slicing tuple selecting this rank's block.

        ``lead`` extra leading axes are passed through (1 for gauge fields,
        whose arrays start with the direction axis).
        """
        coords = self.grid.coords(rank)
        site_slices = [slice(None)] * 4
        for mu in range(4):
            start = coords[mu] * self.local_dims[mu]
            site_slices[axis_of_mu(mu)] = slice(start, start + self.local_dims[mu])
        return (slice(None),) * lead + tuple(site_slices)

    # ------------------------------------------------------------------
    # scatter / gather
    # ------------------------------------------------------------------
    def split(self, array: np.ndarray, lead: int = 0) -> list[np.ndarray]:
        """Scatter a global array into per-rank blocks (copies)."""
        self._check_global(array, lead)
        return [
            np.ascontiguousarray(array[self.slices(rank, lead)])
            for rank in self.grid.all_ranks()
        ]

    def assemble(self, locals_: list[np.ndarray], lead: int = 0) -> np.ndarray:
        """Gather per-rank blocks back into one global array."""
        if len(locals_) != self.n_ranks:
            raise ValueError(
                f"need {self.n_ranks} local blocks, got {len(locals_)}"
            )
        sample = locals_[0]
        global_shape = (
            sample.shape[:lead]
            + self.geometry.shape
            + sample.shape[lead + 4 :]
        )
        out = np.empty(global_shape, dtype=sample.dtype)
        for rank, block in enumerate(locals_):
            out[self.slices(rank, lead)] = block
        return out

    def split_gauge(self, gauge: GaugeField) -> list[GaugeField]:
        """Scatter a gauge field into per-rank local gauge fields."""
        return [
            GaugeField(self.local_geometry, block)
            for block in self.split(gauge.data, lead=1)
        ]

    def _check_global(self, array: np.ndarray, lead: int) -> None:
        if array.shape[lead : lead + 4] != self.geometry.shape:
            raise ValueError(
                f"array site shape {array.shape[lead:lead + 4]} does not "
                f"match lattice {self.geometry.shape}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BlockPartition({self.geometry!r} over {self.grid})"
