"""Gauge-configuration and spinor-field I/O.

Production lattice workflows are built around configuration files: the
generation phase writes an ensemble, the analysis phase reads it back
(Sec. 2).  This module provides a compact NumPy (.npz) container with the
geometry and provenance metadata needed to reload fields safely; it plays
the role the binary ILDG/SciDAC formats play for Chroma and MILC.
"""

from __future__ import annotations

import json
import os

import numpy as np

from repro.lattice.fields import GaugeField, SpinorField
from repro.lattice.geometry import Geometry

FORMAT_VERSION = 1


def _metadata(kind: str, geometry: Geometry, extra: dict | None) -> str:
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "dims": list(geometry.dims),
    }
    if extra:
        meta["extra"] = extra
    return json.dumps(meta)


def _read_metadata(archive, expected_kind: str) -> dict:
    if "metadata" not in archive:
        raise ValueError("not a repro field file (no metadata record)")
    meta = json.loads(str(archive["metadata"]))
    if meta.get("format_version") != FORMAT_VERSION:
        raise ValueError(
            f"unsupported format version {meta.get('format_version')}"
        )
    if meta.get("kind") != expected_kind:
        raise ValueError(
            f"file contains a {meta.get('kind')!r}, expected {expected_kind!r}"
        )
    return meta


def save_gauge(path: "str | os.PathLike", gauge: GaugeField,
               extra: dict | None = None) -> None:
    """Write a gauge configuration (with geometry + optional provenance,
    e.g. ``{"beta": 5.7, "sweeps": 200}``)."""
    np.savez_compressed(
        path,
        metadata=_metadata("gauge", gauge.geometry, extra),
        links=gauge.data,
    )


def load_gauge(path: "str | os.PathLike") -> tuple[GaugeField, dict]:
    """Read a gauge configuration; returns (field, extra-metadata)."""
    with np.load(path, allow_pickle=False) as archive:
        meta = _read_metadata(archive, "gauge")
        geometry = Geometry(tuple(meta["dims"]))
        gauge = GaugeField(geometry, np.ascontiguousarray(archive["links"]))
    return gauge, meta.get("extra", {})


def save_spinor(path: "str | os.PathLike", spinor: SpinorField,
                extra: dict | None = None) -> None:
    """Write a spinor field (propagator source/solution)."""
    np.savez_compressed(
        path,
        metadata=_metadata("spinor", spinor.geometry, dict(
            nspin=spinor.nspin, **(extra or {})
        )),
        data=spinor.data,
    )


def load_spinor(path: "str | os.PathLike") -> tuple[SpinorField, dict]:
    with np.load(path, allow_pickle=False) as archive:
        meta = _read_metadata(archive, "spinor")
        geometry = Geometry(tuple(meta["dims"]))
        extra = dict(meta.get("extra", {}))
        nspin = int(extra.pop("nspin", 4))
        spinor = SpinorField(
            geometry, np.ascontiguousarray(archive["data"]), nspin=nspin
        )
    return spinor, extra
