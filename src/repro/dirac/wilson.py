"""The Wilson-clover Dirac operator, Eq. (2) of the paper:

``M = -1/2 D + (4 + m + A)``

with the nearest-neighbor stencil

``D x(x) = sum_mu [ P^-_mu U_mu(x) x(x+mu) + P^+_mu U_mu(x-mu)^+ x(x-mu) ]``

acting on 4-spin x 3-color fields.  ``M`` is non-Hermitian but
gamma5-Hermitian (``M^+ = g5 M g5``), which supplies the dagger.

Dslash execution is delegated to a pluggable kernel backend
(:mod:`repro.kernels`), selected by the ``kernel=`` parameter:

* ``"numpy"`` — the **spin-projected fast path** (the default ``"auto"``
  resolution when no compiled tier is installed): each ``P^{+-}_mu = 1
  +- gamma_mu`` is rank 2, so the hop is computed as project -> SU(3)
  multiply on a *half-spinor* (2 spin components) -> reconstruct,
  exactly the structure QUDA's kernels exploit (Sec. 4;
  arXiv:1011.0024).  This halves the SU(3) matvec work and the data
  shifted between neighbor sites.  Daggered links are precomputed once
  per operator, not per application.
* ``"numpy_ref"`` — the seed's full 4-spin formulation, kept verbatim as
  the numerical baseline the equivalence tests and the hot-path
  regression benchmark compare against (the old ``use_projection=False``).
* ``"numba"`` — opt-in compiled site loops, when numba is installed.

All tiers agree to rounding (they evaluate the same exact contraction
in a different association order).
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.dirac import base
from repro.dirac.base import (
    BoundarySpec,
    LatticeOperator,
    PERIODIC,
    link_apply,
    link_apply_cols,
)
from repro.dirac.clover import apply_clover, build_clover_field
from repro.kernels import resolve_kernel
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import axis_of_mu
from repro.linalg import su3
from repro.linalg.gamma import (
    GAMMA5,
    apply_spin_matrix,
    projector,
    projector_tables,
)
from repro.util.counters import record, record_operator, timed

#: Permutation between the spin-major per-site flat index ``s*3 + c`` the
#: clover field is stored in and the color-major index ``c*4 + s`` of the
#: batched GEMM layout.
_COLOR_MAJOR_PERM = np.array([s * 3 + c for c in range(3) for s in range(4)])


def _to_batch_last(x: np.ndarray) -> np.ndarray:
    """Batch-first ``(B, X, Y, Z, T, 4, 3)`` -> contiguous color-major
    batch-last ``(X, Y, Z, T, 3, 4, B)``.

    The batched dslash runs in this internal layout so the per-site SU(3)
    multiply becomes one GEMM per direction — ``U(x) @ H(x)`` with the
    (spin, batch) pairs as the ``2B`` columns of ``H`` — instead of 2B
    strided broadcast passes.  The GEMM reuses each link for all columns
    while it is in registers, which is exactly the arithmetic-intensity
    gain multi-RHS batching buys on a GPU (Sec. 7 of the paper); here it
    buys BLAS-3 efficiency instead of broadcast-chain memory traffic.
    """
    return np.ascontiguousarray(x.transpose(1, 2, 3, 4, 6, 5, 0))


def _from_batch_last(xt: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_to_batch_last`."""
    return np.ascontiguousarray(xt.transpose(6, 0, 1, 2, 3, 5, 4))


class WilsonCloverOperator(LatticeOperator):
    """Wilson (csw = 0) or Wilson-clover (csw > 0) matrix.

    Parameters
    ----------
    gauge:
        The gauge configuration.
    mass:
        Bare quark mass parameter m in Eq. (2); smaller (more negative)
        mass means a worse-conditioned matrix.
    csw:
        Clover coefficient; 0 disables the clover term.
    boundary:
        Per-direction fermion boundary conditions; ``"zero"`` entries give
        the Dirichlet-cut operator used as a Schwarz block.
    clover:
        Optional precomputed clover field (reused by ``with_boundary``;
        the clover term is site-diagonal so it is unaffected by cuts).
    kernel:
        Kernel backend name for the dslash (``"auto"`` resolves through
        :func:`repro.kernels.resolve_kernel`; see :mod:`repro.kernels`).
    use_projection:
        Deprecated — use ``kernel="numpy"`` (True) / ``kernel="numpy_ref"``
        (False).
    """

    nspin = 4

    def __init__(
        self,
        gauge: GaugeField,
        mass: float = 0.0,
        csw: float = 0.0,
        boundary: BoundarySpec = PERIODIC,
        clover: np.ndarray | None = None,
        kernel: str = "auto",
        use_projection: bool | None = None,
        _link_cache: "tuple[np.ndarray, np.ndarray] | None" = None,
    ):
        super().__init__(gauge.geometry)
        self.gauge = gauge
        self.mass = float(mass)
        self.csw = float(csw)
        self.boundary = boundary
        if use_projection is not None:
            warnings.warn(
                "WilsonCloverOperator(use_projection=...) is deprecated. "
                "use kernel='numpy' (use_projection=True) or "
                "kernel='numpy_ref' (use_projection=False)",
                DeprecationWarning,
                stacklevel=2,
            )
            if kernel == "auto":
                kernel = "numpy" if use_projection else "numpy_ref"
        self._backend = resolve_kernel(kernel, operator="wilson")
        self.kernel = self._backend.name
        if csw != 0.0 and clover is None:
            clover = build_clover_field(gauge, csw)
        self.clover = clover if csw != 0.0 else None
        self.name = "wilson_clover" if self.clover is not None else "wilson"
        self.flops_per_site = (
            base.WILSON_CLOVER_MATVEC_FLOPS
            if self.clover is not None
            else base.WILSON_MATVEC_FLOPS
        )
        # Spin projection matrices P^{-}_mu (forward hop) and P^{+}_mu
        # (backward).  In the paper's normalization P^{+-}_mu = 1 +- gamma_mu
        # (twice the idempotent projector), so that on the free field the
        # hopping term exactly cancels the Wilson "4" and a constant mode
        # has eigenvalue m.
        self._proj_fwd = [2.0 * projector(mu, -1) for mu in range(4)]
        self._proj_bwd = [2.0 * projector(mu, +1) for mu in range(4)]
        # Rank-2 (project/reconstruct) tables for the fast path.
        self._tab_fwd = [projector_tables(mu, -1) for mu in range(4)]
        self._tab_bwd = [projector_tables(mu, +1) for mu in range(4)]
        # Batched-path hop plan: the 8 (direction, orientation) hops in
        # (forward, backward) pairs, ordered so hops whose reconstruction
        # reads the half-spinor in order come first and hops that read it
        # reversed come last.  The grouping lets the batched kernel build
        # each group's lower spin block as ONE weighted sum over
        # contiguous slabs of the stacked hop buffer.
        ident, swapped = [], []
        for mu in range(4):
            pair = [(mu, self._tab_fwd[mu], -1), (mu, self._tab_bwd[mu], +1)]
            group = ident if self._tab_fwd[mu].source == slice(0, 2) else swapped
            group.extend(pair)
        self._hop_plan = ident + swapped
        self._n_ident = len(ident)
        # Reconstruction weights per hop, swapped-group rows pre-reversed
        # so both groups reduce to plain weighted slab sums.
        self._recon_weights = np.array(
            [
                tab.recon_coeff[::-1, 0] if i >= self._n_ident
                else tab.recon_coeff[:, 0]
                for i, (_, tab, _) in enumerate(self._hop_plan)
            ]
        )
        # Operator-level link caches, built lazily on first dslash (they
        # are boundary-independent, so ``with_boundary`` shares them).
        self._link_cols: np.ndarray | None = None
        self._link_dag_cols: np.ndarray | None = None
        if _link_cache is not None:
            self._link_cols, self._link_dag_cols = _link_cache
        # Batched-path caches: the stacked hop links for the GEMM dslash,
        # the site-diagonal matrices in the color-major site index, and
        # reusable field-sized scratch buffers keyed by (batch, dtype).
        self._link_stack: np.ndarray | None = None
        self._clover_cm: np.ndarray | None = None
        self._scratch: dict = {}

    @property
    def diagonal_coefficient(self) -> float:
        """The scalar 4 + m multiplying the identity in Eq. (2)."""
        return 4.0 + self.mass

    # ------------------------------------------------------------------
    def _link_caches(self) -> tuple[np.ndarray, np.ndarray]:
        """Column-layout links and daggered links, computed once per gauge.

        ``_link_cols[mu][..., b, a] = U_mu(x)_{ab}`` (i.e. ``U^T``) and
        ``_link_dag_cols[mu][..., b, a] = (U_mu(x)^+)_{ab} = conj(U)_{ba}``
        — the per-call ``su3.dagger`` of the reference path amortized into
        operator construction, in the contiguous-column layout
        :func:`repro.dirac.base.link_apply_cols` consumes.
        """
        if self._link_cols is None:
            u = self.gauge.data
            self._link_cols = np.ascontiguousarray(np.swapaxes(u, -1, -2))
            # (U^dagger)^T is plain elementwise conjugation of U.
            self._link_dag_cols = np.conj(u)
        return self._link_cols, self._link_dag_cols

    def _batched_link_stack(self) -> np.ndarray:
        """The ``(8,) + lattice + (3, 3)`` link stack driving the batched
        stencil as ONE stacked GEMM over all 8 hops.

        The batched kernel writes each hop's projected half-spinor
        *already shifted to the neighbor site* (a two-slice write costs
        the same as an aligned one), so forward slabs hold the plain
        ``U_mu(x)`` and backward slabs the pre-shifted dagger
        ``U_mu(x - mu)^+`` — after the GEMM every product is
        site-aligned and the accumulation needs no rolls at all.  The
        hop scale ``-1/2`` and the fermion boundary factor of the
        wrapping face (``-1`` antiperiodic, ``0`` Dirichlet) are folded
        into the link entries themselves.
        """
        if self._link_stack is None:
            slabs = []
            for mu, _, step in self._hop_plan:
                ax = axis_of_mu(mu)
                if step == -1:  # forward hop
                    mat = self.gauge.data[mu].copy()
                    # The shifted projection wraps h(0) around to the
                    # x_mu = N - 1 sites.
                    wrap_face = -1
                else:  # backward hop
                    mat = np.roll(
                        np.conj(np.swapaxes(self.gauge.data[mu], -1, -2)),
                        1,
                        axis=ax,
                    )
                    wrap_face = 0  # backward wrap lands on x_mu = 0
                bc = self.boundary[mu]
                if bc != "periodic":
                    face = [slice(None)] * mat.ndim
                    face[ax] = wrap_face
                    mat[tuple(face)] *= 0.0 if bc == "zero" else -1.0
                slabs.append(mat)
            self._link_stack = -0.5 * np.stack(slabs)
        return self._link_stack

    def _site_matrices_cm(self) -> np.ndarray:
        """Per-site ``(4 + m) I + A`` matrices re-indexed to the
        color-major layout of the batched path, so the whole site-diagonal
        term is one ``12 x 12 @ 12 x B`` GEMM with no field transpose."""
        if self._clover_cm is None:
            p = _COLOR_MAJOR_PERM
            cm = self.clover[..., p[:, None], p[None, :]]
            self._clover_cm = np.ascontiguousarray(
                cm + self.diagonal_coefficient * np.eye(12)
            )
        return self._clover_cm

    # ------------------------------------------------------------------
    def dslash(self, x: np.ndarray) -> np.ndarray:
        """The hopping term D of Eq. (2) (records its own tally entry)."""
        batch = self.batch_size(x)
        record_operator("wilson_dslash")
        record(
            flops=base.WILSON_DSLASH_FLOPS * self.geometry.volume * batch,
            bytes_moved=self.bytes_per_application(x.dtype, batch=batch),
        )
        return self._dslash(x)

    def _dslash(self, x: np.ndarray) -> np.ndarray:
        with timed("wilson_dslash", kind="dslash"):
            return self._backend.wilson_dslash(self, x)

    @property
    def use_projection(self) -> bool:
        """Deprecated alias for ``kernel != "numpy_ref"``."""
        warnings.warn(
            "WilsonCloverOperator.use_projection is deprecated. "
            "use kernel= (the .kernel attribute holds the resolved name)",
            DeprecationWarning,
            stacklevel=2,
        )
        return self.kernel != "numpy_ref"

    def _dslash_projected(self, x: np.ndarray) -> np.ndarray:
        """Spin-projected dslash: 8 half-spinor hops.

        Per direction and orientation: project to a half-spinor, shift it
        (half the data of a full-spinor shift — the same factor-of-two the
        multi-GPU code saves in halo traffic), apply the link to 2 spin
        components, and accumulate upper/lower spin blocks separately so
        the reconstruction is two scaled adds instead of a 4x2 matmul.

        Batched (multi-RHS) fields take the GEMM path of
        :meth:`_dslash_projected_bl`; it evaluates the same contraction in
        a different association order, so batched and single-RHS results
        agree to rounding rather than bit-for-bit.
        """
        geom = self.geometry
        lead = self.field_lead(x)
        if lead:
            bufs = self._batched_scratch(x.shape[0], x.dtype)
            xt, out = bufs["xt"], bufs["out"]
            xt[...] = x.transpose(1, 2, 3, 4, 6, 5, 0)
            out.fill(0.0)
            self._batched_hopping(xt, out[..., :2, :], out[..., 2:, :], bufs)
            out *= -2.0  # undo the -1/2 folded into the link stack
            return _from_batch_last(out)
        batched = False
        u_cols, udag_cols = self._link_caches()
        xu = x[..., :2, :]
        # Preallocated half-spinor scratch: at hot-loop volumes each
        # temporary is tens of MB, so reusing four buffers across the 8
        # hops (instead of ~7 fresh allocations per hop) removes most of
        # the allocator/page-fault cost of the stencil.
        h = np.empty_like(xu)
        uh = np.empty_like(xu)
        tmp = np.empty_like(xu)
        upper = np.zeros_like(xu)
        lower = np.zeros_like(xu)
        for mu in range(4):
            bc = self.boundary[mu]
            for tab, cols, fwd in (
                (self._tab_fwd[mu], u_cols[mu], True),
                (self._tab_bwd[mu], udag_cols[mu], False),
            ):
                # Project: h = x_upper + coeff * x_lower (views, one pass).
                np.multiply(tab.project_coeff, x[..., tab.lower, :], out=tmp)
                np.add(xu, tmp, out=h)
                if fwd:
                    # U_mu(x) [P x](x+mu): shift first, then multiply.
                    sh = geom.shift(h, mu, +1, boundary=bc, lead=lead)
                    link_apply_cols(cols, sh, out=uh, tmp=tmp, batched=batched)
                else:
                    # U_mu(x-mu)^+ [P x](x-mu): multiply, then shift.
                    link_apply_cols(cols, h, out=uh, tmp=tmp, batched=batched)
                    uh = geom.shift(uh, mu, -1, boundary=bc, lead=lead)
                upper += uh
                np.multiply(tab.recon_coeff, uh[..., tab.source, :], out=tmp)
                lower += tmp
        out = np.empty_like(x)
        out[..., :2, :] = upper
        out[..., 2:, :] = lower
        return out

    def _batched_scratch(self, nb: int, dtype) -> dict:
        """Reusable batched-path buffers, allocated once per (batch,
        dtype): repeatedly allocating the ~8x-field-size hop slabs costs
        more in page faults than the arithmetic they carry."""
        key = (int(nb), np.dtype(dtype))
        bufs = self._scratch.get(key)
        if bufs is None:
            lat = self.geometry.shape
            bufs = {
                "xt": np.empty(lat + (3, 4, nb), dtype),
                "out": np.empty(lat + (3, 4, nb), dtype),
                "h": np.empty((8,) + lat + (3, 2 * nb), dtype),
                "uh": np.empty((8,) + lat + (3, 2 * nb), dtype),
                "p": np.empty(lat + (3, 2, nb), dtype),
            }
            self._scratch[key] = bufs
        return bufs

    def _batched_hopping(
        self, xt: np.ndarray, ou: np.ndarray, ol: np.ndarray, bufs: dict
    ) -> None:
        """Accumulate the scaled hopping term ``-1/2 D x`` into the
        upper/lower spin blocks ``ou``/``ol`` of a batched output.

        Operates in the color-major batch-last layout ``(X, Y, Z, T, 3, 4,
        B)`` of :func:`_to_batch_last`: the 8 spin projections fill one
        half-spinor slab buffer whose ``(spin, batch)`` pairs are the
        ``2B`` GEMM columns, and the link stack of
        :meth:`_batched_link_stack` (scale and boundary factors
        pre-folded) multiplies all slabs in a single stacked ``matmul``.
        Each projection is written *pre-shifted to the hop's neighbor
        site* — a two-slice write along the hop axis, no more data than
        an aligned one — so every GEMM product is already site-aligned
        and the accumulation is roll-free.
        """
        plan = self._hop_plan
        links = self._batched_link_stack()
        xu = xt[..., :2, :]
        nb = xt.shape[-1]
        lat = xt.shape[:4]
        h, p = bufs["h"], bufs["p"]
        hv = h.reshape((8,) + lat + (3, 2, nb))
        for k in range(0, 8, 2):
            # Forward/backward projections of the same direction share the
            # phase product: h_fwd(x) = (x_u + p)(x + mu) and
            # h_bwd(x) = (x_u - p)(x - mu).  The (2, 1) spin coefficients
            # broadcast over the trailing batch axis, and the shifted
            # destinations make the wrap faces line up with the boundary
            # factors folded into the link stack.
            mu = plan[k][0]
            tab = plan[k][1]
            np.multiply(tab.project_coeff, xt[..., tab.lower, :], out=p)
            pre = (slice(None),) * axis_of_mu(mu)
            lo = pre + (slice(None, -1),)
            hi = pre + (slice(-1, None),)
            first = pre + (slice(None, 1),)
            rest = pre + (slice(1, None),)
            np.add(xu[rest], p[rest], out=hv[k][lo])
            np.add(xu[first], p[first], out=hv[k][hi])
            np.subtract(xu[lo], p[lo], out=hv[k + 1][rest])
            np.subtract(xu[hi], p[hi], out=hv[k + 1][first])
        uhv = np.matmul(links, h, out=bufs["uh"]).reshape(hv.shape)
        ou += uhv.sum(axis=0)
        # Lower spin block: each hop contributes its reconstruction phases
        # times an (optionally half-spinor-reversed) slab.  With the plan
        # grouped by reversal and the reversed rows' weights pre-flipped,
        # that is one weighted slab sum per group.
        na = self._n_ident
        w = self._recon_weights
        ol += np.einsum("kt,k...tb->...tb", w[:na], uhv[:na])
        ol += np.einsum("kt,k...tb->...tb", w[na:], uhv[na:])[..., ::-1, :]

    def _apply_batched(self, x: np.ndarray) -> np.ndarray:
        """Full batched matrix application fused in the batch-last layout:
        one layout round-trip covers the diagonal, hopping, and clover
        terms (the site-diagonal GEMM uses the color-major matrices of
        :meth:`_site_matrices_cm`)."""
        bufs = self._batched_scratch(x.shape[0], x.dtype)
        xt, out = bufs["xt"], bufs["out"]
        xt[...] = x.transpose(1, 2, 3, 4, 6, 5, 0)
        if self.clover is not None:
            flat_shape = xt.shape[:4] + (12, xt.shape[-1])
            np.matmul(
                self._site_matrices_cm(),
                xt.reshape(flat_shape),
                out=out.reshape(flat_shape),
            )
        else:
            np.multiply(self.diagonal_coefficient, xt, out=out)
        with timed("wilson_dslash", kind="dslash"):
            self._batched_hopping(xt, out[..., :2, :], out[..., 2:, :], bufs)
        return _from_batch_last(out)

    def _dslash_reference(self, x: np.ndarray) -> np.ndarray:
        """The seed's full 4-spin dslash, kept as the numerical baseline."""
        geom = self.geometry
        lead = self.field_lead(x)
        batched = bool(lead)
        out = np.zeros_like(x)
        for mu in range(4):
            bc = self.boundary[mu]
            u = self.gauge.data[mu]
            fwd = link_apply(
                u, geom.shift(x, mu, +1, boundary=bc, lead=lead), batched=batched
            )
            out += np.einsum("st,...tc->...sc", self._proj_fwd[mu], fwd)
            bwd = geom.shift(
                link_apply(su3.dagger(u), x, batched=batched),
                mu, -1, boundary=bc, lead=lead,
            )
            out += np.einsum("st,...tc->...sc", self._proj_bwd[mu], bwd)
        return out

    def _apply(self, x: np.ndarray) -> np.ndarray:
        if self._backend.fuses_batched_wilson_apply and self.field_lead(x):
            return self._apply_batched(x)
        out = self.diagonal_coefficient * x - 0.5 * self._dslash(x)
        if self.clover is not None:
            out += apply_clover(self.clover, x)
        return out

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        # gamma5-Hermiticity: M^+ = g5 M g5 (holds for real +-1/0 boundary
        # factors, i.e. all supported BoundarySpec entries).
        g5x = apply_spin_matrix(GAMMA5, x)
        return apply_spin_matrix(GAMMA5, self._apply(g5x))

    def apply_site_diagonal(self, x: np.ndarray) -> np.ndarray:
        """The site-diagonal part (4 + m + A) x (used by even-odd forms and
        the interior/exterior kernel split)."""
        out = self.diagonal_coefficient * x
        if self.clover is not None:
            out = out + apply_clover(self.clover, x)
        return out

    # Backwards-compatible alias used by the even-odd module.
    apply_diagonal = apply_site_diagonal

    def apply_hopping(self, x: np.ndarray) -> np.ndarray:
        """The hopping part, ``-1/2 D x``."""
        return -0.5 * self._dslash(x)

    # ------------------------------------------------------------------
    def with_boundary(self, boundary: BoundarySpec) -> "WilsonCloverOperator":
        link_cache = None
        if self._link_cols is not None:
            link_cache = (self._link_cols, self._link_dag_cols)
        return WilsonCloverOperator(
            self.gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=boundary,
            clover=self.clover,
            kernel=self.kernel,
            _link_cache=link_cache,
        )

    def restrict_to_block(self, partition, rank: int) -> "WilsonCloverOperator":
        """The Dirichlet-cut operator on one rank's sub-domain — the block
        system of the additive Schwarz preconditioner (Sec. 8.1).

        The local gauge links (and the site-diagonal clover field, which is
        unaffected by the cut) are sliced from the global fields; the
        partitioned directions get zero boundaries, the rest keep the
        global condition.  Link caches are rebuilt for the sliced gauge.
        """
        local_gauge = GaugeField(
            partition.local_geometry,
            np.ascontiguousarray(self.gauge.data[partition.slices(rank, lead=1)]),
        )
        local_clover = None
        if self.clover is not None:
            local_clover = np.ascontiguousarray(
                self.clover[partition.slices(rank)]
            )
        local_bc = self.boundary.with_dirichlet(partition.grid.partitioned_dims)
        return WilsonCloverOperator(
            local_gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=local_bc,
            clover=local_clover,
            kernel=self.kernel,
        )
