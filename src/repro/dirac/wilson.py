"""The Wilson-clover Dirac operator, Eq. (2) of the paper:

``M = -1/2 D + (4 + m + A)``

with the nearest-neighbor stencil

``D x(x) = sum_mu [ P^-_mu U_mu(x) x(x+mu) + P^+_mu U_mu(x-mu)^+ x(x-mu) ]``

acting on 4-spin x 3-color fields.  ``M`` is non-Hermitian but
gamma5-Hermitian (``M^+ = g5 M g5``), which supplies the dagger.

Two dslash execution paths are provided:

* the **spin-projected fast path** (default): each ``P^{+-}_mu = 1 +-
  gamma_mu`` is rank 2, so the hop is computed as project -> SU(3) multiply
  on a *half-spinor* (2 spin components) -> reconstruct, exactly the
  structure QUDA's kernels exploit (Sec. 4; arXiv:1011.0024).  This halves
  the SU(3) matvec work and the data shifted between neighbor sites.
  Daggered links are precomputed once per operator, not per application.
* the **reference path** (``use_projection=False``): the seed's full
  4-spin formulation, kept verbatim as the numerical baseline the
  equivalence tests and the hot-path regression benchmark compare against.

Both paths agree to machine precision (they evaluate the same exact
contraction in a different association order).
"""

from __future__ import annotations

import numpy as np

from repro.dirac import base
from repro.dirac.base import (
    BoundarySpec,
    LatticeOperator,
    PERIODIC,
    link_apply,
    link_apply_cols,
)
from repro.dirac.clover import apply_clover, build_clover_field
from repro.lattice.fields import GaugeField
from repro.linalg import su3
from repro.linalg.gamma import (
    GAMMA5,
    apply_spin_matrix,
    projector,
    projector_tables,
)
from repro.util.counters import record, record_operator, timed


class WilsonCloverOperator(LatticeOperator):
    """Wilson (csw = 0) or Wilson-clover (csw > 0) matrix.

    Parameters
    ----------
    gauge:
        The gauge configuration.
    mass:
        Bare quark mass parameter m in Eq. (2); smaller (more negative)
        mass means a worse-conditioned matrix.
    csw:
        Clover coefficient; 0 disables the clover term.
    boundary:
        Per-direction fermion boundary conditions; ``"zero"`` entries give
        the Dirichlet-cut operator used as a Schwarz block.
    clover:
        Optional precomputed clover field (reused by ``with_boundary``;
        the clover term is site-diagonal so it is unaffected by cuts).
    use_projection:
        Select the spin-projected fast dslash path (default) or the
        reference full-spinor path.
    """

    nspin = 4

    def __init__(
        self,
        gauge: GaugeField,
        mass: float = 0.0,
        csw: float = 0.0,
        boundary: BoundarySpec = PERIODIC,
        clover: np.ndarray | None = None,
        use_projection: bool = True,
        _link_cache: "tuple[np.ndarray, np.ndarray] | None" = None,
    ):
        super().__init__(gauge.geometry)
        self.gauge = gauge
        self.mass = float(mass)
        self.csw = float(csw)
        self.boundary = boundary
        self.use_projection = bool(use_projection)
        if csw != 0.0 and clover is None:
            clover = build_clover_field(gauge, csw)
        self.clover = clover if csw != 0.0 else None
        self.name = "wilson_clover" if self.clover is not None else "wilson"
        self.flops_per_site = (
            base.WILSON_CLOVER_MATVEC_FLOPS
            if self.clover is not None
            else base.WILSON_MATVEC_FLOPS
        )
        # Spin projection matrices P^{-}_mu (forward hop) and P^{+}_mu
        # (backward).  In the paper's normalization P^{+-}_mu = 1 +- gamma_mu
        # (twice the idempotent projector), so that on the free field the
        # hopping term exactly cancels the Wilson "4" and a constant mode
        # has eigenvalue m.
        self._proj_fwd = [2.0 * projector(mu, -1) for mu in range(4)]
        self._proj_bwd = [2.0 * projector(mu, +1) for mu in range(4)]
        # Rank-2 (project/reconstruct) tables for the fast path.
        self._tab_fwd = [projector_tables(mu, -1) for mu in range(4)]
        self._tab_bwd = [projector_tables(mu, +1) for mu in range(4)]
        # Operator-level link caches, built lazily on first dslash (they
        # are boundary-independent, so ``with_boundary`` shares them).
        self._link_cols: np.ndarray | None = None
        self._link_dag_cols: np.ndarray | None = None
        if _link_cache is not None:
            self._link_cols, self._link_dag_cols = _link_cache

    @property
    def diagonal_coefficient(self) -> float:
        """The scalar 4 + m multiplying the identity in Eq. (2)."""
        return 4.0 + self.mass

    # ------------------------------------------------------------------
    def _link_caches(self) -> tuple[np.ndarray, np.ndarray]:
        """Column-layout links and daggered links, computed once per gauge.

        ``_link_cols[mu][..., b, a] = U_mu(x)_{ab}`` (i.e. ``U^T``) and
        ``_link_dag_cols[mu][..., b, a] = (U_mu(x)^+)_{ab} = conj(U)_{ba}``
        — the per-call ``su3.dagger`` of the reference path amortized into
        operator construction, in the contiguous-column layout
        :func:`repro.dirac.base.link_apply_cols` consumes.
        """
        if self._link_cols is None:
            u = self.gauge.data
            self._link_cols = np.ascontiguousarray(np.swapaxes(u, -1, -2))
            # (U^dagger)^T is plain elementwise conjugation of U.
            self._link_dag_cols = np.conj(u)
        return self._link_cols, self._link_dag_cols

    # ------------------------------------------------------------------
    def dslash(self, x: np.ndarray) -> np.ndarray:
        """The hopping term D of Eq. (2) (records its own tally entry)."""
        record_operator("wilson_dslash")
        record(
            flops=base.WILSON_DSLASH_FLOPS * self.geometry.volume,
            bytes_moved=self.bytes_per_application(x.dtype),
        )
        return self._dslash(x)

    def _dslash(self, x: np.ndarray) -> np.ndarray:
        with timed("wilson_dslash", kind="dslash"):
            if self.use_projection:
                return self._dslash_projected(x)
            return self._dslash_reference(x)

    def _dslash_projected(self, x: np.ndarray) -> np.ndarray:
        """Spin-projected dslash: 8 half-spinor hops.

        Per direction and orientation: project to a half-spinor, shift it
        (half the data of a full-spinor shift — the same factor-of-two the
        multi-GPU code saves in halo traffic), apply the link to 2 spin
        components, and accumulate upper/lower spin blocks separately so
        the reconstruction is two scaled adds instead of a 4x2 matmul.
        """
        geom = self.geometry
        u_cols, udag_cols = self._link_caches()
        xu = x[..., :2, :]
        # Preallocated half-spinor scratch: at hot-loop volumes each
        # temporary is tens of MB, so reusing four buffers across the 8
        # hops (instead of ~7 fresh allocations per hop) removes most of
        # the allocator/page-fault cost of the stencil.
        h = np.empty_like(xu)
        uh = np.empty_like(xu)
        tmp = np.empty_like(xu)
        upper = np.zeros_like(xu)
        lower = np.zeros_like(xu)
        for mu in range(4):
            bc = self.boundary[mu]
            for tab, cols, fwd in (
                (self._tab_fwd[mu], u_cols[mu], True),
                (self._tab_bwd[mu], udag_cols[mu], False),
            ):
                # Project: h = x_upper + coeff * x_lower (views, one pass).
                np.multiply(tab.project_coeff, x[..., tab.lower, :], out=tmp)
                np.add(xu, tmp, out=h)
                if fwd:
                    # U_mu(x) [P x](x+mu): shift first, then multiply.
                    sh = geom.shift(h, mu, +1, boundary=bc)
                    link_apply_cols(cols, sh, out=uh, tmp=tmp)
                else:
                    # U_mu(x-mu)^+ [P x](x-mu): multiply, then shift.
                    link_apply_cols(cols, h, out=uh, tmp=tmp)
                    uh = geom.shift(uh, mu, -1, boundary=bc)
                upper += uh
                np.multiply(tab.recon_coeff, uh[..., tab.source, :], out=tmp)
                lower += tmp
        out = np.empty_like(x)
        out[..., :2, :] = upper
        out[..., 2:, :] = lower
        return out

    def _dslash_reference(self, x: np.ndarray) -> np.ndarray:
        """The seed's full 4-spin dslash, kept as the numerical baseline."""
        geom = self.geometry
        out = np.zeros_like(x)
        for mu in range(4):
            bc = self.boundary[mu]
            u = self.gauge.data[mu]
            fwd = link_apply(u, geom.shift(x, mu, +1, boundary=bc))
            out += np.einsum("st,...tc->...sc", self._proj_fwd[mu], fwd)
            bwd = geom.shift(link_apply(su3.dagger(u), x), mu, -1, boundary=bc)
            out += np.einsum("st,...tc->...sc", self._proj_bwd[mu], bwd)
        return out

    def _apply(self, x: np.ndarray) -> np.ndarray:
        out = self.diagonal_coefficient * x - 0.5 * self._dslash(x)
        if self.clover is not None:
            out += apply_clover(self.clover, x)
        return out

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        # gamma5-Hermiticity: M^+ = g5 M g5 (holds for real +-1/0 boundary
        # factors, i.e. all supported BoundarySpec entries).
        g5x = apply_spin_matrix(GAMMA5, x)
        return apply_spin_matrix(GAMMA5, self._apply(g5x))

    def apply_site_diagonal(self, x: np.ndarray) -> np.ndarray:
        """The site-diagonal part (4 + m + A) x (used by even-odd forms and
        the interior/exterior kernel split)."""
        out = self.diagonal_coefficient * x
        if self.clover is not None:
            out = out + apply_clover(self.clover, x)
        return out

    # Backwards-compatible alias used by the even-odd module.
    apply_diagonal = apply_site_diagonal

    def apply_hopping(self, x: np.ndarray) -> np.ndarray:
        """The hopping part, ``-1/2 D x``."""
        return -0.5 * self._dslash(x)

    # ------------------------------------------------------------------
    def with_boundary(self, boundary: BoundarySpec) -> "WilsonCloverOperator":
        link_cache = None
        if self._link_cols is not None:
            link_cache = (self._link_cols, self._link_dag_cols)
        return WilsonCloverOperator(
            self.gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=boundary,
            clover=self.clover,
            use_projection=self.use_projection,
            _link_cache=link_cache,
        )

    def restrict_to_block(self, partition, rank: int) -> "WilsonCloverOperator":
        """The Dirichlet-cut operator on one rank's sub-domain — the block
        system of the additive Schwarz preconditioner (Sec. 8.1).

        The local gauge links (and the site-diagonal clover field, which is
        unaffected by the cut) are sliced from the global fields; the
        partitioned directions get zero boundaries, the rest keep the
        global condition.  Link caches are rebuilt for the sliced gauge.
        """
        local_gauge = GaugeField(
            partition.local_geometry,
            np.ascontiguousarray(self.gauge.data[partition.slices(rank, lead=1)]),
        )
        local_clover = None
        if self.clover is not None:
            local_clover = np.ascontiguousarray(
                self.clover[partition.slices(rank)]
            )
        local_bc = self.boundary.with_dirichlet(partition.grid.partitioned_dims)
        return WilsonCloverOperator(
            local_gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=local_bc,
            clover=local_clover,
            use_projection=self.use_projection,
        )
