"""The Wilson-clover Dirac operator, Eq. (2) of the paper:

``M = -1/2 D + (4 + m + A)``

with the nearest-neighbor stencil

``D x(x) = sum_mu [ P^-_mu U_mu(x) x(x+mu) + P^+_mu U_mu(x-mu)^+ x(x-mu) ]``

acting on 4-spin x 3-color fields.  ``M`` is non-Hermitian but
gamma5-Hermitian (``M^+ = g5 M g5``), which supplies the dagger.
"""

from __future__ import annotations

import numpy as np

from repro.dirac import base
from repro.dirac.base import BoundarySpec, LatticeOperator, PERIODIC, link_apply
from repro.dirac.clover import apply_clover, build_clover_field
from repro.lattice.fields import GaugeField
from repro.linalg import su3
from repro.linalg.gamma import GAMMA5, apply_spin_matrix, projector
from repro.util.counters import record, record_operator


class WilsonCloverOperator(LatticeOperator):
    """Wilson (csw = 0) or Wilson-clover (csw > 0) matrix.

    Parameters
    ----------
    gauge:
        The gauge configuration.
    mass:
        Bare quark mass parameter m in Eq. (2); smaller (more negative)
        mass means a worse-conditioned matrix.
    csw:
        Clover coefficient; 0 disables the clover term.
    boundary:
        Per-direction fermion boundary conditions; ``"zero"`` entries give
        the Dirichlet-cut operator used as a Schwarz block.
    clover:
        Optional precomputed clover field (reused by ``with_boundary``;
        the clover term is site-diagonal so it is unaffected by cuts).
    """

    nspin = 4

    def __init__(
        self,
        gauge: GaugeField,
        mass: float = 0.0,
        csw: float = 0.0,
        boundary: BoundarySpec = PERIODIC,
        clover: np.ndarray | None = None,
    ):
        super().__init__(gauge.geometry)
        self.gauge = gauge
        self.mass = float(mass)
        self.csw = float(csw)
        self.boundary = boundary
        if csw != 0.0 and clover is None:
            clover = build_clover_field(gauge, csw)
        self.clover = clover if csw != 0.0 else None
        self.name = "wilson_clover" if self.clover is not None else "wilson"
        self.flops_per_site = (
            base.WILSON_CLOVER_MATVEC_FLOPS
            if self.clover is not None
            else base.WILSON_MATVEC_FLOPS
        )
        # Spin projection matrices P^{-}_mu (forward hop) and P^{+}_mu
        # (backward).  In the paper's normalization P^{+-}_mu = 1 +- gamma_mu
        # (twice the idempotent projector), so that on the free field the
        # hopping term exactly cancels the Wilson "4" and a constant mode
        # has eigenvalue m.
        self._proj_fwd = [2.0 * projector(mu, -1) for mu in range(4)]
        self._proj_bwd = [2.0 * projector(mu, +1) for mu in range(4)]

    @property
    def diagonal_coefficient(self) -> float:
        """The scalar 4 + m multiplying the identity in Eq. (2)."""
        return 4.0 + self.mass

    # ------------------------------------------------------------------
    def dslash(self, x: np.ndarray) -> np.ndarray:
        """The hopping term D of Eq. (2) (records its own tally entry)."""
        record_operator("wilson_dslash")
        record(
            flops=base.WILSON_DSLASH_FLOPS * self.geometry.volume,
            bytes_moved=self.bytes_per_application(x.dtype),
        )
        return self._dslash(x)

    def _dslash(self, x: np.ndarray) -> np.ndarray:
        geom = self.geometry
        out = np.zeros_like(x)
        for mu in range(4):
            bc = self.boundary[mu]
            u = self.gauge.data[mu]
            fwd = link_apply(u, geom.shift(x, mu, +1, boundary=bc))
            out += apply_spin_matrix(self._proj_fwd[mu], fwd)
            bwd = geom.shift(link_apply(su3.dagger(u), x), mu, -1, boundary=bc)
            out += apply_spin_matrix(self._proj_bwd[mu], bwd)
        return out

    def _apply(self, x: np.ndarray) -> np.ndarray:
        out = self.diagonal_coefficient * x - 0.5 * self._dslash(x)
        if self.clover is not None:
            out += apply_clover(self.clover, x)
        return out

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        # gamma5-Hermiticity: M^+ = g5 M g5 (holds for real +-1/0 boundary
        # factors, i.e. all supported BoundarySpec entries).
        g5x = apply_spin_matrix(GAMMA5, x)
        return apply_spin_matrix(GAMMA5, self._apply(g5x))

    def apply_site_diagonal(self, x: np.ndarray) -> np.ndarray:
        """The site-diagonal part (4 + m + A) x (used by even-odd forms and
        the interior/exterior kernel split)."""
        out = self.diagonal_coefficient * x
        if self.clover is not None:
            out = out + apply_clover(self.clover, x)
        return out

    # Backwards-compatible alias used by the even-odd module.
    apply_diagonal = apply_site_diagonal

    def apply_hopping(self, x: np.ndarray) -> np.ndarray:
        """The hopping part, ``-1/2 D x``."""
        return -0.5 * self._dslash(x)

    # ------------------------------------------------------------------
    def with_boundary(self, boundary: BoundarySpec) -> "WilsonCloverOperator":
        return WilsonCloverOperator(
            self.gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=boundary,
            clover=self.clover,
        )

    def restrict_to_block(self, partition, rank: int) -> "WilsonCloverOperator":
        """The Dirichlet-cut operator on one rank's sub-domain — the block
        system of the additive Schwarz preconditioner (Sec. 8.1).

        The local gauge links (and the site-diagonal clover field, which is
        unaffected by the cut) are sliced from the global fields; the
        partitioned directions get zero boundaries, the rest keep the
        global condition.
        """
        local_gauge = GaugeField(
            partition.local_geometry,
            np.ascontiguousarray(self.gauge.data[partition.slices(rank, lead=1)]),
        )
        local_clover = None
        if self.clover is not None:
            local_clover = np.ascontiguousarray(
                self.clover[partition.slices(rank)]
            )
        local_bc = self.boundary.with_dirichlet(partition.grid.partitioned_dims)
        return WilsonCloverOperator(
            local_gauge,
            mass=self.mass,
            csw=self.csw,
            boundary=local_bc,
            clover=local_clover,
        )
