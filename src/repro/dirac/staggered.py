"""Staggered Dirac operators: naive (1-hop) and improved (asqtad), Eq. (3).

``M = -1/2 D_IS + m`` acting on 1-spin x 3-color fields, with

``D_IS x(x) = sum_mu eta_mu(x) [ F_mu(x) x(x+mu) - F_mu(x-mu)^+ x(x-mu)
                               + L_mu(x) x(x+3mu) - L_mu(x-3mu)^+ x(x-3mu) ]``

where F are the fat links and L the long (Naik) links with their asqtad
coefficients folded in (:mod:`repro.gauge.asqtad`), and eta are the
Kogut-Susskind phases that carry the spin structure.  D_IS is
anti-Hermitian and connects only opposite parities, so ``M^+ M =
m^2 - D^2/4`` decouples even from odd sites — the property the multi-shift
CG solver relies on (Sec. 3.1).
"""

from __future__ import annotations

import numpy as np

from repro.dirac import base
from repro.dirac.base import (
    BoundarySpec,
    LatticeOperator,
    PERIODIC,
    link_apply_cols,
)
from repro.gauge.asqtad import AsqtadLinks, build_asqtad_links
from repro.kernels import resolve_kernel
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import Geometry
from repro.util.counters import record, record_operator, timed


def staggered_phases(
    geometry: Geometry, origin: tuple[int, int, int, int] = (0, 0, 0, 0)
) -> np.ndarray:
    """Kogut-Susskind phases ``eta_mu(x)``, shape ``(4,) + geometry.shape``.

    eta_x = 1, eta_y = (-1)^x, eta_z = (-1)^(x+y), eta_t = (-1)^(x+y+z).

    ``origin`` is the *global* coordinate of this geometry's site (0,0,0,0);
    a padded or offset sub-domain (the multi-GPU ghost-zone layout) must
    pass its origin so the local phases agree with the global ones.
    """
    x = geometry.coordinate(0) + origin[0]
    y = geometry.coordinate(1) + origin[1]
    z = geometry.coordinate(2) + origin[2]
    eta = np.empty((4,) + geometry.shape, dtype=np.float64)
    eta[0] = 1.0
    eta[1] = (-1.0) ** x
    eta[2] = (-1.0) ** (x + y)
    eta[3] = (-1.0) ** (x + y + z)
    return eta


class _StaggeredBase(LatticeOperator):
    """Shared machinery for 1-hop (+optional 3-hop) staggered stencils."""

    nspin = 1

    def __init__(
        self,
        geometry: Geometry,
        fat: np.ndarray,
        long_links: np.ndarray | None,
        mass: float,
        boundary: BoundarySpec,
        origin: tuple[int, int, int, int] = (0, 0, 0, 0),
        kernel: str = "auto",
    ):
        super().__init__(geometry)
        self.fat = fat
        self.long = long_links
        self.mass = float(mass)
        self.boundary = boundary
        self.origin = tuple(origin)
        self._backend = resolve_kernel(kernel, operator="staggered")
        self.kernel = self._backend.name
        self.eta = staggered_phases(geometry, origin=self.origin)
        # Column-layout link caches (lazy): the daggered links are
        # precomputed once per operator instead of per dslash call.
        self._fat_cols: np.ndarray | None = None
        self._fat_dag_cols: np.ndarray | None = None
        self._long_cols: np.ndarray | None = None
        self._long_dag_cols: np.ndarray | None = None

    def _caches(self) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, np.ndarray | None]:
        if self._fat_cols is None:
            self._fat_cols = np.ascontiguousarray(np.swapaxes(self.fat, -1, -2))
            self._fat_dag_cols = np.conj(self.fat)  # (F^dagger)^T
            if self.long is not None:
                self._long_cols = np.ascontiguousarray(
                    np.swapaxes(self.long, -1, -2)
                )
                self._long_dag_cols = np.conj(self.long)
        return (
            self._fat_cols,
            self._fat_dag_cols,
            self._long_cols,
            self._long_dag_cols,
        )

    @property
    def ghost_depth(self) -> int:
        """Stencil reach: 3 for asqtad (the paper's locality problem), else 1."""
        return 3 if self.long is not None else 1

    def dslash(self, x: np.ndarray) -> np.ndarray:
        """The derivative term D_IS (records its own tally entry)."""
        batch = self.batch_size(x)
        record_operator(f"{self.name}_dslash")
        record(
            flops=self.dslash_flops_per_site * self.geometry.volume * batch,
            bytes_moved=self.bytes_per_application(x.dtype, batch=batch),
        )
        return self._dslash(x)

    def _dslash(self, x: np.ndarray) -> np.ndarray:
        with timed(f"{self.name}_dslash", kind="dslash"):
            return self._backend.staggered_dslash(self, x)

    def _dslash_numpy(self, x: np.ndarray) -> np.ndarray:
        """The vectorized NumPy stencil (the ``"numpy"`` backend body)."""
        geom = self.geometry
        lead = self.field_lead(x)
        batched = bool(lead)
        fat_cols, fat_dag_cols, long_cols, long_dag_cols = self._caches()
        out = np.zeros_like(x)
        for mu in range(4):
            bc = self.boundary[mu]
            eta = self.eta[mu][..., None]
            hop = link_apply_cols(
                fat_cols[mu],
                geom.shift(x, mu, +1, boundary=bc, lead=lead),
                batched=batched,
            )
            hop -= geom.shift(
                link_apply_cols(fat_dag_cols[mu], x, batched=batched),
                mu, -1, boundary=bc, lead=lead,
            )
            if self.long is not None:
                hop += link_apply_cols(
                    long_cols[mu],
                    geom.shift(x, mu, +3, boundary=bc, lead=lead),
                    batched=batched,
                )
                hop -= geom.shift(
                    link_apply_cols(long_dag_cols[mu], x, batched=batched),
                    mu, -3, boundary=bc, lead=lead,
                )
            out += eta * hop
        return out

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return self.mass * x - 0.5 * self._dslash(x)

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        # D_IS is anti-Hermitian, so M^+ = m + D/2.
        return self.mass * x + 0.5 * self._dslash(x)

    def apply_site_diagonal(self, x: np.ndarray) -> np.ndarray:
        """The mass term m x."""
        return self.mass * x

    def apply_hopping(self, x: np.ndarray) -> np.ndarray:
        """The hopping part, ``-1/2 D_IS x``."""
        return -0.5 * self._dslash(x)

    @property
    def dslash_flops_per_site(self) -> int:
        return (
            base.ASQTAD_DSLASH_FLOPS
            if self.long is not None
            else base.STAGGERED_DSLASH_FLOPS
        )

    def restrict_to_block(self, partition, rank: int):
        """Dirichlet-cut block operator for the Schwarz preconditioner.

        The fat/long links are sliced from the global fields; the block's
        global origin keeps the Kogut-Susskind phases consistent.
        """
        sl = partition.slices(rank, lead=1)
        fat = np.ascontiguousarray(self.fat[sl])
        long_links = (
            np.ascontiguousarray(self.long[sl]) if self.long is not None else None
        )
        local_bc = self.boundary.with_dirichlet(partition.grid.partitioned_dims)
        out = _StaggeredBase.__new__(type(self))
        _StaggeredBase.__init__(
            out,
            partition.local_geometry,
            fat,
            long_links,
            self.mass,
            local_bc,
            origin=partition.origin(rank),
            kernel=self.kernel,
        )
        return out


class NaiveStaggeredOperator(_StaggeredBase):
    """Unimproved staggered operator (thin links, 1-hop stencil) — the
    baseline against which asqtad's 3-hop locality cost is measured."""

    name = "staggered"
    flops_per_site = base.STAGGERED_DSLASH_FLOPS + 12

    def __init__(
        self,
        gauge: GaugeField,
        mass: float,
        boundary: BoundarySpec = PERIODIC,
        origin: tuple[int, int, int, int] = (0, 0, 0, 0),
        kernel: str = "auto",
    ):
        self.gauge = gauge
        super().__init__(
            gauge.geometry, gauge.data, None, mass, boundary, origin=origin,
            kernel=kernel,
        )

    def with_boundary(self, boundary: BoundarySpec) -> "NaiveStaggeredOperator":
        return NaiveStaggeredOperator(
            self.gauge, self.mass, boundary, self.origin, kernel=self.kernel
        )


class AsqtadOperator(_StaggeredBase):
    """Improved staggered (asqtad) operator of Eq. (3)."""

    name = "asqtad"
    flops_per_site = base.ASQTAD_MATVEC_FLOPS

    def __init__(
        self,
        links: AsqtadLinks,
        mass: float,
        boundary: BoundarySpec = PERIODIC,
        origin: tuple[int, int, int, int] = (0, 0, 0, 0),
        kernel: str = "auto",
    ):
        self.links = links
        super().__init__(
            links.geometry, links.fat, links.long, mass, boundary, origin=origin,
            kernel=kernel,
        )

    @classmethod
    def from_gauge(
        cls,
        gauge: GaugeField,
        mass: float,
        u0: float = 1.0,
        boundary: BoundarySpec = PERIODIC,
        kernel: str = "auto",
    ) -> "AsqtadOperator":
        """Build fat/long links from a thin-link configuration, then the
        operator (the "precalculated before the application" step)."""
        return cls(build_asqtad_links(gauge, u0=u0), mass, boundary, kernel=kernel)

    def with_boundary(self, boundary: BoundarySpec) -> "AsqtadOperator":
        return AsqtadOperator(
            self.links, self.mass, boundary, self.origin, kernel=self.kernel
        )


class StaggeredNormalOperator(LatticeOperator):
    """``M^+ M + sigma = (m^2 + sigma) - D^2/4`` for staggered M.

    This is the Hermitian positive-definite operator the (multi-shift) CG
    solver inverts, Eq. (4).  It preserves site parity: a right-hand side
    supported on even sites yields an even-supported solution, which is how
    "the even and odd lattices ... can be solved independently".
    """

    nspin = 1

    def __init__(self, base_op: _StaggeredBase, sigma: float = 0.0):
        super().__init__(base_op.geometry)
        self.base = base_op
        self.sigma = float(sigma)
        self.name = f"{base_op.name}_normal"
        if self.sigma:
            self.name += f"+{self.sigma:g}"
        self.flops_per_site = 2 * base_op.dslash_flops_per_site + 24

    def _apply(self, x: np.ndarray) -> np.ndarray:
        d2 = self.base._dslash(self.base._dslash(x))
        return (self.base.mass**2 + self.sigma) * x - 0.25 * d2

    _apply_dagger = _apply  # Hermitian

    def shifted(self, sigma: float) -> "StaggeredNormalOperator":
        return StaggeredNormalOperator(self.base, self.sigma + sigma)

    def with_boundary(self, boundary: BoundarySpec) -> "StaggeredNormalOperator":
        return StaggeredNormalOperator(
            self.base.with_boundary(boundary), self.sigma
        )

    def restrict_to_block(self, partition, rank: int) -> "StaggeredNormalOperator":
        return StaggeredNormalOperator(
            self.base.restrict_to_block(partition, rank), self.sigma
        )
