"""Discretized Dirac operators: Wilson, Wilson-clover, naive staggered and
improved staggered (asqtad), with even-odd preconditioned and shifted/normal
forms (Secs. 2-3 of the paper)."""

from repro.dirac.base import (
    BoundarySpec,
    LatticeOperator,
    NormalOperator,
    PERIODIC,
    PHYSICAL,
    ShiftedOperator,
    link_apply,
)
from repro.dirac.wilson import WilsonCloverOperator
from repro.dirac.clover import build_clover_field, apply_clover
from repro.dirac.staggered import (
    AsqtadOperator,
    NaiveStaggeredOperator,
    StaggeredNormalOperator,
    staggered_phases,
)
from repro.dirac.evenodd import EvenOddPreconditionedWilson

__all__ = [
    "BoundarySpec",
    "LatticeOperator",
    "NormalOperator",
    "ShiftedOperator",
    "PERIODIC",
    "PHYSICAL",
    "link_apply",
    "WilsonCloverOperator",
    "build_clover_field",
    "apply_clover",
    "AsqtadOperator",
    "NaiveStaggeredOperator",
    "StaggeredNormalOperator",
    "staggered_phases",
    "EvenOddPreconditionedWilson",
]
