"""Operator interfaces shared by every Dirac discretization.

A :class:`LatticeOperator` is a linear map on spinor-field arrays with
geometry metadata, per-application flop accounting (feeding the performance
model through :mod:`repro.util.counters`), a Hermitian conjugate, and a
``with_boundary`` hook used to impose the Dirichlet cuts of the additive
Schwarz preconditioner.

Standard flop-per-site constants (the counts QUDA/MILC report performance
against) live here as well.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.lattice.geometry import Geometry
from repro.util.counters import record, record_operator

# ----------------------------------------------------------------------
# Standard flop counts per site (community conventions)
# ----------------------------------------------------------------------
#: Wilson dslash (the 8-direction stencil with spin projection).
WILSON_DSLASH_FLOPS = 1320
#: Wilson matrix = dslash + mass axpy.
WILSON_MATVEC_FLOPS = 1368
#: Clover-term application (two 6x6 Hermitian blocks per site).
CLOVER_FLOPS = 504
#: Wilson-clover matrix.
WILSON_CLOVER_MATVEC_FLOPS = WILSON_MATVEC_FLOPS + CLOVER_FLOPS
#: Asqtad dslash (1-hop fat + 3-hop long stencil), MILC counting.
ASQTAD_DSLASH_FLOPS = 1146
#: Asqtad matrix = dslash + mass axpy (6 reals/site).
ASQTAD_MATVEC_FLOPS = ASQTAD_DSLASH_FLOPS + 12
#: Naive (unimproved) staggered dslash.
STAGGERED_DSLASH_FLOPS = 570


@dataclass(frozen=True)
class BoundarySpec:
    """Per-direction fermion boundary conditions ``(x, y, z, t)``.

    Each entry is ``"periodic"``, ``"antiperiodic"`` or ``"zero"``
    (Dirichlet).  The Schwarz preconditioner is obtained by switching the
    partitioned directions to ``"zero"`` — "essentially, we just have to
    switch off the communications" (Sec. 8.1).
    """

    conditions: tuple[str, str, str, str] = ("periodic",) * 4

    def __post_init__(self):
        valid = {"periodic", "antiperiodic", "zero"}
        if len(self.conditions) != 4 or any(
            c not in valid for c in self.conditions
        ):
            raise ValueError(f"invalid boundary spec {self.conditions}")

    def __getitem__(self, mu: int) -> str:
        return self.conditions[mu]

    def with_dirichlet(self, dims: tuple[int, ...]) -> "BoundarySpec":
        """Return a copy with the given directions cut (set to zero)."""
        conds = list(self.conditions)
        for mu in dims:
            conds[mu] = "zero"
        return BoundarySpec(tuple(conds))


#: Fully periodic boundaries (default for algorithm studies).
PERIODIC = BoundarySpec()
#: Physical fermion boundaries: periodic in space, antiperiodic in time.
PHYSICAL = BoundarySpec(("periodic", "periodic", "periodic", "antiperiodic"))


def link_apply(links: np.ndarray, x: np.ndarray, batched: bool = False) -> np.ndarray:
    """Apply per-site 3x3 color matrices to a spinor array.

    ``links`` has shape ``sites + (3, 3)``; ``x`` has shape
    ``sites + (nspin, 3)`` (Wilson) or ``sites + (3,)`` (staggered).
    Computes ``y_a = sum_b U_ab x_b`` at every site (and spin).

    With ``batched=True`` the field carries one extra *leading* batch axis
    (multi-RHS); the links broadcast over it unchanged.  The flag is
    explicit because ndim alone cannot distinguish a batched staggered
    field from an unbatched Wilson one.
    """
    lt = np.swapaxes(links, -1, -2)
    spinor_ndim = links.ndim + (1 if batched else 0)
    if x.ndim == spinor_ndim:  # (..., nspin, 3): batched matmul
        return x @ lt
    if x.ndim == spinor_ndim - 1:  # (..., 3): promote to a row vector
        return np.squeeze(x[..., None, :] @ lt, axis=-2)
    raise ValueError(f"incompatible shapes {links.shape} and {x.shape}")


def link_apply_cols(
    link_cols: np.ndarray,
    x: np.ndarray,
    out: np.ndarray | None = None,
    tmp: np.ndarray | None = None,
    batched: bool = False,
) -> np.ndarray:
    """Apply per-site color matrices stored in *column-major* layout.

    ``link_cols`` holds ``U^T`` per site (``link_cols[..., b, a] = U_ab``),
    so column ``b`` of ``U`` is the contiguous row ``link_cols[..., b, :]``.
    The contraction ``y_a = sum_b U_ab x_b`` is then three fused
    broadcast multiply-adds over the whole field instead of one tiny
    matmul per site — substantially faster for the small (2, 3) and
    (4, 3) per-site operands of the dslash hot loop, where batched BLAS
    dispatch overhead dominates.

    ``out`` and ``tmp`` are optional preallocated result/scratch arrays
    of the result shape (they must not alias ``x``): at hot-loop field
    sizes the product temporaries are tens of MB each, so reusing
    buffers avoids allocator/page-fault churn.

    ``batched=True`` marks a leading multi-RHS batch axis on ``x`` (and
    ``out``/``tmp``); the per-site links broadcast over it.
    """
    spinor_ndim = link_cols.ndim + (1 if batched else 0)
    if x.ndim == spinor_ndim:  # (..., nspin, 3)
        if out is None:
            out = x[..., :, 0, None] * link_cols[..., None, 0, :]
        else:
            np.multiply(x[..., :, 0, None], link_cols[..., None, 0, :], out=out)
        for b in (1, 2):
            if tmp is None:
                out += x[..., :, b, None] * link_cols[..., None, b, :]
            else:
                np.multiply(x[..., :, b, None], link_cols[..., None, b, :], out=tmp)
                out += tmp
        return out
    if x.ndim == spinor_ndim - 1:  # (..., 3)
        y = x[..., 0, None] * link_cols[..., 0, :]
        for b in (1, 2):
            y += x[..., b, None] * link_cols[..., b, :]
        return y
    raise ValueError(f"incompatible shapes {link_cols.shape} and {x.shape}")


class LatticeOperator(abc.ABC):
    """A linear operator acting on spinor-field arrays.

    Subclasses implement ``_apply`` (and usually ``_apply_dagger``); the
    public ``apply`` wrapper records the operator application and its
    standard flop count to the active tally.
    """

    #: Operator name used in tallies and reports.
    name: str = "operator"
    #: Spins per site of the fields this operator acts on (4 or 1).
    nspin: int = 4
    #: Standard flops per lattice site per application.
    flops_per_site: int = 0

    def __init__(self, geometry: Geometry):
        self.geometry = geometry

    # -- required numerics ------------------------------------------------
    @abc.abstractmethod
    def _apply(self, x: np.ndarray) -> np.ndarray: ...

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError(f"{type(self).__name__} has no dagger")

    # -- public interface --------------------------------------------------
    def apply(self, x: np.ndarray) -> np.ndarray:
        self._record(x)
        return self._apply(x)

    def apply_dagger(self, x: np.ndarray) -> np.ndarray:
        self._record(x)
        return self._apply_dagger(x)

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.apply(x)

    # -- multi-RHS (batched) layout ----------------------------------------
    @property
    def field_ndim(self) -> int:
        """ndim of an unbatched field this operator acts on: 4 lattice
        axes plus ``(spin, color)`` for Wilson or ``(color,)`` for
        staggered."""
        return 4 + (2 if self.nspin == 4 else 1)

    def field_lead(self, x: np.ndarray) -> int:
        """Number of leading batch axes of ``x`` (0 or 1).

        Batched fields carry the multi-RHS axis *in front* of the lattice
        axes — ``(B, T, Z, Y, X, ...)`` — so numpy's left-padded
        broadcasting makes the per-site gauge/clover contractions
        batch-transparent.
        """
        extra = x.ndim - self.field_ndim
        if extra in (0, 1):
            return extra
        raise ValueError(
            f"{self.name} expects field ndim {self.field_ndim} "
            f"(or +1 batch axis), got shape {x.shape}"
        )

    def batch_size(self, x: np.ndarray) -> int:
        """Number of right-hand sides carried by ``x`` (1 if unbatched)."""
        return x.shape[0] if self.field_lead(x) else 1

    def _record(self, x: np.ndarray) -> None:
        batch = self.batch_size(x)
        record_operator(self.name)
        record(
            flops=self.flops_per_site * self.geometry.volume * batch,
            bytes_moved=self.bytes_per_application(x.dtype, batch=batch),
        )

    def bytes_per_application(self, dtype, batch: int = 1) -> int:
        """Rough device-memory traffic per application (spinor in/out plus
        gauge reads); refined numbers live in :mod:`repro.perfmodel.kernels`.

        For a batched (multi-RHS) application the spinor traffic scales
        with ``batch`` while the gauge links are read once and reused
        across the batch — the arithmetic-intensity gain batching buys.
        """
        site_complex = 3 * self.nspin
        itemsize = np.dtype(dtype).itemsize
        # 8 neighbor spinor reads + 1 write per RHS + 8 link reads
        # (9 complex each) shared across the batch.
        per_site = 9 * site_complex * itemsize * batch + 8 * 9 * itemsize
        return per_site * self.geometry.volume

    def apply_hopping(self, x: np.ndarray) -> np.ndarray:
        """The off-diagonal (nearest/third-neighbor) part of the operator.

        ``apply(x) == apply_site_diagonal(x) + apply_hopping(x)``; the
        split is what the interior/exterior multi-GPU kernels decompose
        (Sec. 6.2): only the hopping term reads ghost zones.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no hopping/diagonal split"
        )

    def apply_site_diagonal(self, x: np.ndarray) -> np.ndarray:
        """The site-diagonal part (mass and clover terms)."""
        raise NotImplementedError(
            f"{type(self).__name__} has no hopping/diagonal split"
        )

    # -- composition helpers -----------------------------------------------
    def with_boundary(self, boundary: BoundarySpec) -> "LatticeOperator":
        """Return a copy of this operator with different boundary conditions
        (used to build the Dirichlet-cut Schwarz blocks)."""
        raise NotImplementedError(
            f"{type(self).__name__} does not support boundary changes"
        )

    def normal(self) -> "NormalOperator":
        return NormalOperator(self)

    def shifted(self, sigma: float) -> "ShiftedOperator":
        return ShiftedOperator(self, sigma)


class ShiftedOperator(LatticeOperator):
    """``A + sigma * I`` — the shifted systems of Eq. (4)."""

    def __init__(self, base: LatticeOperator, sigma: float):
        super().__init__(base.geometry)
        self.base = base
        self.sigma = float(sigma)
        self.name = f"{base.name}+{sigma:g}"
        self.nspin = base.nspin
        self.flops_per_site = base.flops_per_site + 4 * 3 * base.nspin

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return self.base._apply(x) + self.sigma * x

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        return self.base._apply_dagger(x) + np.conj(self.sigma) * x

    def _record(self, x: np.ndarray) -> None:
        self.base._record(x)


class NormalOperator(LatticeOperator):
    """``A^dagger A`` — the normal equations (CGNE/CGNR, Sec. 3.1)."""

    def __init__(self, base: LatticeOperator):
        super().__init__(base.geometry)
        self.base = base
        self.name = f"{base.name}^+{base.name}"
        self.nspin = base.nspin
        self.flops_per_site = 2 * base.flops_per_site

    def _apply(self, x: np.ndarray) -> np.ndarray:
        return self.base._apply_dagger(self.base._apply(x))

    _apply_dagger = _apply

    def _record(self, x: np.ndarray) -> None:
        self.base._record(x)
        self.base._record(x)
