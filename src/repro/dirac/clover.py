"""The clover term ``A_x`` of the Wilson-clover matrix, Eq. (2).

``A_x = c_sw * sum_{mu<nu} sigma_{mu nu} (x) iF_{mu nu}(x)`` is a Hermitian
12x12 matrix per site (spin (x) color), built from the clover-leaf field
strength.  Because ``[sigma_{mu nu}, gamma5] = 0`` it is block-diagonal in
chirality — two 6x6 Hermitian blocks, the "Hermitian block diagonal,
anti-Hermitian block off-diagonal structure ... 72 real numbers" of the
paper's footnote 1.

The even-odd preconditioner needs ``(4 + m + A)^{-1}``, computed here by a
vectorized per-site inversion.
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.gauge.observables import field_strength
from repro.lattice.fields import GaugeField
from repro.linalg.gamma import sigma


def build_clover_field(gauge: GaugeField, csw: float = 1.0) -> np.ndarray:
    """Compute ``A_x`` at every site; shape ``geometry.shape + (12, 12)``.

    Vanishes identically on the free (unit-gauge) field.
    """
    shape = gauge.geometry.shape
    a = np.zeros(shape + (12, 12), dtype=np.complex128)
    for mu, nu in itertools.combinations(range(4), 2):
        f = field_strength(gauge, mu, nu)  # anti-Hermitian 3x3
        s = sigma(mu, nu)  # Hermitian 4x4
        # sigma (x) (iF): Hermitian. Indices: (s,a),(t,b) -> 12x12.
        block = np.einsum("st,...ab->...satb", s, 1j * f)
        a += block.reshape(shape + (12, 12))
    return csw * a


def apply_clover(clover: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Apply per-site 12x12 clover matrices to a Wilson spinor field."""
    shape = x.shape
    flat = x.reshape(shape[:-2] + (12,))
    out = np.squeeze(clover @ flat[..., None], axis=-1)
    return out.reshape(shape)


def clover_site_matrices(
    clover: np.ndarray | None,
    diagonal: float,
    shape: tuple[int, ...],
    dtype=np.complex128,
) -> np.ndarray:
    """Full site-diagonal matrix ``C = diagonal * I + A`` (A may be absent)."""
    eye = np.eye(12, dtype=dtype)
    if clover is None:
        return np.broadcast_to(diagonal * eye, shape + (12, 12)).copy()
    return clover + diagonal * eye


def invert_site_matrices(c: np.ndarray) -> np.ndarray:
    """Per-site inverse of 12x12 site matrices (vectorized)."""
    return np.linalg.inv(c)
