"""Even-odd (red-black) preconditioning of the Wilson-clover system.

"Even-odd ... preconditioning is almost always used to accelerate the
solution finding process for this system, where the nearest neighbor
property of the D matrix is exploited to solve the Schur complement
system" (Sec. 3.1).

Writing Eq. (2) in checkerboard blocks, with C = (4 + m + A) site-diagonal
and the hopping term connecting opposite parities only::

    M = [ C_ee      -1/2 D_eo ]
        [ -1/2 D_oe  C_oo     ]

the Schur complement on the even sublattice is::

    Mhat = C_ee - 1/4 D_eo C_oo^{-1} D_oe

Solving ``Mhat x_e = b_e + 1/2 D C^{-1} b_o |_e`` and back-substituting
``x_o = C^{-1}(b_o + 1/2 D x_e |_o)`` reproduces the full solution at
roughly half the iteration cost.

Fields here remain full-lattice arrays with support on one parity (the
other checkerboard is kept at zero); this trades memory for clarity and
lets every operator and BLAS routine be reused unchanged.
"""

from __future__ import annotations

import numpy as np

from repro.dirac import base as dirac_base
from repro.dirac.base import LatticeOperator
from repro.dirac.clover import clover_site_matrices, invert_site_matrices
from repro.dirac.wilson import WilsonCloverOperator
from repro.lattice.geometry import Geometry
from repro.linalg.gamma import GAMMA5, apply_spin_matrix


def parity_project(
    geometry: Geometry, x: np.ndarray, parity: int, lead: int = 0
) -> np.ndarray:
    """Zero out the sites of the opposite parity (0 = even, 1 = odd).

    ``lead`` leading axes (the multi-RHS batch axis) broadcast over the
    parity mask instead of being mistaken for lattice axes.
    """
    mask = geometry.parity_mask(parity)
    extra = (None,) * (x.ndim - 4 - lead)
    return x * mask[(None,) * lead + (...,) + extra]


class EvenOddPreconditionedWilson(LatticeOperator):
    """The even-even Schur complement ``Mhat`` of the Wilson-clover matrix.

    ``apply`` expects (and returns) full-lattice arrays supported on the
    even checkerboard.  Use :meth:`prepare_rhs` / :meth:`reconstruct` to
    convert between the full system and the preconditioned one.

    Every dslash here delegates to ``wilson._dslash``, so the Schur
    complement inherits the underlying operator's kernel backend — the
    spin-projected ``"numpy"`` tier and its cached daggered links by
    default, the ``"numpy_ref"`` bit-reference (or compiled ``"numba"``
    tier) when built from the matching ``kernel=`` value.
    """

    nspin = 4

    def __init__(self, wilson: WilsonCloverOperator):
        super().__init__(wilson.geometry)
        self.wilson = wilson
        self.name = f"eo_{wilson.name}"
        # Schur applies two half-lattice dslashes (= one full) plus the
        # site-diagonal terms; use the full-matrix count as the standard.
        self.flops_per_site = wilson.flops_per_site
        self._c = clover_site_matrices(
            wilson.clover, wilson.diagonal_coefficient, wilson.geometry.shape
        )
        self._cinv = invert_site_matrices(self._c)

    # -- site-diagonal helpers ------------------------------------------
    def _mul_site(self, mats: np.ndarray, x: np.ndarray) -> np.ndarray:
        flat = x.reshape(x.shape[:-2] + (12,))
        out = np.squeeze(mats @ flat[..., None], axis=-1)
        return out.reshape(x.shape)

    def apply_c(self, x: np.ndarray) -> np.ndarray:
        """(4 + m + A) x."""
        return self._mul_site(self._c, x)

    def apply_cinv(self, x: np.ndarray) -> np.ndarray:
        """(4 + m + A)^{-1} x."""
        return self._mul_site(self._cinv, x)

    # -- the Schur complement ---------------------------------------------
    def _apply(self, x: np.ndarray) -> np.ndarray:
        geom = self.geometry
        lead = self.field_lead(x)
        x = parity_project(geom, x, 0, lead=lead)
        d1 = self.wilson._dslash(x)  # supported on odd sites
        t = self.apply_cinv(d1)
        d2 = self.wilson._dslash(t)  # back on even sites
        out = self.apply_c(x) - 0.25 * d2
        return parity_project(geom, out, 0, lead=lead)

    def _apply_dagger(self, x: np.ndarray) -> np.ndarray:
        # Mhat inherits gamma5-Hermiticity from M.
        g5x = apply_spin_matrix(GAMMA5, x)
        return apply_spin_matrix(GAMMA5, self._apply(g5x))

    # -- full-system conversion ---------------------------------------------
    def prepare_rhs(self, b: np.ndarray) -> np.ndarray:
        """Even-site right-hand side ``b_e + 1/2 D C^{-1} b_o |_e``."""
        geom = self.geometry
        lead = self.field_lead(b)
        b_e = parity_project(geom, b, 0, lead=lead)
        b_o = parity_project(geom, b, 1, lead=lead)
        lifted = 0.5 * self.wilson._dslash(self.apply_cinv(b_o))
        return b_e + parity_project(geom, lifted, 0, lead=lead)

    def reconstruct(self, x_e: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Back-substitute the odd sites: full solution of ``M x = b``."""
        geom = self.geometry
        lead = self.field_lead(b)
        x_e = parity_project(geom, x_e, 0, lead=lead)
        b_o = parity_project(geom, b, 1, lead=lead)
        rhs_o = b_o + parity_project(
            geom, 0.5 * self.wilson._dslash(x_e), 1, lead=lead
        )
        x_o = parity_project(geom, self.apply_cinv(rhs_o), 1, lead=lead)
        return x_e + x_o

    def with_boundary(self, boundary) -> "EvenOddPreconditionedWilson":
        return EvenOddPreconditionedWilson(self.wilson.with_boundary(boundary))

    def restrict_to_block(self, partition, rank: int) -> "EvenOddPreconditionedWilson":
        """Dirichlet-cut Schur complement on one sub-domain.

        QUDA's production GCR-DD runs on the even-odd preconditioned
        system; the Schwarz block operator is then the Schur complement
        of the *cut* Wilson matrix (cut first, then eliminate the odd
        sites — the order matters and this is the communication-free one).
        """
        return EvenOddPreconditionedWilson(
            self.wilson.restrict_to_block(partition, rank)
        )
