"""A QMP-flavored channel interface over the mailbox.

QMP ("QCD message passing") is the paper's alternative communication
framework: a simplified subset of primitives — declared memory ranges and
started/waited message handles — implemented as a thin layer over MPI.
We mirror that shape so the halo-exchange engine can be written against
either interface, as QUDA is ("performance with the two frameworks is
virtually identical" — trivially true here, both drive the same mailbox).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommEvent


@dataclass
class _SendHandle:
    channel: "QMPChannel"
    dst: int
    payload: np.ndarray
    tag: object
    event: CommEvent | None
    started: bool = False

    def start(self) -> None:
        self.channel.mailbox.send(
            self.channel.rank, self.dst, self.payload, tag=self.tag, event=self.event
        )
        self.started = True

    def wait(self) -> None:
        if not self.started:
            raise RuntimeError("wait() before start() on a QMP send handle")


@dataclass
class _RecvHandle:
    channel: "QMPChannel"
    src: int
    tag: object
    data: np.ndarray | None = None
    started: bool = False

    def start(self) -> None:
        self.started = True

    def wait(self) -> np.ndarray:
        if not self.started:
            raise RuntimeError("wait() before start() on a QMP receive handle")
        if self.data is None:
            self.data = self.channel.mailbox.recv(
                self.channel.rank, self.src, tag=self.tag
            )
        return self.data


class QMPChannel:
    """Per-rank communication endpoint with QMP-style declare/start/wait."""

    def __init__(self, mailbox: Mailbox, rank: int):
        self.mailbox = mailbox
        self.rank = rank

    def declare_send(
        self, dst: int, payload: np.ndarray, tag=0, event: CommEvent | None = None
    ) -> _SendHandle:
        return _SendHandle(self, dst, payload, tag, event)

    def declare_receive(self, src: int, tag=0) -> _RecvHandle:
        return _RecvHandle(self, src, tag)
