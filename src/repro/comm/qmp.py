"""A QMP-flavored channel interface over the communication substrate.

QMP ("QCD message passing") is the paper's alternative communication
framework: a simplified subset of primitives — declared memory ranges and
started/waited message handles — implemented as a thin layer over MPI.
We mirror that shape so halo-exchange code can be written against either
interface, as QUDA is ("performance with the two frameworks is virtually
identical" — trivially true here, both drive the same endpoint).

A channel wraps either a shared :class:`~repro.comm.mailbox.Mailbox`
(the legacy global-view form, ``QMPChannel(mailbox, rank)``) or any
rank-local :class:`~repro.comm.communicator.Communicator` endpoint
(``QMPChannel.over(comm)``), so the same declare/start/wait code runs
under every SPMD backend.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.comm.communicator import Communicator, MailboxCommunicator
from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommEvent


@dataclass
class _SendHandle:
    channel: "QMPChannel"
    dst: int
    payload: np.ndarray
    tag: object
    event: CommEvent | None
    started: bool = False

    def start(self) -> None:
        self.channel.comm.isend(
            self.dst, self.payload, tag=self.tag, event=self.event
        )
        self.started = True

    def wait(self) -> None:
        if not self.started:
            raise RuntimeError("wait() before start() on a QMP send handle")


@dataclass
class _RecvHandle:
    channel: "QMPChannel"
    src: int
    tag: object
    data: np.ndarray | None = None
    started: bool = False

    def start(self) -> None:
        self.started = True

    def wait(self) -> np.ndarray:
        if not self.started:
            raise RuntimeError("wait() before start() on a QMP receive handle")
        if self.data is None:
            self.data = self.channel.comm.recv(self.src, tag=self.tag)
        return self.data


class QMPChannel:
    """Per-rank communication endpoint with QMP-style declare/start/wait."""

    def __init__(self, mailbox: Mailbox, rank: int):
        self.mailbox = mailbox
        self.rank = rank
        self.comm: Communicator = MailboxCommunicator(mailbox, rank)

    @classmethod
    def over(cls, comm: Communicator) -> "QMPChannel":
        """A QMP channel over an arbitrary rank-local communicator
        endpoint (any SPMD backend)."""
        channel = cls.__new__(cls)
        channel.mailbox = getattr(comm, "mailbox", None)
        channel.rank = comm.rank
        channel.comm = comm
        return channel

    def declare_send(
        self, dst: int, payload: np.ndarray, tag=0, event: CommEvent | None = None
    ) -> _SendHandle:
        return _SendHandle(self, dst, payload, tag, event)

    def declare_receive(self, src: int, tag=0) -> _RecvHandle:
        return _RecvHandle(self, src, tag)
