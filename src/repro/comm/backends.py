"""Interchangeable SPMD execution backends: sequential / threads / processes.

:func:`run_rank_programs` launches one *rank program* — a plain function
``program(comm, payload) -> value`` written against the
:class:`~repro.comm.communicator.Communicator` protocol — per virtual
rank and returns the per-rank outcomes, merging each rank's cost tally
(and trace events) into the caller's at join.  Three backends execute
the same program:

``sequential``
    Rank programs run on gated threads, but a *baton scheduler* admits
    exactly one at a time and passes control round-robin at blocking
    communication points (receive with no matching message, allreduce,
    barrier).  Execution is fully deterministic — the same interleaving
    every run — which makes this the bit-reproducible reference backend
    for tests, and an all-ranks-blocked cycle is detected immediately and
    reported with the mailbox's pending-queue dump.

``threads``
    Rank programs run on free threads over a blocking
    :class:`~repro.comm.mailbox.Mailbox`; numpy kernels release the GIL,
    so stencil applications genuinely overlap.  Receives are bounded by
    ``timeout`` and raise the pending-queue diagnostic instead of
    hanging.

``processes``
    Rank programs run in forked worker processes; message payloads move
    through POSIX shared memory (:mod:`repro.comm.shm`), giving true
    core-level parallelism for the compute-bound stencils.  Requires the
    ``fork`` start method (POSIX); :func:`process_backend_available`
    reports whether it can be used.

All three produce bit-identical numerics for a deterministic program:
each rank's arithmetic depends only on its inputs and received messages,
and collectives fold contributions in fixed rank order
(:func:`~repro.comm.communicator.reduce_in_rank_order`).
"""

from __future__ import annotations

import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable

import numpy as np

from repro.comm.communicator import (
    BACKENDS,
    MailboxCommunicator,
    reduce_in_rank_order,
)
from repro.comm.mailbox import Mailbox
from repro.metrics.registry import (
    MetricsRegistry,
    current_registry,
    metrics_scope,
)
from repro.trace import TraceEvent, active_tracer
from repro.util.counters import Tally, current_tally, tally


class SPMDError(RuntimeError):
    """A rank program failed (or deadlocked); carries per-rank detail."""


class DeadlockError(SPMDError):
    """Every live rank is blocked — the SPMD program cannot progress."""


# ----------------------------------------------------------------------
# collective rendezvous (sequential + threaded backends)
# ----------------------------------------------------------------------
class ReduceState:
    """Generation-numbered allreduce slots shared by in-process ranks.

    Each rank deposits its contribution for its next collective
    *generation* (ranks of one SPMD program execute the same sequence of
    collectives, so generation numbers line up by construction); once all
    ``size`` contributions for a generation are in, the result is the
    rank-ordered fold, computed once and handed to every caller.
    """

    def __init__(self, size: int):
        self.size = size
        self.cond = threading.Condition()
        self._slots: dict[int, dict] = {}
        self._next_gen = [0] * size

    def deposit(self, rank: int, value) -> int:
        with self.cond:
            gen = self._next_gen[rank]
            self._next_gen[rank] += 1
            slot = self._slots.setdefault(gen, {"parts": {}, "read": set()})
            slot["parts"][rank] = value
            self.cond.notify_all()
            return gen

    def ready(self, gen: int) -> bool:
        with self.cond:
            slot = self._slots.get(gen)
            return slot is not None and len(slot["parts"]) == self.size

    def describe(self, gen: int) -> str:
        with self.cond:
            slot = self._slots.get(gen, {"parts": {}})
            missing = sorted(set(range(self.size)) - set(slot["parts"]))
            return f"waiting on contributions from ranks {missing}"

    def collect(self, rank: int, gen: int, timeout: float | None = None):
        with self.cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while True:
                slot = self._slots.get(gen)
                if slot is not None and len(slot["parts"]) == self.size:
                    break
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise DeadlockError(
                        f"allreduce #{gen} timed out: {self._describe_locked(gen)}"
                    )
                self.cond.wait(remaining)
            if "result" not in slot:
                slot["result"] = reduce_in_rank_order(
                    [slot["parts"][r] for r in range(self.size)]
                )
            result = slot["result"]
            slot["read"].add(rank)
            if len(slot["read"]) == self.size:
                del self._slots[gen]
            return result

    def _describe_locked(self, gen: int) -> str:
        slot = self._slots.get(gen, {"parts": {}})
        missing = sorted(set(range(self.size)) - set(slot["parts"]))
        return f"waiting on contributions from ranks {missing}"


# ----------------------------------------------------------------------
# the deterministic baton scheduler (sequential backend)
# ----------------------------------------------------------------------
class BatonScheduler:
    """Round-robin cooperative scheduler for the sequential backend.

    Exactly one rank thread runs at any moment — the one holding the
    *baton*.  A thread gives the baton up only at a blocking
    communication point (:meth:`wait_for`) or when its program ends; the
    scheduler then passes it to the next runnable rank in cyclic order.
    Because hand-off points and order are fixed, execution (and therefore
    trace/event ordering) is fully deterministic.  If every live rank is
    blocked on an unsatisfied predicate, the deadlock is reported
    immediately with the blocking ranks' own diagnostics.
    """

    def __init__(self, size: int):
        self.size = size
        self._cond = threading.Condition()
        self._turn = 0
        self._done = [False] * size
        self._waiting: list = [None] * size  # (pred, describe) when blocked
        self._failure: BaseException | None = None

    # -- thread lifecycle ------------------------------------------------
    def start(self, rank: int) -> None:
        """Block until this rank first receives the baton."""
        with self._cond:
            while self._turn != rank and self._failure is None:
                self._cond.wait()
            self._check_failure()

    def finish(self, rank: int) -> None:
        """Mark this rank's program complete and hand the baton on."""
        with self._cond:
            self._done[rank] = True
            if not all(self._done):
                self._advance(rank)

    def fail(self, rank: int, exc: BaseException) -> None:
        """Record a failure and release every waiting thread."""
        with self._cond:
            if self._failure is None:
                self._failure = exc
            self._done[rank] = True
            self._cond.notify_all()

    def notify(self, rank: int) -> None:
        """No-op hook (predicates are re-evaluated at every hand-off)."""

    # -- the yield point -------------------------------------------------
    def wait_for(self, rank: int, pred: Callable[[], bool],
                 describe: Callable[[], str]) -> None:
        """Hold the baton until ``pred()`` is true, yielding it meanwhile."""
        with self._cond:
            while not pred():
                self._check_failure()
                self._waiting[rank] = (pred, describe)
                self._advance(rank)  # may raise DeadlockError
                while self._turn != rank and self._failure is None:
                    self._cond.wait()
                self._check_failure()
                self._waiting[rank] = None

    def _check_failure(self) -> None:
        if self._failure is not None:
            raise SPMDError(
                f"aborted: another rank failed ({self._failure})"
            ) from self._failure

    def _advance(self, rank: int) -> None:
        """Pass the baton to the next runnable rank after ``rank``."""
        for step in range(1, self.size + 1):
            r = (rank + step) % self.size
            if self._done[r]:
                continue
            waiting = self._waiting[r]
            if waiting is None or waiting[0]():
                self._waiting[r] = None
                self._turn = r
                self._cond.notify_all()
                return
        if all(self._done[r] or self._waiting[r] is not None
               for r in range(self.size)) and not all(self._done):
            blocked = [
                f"rank {r}: {self._waiting[r][1]()}"
                for r in range(self.size)
                if not self._done[r] and self._waiting[r] is not None
            ]
            raise DeadlockError(
                "SPMD deadlock: every live rank is blocked\n"
                + "\n".join(f"  {b}" for b in blocked)
            )


# ----------------------------------------------------------------------
# outcomes + the runner
# ----------------------------------------------------------------------
@dataclass
class RankOutcome:
    """What one rank program produced: its return value, its cost tally,
    its trace events, its metrics registry (when the caller had one
    active), and (on failure) the formatted error."""

    rank: int
    value: Any = None
    tally: Tally = field(default_factory=Tally)
    events: list = field(default_factory=list)
    error: str | None = None
    metrics: MetricsRegistry | None = None


def _rank_body(program, comm, payload, tracer, outcome: RankOutcome,
               metrics_on: bool = False):
    """Run one rank program under its own tally — and, when the caller
    has a metrics registry active, its own registry — recording the
    result into ``outcome``."""
    from contextlib import nullcontext

    from repro.trace import span, tracing

    registry = MetricsRegistry() if metrics_on else None
    scope = metrics_scope(registry) if registry is not None else nullcontext()
    try:
        with tally() as t, scope:
            if tracer is not None:
                with tracing(tracer):
                    with span("rank_program", kind="rank", rank=comm.rank,
                              stream="compute"):
                        outcome.value = program(comm, payload)
            else:
                outcome.value = program(comm, payload)
        outcome.tally = t
        outcome.metrics = registry
    except BaseException as exc:  # noqa: BLE001 - reported to the caller
        outcome.error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
        raise


def _merge_outcomes(outcomes: list[RankOutcome]) -> None:
    """Fold per-rank tallies (and metrics registries) into the caller's,
    in rank order (deterministic merge — the join side of the SPMD
    accounting).  The metrics merge is exact bucket-wise addition, so the
    merged registry is identical whichever backend produced the ranks."""
    parent = current_tally()
    if parent is not None:
        for outcome in outcomes:
            parent.merge(outcome.tally)
    registry = current_registry()
    if registry is not None:
        for outcome in outcomes:
            if outcome.metrics is not None:
                registry.merge(outcome.metrics)


def _raise_on_errors(outcomes: list[RankOutcome], mailbox: Mailbox | None):
    failed = [o for o in outcomes if o.error is not None]
    if not failed:
        return
    detail = "\n".join(f"  rank {o.rank}: {o.error}" for o in failed)
    pending = (
        f"\npending messages:\n{mailbox.pending_summary()}"
        if mailbox is not None
        else ""
    )
    raise SPMDError(
        f"{len(failed)} of {len(outcomes)} rank programs failed:\n"
        f"{detail}{pending}"
    )


def _run_in_threads(
    program, size, payloads, timeout, sequential: bool,
    metrics_on: bool = False,
) -> tuple[list[RankOutcome], Mailbox]:
    mailbox = Mailbox(size)
    reducer = ReduceState(size)
    scheduler = BatonScheduler(size) if sequential else None
    tracer = active_tracer()
    outcomes = [RankOutcome(rank=r) for r in range(size)]

    def entry(rank: int):
        # Exceptions never escape the rank thread: they are recorded on
        # the rank's outcome (and broadcast through the scheduler) and
        # re-raised as one SPMDError by the caller.
        comm = MailboxCommunicator(
            mailbox, rank,
            blocking=not sequential,
            timeout=timeout,
            reducer=reducer,
            scheduler=scheduler,
        )
        try:
            if scheduler is not None:
                scheduler.start(rank)
            _rank_body(program, comm, payloads[rank], tracer, outcomes[rank],
                       metrics_on=metrics_on)
        except BaseException as exc:  # noqa: BLE001
            if outcomes[rank].error is None:
                outcomes[rank].error = "".join(
                    traceback.format_exception_only(type(exc), exc)
                ).strip()
            if scheduler is not None:
                scheduler.fail(rank, exc)
        else:
            if scheduler is not None:
                try:
                    scheduler.finish(rank)
                except BaseException as exc:  # noqa: BLE001
                    # e.g. the remaining ranks form a deadlock cycle
                    outcomes[rank].error = str(exc)
                    scheduler.fail(rank, exc)

    threads = [
        threading.Thread(target=entry, args=(r,), name=f"spmd-rank-{r}",
                         daemon=True)
        for r in range(size)
    ]
    for t in threads:
        t.start()
    join_deadline = None if timeout is None else time.monotonic() + 4 * timeout
    for t in threads:
        remaining = (
            None if join_deadline is None
            else max(join_deadline - time.monotonic(), 0.1)
        )
        t.join(remaining)
        if t.is_alive():
            raise SPMDError(
                f"rank thread {t.name} failed to terminate; pending "
                f"messages:\n{mailbox.pending_summary()}"
            )
    return outcomes, mailbox


def process_backend_available() -> bool:
    """Whether the multiprocess backend can run (POSIX fork + shared
    memory)."""
    import multiprocessing

    try:
        return "fork" in multiprocessing.get_all_start_methods()
    except Exception:  # pragma: no cover - defensive
        return False


def _run_in_processes(
    program, size, payloads, timeout, metrics_on: bool = False
) -> tuple[list[RankOutcome], None]:
    from repro.comm.shm import run_in_processes

    return (
        run_in_processes(program, size, payloads, timeout,
                         metrics_on=metrics_on),
        None,
    )


def run_rank_programs(
    program: Callable,
    size: int,
    payloads: list | None = None,
    backend: str = "sequential",
    timeout: float | None = 60.0,
) -> list[RankOutcome]:
    """Execute ``program(comm, payloads[rank])`` on every rank.

    Returns the per-rank :class:`RankOutcome` list (rank order).  Each
    rank's tally is merged into the caller's active tally, and each
    rank's trace events land on the caller's active tracer — so a
    ``with tally() ... tracing(...)`` around this call observes the whole
    SPMD execution, with genuinely concurrent rank timelines under the
    threaded and multiprocess backends.

    Raises :class:`SPMDError` (with per-rank detail and the pending-queue
    dump) if any rank program fails or deadlocks.
    """
    if backend not in BACKENDS:
        raise ValueError(f"unknown backend {backend!r}; choose from {BACKENDS}")
    if size < 1:
        raise ValueError("need at least one rank")
    if payloads is None:
        payloads = [None] * size
    if len(payloads) != size:
        raise ValueError(f"need {size} payloads, got {len(payloads)}")

    # Metrics follow the tally/tracer discipline: each rank gets its own
    # registry exactly when the caller has one active, merged back at join.
    metrics_on = current_registry() is not None
    if backend == "processes":
        if not process_backend_available():
            raise SPMDError(
                "the multiprocess backend needs the POSIX 'fork' start "
                "method; use backend='threads' or 'sequential' instead"
            )
        outcomes, mailbox = _run_in_processes(
            program, size, payloads, timeout, metrics_on=metrics_on
        )
        tracer = active_tracer()
        if tracer is not None:
            for outcome in outcomes:
                for ev in outcome.events:
                    tracer.emit(ev)
    else:
        outcomes, mailbox = _run_in_threads(
            program, size, payloads, timeout,
            sequential=(backend == "sequential"), metrics_on=metrics_on,
        )
    _raise_on_errors(outcomes, mailbox)
    _merge_outcomes(outcomes)
    return outcomes


__all__ = [
    "BACKENDS",
    "BatonScheduler",
    "DeadlockError",
    "RankOutcome",
    "ReduceState",
    "SPMDError",
    "process_backend_available",
    "run_rank_programs",
]
