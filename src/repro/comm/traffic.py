"""Per-message traffic records.

Every halo-exchange message of the virtual cluster is logged as a
:class:`CommEvent`; the performance model replays these against its
PCI-E/InfiniBand stage timings, and tests assert structural properties the
paper relies on (e.g. "allocation of ghost zones and data exchange in a
given dimension only takes place when that dimension is partitioned").
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CommEvent:
    """One point-to-point ghost-zone message.

    Attributes
    ----------
    src, dst:
        Virtual rank ids.
    mu:
        Lattice direction of the exchanged face (0..3).
    sign:
        +1 for the forward face, -1 for backward.
    nbytes:
        Payload size.
    kind:
        ``"spinor"`` (every operator application) or ``"gauge"`` (once per
        solve).
    wrapped:
        Whether the message crossed the global lattice boundary.
    """

    src: int
    dst: int
    mu: int
    sign: int
    nbytes: int
    kind: str = "spinor"
    wrapped: bool = False


@dataclass
class CommLog:
    """Accumulates :class:`CommEvent` records."""

    events: list[CommEvent] = field(default_factory=list)

    def add(self, event: CommEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    @property
    def total_bytes(self) -> int:
        return sum(e.nbytes for e in self.events)

    @property
    def message_count(self) -> int:
        return len(self.events)

    def bytes_by_dimension(self) -> dict[int, int]:
        out: Counter[int] = Counter()
        for e in self.events:
            out[e.mu] += e.nbytes
        return dict(out)

    def dimensions_exchanged(self) -> set[int]:
        return {e.mu for e in self.events}

    def bytes_per_rank(self, size: int) -> list[int]:
        out = [0] * size
        for e in self.events:
            out[e.src] += e.nbytes
        return out
