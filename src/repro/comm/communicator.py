"""The rank-local communication interface of the SPMD execution model.

The paper's scaling rests on SPMD execution: every GPU runs the *same*
rank-local program, and all inter-rank data movement goes through a
message-passing interface (MPI or QMP).  A :class:`Communicator` is this
reproduction's equivalent of an ``MPI_Comm`` handle: a *per-rank
endpoint* exposing

* ``rank`` / ``size`` — who am I, how many of us are there,
* ``isend`` / ``irecv`` / ``wait`` / ``wait_any`` — non-blocking
  point-to-point messages (sends are eager and buffered, so posting
  every send before any receive can never deadlock — the discipline the
  halo engine follows; receives are genuinely posted at ``irecv`` time
  and completed by ``wait``/``test``/``wait_any``),
* ``allreduce_sum`` — the global reduction Krylov inner products need,
  summed in a *fixed rank order* so every backend produces bit-identical
  scalars,
* ``barrier`` — a full synchronization point.

Rank programs (:mod:`repro.multigpu.rank_halo`,
:mod:`repro.core.spmd`) are written against this protocol only; the
interchangeable backends in :mod:`repro.comm.backends` (sequential /
threads / processes) supply concrete endpoints.

Cost accounting convention (kept consistent with the global-view
:meth:`repro.comm.mailbox.Mailbox.allreduce_sum` so that merged per-rank
tallies reproduce the global-view numbers exactly):

* every point-to-point send charges ``messages=1`` and its *wire* bytes
  to the sender's tally — the logical ``CommEvent.nbytes`` when an event
  is attached (reduced-precision halos carry fewer bytes on the wire
  than their physical numpy carrier holds), the physical payload bytes
  otherwise; the ``comm_bytes_total`` metric counter uses the same rule,
  so metric and tally always agree;
* an allreduce charges each participant its own wire share
  (``comm_bytes = nbytes``, ``messages = 1``) while the single collective
  ``reductions=1`` is charged to rank 0 — summing the per-rank tallies
  therefore gives ``reductions=1, messages=size, comm_bytes=nbytes*size``
  per collective, exactly the global-view accounting.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommEvent
from repro.metrics.registry import current_registry
from repro.metrics.straggler import ALLREDUCE_WAIT, BARRIER_WAIT, RECV_WAIT
from repro.util.counters import record

#: Names of the interchangeable SPMD backends (see repro.comm.backends).
BACKENDS = ("sequential", "threads", "processes")


def reduce_in_rank_order(parts: list):
    """The canonical allreduce fold: ``((p0 + p1) + p2) + ...``.

    Every backend (and the global-view
    :meth:`~repro.comm.mailbox.Mailbox.allreduce_sum`) combines per-rank
    contributions with this exact left fold, which is what makes residual
    histories bit-identical across sequential, threaded and multiprocess
    execution.
    """
    return sum(parts[1:], start=parts[0])


def wire_nbytes(payload, event: CommEvent | None) -> int:
    """Bytes a send puts on the wire: the event's logical byte count when
    one is attached (reduced-precision halos travel smaller than their
    physical numpy carrier), the physical payload bytes otherwise."""
    if event is not None:
        return int(event.nbytes)
    return int(np.asarray(payload).nbytes)


def record_collective(rank: int, value) -> None:
    """Charge one rank's share of an allreduce to the active tally (see
    the accounting convention in the module docstring)."""
    nbytes = np.asarray(value).nbytes
    record(
        comm_bytes=nbytes,
        messages=1,
        reductions=1 if rank == 0 else 0,
    )


@dataclass
class SendHandle:
    """Handle of a posted (eager, already-buffered) send."""

    dst: int
    tag: Any = 0
    complete: bool = True

    def wait(self) -> None:
        return None


@dataclass
class RecvHandle:
    """Handle of a posted receive.

    The receive is *posted* at :meth:`Communicator.irecv` time; arrival
    is checked without blocking by :meth:`test`, and :meth:`wait` blocks
    only for the remaining in-flight time (through
    :meth:`Communicator.wait_any`, so the recv-wait histogram measures
    the true completion wait, not the whole transfer)."""

    comm: "Communicator"
    src: int
    tag: Any = 0
    _data: np.ndarray | None = field(default=None, repr=False)
    _done: bool = False

    @property
    def complete(self) -> bool:
        return self._done

    def test(self) -> bool:
        """Whether the message has arrived (pulls it in if so; never
        blocks)."""
        if not self._done:
            self.comm._try_complete(self)
        return self._done

    def wait(self) -> np.ndarray:
        if not self._done:
            self.comm.wait_any([self])
        return self._data


class Communicator(abc.ABC):
    """Per-rank endpoint of the SPMD message-passing interface."""

    rank: int
    size: int

    # -- point to point --------------------------------------------------
    @abc.abstractmethod
    def isend(
        self, dst: int, payload: np.ndarray, tag=0,
        event: CommEvent | None = None,
    ) -> SendHandle:
        """Post an eager (buffered) send; never blocks."""

    def irecv(self, src: int, tag=0) -> RecvHandle:
        """Post a receive; complete it with ``wait``/``test``/``wait_any``
        (an already-arrived message is claimed without blocking)."""
        return RecvHandle(self, src, tag)

    def wait(self, handle):
        """Complete a send or receive handle (returns the payload for
        receives, ``None`` for sends)."""
        return handle.wait()

    def wait_any(self, handles: list) -> int:
        """Block until one incomplete receive handle completes; returns
        its index into ``handles``.

        Completes exactly one handle per call (the lowest-index ready one
        — deterministic whenever arrival state is), and observes exactly
        one recv-wait histogram sample covering only the time this call
        actually blocked.  Completing N handles therefore costs N
        observations whichever path claimed them — blocking ``recv``,
        ``wait`` or ``wait_any`` — which keeps wait-observation counts
        backend-invariant.
        """
        reg = current_registry()
        if reg is None:
            return self._wait_any(handles)
        start = time.perf_counter()
        index = self._wait_any(handles)
        reg.histogram(RECV_WAIT, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return index

    def _wait_any(self, handles: list) -> int:
        raise NotImplementedError  # pragma: no cover - endpoint-specific

    def _try_complete(self, handle: RecvHandle) -> bool:
        raise NotImplementedError  # pragma: no cover - endpoint-specific

    @abc.abstractmethod
    def recv(self, src: int, tag=0) -> np.ndarray:
        """Blocking receive (``wait(irecv(...))`` shorthand)."""

    def send(self, dst: int, payload: np.ndarray, tag=0,
             event: CommEvent | None = None) -> None:
        """Blocking send (sends are eager, so this is just ``isend``)."""
        self.wait(self.isend(dst, payload, tag, event=event))

    # -- collectives -----------------------------------------------------
    @abc.abstractmethod
    def allreduce_sum(self, value):
        """Global sum of one per-rank contribution, folded in rank order;
        every rank receives the identical result."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""


class MailboxCommunicator(Communicator):
    """A rank endpoint over a shared in-process :class:`Mailbox`.

    Two modes:

    * ``blocking=False`` (default) — the *driver* mode used by the
      global-view :class:`~repro.multigpu.halo.HaloExchanger`, whose
      single thread orders all sends before the matching receives; a
      missing message is a bug and raises immediately.
    * ``blocking=True`` — the threaded SPMD mode: ``recv`` waits on the
      mailbox's condition variable (bounded by ``timeout``).

    Collectives need a rendezvous object shared by all ranks
    (:class:`repro.comm.backends.ReduceState`); driver-mode endpoints are
    created without one and raise if a collective is attempted (the
    driver reduces through ``Mailbox.allreduce_sum`` directly).
    """

    def __init__(
        self,
        mailbox: Mailbox,
        rank: int,
        blocking: bool = False,
        timeout: float | None = None,
        reducer=None,
        scheduler=None,
    ):
        if not 0 <= rank < mailbox.size:
            raise ValueError(f"rank {rank} out of range for {mailbox.size}")
        self.mailbox = mailbox
        self.rank = rank
        self.size = mailbox.size
        self.blocking = blocking
        self.timeout = timeout
        self.reducer = reducer
        self.scheduler = scheduler

    # -- point to point --------------------------------------------------
    def isend(self, dst, payload, tag=0, event=None) -> SendHandle:
        reg = current_registry()
        if reg is not None:
            reg.counter("comm_messages_total", rank=self.rank).inc()
            reg.counter("comm_bytes_total", rank=self.rank).inc(
                wire_nbytes(payload, event)
            )
        self.mailbox.send(self.rank, dst, payload, tag=tag, event=event)
        if self.scheduler is not None:
            self.scheduler.notify(self.rank)
        return SendHandle(dst, tag)

    def recv(self, src, tag=0) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._recv(src, tag)
        start = time.perf_counter()
        data = self._recv(src, tag)
        reg.histogram(RECV_WAIT, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return data

    def _recv(self, src, tag=0) -> np.ndarray:
        if self.scheduler is not None:
            # Sequential backend: yield the baton until the message is in,
            # then pop it without blocking.
            self.scheduler.wait_for(
                self.rank,
                lambda: self.mailbox.probe(self.rank, src, tag),
                describe=lambda: self.mailbox._deadlock_message(
                    src, self.rank, tag
                ),
            )
            return self.mailbox.recv(self.rank, src, tag)
        return self.mailbox.recv(
            self.rank, src, tag, block=self.blocking, timeout=self.timeout
        )

    def _try_complete(self, handle) -> bool:
        """Claim a posted receive's message if it has arrived (no block)."""
        if handle._done:
            return True
        if self.mailbox.probe(self.rank, handle.src, handle.tag):
            handle._data = self.mailbox.recv(self.rank, handle.src, handle.tag)
            handle._done = True
            return True
        return False

    def _wait_any(self, handles: list) -> int:
        pending = [(i, h) for i, h in enumerate(handles) if not h._done]
        if not pending:
            raise ValueError("wait_any: every handle is already complete")

        def ready() -> bool:
            # Side-effect free: the baton scheduler evaluates waiting
            # ranks' predicates from *other* ranks' threads, so the pop
            # must happen on the owning thread, after the wake-up.
            return any(
                self.mailbox.probe(self.rank, h.src, h.tag)
                for _, h in pending
            )

        def describe() -> str:
            faces = ", ".join(f"{h.src}->{self.rank} tag={h.tag!r}"
                              for _, h in pending)
            return (
                f"wait_any blocked on {len(pending)} posted receive(s) "
                f"[{faces}]; pending queues:\n"
                f"{self.mailbox.pending_summary()}"
            )

        if self.scheduler is not None:
            # Sequential backend: yield the baton until a message is in.
            self.scheduler.wait_for(self.rank, ready, describe=describe)
        elif self.blocking:
            self.mailbox.wait_any(
                self.rank,
                [(h.src, h.tag) for _, h in pending],
                timeout=self.timeout,
            )
        for i, h in pending:
            if self._try_complete(h):
                return i
        # Driver mode reaches here when no posted message exists — the
        # single-threaded driver can never make one appear.
        raise RuntimeError(f"recv deadlock: {describe()}")

    # -- collectives -----------------------------------------------------
    def _require_reducer(self):
        if self.reducer is None:
            raise RuntimeError(
                "this endpoint has no collective rendezvous (driver-mode "
                "MailboxCommunicator); use an SPMD backend from "
                "repro.comm.backends for allreduce/barrier"
            )
        return self.reducer

    def _rendezvous(self, value, describe_what: str):
        """Deposit + collect one collective generation, measuring the
        rendezvous wait (deposit until every rank's contribution is in)."""
        reducer = self._require_reducer()
        reg = current_registry()
        start = time.perf_counter() if reg is not None else 0.0
        gen = reducer.deposit(self.rank, value)
        if self.scheduler is not None:
            self.scheduler.wait_for(
                self.rank,
                lambda: reducer.ready(gen),
                describe=lambda: (
                    f"{describe_what} #{gen} stalled: {reducer.describe(gen)}"
                ),
            )
            result = reducer.collect(self.rank, gen, timeout=0)
        else:
            result = reducer.collect(self.rank, gen, timeout=self.timeout)
        if reg is not None:
            name = (
                ALLREDUCE_WAIT if describe_what == "allreduce"
                else BARRIER_WAIT
            )
            reg.histogram(name, rank=self.rank).observe(
                time.perf_counter() - start
            )
        return result

    def allreduce_sum(self, value):
        result = self._rendezvous(value, "allreduce")
        record_collective(self.rank, value)
        return result

    def barrier(self) -> None:
        self._rendezvous(np.int64(0), "barrier")
