"""The rank-local communication interface of the SPMD execution model.

The paper's scaling rests on SPMD execution: every GPU runs the *same*
rank-local program, and all inter-rank data movement goes through a
message-passing interface (MPI or QMP).  A :class:`Communicator` is this
reproduction's equivalent of an ``MPI_Comm`` handle: a *per-rank
endpoint* exposing

* ``rank`` / ``size`` — who am I, how many of us are there,
* ``isend`` / ``irecv`` / ``wait`` — non-blocking point-to-point
  messages (sends are eager and buffered, so posting every send before
  any receive can never deadlock — the discipline the halo engine
  follows),
* ``allreduce_sum`` — the global reduction Krylov inner products need,
  summed in a *fixed rank order* so every backend produces bit-identical
  scalars,
* ``barrier`` — a full synchronization point.

Rank programs (:mod:`repro.multigpu.rank_halo`,
:mod:`repro.core.spmd`) are written against this protocol only; the
interchangeable backends in :mod:`repro.comm.backends` (sequential /
threads / processes) supply concrete endpoints.

Cost accounting convention (kept consistent with the global-view
:meth:`repro.comm.mailbox.Mailbox.allreduce_sum` so that merged per-rank
tallies reproduce the global-view numbers exactly):

* every point-to-point send charges ``messages=1`` and its payload bytes
  to the *sender's* tally;
* an allreduce charges each participant its own wire share
  (``comm_bytes = nbytes``, ``messages = 1``) while the single collective
  ``reductions=1`` is charged to rank 0 — summing the per-rank tallies
  therefore gives ``reductions=1, messages=size, comm_bytes=nbytes*size``
  per collective, exactly the global-view accounting.
"""

from __future__ import annotations

import abc
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.comm.mailbox import Mailbox
from repro.comm.traffic import CommEvent
from repro.metrics.registry import current_registry
from repro.metrics.straggler import ALLREDUCE_WAIT, BARRIER_WAIT, RECV_WAIT
from repro.util.counters import record

#: Names of the interchangeable SPMD backends (see repro.comm.backends).
BACKENDS = ("sequential", "threads", "processes")


def reduce_in_rank_order(parts: list):
    """The canonical allreduce fold: ``((p0 + p1) + p2) + ...``.

    Every backend (and the global-view
    :meth:`~repro.comm.mailbox.Mailbox.allreduce_sum`) combines per-rank
    contributions with this exact left fold, which is what makes residual
    histories bit-identical across sequential, threaded and multiprocess
    execution.
    """
    return sum(parts[1:], start=parts[0])


def record_collective(rank: int, value) -> None:
    """Charge one rank's share of an allreduce to the active tally (see
    the accounting convention in the module docstring)."""
    nbytes = np.asarray(value).nbytes
    record(
        comm_bytes=nbytes,
        messages=1,
        reductions=1 if rank == 0 else 0,
    )


@dataclass
class SendHandle:
    """Handle of a posted (eager, already-buffered) send."""

    dst: int
    tag: Any = 0
    complete: bool = True

    def wait(self) -> None:
        return None


@dataclass
class RecvHandle:
    """Handle of a posted receive; ``wait`` blocks until the message is in."""

    comm: "Communicator"
    src: int
    tag: Any = 0
    _data: np.ndarray | None = field(default=None, repr=False)
    _done: bool = False

    def wait(self) -> np.ndarray:
        if not self._done:
            self._data = self.comm.recv(self.src, self.tag)
            self._done = True
        return self._data


class Communicator(abc.ABC):
    """Per-rank endpoint of the SPMD message-passing interface."""

    rank: int
    size: int

    # -- point to point --------------------------------------------------
    @abc.abstractmethod
    def isend(
        self, dst: int, payload: np.ndarray, tag=0,
        event: CommEvent | None = None,
    ) -> SendHandle:
        """Post an eager (buffered) send; never blocks."""

    def irecv(self, src: int, tag=0) -> RecvHandle:
        """Post a receive; the message is pulled in at :meth:`wait`."""
        return RecvHandle(self, src, tag)

    def wait(self, handle):
        """Complete a send or receive handle (returns the payload for
        receives, ``None`` for sends)."""
        return handle.wait()

    @abc.abstractmethod
    def recv(self, src: int, tag=0) -> np.ndarray:
        """Blocking receive (``wait(irecv(...))`` shorthand)."""

    def send(self, dst: int, payload: np.ndarray, tag=0,
             event: CommEvent | None = None) -> None:
        """Blocking send (sends are eager, so this is just ``isend``)."""
        self.wait(self.isend(dst, payload, tag, event=event))

    # -- collectives -----------------------------------------------------
    @abc.abstractmethod
    def allreduce_sum(self, value):
        """Global sum of one per-rank contribution, folded in rank order;
        every rank receives the identical result."""

    @abc.abstractmethod
    def barrier(self) -> None:
        """Block until every rank has entered the barrier."""


class MailboxCommunicator(Communicator):
    """A rank endpoint over a shared in-process :class:`Mailbox`.

    Two modes:

    * ``blocking=False`` (default) — the *driver* mode used by the
      global-view :class:`~repro.multigpu.halo.HaloExchanger`, whose
      single thread orders all sends before the matching receives; a
      missing message is a bug and raises immediately.
    * ``blocking=True`` — the threaded SPMD mode: ``recv`` waits on the
      mailbox's condition variable (bounded by ``timeout``).

    Collectives need a rendezvous object shared by all ranks
    (:class:`repro.comm.backends.ReduceState`); driver-mode endpoints are
    created without one and raise if a collective is attempted (the
    driver reduces through ``Mailbox.allreduce_sum`` directly).
    """

    def __init__(
        self,
        mailbox: Mailbox,
        rank: int,
        blocking: bool = False,
        timeout: float | None = None,
        reducer=None,
        scheduler=None,
    ):
        if not 0 <= rank < mailbox.size:
            raise ValueError(f"rank {rank} out of range for {mailbox.size}")
        self.mailbox = mailbox
        self.rank = rank
        self.size = mailbox.size
        self.blocking = blocking
        self.timeout = timeout
        self.reducer = reducer
        self.scheduler = scheduler

    # -- point to point --------------------------------------------------
    def isend(self, dst, payload, tag=0, event=None) -> SendHandle:
        reg = current_registry()
        if reg is not None:
            reg.counter("comm_messages_total", rank=self.rank).inc()
            reg.counter("comm_bytes_total", rank=self.rank).inc(
                np.asarray(payload).nbytes
            )
        self.mailbox.send(self.rank, dst, payload, tag=tag, event=event)
        if self.scheduler is not None:
            self.scheduler.notify(self.rank)
        return SendHandle(dst, tag)

    def recv(self, src, tag=0) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._recv(src, tag)
        start = time.perf_counter()
        data = self._recv(src, tag)
        reg.histogram(RECV_WAIT, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return data

    def _recv(self, src, tag=0) -> np.ndarray:
        if self.scheduler is not None:
            # Sequential backend: yield the baton until the message is in,
            # then pop it without blocking.
            self.scheduler.wait_for(
                self.rank,
                lambda: self.mailbox.probe(self.rank, src, tag),
                describe=lambda: self.mailbox._deadlock_message(
                    src, self.rank, tag
                ),
            )
            return self.mailbox.recv(self.rank, src, tag)
        return self.mailbox.recv(
            self.rank, src, tag, block=self.blocking, timeout=self.timeout
        )

    # -- collectives -----------------------------------------------------
    def _require_reducer(self):
        if self.reducer is None:
            raise RuntimeError(
                "this endpoint has no collective rendezvous (driver-mode "
                "MailboxCommunicator); use an SPMD backend from "
                "repro.comm.backends for allreduce/barrier"
            )
        return self.reducer

    def _rendezvous(self, value, describe_what: str):
        """Deposit + collect one collective generation, measuring the
        rendezvous wait (deposit until every rank's contribution is in)."""
        reducer = self._require_reducer()
        reg = current_registry()
        start = time.perf_counter() if reg is not None else 0.0
        gen = reducer.deposit(self.rank, value)
        if self.scheduler is not None:
            self.scheduler.wait_for(
                self.rank,
                lambda: reducer.ready(gen),
                describe=lambda: (
                    f"{describe_what} #{gen} stalled: {reducer.describe(gen)}"
                ),
            )
            result = reducer.collect(self.rank, gen, timeout=0)
        else:
            result = reducer.collect(self.rank, gen, timeout=self.timeout)
        if reg is not None:
            name = (
                ALLREDUCE_WAIT if describe_what == "allreduce"
                else BARRIER_WAIT
            )
            reg.histogram(name, rank=self.rank).observe(
                time.perf_counter() - start
            )
        return result

    def allreduce_sum(self, value):
        result = self._rendezvous(value, "allreduce")
        record_collective(self.rank, value)
        return result

    def barrier(self) -> None:
        self._rendezvous(np.int64(0), "barrier")
