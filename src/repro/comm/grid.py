"""Cartesian process grids for multi-dimensional lattice partitioning.

The paper's central infrastructure contribution is moving from T-only
partitioning to arbitrary subsets of {X, Y, Z, T}; a :class:`ProcessGrid`
captures one such decomposition: how many ranks along each direction, rank
<-> coordinate maps, and neighbor lookup with wraparound detection (needed
to apply the global fermion boundary condition to ghost faces).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

import numpy as np

from repro.lattice.geometry import DIR_NAMES


@dataclass(frozen=True)
class ProcessGrid:
    """A 4-dimensional grid of virtual ranks.

    ``dims`` is physics-ordered ``(px, py, pz, pt)``.  Ranks are numbered
    with the X grid coordinate fastest (mirroring the lattice site order).
    """

    dims: tuple[int, int, int, int]

    def __post_init__(self):
        if len(self.dims) != 4 or any(d < 1 for d in self.dims):
            raise ValueError(f"invalid grid dims {self.dims}")

    @property
    def size(self) -> int:
        return int(np.prod(self.dims))

    @cached_property
    def partitioned_dims(self) -> tuple[int, ...]:
        """Directions actually split across ranks (grid extent > 1)."""
        return tuple(mu for mu in range(4) if self.dims[mu] > 1)

    @property
    def label(self) -> str:
        """Human label like "ZT" or "XYZT" (the legend style of Figs. 6/10)."""
        if not self.partitioned_dims:
            return "serial"
        return "".join(DIR_NAMES[mu] for mu in self.partitioned_dims)

    # ------------------------------------------------------------------
    def coords(self, rank: int) -> tuple[int, int, int, int]:
        """Grid coordinates ``(cx, cy, cz, ct)`` of a rank."""
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range for grid size {self.size}")
        out = []
        for mu in range(4):
            out.append(rank % self.dims[mu])
            rank //= self.dims[mu]
        return tuple(out)

    def rank_of(self, coords: tuple[int, int, int, int]) -> int:
        rank = 0
        for mu in reversed(range(4)):
            c = coords[mu] % self.dims[mu]
            rank = rank * self.dims[mu] + c
        return rank

    def neighbor(self, rank: int, mu: int, sign: int) -> tuple[int, bool]:
        """The neighboring rank one step along ``mu`` and whether the hop
        wraps around the global lattice (where boundary factors apply)."""
        if sign not in (+1, -1):
            raise ValueError("sign must be +1 or -1")
        coords = list(self.coords(rank))
        raw = coords[mu] + sign
        wrapped = not 0 <= raw < self.dims[mu]
        coords[mu] = raw % self.dims[mu]
        return self.rank_of(tuple(coords)), wrapped

    def all_ranks(self) -> range:
        return range(self.size)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return "x".join(str(d) for d in self.dims) + f" grid ({self.label})"


def choose_grid(
    n_ranks: int,
    partition_dims: tuple[int, ...],
    lattice_dims: tuple[int, int, int, int],
) -> ProcessGrid:
    """Factor ``n_ranks`` over the given directions, preferring cuts that
    keep local sub-lattices as cubic as possible.

    This mirrors how the paper's runs lay out GPUs: e.g. 256 GPUs with
    ``partition_dims=(2, 3)`` ("ZT") on 64^3x192 would split Z and T.
    Raises if ``n_ranks`` cannot be factored into the available extents
    (every local extent must stay an even integer >= 2).
    """
    if n_ranks < 1:
        raise ValueError("need at least one rank")
    dims = [1, 1, 1, 1]
    local = list(lattice_dims)
    remaining = n_ranks
    while remaining > 1:
        if remaining % 2:
            raise ValueError(f"cannot factor odd rank count {n_ranks} over 2s")
        # Halve the direction (among those allowed) with the largest local
        # extent that can still be halved to an even extent >= 2.
        candidates = [
            mu
            for mu in partition_dims
            if local[mu] % 2 == 0 and local[mu] // 2 >= 2 and local[mu] // 2 % 2 == 0
        ]
        if not candidates:
            raise ValueError(
                f"cannot place {n_ranks} ranks over dims {partition_dims} "
                f"of lattice {lattice_dims}"
            )
        mu = max(candidates, key=lambda m: local[m])
        dims[mu] *= 2
        local[mu] //= 2
        remaining //= 2
    return ProcessGrid(tuple(dims))
