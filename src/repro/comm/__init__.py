"""The virtual-cluster communication substrate.

Stands in for the MPI/QMP + InfiniBand stack of the Edge cluster: a
:class:`ProcessGrid` describes the Cartesian rank layout, a
:class:`Mailbox` moves real data between virtual ranks in-process while
logging every message, and :class:`CommLog` keeps the per-message records
the performance model replays against its interconnect timings.
"""

from repro.comm.grid import ProcessGrid, choose_grid
from repro.comm.mailbox import Mailbox
from repro.comm.qmp import QMPChannel
from repro.comm.traffic import CommEvent, CommLog

__all__ = [
    "ProcessGrid",
    "choose_grid",
    "Mailbox",
    "QMPChannel",
    "CommEvent",
    "CommLog",
]
