"""The virtual-cluster communication substrate.

Stands in for the MPI/QMP + InfiniBand stack of the Edge cluster: a
:class:`ProcessGrid` describes the Cartesian rank layout, a
:class:`Mailbox` moves real data between virtual ranks in-process while
logging every message, and :class:`CommLog` keeps the per-message records
the performance model replays against its interconnect timings.

The SPMD layer sits on top: a :class:`Communicator` is one rank's
endpoint (``rank``/``size``/``isend``/``irecv``/``wait``/
``allreduce_sum``/``barrier``), and :func:`run_rank_programs` executes
the same rank program across every rank under one of three
interchangeable backends (``sequential``, ``threads``, ``processes``)
that produce bit-identical numerics.
"""

from repro.comm.backends import (
    DeadlockError,
    RankOutcome,
    SPMDError,
    process_backend_available,
    run_rank_programs,
)
from repro.comm.communicator import (
    BACKENDS,
    Communicator,
    MailboxCommunicator,
    reduce_in_rank_order,
)
from repro.comm.grid import ProcessGrid, choose_grid
from repro.comm.mailbox import Mailbox
from repro.comm.qmp import QMPChannel
from repro.comm.shm import ShmCommunicator
from repro.comm.traffic import CommEvent, CommLog

__all__ = [
    "BACKENDS",
    "Communicator",
    "MailboxCommunicator",
    "ShmCommunicator",
    "DeadlockError",
    "SPMDError",
    "RankOutcome",
    "run_rank_programs",
    "process_backend_available",
    "reduce_in_rank_order",
    "ProcessGrid",
    "choose_grid",
    "Mailbox",
    "QMPChannel",
    "CommEvent",
    "CommLog",
]
