"""In-process message passing between virtual ranks (the "MPI" layer).

The paper's implementation can sit on either MPI or QMP; here both map to
a :class:`Mailbox`, which moves numpy payloads between rank queues with
copy semantics (like a real interconnect: the receiver never aliases the
sender's buffer) and records flop-free cost to the active tally plus a
:class:`CommLog` when provided.

The mailbox serves two execution models (docs/architecture.md, "Execution
model"):

* the *global-view driver* (one thread iterating all ranks) uses the
  default non-blocking :meth:`recv` — a missing message there is a
  programming error and raises immediately with a dump of the pending
  queues;
* the *SPMD backends* (:mod:`repro.comm.backends`) run one rank program
  per thread and use ``recv(block=True)``, which waits on a condition
  variable until a matching message arrives (or a timeout expires, which
  again raises with the pending-queue dump instead of hanging — the
  deadlock diagnostic the threaded backend's tests rely on).

All queue mutation happens under one lock, so a mailbox may be shared
freely between rank threads.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

from repro.comm.traffic import CommEvent, CommLog
from repro.metrics.registry import observe as _observe_metric
from repro.util.counters import record


class Mailbox:
    """Point-to-point queues plus reductions for ``size`` virtual ranks."""

    def __init__(self, size: int, log: CommLog | None = None):
        if size < 1:
            raise ValueError("mailbox needs at least one rank")
        self.size = size
        self.log = log
        self._queues: dict[tuple[int, int, object], deque] = {}
        self._cond = threading.Condition()

    def _queue(self, src: int, dst: int, tag) -> deque:
        key = (src, dst, tag)
        if key not in self._queues:
            self._queues[key] = deque()
        return self._queues[key]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")

    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: np.ndarray,
        tag=0,
        event: CommEvent | None = None,
    ) -> None:
        """Copy ``payload`` into the (src, dst, tag) queue."""
        self._check_rank(src)
        self._check_rank(dst)
        data = np.array(payload, copy=True)
        with self._cond:
            self._queue(src, dst, tag).append(data)
            if self.log is not None:
                self.log.add(
                    event
                    or CommEvent(src=src, dst=dst, mu=-1, sign=0, nbytes=data.nbytes)
                )
            self._cond.notify_all()
        # Charge the *wire* bytes: the event's logical count when one is
        # attached (reduced-precision halos travel smaller than their
        # physical carrier array), the physical bytes otherwise — the
        # same rule the comm_bytes_total metric counter applies.
        record(
            comm_bytes=data.nbytes if event is None else int(event.nbytes),
            messages=1,
        )

    def recv(
        self,
        dst: int,
        src: int,
        tag=0,
        block: bool = False,
        timeout: float | None = None,
    ) -> np.ndarray:
        """Pop the oldest matching message.

        Non-blocking by default (the global-view driver guarantees every
        receive is already satisfied); raises with a dump of the pending
        queues if none matches.  With ``block=True`` the call waits on the
        mailbox's condition variable until a matching message is sent —
        the behavior SPMD rank threads need — and a ``timeout`` (seconds)
        turns a genuine deadlock into the same diagnostic instead of a
        hang.
        """
        self._check_rank(src)
        self._check_rank(dst)
        with self._cond:
            queue = self._queue(src, dst, tag)
            if block:
                wait_start = time.perf_counter()
                deadline = None if timeout is None else time.monotonic() + timeout
                while not queue:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise RuntimeError(
                            self._deadlock_message(
                                src, dst, tag,
                                prefix=f"recv timed out after {timeout:g}s",
                            )
                        )
                    self._cond.wait(remaining)
                # Threads-backend detail (the condition-variable wait under
                # the mailbox lock); the backend-comparable wait lives in
                # the communicators' spmd_recv_wait_seconds histogram.
                _observe_metric(
                    "mailbox_recv_block_seconds",
                    time.perf_counter() - wait_start,
                )
            if not queue:
                raise RuntimeError(self._deadlock_message(src, dst, tag))
            return queue.popleft()

    def wait_any(
        self,
        dst: int,
        sources: list[tuple[int, object]],
        timeout: float | None = None,
    ) -> None:
        """Block on the condition variable until a message is pending from
        any ``(src, tag)`` in ``sources`` (the threads-backend half of
        :meth:`~repro.comm.communicator.Communicator.wait_any`).  The
        caller pops the message afterwards; like :meth:`recv`, a timeout
        raises the pending-queue diagnostic instead of hanging."""
        self._check_rank(dst)
        for src, _ in sources:
            self._check_rank(src)
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while not any(
                self._queues.get((src, dst, tag)) for src, tag in sources
            ):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    awaited = ", ".join(
                        f"{src}->{dst} tag={tag!r}" for src, tag in sources
                    )
                    raise RuntimeError(
                        f"wait_any timed out after {timeout:g}s awaiting "
                        f"[{awaited}]; pending queues:\n"
                        f"{self.pending_summary()}"
                    )
                self._cond.wait(remaining)

    def probe(self, dst: int, src: int, tag=0) -> bool:
        """Whether a matching message is pending (no side effects)."""
        self._check_rank(src)
        self._check_rank(dst)
        with self._cond:
            q = self._queues.get((src, dst, tag))
            return bool(q)

    def pending(self) -> int:
        """Total undelivered messages (tests assert 0 after an exchange)."""
        with self._cond:
            return sum(len(q) for q in self._queues.values())

    def pending_summary(self) -> str:
        """Human-readable dump of every non-empty queue: ``src->dst``, tag
        and message count — the first thing to read when an exchange
        deadlocks with mismatched sends and receives."""
        with self._cond:
            lines = [
                f"  {src} -> {dst}  tag={tag!r}  ({len(q)} message"
                f"{'s' if len(q) != 1 else ''})"
                for (src, dst, tag), q in sorted(
                    self._queues.items(), key=lambda kv: str(kv[0])
                )
                if q
            ]
        if not lines:
            return "  (no pending messages)"
        return "\n".join(lines)

    def _deadlock_message(self, src: int, dst: int, tag, prefix: str = "") -> str:
        head = prefix or "recv deadlock"
        return (
            f"{head}: no message from {src} to {dst} with tag {tag!r}; "
            f"pending queues:\n{self.pending_summary()}"
        )

    # ------------------------------------------------------------------
    def allreduce_sum(self, contributions: list):
        """Global sum over per-rank scalar (or small-array) contributions."""
        if len(contributions) != self.size:
            raise ValueError(
                f"allreduce needs one contribution per rank "
                f"({len(contributions)} != {self.size})"
            )
        # A real allreduce moves each rank's contribution over the wire —
        # charge one payload AND one message per participating rank (the
        # same per-rank share the SPMD communicators charge), alongside
        # the single collective reduction.
        nbytes = np.asarray(contributions[0]).nbytes
        record(
            reductions=1,
            comm_bytes=nbytes * self.size,
            messages=self.size,
        )
        return sum(contributions[1:], start=contributions[0])
