"""In-process message passing between virtual ranks (the "MPI" layer).

The paper's implementation can sit on either MPI or QMP; here both map to
a :class:`Mailbox`, which moves numpy payloads between rank queues with
copy semantics (like a real interconnect: the receiver never aliases the
sender's buffer) and records flop-free cost to the active tally plus a
:class:`CommLog` when provided.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.comm.traffic import CommEvent, CommLog
from repro.util.counters import record


class Mailbox:
    """Point-to-point queues plus reductions for ``size`` virtual ranks."""

    def __init__(self, size: int, log: CommLog | None = None):
        if size < 1:
            raise ValueError("mailbox needs at least one rank")
        self.size = size
        self.log = log
        self._queues: dict[tuple[int, int, object], deque] = {}

    def _queue(self, src: int, dst: int, tag) -> deque:
        key = (src, dst, tag)
        if key not in self._queues:
            self._queues[key] = deque()
        return self._queues[key]

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")

    # ------------------------------------------------------------------
    def send(
        self,
        src: int,
        dst: int,
        payload: np.ndarray,
        tag=0,
        event: CommEvent | None = None,
    ) -> None:
        """Copy ``payload`` into the (src, dst, tag) queue."""
        self._check_rank(src)
        self._check_rank(dst)
        data = np.array(payload, copy=True)
        self._queue(src, dst, tag).append(data)
        record(comm_bytes=data.nbytes, messages=1)
        if self.log is not None:
            self.log.add(
                event
                or CommEvent(src=src, dst=dst, mu=-1, sign=0, nbytes=data.nbytes)
            )

    def recv(self, dst: int, src: int, tag=0) -> np.ndarray:
        """Pop the oldest matching message; raises if none is pending."""
        self._check_rank(src)
        self._check_rank(dst)
        queue = self._queue(src, dst, tag)
        if not queue:
            raise RuntimeError(
                f"recv deadlock: no message from {src} to {dst} with tag {tag!r}"
            )
        return queue.popleft()

    def pending(self) -> int:
        """Total undelivered messages (tests assert 0 after an exchange)."""
        return sum(len(q) for q in self._queues.values())

    # ------------------------------------------------------------------
    def allreduce_sum(self, contributions: list):
        """Global sum over per-rank scalar (or small-array) contributions."""
        if len(contributions) != self.size:
            raise ValueError(
                f"allreduce needs one contribution per rank "
                f"({len(contributions)} != {self.size})"
            )
        # A real allreduce moves each rank's contribution over the wire:
        # charge one payload per participating rank alongside the event.
        nbytes = np.asarray(contributions[0]).nbytes
        record(reductions=1, comm_bytes=nbytes * self.size)
        return sum(contributions[1:], start=contributions[0])
