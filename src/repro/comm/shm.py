"""Shared-memory multiprocess backend for SPMD rank programs.

The threaded backend overlaps only numpy's GIL-releasing kernels; this
backend forks one worker process per rank so the compute-bound stencils
run truly core-parallel.  Message envelopes (src, tag, payload
descriptor) travel through one ``multiprocessing.Queue`` inbox per rank,
while payloads above a small inline threshold move through POSIX shared
memory (``multiprocessing.shared_memory``) — the sender copies the array
into a fresh segment and the receiver copies it out and unlinks it, so
payload bytes cross process boundaries exactly once and never go through
pickle.

Lifecycle of a segment (and the resource-tracker discipline that keeps
Python 3.10–3.12 from spewing leak warnings): the *sender* creates the
segment, immediately ``unregister``\\ s it from its own resource tracker
(ownership is being transferred), and closes its mapping; the *receiver*
attaches (which registers it), copies the data out, closes, and unlinks
(which unregisters).  A message that is never received therefore leaks
its segment until the machine reclaims ``/dev/shm`` — rank-program
failures are surfaced loudly for exactly this reason.

Workers come from a *persistent rank pool*: the first processes-backend
call forks one long-lived worker per rank, and later calls dispatch
pickled ``(program, payload)`` jobs to the same workers — repeated solves
pay the fork + warm-up cost once.  A job that cannot be pickled (rank
programs that are closures over live numpy arrays) falls back to the
original fork-per-call path, which inherits the closure through ``fork``;
a job that errors or times out retires its pool, since a failed rank
program may leave undelivered messages behind.  Requires the POSIX
``fork`` start method; availability is reported by
:func:`repro.comm.backends.process_backend_available`.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from queue import Empty

import numpy as np

from repro.comm.communicator import (
    Communicator,
    SendHandle,
    record_collective,
    reduce_in_rank_order,
    wire_nbytes,
)
from repro.metrics.registry import current_registry
from repro.metrics.straggler import ALLREDUCE_WAIT, BARRIER_WAIT, RECV_WAIT
from repro.util.counters import record, tally

#: Payloads at or below this many bytes ride inline in the queue envelope
#: (a shared-memory segment per tiny scalar message would cost more than
#: it saves).
INLINE_LIMIT = 1 << 16


def _unregister_segment(seg) -> None:
    """Detach a segment from this process's resource tracker (no-op if the
    tracker refuses)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(seg, "_name", seg.name),
                                    "shared_memory")
    except Exception:  # pragma: no cover - tracker quirks vary by version
        pass


def _pack(arr: np.ndarray):
    """Build the queue envelope payload descriptor for one array."""
    arr = np.asarray(arr)
    shape = arr.shape  # before ascontiguousarray, which promotes 0-d to 1-d
    arr = np.ascontiguousarray(arr)
    if arr.nbytes <= INLINE_LIMIT:
        return ("inline", arr.dtype.str, shape, arr.tobytes())
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr.reshape(shape)
    del view
    _unregister_segment(seg)  # ownership transfers to the receiver
    seg.close()
    return ("shm", seg.name, arr.dtype.str, arr.shape)


def _unpack(descriptor) -> np.ndarray:
    """Materialize (and retire) the payload behind a descriptor."""
    kind = descriptor[0]
    if kind == "inline":
        _, dtype, shape, raw = descriptor
        return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()
    _, name, dtype, shape = descriptor
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=name)
    try:
        data = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf).copy()
    finally:
        seg.close()
        seg.unlink()
    return data


class ShmCommunicator(Communicator):
    """A rank endpoint whose wire is queues + POSIX shared memory.

    Unlike the in-process mailbox, one inbox queue carries messages from
    *all* sources, so arrivals that don't match the receive currently
    being serviced are parked in per-(src, tag) local buffers — the
    standard unexpected-message queue of an MPI implementation.
    """

    def __init__(self, rank: int, size: int, inboxes, timeout: float | None = None):
        self.rank = rank
        self.size = size
        self.inboxes = inboxes
        self.timeout = timeout
        self._unexpected: dict[tuple, deque] = {}
        self._collective_gen = 0

    # -- point to point --------------------------------------------------
    def _post(self, dst: int, payload, tag, record_cost: bool,
              event=None) -> int:
        arr = np.asarray(payload)
        self.inboxes[dst].put((self.rank, tag, _pack(arr)))
        nbytes = wire_nbytes(arr, event)
        if record_cost:
            record(comm_bytes=nbytes, messages=1)
        return nbytes

    def isend(self, dst, payload, tag=0, event=None) -> SendHandle:
        reg = current_registry()
        if reg is not None:
            reg.counter("comm_messages_total", rank=self.rank).inc()
            reg.counter("comm_bytes_total", rank=self.rank).inc(
                wire_nbytes(payload, event)
            )
        self._post(dst, payload, tag, record_cost=True, event=event)
        return SendHandle(dst, tag)

    def recv(self, src, tag=0) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._recv(src, tag)
        start = time.perf_counter()
        data = self._recv(src, tag)
        reg.histogram(RECV_WAIT, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return data

    def _recv(self, src, tag=0) -> np.ndarray:
        """The raw receive.  Collective internals call this directly so
        their constituent messages don't pollute the per-rank recv-wait
        histogram (each backend then observes exactly one wait per
        user-level ``recv``/``allreduce``/``barrier`` call)."""
        key = (src, tag)
        buffered = self._unexpected.get(key)
        if buffered:
            return _unpack(buffered.popleft())
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        inbox = self.inboxes[self.rank]
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise RuntimeError(self._timeout_message(src, tag))
            try:
                got_src, got_tag, descriptor = inbox.get(
                    timeout=None if remaining is None else min(remaining, 0.5)
                )
            except Empty:
                continue
            if (got_src, got_tag) == key:
                return _unpack(descriptor)
            self._unexpected.setdefault((got_src, got_tag), deque()).append(
                descriptor
            )

    def _drain_inbox_nowait(self) -> bool:
        """Park every already-delivered envelope into the unexpected-message
        buffers without blocking; returns whether anything was drained."""
        inbox = self.inboxes[self.rank]
        drained = False
        while True:
            try:
                got_src, got_tag, descriptor = inbox.get_nowait()
            except Empty:
                return drained
            self._unexpected.setdefault((got_src, got_tag), deque()).append(
                descriptor
            )
            drained = True

    def _try_complete(self, handle) -> bool:
        """Claim a posted receive's message if it has arrived (no block)."""
        if handle._done:
            return True
        self._drain_inbox_nowait()
        buffered = self._unexpected.get((handle.src, handle.tag))
        if buffered:
            handle._data = _unpack(buffered.popleft())
            handle._done = True
            return True
        return False

    def _wait_any(self, handles: list) -> int:
        pending = [(i, h) for i, h in enumerate(handles) if not h._done]
        if not pending:
            raise ValueError("wait_any: every handle is already complete")
        # Lowest-index-first over the local buffers, then the inbox in
        # delivery order: arrivals that match none of the pending handles
        # are parked exactly like in _recv.
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        inbox = self.inboxes[self.rank]
        while True:
            for i, h in pending:
                buffered = self._unexpected.get((h.src, h.tag))
                if buffered:
                    h._data = _unpack(buffered.popleft())
                    h._done = True
                    return i
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                awaited = ", ".join(
                    f"{h.src}->{self.rank} tag={h.tag!r}" for _, h in pending
                )
                raise RuntimeError(
                    f"wait_any timed out after {self.timeout:g}s awaiting "
                    f"[{awaited}]; locally buffered messages:\n"
                    f"{self._buffered_summary()}"
                )
            try:
                got_src, got_tag, descriptor = inbox.get(
                    timeout=None if remaining is None else min(remaining, 0.5)
                )
            except Empty:
                continue
            self._unexpected.setdefault((got_src, got_tag), deque()).append(
                descriptor
            )

    def _buffered_summary(self) -> str:
        lines = [
            f"  {s} -> {self.rank}  tag={t!r}  ({len(q)} message"
            f"{'s' if len(q) != 1 else ''})"
            for (s, t), q in sorted(
                self._unexpected.items(), key=lambda kv: str(kv[0])
            )
            if q
        ]
        return "\n".join(lines) if lines else "  (none)"

    def _timeout_message(self, src, tag) -> str:
        return (
            f"recv timed out after {self.timeout:g}s: no message from {src} "
            f"to {self.rank} with tag {tag!r}; locally buffered messages:\n"
            f"{self._buffered_summary()}"
        )

    # -- collectives -----------------------------------------------------
    def allreduce_sum(self, value):
        result = self._timed_collective(value, ALLREDUCE_WAIT)
        record_collective(self.rank, value)
        return result[()] if result.ndim == 0 else result

    def barrier(self) -> None:
        # A barrier is an allreduce nobody reads — and charges nothing.
        self._timed_collective(np.int64(0), BARRIER_WAIT)

    def _timed_collective(self, value, wait_metric: str) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._gather_fold_broadcast(value)
        start = time.perf_counter()
        result = self._gather_fold_broadcast(value)
        reg.histogram(wait_metric, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return result

    def _gather_fold_broadcast(self, value) -> np.ndarray:
        """Gather-to-root, rank-ordered fold, broadcast.  The constituent
        sends and receives are raw (uncharged, unobserved): the
        collective's cost is charged once, per the convention in
        :mod:`repro.comm.communicator`, and its wait is observed once by
        :meth:`_timed_collective`."""
        gen = self._collective_gen
        self._collective_gen += 1
        up, down = ("__coll__", gen, "up"), ("__coll__", gen, "down")
        if self.rank == 0:
            parts = [np.asarray(value)]
            parts += [self._recv(r, up) for r in range(1, self.size)]
            result = np.asarray(reduce_in_rank_order(parts))
            for r in range(1, self.size):
                self._post(r, result, down, record_cost=False)
            return result
        self._post(0, value, up, record_cost=False)
        return self._recv(0, down)


# ----------------------------------------------------------------------
# the process runner
# ----------------------------------------------------------------------
def _run_rank_job(comm, program, rank, payload, epoch, metrics_on):
    """Run one rank program against an existing communicator; returns
    ``(value, tally, trace events, error, metrics snapshot)``."""
    from contextlib import nullcontext

    from repro.metrics.registry import MetricsRegistry, metrics_scope
    from repro.trace import Tracer, span, tracing

    value, events, error, t = None, [], None, None
    registry = MetricsRegistry() if metrics_on else None
    scope = metrics_scope(registry) if registry is not None else nullcontext()
    try:
        with tally() as t, scope:
            if epoch is not None:
                tracer = Tracer()
                # perf_counter is CLOCK_MONOTONIC system-wide on Linux, so
                # rebasing to the parent's epoch puts child spans on the
                # parent's timeline.
                tracer.epoch = epoch
                with tracing(tracer):
                    with span("rank_program", kind="rank", rank=rank,
                              stream="compute"):
                        value = program(comm, payload)
                events = tracer.events
            else:
                value = program(comm, payload)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    metrics_doc = registry.to_dict() if registry is not None else None
    return value, t, events, error, metrics_doc


def _child_main(program, rank, size, inboxes, payload, epoch, timeout,
                metrics_on, results):
    """Fork-per-call worker entry (the legacy path, kept for rank
    programs that cannot be pickled into the persistent pool)."""
    comm = ShmCommunicator(rank, size, inboxes, timeout=timeout)
    value, t, events, error, metrics_doc = _run_rank_job(
        comm, program, rank, payload, epoch, metrics_on
    )
    results.put((rank, value, t, events, error, metrics_doc))


def _pool_worker(rank, size, inboxes, jobs, results):
    """Persistent pool worker: one long-lived communicator serving a
    stream of pickled jobs until the ``None`` shutdown sentinel.

    The communicator (its unexpected-message buffers and collective
    generation counter) deliberately persists across jobs: an eager rank
    may start job N+1 and send while a peer is still finishing job N, and
    that early arrival must be parked, not dropped with a fresh endpoint.
    """
    import pickle

    comm = ShmCommunicator(rank, size, inboxes)
    while True:
        blob = jobs.get()
        if blob is None:
            return
        job_id, program, payload, epoch, timeout, metrics_on = (
            pickle.loads(blob)
        )
        comm.timeout = timeout
        value, t, events, error, metrics_doc = _run_rank_job(
            comm, program, rank, payload, epoch, metrics_on
        )
        results.put((job_id, rank, value, t, events, error, metrics_doc))


class _RankPool:
    """A persistent set of forked rank workers (one per rank) reused
    across solves, so repeated SPMD runs pay the fork + interpreter
    warm-up once instead of per call."""

    def __init__(self, size: int):
        import multiprocessing

        ctx = multiprocessing.get_context("fork")
        self.size = size
        self.inboxes = [ctx.Queue() for _ in range(size)]
        self.jobs = [ctx.Queue() for _ in range(size)]
        self.results = ctx.Queue()
        self.next_job = 0
        self.procs = [
            ctx.Process(
                target=_pool_worker,
                args=(r, size, self.inboxes, self.jobs[r], self.results),
                name=f"spmd-pool-{r}",
                daemon=True,
            )
            for r in range(size)
        ]
        for p in self.procs:
            p.start()

    def alive(self) -> bool:
        return all(p.is_alive() for p in self.procs)

    def shutdown(self) -> None:
        for q in self.jobs:
            try:
                q.put_nowait(None)
            except Exception:  # pragma: no cover - queue already broken
                pass
        for p in self.procs:
            p.join(timeout=2.0)
            if p.is_alive():  # pragma: no cover - defensive
                p.terminate()


#: Live pools keyed by rank count.  A pool is discarded (and rebuilt on
#: next use) whenever a job errors or times out: a failed rank program may
#: leave undelivered messages or skewed collective generations behind, and
#: a fresh fork is the only state known to be clean.
_pools: dict[int, _RankPool] = {}
_atexit_registered = False


def _get_pool(size: int) -> _RankPool:
    global _atexit_registered
    pool = _pools.get(size)
    if pool is not None and not pool.alive():
        _discard_pool(size)
        pool = None
    if pool is None:
        pool = _RankPool(size)
        _pools[size] = pool
        if not _atexit_registered:
            import atexit

            atexit.register(shutdown_pools)
            _atexit_registered = True
    return pool


def _discard_pool(size: int) -> None:
    pool = _pools.pop(size, None)
    if pool is not None:
        pool.shutdown()


def shutdown_pools() -> None:
    """Tear down every persistent rank pool (also runs at interpreter
    exit)."""
    for size in list(_pools):
        _discard_pool(size)


def pool_worker_pids(size: int) -> list[int] | None:
    """PIDs of the live pool for ``size`` ranks (``None`` if no pool) —
    lets tests assert worker reuse across solves."""
    pool = _pools.get(size)
    if pool is None or not pool.alive():
        return None
    return [p.pid for p in pool.procs]


def run_in_processes(program, size, payloads, timeout: float | None,
                     metrics_on: bool = False):
    """Run ``program(comm, payloads[rank])`` in ``size`` worker processes
    and return the per-rank outcomes (rank order).

    Dispatches to a persistent rank pool when the jobs pickle (the normal
    case: module-level rank programs with array payloads); falls back to
    the legacy fork-per-call path for closure programs, which fork can
    inherit but a queue cannot carry.
    """
    import pickle

    from repro.trace import active_tracer

    tracer = active_tracer()
    epoch = tracer.epoch if tracer is not None else None
    try:
        pool = _get_pool(size)
        job_id = pool.next_job
        pool.next_job += 1
        blobs = [
            pickle.dumps(
                (job_id, program, payloads[r], epoch, timeout, metrics_on)
            )
            for r in range(size)
        ]
    except (pickle.PicklingError, AttributeError, TypeError):
        return _run_forked(program, size, payloads, timeout, metrics_on,
                           epoch)
    for r in range(size):
        pool.jobs[r].put(blobs[r])

    outcomes = _drain_results(
        size, timeout,
        lambda remaining: pool.results.get(timeout=remaining),
        pool.procs,
        expect_job=job_id,
        on_timeout=lambda: _discard_pool(size),
    )
    if any(o.error for o in outcomes):
        # A failed rank program may have left messages in flight or
        # collective generations skewed — retire the pool.
        _discard_pool(size)
    return outcomes


def _run_forked(program, size, payloads, timeout, metrics_on, epoch):
    """The original fork-per-call path."""
    import multiprocessing

    ctx = multiprocessing.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(size)]
    results = ctx.Queue()

    procs = [
        ctx.Process(
            target=_child_main,
            args=(program, r, size, inboxes, payloads[r], epoch, timeout,
                  metrics_on, results),
            name=f"spmd-rank-{r}",
            daemon=True,
        )
        for r in range(size)
    ]
    for p in procs:
        p.start()

    # Drain results BEFORE joining: a child blocks in its queue feeder
    # until the parent reads its (potentially large) result.
    outcomes = _drain_results(
        size, timeout,
        lambda remaining: results.get(timeout=remaining),
        procs,
    )
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - defensive
            p.terminate()
    return outcomes


def _drain_results(size, timeout, get, procs, expect_job=None,
                   on_timeout=None):
    """Collect one result per rank from a results queue, surfacing dead
    workers and enforcing the 4x-timeout deadline."""
    from repro.comm.backends import RankOutcome, SPMDError
    from repro.metrics.registry import MetricsRegistry
    from repro.util.counters import Tally

    outcomes = {r: None for r in range(size)}
    deadline = None if timeout is None else time.monotonic() + 4 * timeout
    while any(o is None for o in outcomes.values()):
        try:
            item = get(0.5)
        except Empty:
            missing = [r for r, o in outcomes.items() if o is None]
            dead = [
                r for r in missing
                if procs[r].exitcode is not None and procs[r].exitcode != 0
            ]
            for r in dead:
                outcomes[r] = RankOutcome(
                    rank=r,
                    error=(
                        f"worker process died with exit code "
                        f"{procs[r].exitcode} before reporting a result"
                    ),
                    tally=Tally(),
                )
            missing = [r for r, o in outcomes.items() if o is None]
            if missing and deadline is not None and time.monotonic() > deadline:
                if on_timeout is not None:
                    on_timeout()
                else:
                    for p in procs:
                        if p.is_alive():
                            p.terminate()
                raise SPMDError(
                    f"process backend timed out waiting for ranks {missing}"
                )
            continue
        if expect_job is not None:
            job_id, rank, value, t, events, error, metrics_doc = item
            if job_id != expect_job:  # pragma: no cover - stale straggler
                continue
        else:
            rank, value, t, events, error, metrics_doc = item
        outcomes[rank] = RankOutcome(
            rank=rank,
            value=value,
            tally=t if t is not None else Tally(),
            events=events,
            error=error,
            metrics=(
                MetricsRegistry.from_dict(metrics_doc)
                if metrics_doc is not None
                else None
            ),
        )
    return [outcomes[r] for r in range(size)]


__all__ = [
    "INLINE_LIMIT",
    "ShmCommunicator",
    "pool_worker_pids",
    "run_in_processes",
    "shutdown_pools",
]
