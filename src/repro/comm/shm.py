"""Shared-memory multiprocess backend for SPMD rank programs.

The threaded backend overlaps only numpy's GIL-releasing kernels; this
backend forks one worker process per rank so the compute-bound stencils
run truly core-parallel.  Message envelopes (src, tag, payload
descriptor) travel through one ``multiprocessing.Queue`` inbox per rank,
while payloads above a small inline threshold move through POSIX shared
memory (``multiprocessing.shared_memory``) — the sender copies the array
into a fresh segment and the receiver copies it out and unlinks it, so
payload bytes cross process boundaries exactly once and never go through
pickle.

Lifecycle of a segment (and the resource-tracker discipline that keeps
Python 3.10–3.12 from spewing leak warnings): the *sender* creates the
segment, immediately ``unregister``\\ s it from its own resource tracker
(ownership is being transferred), and closes its mapping; the *receiver*
attaches (which registers it), copies the data out, closes, and unlinks
(which unregisters).  A message that is never received therefore leaks
its segment until the machine reclaims ``/dev/shm`` — rank-program
failures are surfaced loudly for exactly this reason.

Requires the POSIX ``fork`` start method (rank programs are closures over
live numpy arrays; fork inherits them without pickling).  Availability is
reported by :func:`repro.comm.backends.process_backend_available`.
"""

from __future__ import annotations

import time
import traceback
from collections import deque
from queue import Empty

import numpy as np

from repro.comm.communicator import (
    Communicator,
    SendHandle,
    record_collective,
    reduce_in_rank_order,
)
from repro.metrics.registry import current_registry
from repro.metrics.straggler import ALLREDUCE_WAIT, BARRIER_WAIT, RECV_WAIT
from repro.util.counters import record, tally

#: Payloads at or below this many bytes ride inline in the queue envelope
#: (a shared-memory segment per tiny scalar message would cost more than
#: it saves).
INLINE_LIMIT = 1 << 16


def _unregister_segment(seg) -> None:
    """Detach a segment from this process's resource tracker (no-op if the
    tracker refuses)."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(getattr(seg, "_name", seg.name),
                                    "shared_memory")
    except Exception:  # pragma: no cover - tracker quirks vary by version
        pass


def _pack(arr: np.ndarray):
    """Build the queue envelope payload descriptor for one array."""
    arr = np.asarray(arr)
    shape = arr.shape  # before ascontiguousarray, which promotes 0-d to 1-d
    arr = np.ascontiguousarray(arr)
    if arr.nbytes <= INLINE_LIMIT:
        return ("inline", arr.dtype.str, shape, arr.tobytes())
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(create=True, size=arr.nbytes)
    view = np.ndarray(shape, dtype=arr.dtype, buffer=seg.buf)
    view[...] = arr.reshape(shape)
    del view
    _unregister_segment(seg)  # ownership transfers to the receiver
    seg.close()
    return ("shm", seg.name, arr.dtype.str, arr.shape)


def _unpack(descriptor) -> np.ndarray:
    """Materialize (and retire) the payload behind a descriptor."""
    kind = descriptor[0]
    if kind == "inline":
        _, dtype, shape, raw = descriptor
        return np.frombuffer(raw, dtype=np.dtype(dtype)).reshape(shape).copy()
    _, name, dtype, shape = descriptor
    from multiprocessing import shared_memory

    seg = shared_memory.SharedMemory(name=name)
    try:
        data = np.ndarray(shape, dtype=np.dtype(dtype), buffer=seg.buf).copy()
    finally:
        seg.close()
        seg.unlink()
    return data


class ShmCommunicator(Communicator):
    """A rank endpoint whose wire is queues + POSIX shared memory.

    Unlike the in-process mailbox, one inbox queue carries messages from
    *all* sources, so arrivals that don't match the receive currently
    being serviced are parked in per-(src, tag) local buffers — the
    standard unexpected-message queue of an MPI implementation.
    """

    def __init__(self, rank: int, size: int, inboxes, timeout: float | None = None):
        self.rank = rank
        self.size = size
        self.inboxes = inboxes
        self.timeout = timeout
        self._unexpected: dict[tuple, deque] = {}
        self._collective_gen = 0

    # -- point to point --------------------------------------------------
    def _post(self, dst: int, payload, tag, record_cost: bool) -> int:
        arr = np.asarray(payload)
        self.inboxes[dst].put((self.rank, tag, _pack(arr)))
        if record_cost:
            record(comm_bytes=arr.nbytes, messages=1)
        return arr.nbytes

    def isend(self, dst, payload, tag=0, event=None) -> SendHandle:
        reg = current_registry()
        if reg is not None:
            reg.counter("comm_messages_total", rank=self.rank).inc()
            reg.counter("comm_bytes_total", rank=self.rank).inc(
                np.asarray(payload).nbytes
            )
        self._post(dst, payload, tag, record_cost=True)
        return SendHandle(dst, tag)

    def recv(self, src, tag=0) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._recv(src, tag)
        start = time.perf_counter()
        data = self._recv(src, tag)
        reg.histogram(RECV_WAIT, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return data

    def _recv(self, src, tag=0) -> np.ndarray:
        """The raw receive.  Collective internals call this directly so
        their constituent messages don't pollute the per-rank recv-wait
        histogram (each backend then observes exactly one wait per
        user-level ``recv``/``allreduce``/``barrier`` call)."""
        key = (src, tag)
        buffered = self._unexpected.get(key)
        if buffered:
            return _unpack(buffered.popleft())
        deadline = (
            None if self.timeout is None else time.monotonic() + self.timeout
        )
        inbox = self.inboxes[self.rank]
        while True:
            remaining = None if deadline is None else deadline - time.monotonic()
            if remaining is not None and remaining <= 0:
                raise RuntimeError(self._timeout_message(src, tag))
            try:
                got_src, got_tag, descriptor = inbox.get(
                    timeout=None if remaining is None else min(remaining, 0.5)
                )
            except Empty:
                continue
            if (got_src, got_tag) == key:
                return _unpack(descriptor)
            self._unexpected.setdefault((got_src, got_tag), deque()).append(
                descriptor
            )

    def _timeout_message(self, src, tag) -> str:
        lines = [
            f"  {s} -> {self.rank}  tag={t!r}  ({len(q)} message"
            f"{'s' if len(q) != 1 else ''})"
            for (s, t), q in sorted(
                self._unexpected.items(), key=lambda kv: str(kv[0])
            )
            if q
        ]
        pending = "\n".join(lines) if lines else "  (none)"
        return (
            f"recv timed out after {self.timeout:g}s: no message from {src} "
            f"to {self.rank} with tag {tag!r}; locally buffered messages:\n"
            f"{pending}"
        )

    # -- collectives -----------------------------------------------------
    def allreduce_sum(self, value):
        result = self._timed_collective(value, ALLREDUCE_WAIT)
        record_collective(self.rank, value)
        return result[()] if result.ndim == 0 else result

    def barrier(self) -> None:
        # A barrier is an allreduce nobody reads — and charges nothing.
        self._timed_collective(np.int64(0), BARRIER_WAIT)

    def _timed_collective(self, value, wait_metric: str) -> np.ndarray:
        reg = current_registry()
        if reg is None:
            return self._gather_fold_broadcast(value)
        start = time.perf_counter()
        result = self._gather_fold_broadcast(value)
        reg.histogram(wait_metric, rank=self.rank).observe(
            time.perf_counter() - start
        )
        return result

    def _gather_fold_broadcast(self, value) -> np.ndarray:
        """Gather-to-root, rank-ordered fold, broadcast.  The constituent
        sends and receives are raw (uncharged, unobserved): the
        collective's cost is charged once, per the convention in
        :mod:`repro.comm.communicator`, and its wait is observed once by
        :meth:`_timed_collective`."""
        gen = self._collective_gen
        self._collective_gen += 1
        up, down = ("__coll__", gen, "up"), ("__coll__", gen, "down")
        if self.rank == 0:
            parts = [np.asarray(value)]
            parts += [self._recv(r, up) for r in range(1, self.size)]
            result = np.asarray(reduce_in_rank_order(parts))
            for r in range(1, self.size):
                self._post(r, result, down, record_cost=False)
            return result
        self._post(0, value, up, record_cost=False)
        return self._recv(0, down)


# ----------------------------------------------------------------------
# the process runner
# ----------------------------------------------------------------------
def _child_main(program, rank, size, inboxes, payload, epoch, timeout,
                metrics_on, results):
    """Worker-process entry: run the rank program, ship back (value,
    tally, trace events, error, metrics snapshot) through the results
    queue."""
    from contextlib import nullcontext

    from repro.metrics.registry import MetricsRegistry, metrics_scope
    from repro.trace import Tracer, span, tracing

    comm = ShmCommunicator(rank, size, inboxes, timeout=timeout)
    value, events, error, t = None, [], None, None
    registry = MetricsRegistry() if metrics_on else None
    scope = metrics_scope(registry) if registry is not None else nullcontext()
    try:
        with tally() as t, scope:
            if epoch is not None:
                tracer = Tracer()
                # perf_counter is CLOCK_MONOTONIC system-wide on Linux, so
                # rebasing to the parent's epoch puts child spans on the
                # parent's timeline.
                tracer.epoch = epoch
                with tracing(tracer):
                    with span("rank_program", kind="rank", rank=rank,
                              stream="compute"):
                        value = program(comm, payload)
                events = tracer.events
            else:
                value = program(comm, payload)
    except BaseException as exc:  # noqa: BLE001 - reported to the parent
        error = "".join(
            traceback.format_exception_only(type(exc), exc)
        ).strip()
    metrics_doc = registry.to_dict() if registry is not None else None
    results.put((rank, value, t, events, error, metrics_doc))


def run_in_processes(program, size, payloads, timeout: float | None,
                     metrics_on: bool = False):
    """Fork ``size`` workers, run ``program(comm, payloads[rank])`` in
    each, and return the per-rank outcomes (rank order)."""
    import multiprocessing

    from repro.comm.backends import RankOutcome, SPMDError
    from repro.metrics.registry import MetricsRegistry
    from repro.trace import active_tracer

    ctx = multiprocessing.get_context("fork")
    inboxes = [ctx.Queue() for _ in range(size)]
    results = ctx.Queue()
    tracer = active_tracer()
    epoch = tracer.epoch if tracer is not None else None

    procs = [
        ctx.Process(
            target=_child_main,
            args=(program, r, size, inboxes, payloads[r], epoch, timeout,
                  metrics_on, results),
            name=f"spmd-rank-{r}",
            daemon=True,
        )
        for r in range(size)
    ]
    for p in procs:
        p.start()

    outcomes = {r: None for r in range(size)}
    deadline = None if timeout is None else time.monotonic() + 4 * timeout
    # Drain results BEFORE joining: a child blocks in its queue feeder
    # until the parent reads its (potentially large) result.
    while any(o is None for o in outcomes.values()):
        try:
            rank, value, t, events, error, metrics_doc = results.get(
                timeout=0.5
            )
        except Empty:
            missing = [r for r, o in outcomes.items() if o is None]
            dead = [
                r for r in missing
                if procs[r].exitcode is not None and procs[r].exitcode != 0
            ]
            for r in dead:
                outcomes[r] = RankOutcome(
                    rank=r,
                    error=(
                        f"worker process died with exit code "
                        f"{procs[r].exitcode} before reporting a result"
                    ),
                )
            missing = [r for r, o in outcomes.items() if o is None]
            if missing and deadline is not None and time.monotonic() > deadline:
                for p in procs:
                    if p.is_alive():
                        p.terminate()
                raise SPMDError(
                    f"process backend timed out waiting for ranks {missing}"
                )
            continue
        outcomes[rank] = RankOutcome(
            rank=rank,
            value=value,
            tally=t if t is not None else None,
            events=events,
            error=error,
            metrics=(
                MetricsRegistry.from_dict(metrics_doc)
                if metrics_doc is not None
                else None
            ),
        )
        if outcomes[rank].tally is None:
            from repro.util.counters import Tally

            outcomes[rank].tally = Tally()
    for p in procs:
        p.join(timeout=5.0)
        if p.is_alive():  # pragma: no cover - defensive
            p.terminate()
    return [outcomes[r] for r in range(size)]


__all__ = ["INLINE_LIMIT", "ShmCommunicator", "run_in_processes"]
