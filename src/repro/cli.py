"""Command-line driver: ``python -m repro <command>``.

A small application shell over the library, in the spirit of the QUDA
test/benchmark executables.  The full subcommand table is generated from
the registered subparsers (see :func:`build_parser`) and printed by
``python -m repro --help`` — it cannot drift from the actual commands.
The families: ``figN`` regenerate the paper's figure tables from the
performance model, ``solve``/``generate`` run real numerics on synthetic
configurations, ``bench``/``bench-multirhs`` time the SPMD execution
backends and the batched multi-RHS path, ``trace`` captures a Perfetto
timeline of a distributed solve (docs/observability.md), ``serve`` runs
the coalescing solve daemon (docs/serving.md), ``bench-serve`` load-tests
that daemon, ``scaling-sweep`` runs the measured-vs-model strong-scaling
sweep (docs/observability.md, "Scaling observatory"), ``report`` draws
ASCII charts, and ``info`` prints the hardware/calibration summary.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig(args) -> int:
    from repro.core.scaling import (
        DslashScalingStudy,
        MultishiftScalingStudy,
        WilsonSolverScalingStudy,
    )
    from repro.perfmodel.kernels import OperatorKind
    from repro.perfmodel.machines import CPU_MACHINES
    from repro.precision import DOUBLE, HALF, SINGLE

    fig = args.figure
    if fig == 5:
        gpus = [8, 16, 32, 64, 128, 256]
        print("Fig. 5 — Wilson-clover dslash (Gflops/GPU), V=32^3x256")
        for prec, label in [(SINGLE, "SP"), (HALF, "HP")]:
            study = DslashScalingStudy(
                (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, prec, 12
            )
            rates = "  ".join(
                f"{p.gflops_per_gpu:7.1f}" for p in study.run(gpus)
            )
            print(f"  {label}: {rates}")
    elif fig == 6:
        gpus = [32, 64, 128, 256]
        print("Fig. 6 — asqtad dslash (Gflops/GPU), V=64^3x192")
        for label, dims in [("ZT", (3, 2)), ("YZT", (3, 2, 1)),
                            ("XYZT", (3, 2, 1, 0))]:
            for prec, pl in [(DOUBLE, "DP"), (SINGLE, "SP")]:
                study = DslashScalingStudy(
                    (64, 64, 64, 192), OperatorKind.ASQTAD, prec, 18,
                    partition_dims=dims,
                )
                rates = "  ".join(
                    f"{p.gflops_per_gpu:6.1f}" for p in study.run(gpus)
                )
                print(f"  {label:>4} {pl}: {rates}")
    elif fig in (7, 8):
        study = WilsonSolverScalingStudy()
        print("Figs. 7-8 — BiCGstab vs GCR-DD, V=32^3x256")
        print("  GPUs  bicg-Tf  gcr-Tf  bicg-s  gcr-s  speedup")
        for n in [4, 8, 16, 32, 64, 128, 256]:
            b, g = study.bicgstab_point(n), study.gcr_point(n)
            print(
                f"  {n:4d}  {b.tflops:7.2f} {g.tflops:7.2f}"
                f"  {b.seconds:6.2f} {g.seconds:6.2f}"
                f"  {b.seconds / g.seconds:6.2f}x"
            )
    elif fig == 9:
        print("Fig. 9 — CPU capability machines (Tflops), V=32^3x256")
        cores = [4096, 8192, 16384, 32768]
        print("  cores: " + "  ".join(f"{c:>7d}" for c in cores))
        for m in CPU_MACHINES:
            rates = "  ".join(f"{m.sustained_tflops(c):7.2f}" for c in cores)
            print(f"  {m.name}: {rates}")
    elif fig == 10:
        ms = MultishiftScalingStudy()
        print("Fig. 10 — asqtad multi-shift (total Tflops), V=64^3x192")
        for label, dims in [("ZT", (3, 2)), ("YZT", (3, 2, 1)),
                            ("XYZT", (3, 2, 1, 0))]:
            rates = "  ".join(
                f"{ms.point(n, dims).tflops:5.2f}" for n in (64, 128, 256)
            )
            print(f"  {label:>4}: {rates}")
    else:
        print(f"no such figure: {fig}", file=sys.stderr)
        return 2
    return 0


def _cmd_solve(args) -> int:
    from repro.comm.grid import choose_grid
    from repro.core import GCRDDConfig
    from repro.core.api import SolveRequest, solve
    from repro.lattice import GaugeField, Geometry, SpinorField

    geometry = Geometry(tuple(args.dims))
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    b = SpinorField.random(geometry, rng=args.seed + 1).data
    request = SolveRequest(
        operator="wilson_clover", gauge=gauge, rhs=b,
        mass=args.mass, csw=args.csw, method=args.method, tol=args.tol,
        kernel=args.kernel,
    )
    extra = ""
    if args.method == "gcr-dd":
        grid = choose_grid(args.blocks, (3, 2, 1, 0), geometry.dims)
        request.grid = grid
        request.config = GCRDDConfig(tol=args.tol)
        request.tol = None  # the config carries the tolerance
        request.precond = args.precond
        request.precond_steps = args.mr_steps
        request.precond_overlap = args.precond_overlap
        request.backend = args.backend
        request.overlap = args.overlap
        extra = f" grid={grid.label} blocks={grid.size}"
        if args.backend:
            extra += f" backend={args.backend}"
        if args.overlap and not args.backend:
            print("--overlap needs --backend (the overlapped halo schedule "
                  "is an SPMD execution path)", file=sys.stderr)
            return 2
    elif args.backend or args.overlap:
        print("--backend/--overlap require --method gcr-dd", file=sys.stderr)
        return 2
    elif args.precond != "auto":
        print("--precond requires --method gcr-dd", file=sys.stderr)
        return 2
    try:
        res = solve(request)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    status = "converged" if res.converged else "FAILED"
    resolved = (res.extras or {}).get("precond")
    if resolved:
        extra += f" precond={resolved}"
    print(
        f"{args.method} on {geometry!r}: {status} in {res.iterations} "
        f"iterations, residual {res.residual:.2e}{extra}"
    )
    overlap = (res.report.ranks or {}).get("overlap") if args.overlap else None
    if overlap and overlap.get("fraction") is not None:
        print(
            f"  halo overlap: {overlap['exchanges']} overlapped exchanges, "
            f"{overlap['fraction']:.1%} of the comm window hidden behind "
            "the interior kernel"
        )
    if args.report:
        res.report.write(args.report)
        print(f"wrote solve report to {args.report}")
    return 0 if res.converged else 1


def _cmd_bench_multirhs(args) -> int:
    """Benchmark the batched multi-RHS path against sequential solves."""
    import json
    import time

    import numpy as np

    from repro.core.api import SolveRequest, solve
    from repro.lattice import GaugeField, Geometry, SpinorField
    from repro.util.counters import tally

    geometry = Geometry(tuple(args.dims))
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    batches = sorted(set(args.batches))
    sources = np.stack(
        [
            SpinorField.random(geometry, rng=args.seed + 1 + i).data
            for i in range(max(batches))
        ]
    )

    def request(rhs):
        return SolveRequest(
            operator="wilson_clover", gauge=gauge, rhs=rhs,
            mass=args.mass, csw=args.csw, tol=args.tol,
        )

    from repro.metrics.bench_schema import wrap_bench

    solve(request(sources))  # warm caches (incl. batched scratch) untimed

    def timed_best(fn):
        """Best-of-N wall time (with that run's tally): the minimum is
        the run least disturbed by scheduler noise, which on a shared
        host swings single-shot timings by tens of percent.  The
        operation counts are deterministic across repeats."""
        best = None
        for _ in range(max(args.repeats, 1)):
            with tally() as t:
                t0 = time.perf_counter()
                result = fn()
                dt = time.perf_counter() - t0
            if best is None or dt < best[0]:
                best = (dt, result, t)
        return best

    config = {
        "operator": "wilson_clover",
        "method": "bicgstab",
        "dims": list(geometry.shape),
        "mass": args.mass,
        "csw": args.csw,
        "tol": args.tol,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "repeats": args.repeats,
    }
    results = []
    metrics = {}
    for nb in batches:
        rhs = sources[:nb]
        seq_seconds, seq, seq_tally = timed_best(
            lambda: [solve(request(rhs[i])) for i in range(nb)]
        )
        bat_seconds, bat, bat_tally = timed_best(
            lambda: solve(request(rhs)) if nb > 1 else solve(request(rhs[0]))
        )
        bat_iters = (
            [int(i) for i in np.atleast_1d(bat.iterations)]
        )
        entry = {
            "batch": nb,
            "sequential_seconds": seq_seconds,
            "batched_seconds": bat_seconds,
            "speedup": seq_seconds / bat_seconds if bat_seconds else 0.0,
            "sequential_iterations": [int(r.iterations) for r in seq],
            "batched_iterations": bat_iters,
            "sequential_reductions": seq_tally.reductions,
            "batched_reductions": bat_tally.reductions,
            "all_converged": bool(
                all(r.converged for r in seq) and np.all(bat.converged)
            ),
        }
        results.append(entry)
        metrics[f"speedup_batch_{nb}"] = entry["speedup"]
        metrics[f"batched_seconds_batch_{nb}"] = bat_seconds
        print(
            f"batch {nb:3d}: sequential {seq_seconds:7.2f}s, "
            f"batched {bat_seconds:7.2f}s, speedup {entry['speedup']:5.2f}x, "
            f"reductions {seq_tally.reductions} -> {bat_tally.reductions}"
        )
    report = wrap_bench("multirhs", config, metrics, results=results)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0 if all(e["all_converged"] for e in results) else 1


def _bench_precond(args) -> int:
    """Benchmark GCR-DD under each requested preconditioner (one grid,
    one gauge field, one rhs) and emit a bench-schema JSON report."""
    import json
    import time

    from repro.comm.grid import choose_grid
    from repro.core.gcrdd import GCRDDConfig, GCRDDSolver
    from repro.dirac.wilson import WilsonCloverOperator
    from repro.lattice import GaugeField, Geometry, SpinorField
    from repro.metrics.bench_schema import wrap_bench
    from repro.precond import resolve_precond
    from repro.util.counters import tally

    geometry = Geometry(tuple(args.dims))
    grid = choose_grid(args.ranks, (3, 2, 1, 0), geometry.dims)
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    b = SpinorField.random(geometry, rng=args.seed + 1).data
    op = WilsonCloverOperator(
        gauge, mass=args.mass, csw=args.csw, kernel=args.kernel
    )

    names = []
    for name in args.preconds:
        resolved = resolve_precond(name, operator="wilson").name
        if resolved not in names:
            names.append(resolved)

    config = {
        "operator": "wilson_clover",
        "method": "gcr-dd",
        "dims": list(geometry.shape),
        "grid": list(grid.dims),
        "ranks": grid.size,
        "mass": args.mass,
        "csw": args.csw,
        "tol": args.tol,
        "precond_steps": args.mr_steps,
        "precond_overlap": args.precond_overlap,
        "preconds": names,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "repeats": args.repeats,
    }
    results = []
    metrics = {}
    for name in names:
        solver = GCRDDSolver(op, grid, GCRDDConfig(
            tol=args.tol, precond=name,
            precond_steps=args.mr_steps,
            precond_overlap=args.precond_overlap,
        ))
        solver.solve(b)  # warm caches untimed
        best = None
        for _ in range(max(args.repeats, 1)):
            with tally() as t:
                t0 = time.perf_counter()
                res = solver.solve(b)
                dt = time.perf_counter() - t0
            if best is None or dt < best[0]:
                best = (dt, res, t)
        seconds, res, t = best
        entry = {
            "precond": name,
            "seconds": seconds,
            "converged": bool(res.converged),
            "iterations": int(res.iterations),
            "residual": float(res.residual),
            "matvecs": int(res.matvecs),
            "reductions": t.reductions,
        }
        results.append(entry)
        metrics[f"{name}_seconds"] = seconds
        metrics[f"{name}_iterations"] = float(res.iterations)
        print(
            f"{name:>11}: {seconds:7.2f}s, {res.iterations:4d} iterations, "
            f"residual {res.residual:.2e}"
        )
    report = wrap_bench("precond", config, metrics, results=results)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    return 0 if all(e["converged"] for e in results) else 1


def _cmd_bench_spmd(args) -> int:
    """Benchmark the SPMD execution backends on one GCR-DD solve — or,
    with --precond, sweep GCR-DD preconditioners instead."""
    import json
    import time

    import numpy as np

    from repro.comm.backends import process_backend_available
    from repro.comm.grid import choose_grid
    from repro.core.gcrdd import GCRDDConfig
    from repro.core.spmd import SPMDGCRDDSolver
    from repro.lattice import GaugeField, Geometry, SpinorField
    from repro.metrics.bench_schema import wrap_bench
    from repro.util.counters import tally

    if args.preconds:
        return _bench_precond(args)

    geometry = Geometry(tuple(args.dims))
    grid = choose_grid(args.ranks, (3, 2, 1, 0), geometry.dims)
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    b = SpinorField.random(geometry, rng=args.seed + 1).data
    # With --overlap every schedule runs the split interior/exterior
    # path: the overlapped exchange is bit-identical to *split* blocking
    # (same summation order), while the fused stencil sums hops in a
    # different order — one shared bit-reference needs one kernel path.
    solver = SPMDGCRDDSolver(
        gauge, args.mass, args.csw, grid,
        config=GCRDDConfig(tol=args.tol, precond_steps=args.mr_steps),
        timeout=args.timeout,
        kernel=args.kernel,
        schedule="split" if args.overlap else "auto",
    )

    backends = list(args.backends or ("sequential", "threads", "processes"))
    if "processes" in backends and not process_backend_available():
        print("processes backend unavailable (no fork); skipping",
              file=sys.stderr)
        backends.remove("processes")

    # The host block records the machine (parallel backends cannot beat
    # sequential with fewer cores than ranks — speedups need context).
    config = {
        "operator": "wilson_clover",
        "method": "gcr-dd",
        "dims": list(geometry.shape),
        "grid": list(grid.dims),
        "ranks": grid.size,
        "mass": args.mass,
        "csw": args.csw,
        "tol": args.tol,
        "mr_steps": args.mr_steps,
        "epsilon": args.epsilon,
        "seed": args.seed,
        "repeats": args.repeats,
        "schedule": "split" if args.overlap else "fused",
        "kernel": solver.kernel,
    }
    results = []

    schedules = [False] + ([True] if args.overlap else [])
    reference = None
    for backend in backends:
        for overlap in schedules:
            # warm caches/forks (and the persistent rank pool) untimed
            solver.solve(b, backend=backend, overlap=overlap)
            best = None
            for _ in range(max(args.repeats, 1)):
                with tally() as t:
                    t0 = time.perf_counter()
                    res = solver.solve(b, backend=backend, overlap=overlap)
                    dt = time.perf_counter() - t0
                if best is None or dt < best[0]:
                    best = (dt, res, t)
            seconds, res, t = best
            history = [float(r) for r in res.residual_history]
            if reference is None:
                reference = (res.x, history)
            bitwise = bool(
                np.array_equal(res.x, reference[0])
                and history == reference[1]
            )
            label = f"{backend}{'+overlap' if overlap else ''}"
            entry = {
                "backend": backend,
                "overlap": overlap,
                "seconds": seconds,
                "converged": bool(res.converged),
                "iterations": int(res.iterations),
                "residual": float(res.residual),
                "comm_bytes": t.comm_bytes,
                "messages": t.messages,
                "reductions": t.reductions,
                "bitwise_equal_to_first_backend": bitwise,
            }
            results.append(entry)
            print(
                f"{label:>18}: {seconds:7.2f}s, {res.iterations} "
                f"iterations, residual {res.residual:.2e}, "
                f"bitwise match: {bitwise}"
            )

    seq = next(
        (e for e in results
         if e["backend"] == "sequential" and not e["overlap"]),
        None,
    )
    if seq:
        for e in results:
            e["speedup_vs_sequential"] = (
                seq["seconds"] / e["seconds"] if e["seconds"] else 0.0
            )
    metrics = {}
    for e in results:
        key = f"{e['backend']}{'_overlap' if e['overlap'] else ''}"
        metrics[f"{key}_seconds"] = e["seconds"]
        if "speedup_vs_sequential" in e:
            metrics[f"{key}_speedup_vs_sequential"] = (
                e["speedup_vs_sequential"]
            )
    report = wrap_bench("spmd", config, metrics, results=results)
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    ok = all(
        e["converged"] and e["bitwise_equal_to_first_backend"]
        for e in results
    )
    return 0 if ok else 1


def _cmd_generate(args) -> int:
    from repro.gauge.heatbath import HeatbathUpdater
    from repro.lattice import GaugeField, Geometry
    from repro import io as repro_io

    geometry = Geometry(tuple(args.dims))
    start = (
        GaugeField.hot(geometry, rng=args.seed)
        if args.start == "hot"
        else GaugeField.unit(geometry)
    )
    updater = HeatbathUpdater(
        beta=args.beta, or_steps=args.or_steps, rng_seed=args.seed
    )
    gauge, history = updater.thermalize(
        start, sweeps=args.sweeps, measure_every=max(args.sweeps // 8, 1)
    )
    print(f"beta={args.beta} {args.start}-start on {geometry!r}")
    for i, plaq in enumerate(history):
        print(f"  measurement {i}: plaquette = {plaq:.5f}")
    if args.output:
        repro_io.save_gauge(
            args.output, gauge,
            extra={"beta": args.beta, "sweeps": args.sweeps},
        )
        print(f"saved configuration to {args.output}")
    return 0


def _cmd_report(args) -> int:
    """Solve-report tooling (`show`/`diff`) and the default `figs` ASCII
    charts of the headline figures."""
    if args.action == "show":
        return _report_show(args)
    if args.action == "diff":
        return _report_diff(args)
    return _report_figs(args)


def _report_show(args) -> int:
    import json

    from repro.metrics import render_report, validate_report

    if not args.path:
        print("report show needs a report path", file=sys.stderr)
        return 2
    with open(args.path) as fh:
        doc = json.load(fh)
    problems = validate_report(doc)
    if problems:
        print(f"{args.path}: INVALID solve report", file=sys.stderr)
        for p in problems:
            print(f"  - {p}", file=sys.stderr)
        return 1
    print(render_report(doc))
    return 0


def _report_diff(args) -> int:
    """The perf regression gate: nonzero exit when the current report
    regressed past the tolerances relative to the baseline."""
    import json

    from repro.metrics import diff_reports, format_diff, validate_report

    if not args.path or not args.baseline:
        print("report diff needs a report path and --baseline",
              file=sys.stderr)
        return 2
    with open(args.path) as fh:
        current = json.load(fh)
    with open(args.baseline) as fh:
        baseline = json.load(fh)
    for label, doc in (("current", current), ("baseline", baseline)):
        problems = validate_report(doc)
        if problems:
            print(f"{label} report is invalid:", file=sys.stderr)
            for p in problems:
                print(f"  - {p}", file=sys.stderr)
            return 2
    regressions, notes = diff_reports(
        current, baseline,
        tolerance=args.tolerance, count_tolerance=args.count_tolerance,
    )
    print(format_diff(regressions, notes))
    return 1 if regressions else 0


def _report_figs(args) -> int:
    """ASCII log-log charts of the headline figures."""
    from repro.core.scaling import DslashScalingStudy, WilsonSolverScalingStudy
    from repro.perfmodel.kernels import OperatorKind
    from repro.precision import HALF, SINGLE
    from repro.report import loglog_chart

    gpus = [8, 16, 32, 64, 128, 256]
    sp = DslashScalingStudy((32, 32, 32, 256), OperatorKind.WILSON_CLOVER,
                            SINGLE, 12)
    hp = DslashScalingStudy((32, 32, 32, 256), OperatorKind.WILSON_CLOVER,
                            HALF, 12)
    print(loglog_chart(
        "Fig. 5 — Wilson-clover dslash strong scaling (model)",
        "GPUs", "Gf/GPU",
        {
            "SP": (gpus, [p.gflops_per_gpu for p in sp.run(gpus)]),
            "HP": (gpus, [p.gflops_per_gpu for p in hp.run(gpus)]),
        },
    ))
    print()
    study = WilsonSolverScalingStudy()
    solver_gpus = [4, 8, 16, 32, 64, 128, 256]
    print(loglog_chart(
        "Fig. 7 — solver sustained Tflops (model)",
        "GPUs", "Tflops",
        {
            "BiCGstab": (
                solver_gpus,
                [study.bicgstab_point(n).tflops for n in solver_gpus],
            ),
            "GCR-DD": (
                solver_gpus,
                [study.gcr_point(n).tflops for n in solver_gpus],
            ),
        },
    ))
    return 0


def _cmd_trace(args) -> int:
    """Capture a Perfetto trace of a distributed Wilson(-clover) GCR-DD
    solve, with the modeled Fig. 4 timeline as a parallel track."""
    from repro import trace as tracelib
    from repro.comm.grid import ProcessGrid
    from repro.core.gcrdd import DistributedGCRDDSolver, GCRDDConfig
    from repro.lattice import GaugeField, Geometry, SpinorField
    from repro.perfmodel.kernels import KernelModel, OperatorKind
    from repro.perfmodel.machines import EDGE
    from repro.perfmodel.streams import model_dslash_time
    from repro.report import timeline_chart
    from repro.trace.model import timeline_events
    from repro.util.counters import tally

    geometry = Geometry(tuple(args.dims))
    grid = ProcessGrid(tuple(args.grid))
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    b = SpinorField.random(geometry, rng=args.seed + 1).data

    if args.overlap and not args.backend:
        print("--overlap needs --backend (the overlapped halo schedule "
              "is an SPMD execution path)", file=sys.stderr)
        return 2

    # The split (interior/exterior) execution path is what the paper's
    # Fig. 4 schedules, so a trace always uses it; --backend traces the
    # SPMD rank programs instead of the global-view driver, and --overlap
    # the live overlapped schedule.
    tracer = tracelib.Tracer()
    with tracelib.tracing(tracer), tally() as t:
        if args.backend:
            from repro.core.spmd import SPMDGCRDDSolver

            solver = SPMDGCRDDSolver(
                gauge, args.mass, args.csw, grid,
                config=GCRDDConfig(tol=args.tol, precond=args.precond,
                                   precond_steps=args.mr_steps),
                backend=args.backend, schedule="split",
                overlap=args.overlap, kernel=args.kernel,
            )
            res = solver.solve(b)
        else:
            solver = DistributedGCRDDSolver(
                gauge, args.mass, args.csw, grid,
                config=GCRDDConfig(tol=args.tol, precond=args.precond,
                                   precond_steps=args.mr_steps),
                schedule="split", kernel=args.kernel,
            )
            res = solver.solve(b)
    events = list(tracer.events)
    status = "converged" if res.converged else "FAILED"
    mode = f" backend={args.backend}" if args.backend else ""
    mode += " overlap" if args.overlap else ""
    print(
        f"gcr-dd on {geometry!r}, grid={grid.label} ranks={grid.size}: "
        f"{status} in {res.iterations} iterations, "
        f"residual {res.residual:.2e}{mode}"
    )

    if not args.no_model:
        op_kind = (
            OperatorKind.WILSON_CLOVER if args.csw else OperatorKind.WILSON
        )
        kernel = KernelModel(
            op_kind, solver.config.policy.inner, reconstruct=12
        )
        timeline = model_dslash_time(
            kernel, EDGE.gpu, EDGE.interconnect,
            solver.partition.local_dims, grid.partitioned_dims,
        )
        # Modeled times are Fermi-hardware seconds (~us/dslash); stretch
        # the tiled applications across the measured window so the two
        # tracks are structurally comparable on one axis.
        window = max((ev.end for ev in events), default=1.0)
        scale = window / (timeline.total_time * args.model_repeat)
        events += timeline_events(
            timeline, repeat=args.model_repeat, scale=scale
        )

    path = tracelib.write_chrome_trace(args.output, events)
    print(
        f"wrote {len(events)} events to {path} — open in "
        "https://ui.perfetto.dev or chrome://tracing"
    )
    print()
    print(tracelib.format_table(events, top=args.top))
    kernel_totals = tracelib.timed_kernel_totals(events)
    if kernel_totals:
        print()
        print("trace vs tally cross-check (identical by construction):")
        for name in sorted(kernel_totals):
            print(
                f"  {name}: trace {kernel_totals[name] * 1e3:.3f} ms, "
                f"tally {t.kernel_seconds.get(name, 0.0) * 1e3:.3f} ms"
            )
    if args.ascii:
        print()
        print(timeline_chart(
            "timeline (one row per rank/kind; model track rescaled)",
            tracelib.ascii_tracks(events),
        ))
    return 0 if res.converged else 1


def _cmd_serve(args) -> int:
    """Run the coalescing solve daemon (docs/serving.md).

    Boots a :class:`~repro.serve.service.SolveService` with the given
    coalescing knobs, fronts it with the HTTP/JSONL server, and serves
    until SIGINT/SIGTERM — on which it stops accepting (503), drains the
    queued and in-flight solves, and exits cleanly.
    """
    import signal
    import threading

    from repro.serve import ServeServer, SolveService

    service = SolveService(
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        capacity=args.queue_limit,
        pad_to=args.pad_to,
        default_timeout=args.default_timeout or None,
    ).start()
    server = ServeServer(
        service, host=args.host, port=args.port, verbose=args.verbose
    )
    print(
        f"repro serve on {server.url} — max_batch={args.max_batch} "
        f"max_wait={args.max_wait}s queue_limit={args.queue_limit} "
        f"pad_to={service.pad_to}"
    )
    print("routes: POST /v1/solve, POST /v1/solve/jsonl, GET /metrics, "
          "GET /v1/stats, GET /healthz")

    stop = threading.Event()

    def _signal(signum, frame):
        print(f"\nsignal {signal.Signals(signum).name}: draining...")
        stop.set()
        # shutdown() joins the dispatcher; run it off the signal frame.
        threading.Thread(target=server.stop, daemon=True).start()

    signal.signal(signal.SIGINT, _signal)
    signal.signal(signal.SIGTERM, _signal)
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        server.stop()
    stats = service.stats()
    ratio = stats["coalesce_ratio"]
    print(
        f"drained: {stats['batches_total']} batches, "
        f"{stats['batched_requests_total']} requests"
        + (f", coalesce ratio {ratio:.2f}" if ratio else "")
    )
    return 0


def _cmd_bench_serve(args) -> int:
    """Load-bench the solve daemon: requests/sec and p50/p99 latency vs
    ``max_batch``, against a real in-process daemon on a loopback port
    (docs/serving.md, "Load benchmarking")."""
    import json

    from repro.serve.loadgen import run_load_bench

    report = run_load_bench(
        dims=tuple(args.dims),
        max_batch_values=tuple(args.max_batch_values or (1, 2, 4, 8)),
        concurrency=args.concurrency,
        requests_per_client=args.requests_per_client,
        max_wait=args.max_wait,
        seed=args.seed,
        progress=print,
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.output}")
    ok = all(e["errors"] == 0 and e["requests"] > 0
             for e in report["results"])
    return 0 if ok else 1


def _cmd_scaling_sweep(args) -> int:
    """Measured-vs-model strong-scaling sweep (docs/observability.md,
    "Scaling observatory").

    Runs live SPMD solves across the rank counts on one fixed lattice,
    replays each configuration through the Edge performance model, and
    emits the schema-valid BENCH_scaling artifact plus ASCII knee /
    efficiency charts.
    """
    import json

    from repro.analysis.scaling_sweep import knee_chart, run_scaling_sweep

    report, points = run_scaling_sweep(
        dims=tuple(args.dims),
        ranks=tuple(args.ranks),
        tol=args.tol,
        mr_steps=args.mr_steps,
        seed=args.seed,
        backend=args.backend,
        repeats=args.repeats,
        timeout=args.timeout,
        progress=print,
    )
    with open(args.output, "w") as fh:
        json.dump(report, fh, indent=2)
        fh.write("\n")
    chart = knee_chart(points)
    print()
    print(chart)
    if args.plot_output:
        with open(args.plot_output, "w") as fh:
            fh.write(chart + "\n")
        print(f"\nwrote {args.plot_output}")
    print(f"wrote {args.output}")
    if any(p.oversubscribed for p in points):
        print(
            "note: rank counts above host cpu_count "
            f"({report['host']['cpu_count']}) are flagged oversubscribed — "
            "measured speedups there reflect scheduling, not hardware"
        )
    return 0 if all(p.converged for p in points) else 1


def _cmd_precond(args) -> int:
    """Print the preconditioner capability matrix (registry-derived)."""
    from repro.precond import availability_note, capability_matrix

    rows = capability_matrix()
    header = ("precond", "prio", "available", "operators", "batched",
              "spmd", "overlapping", "dtypes")
    table = [header]
    for row in rows:
        table.append((
            row["name"],
            str(row["priority"]),
            "yes" if row["available"] else "no",
            ",".join(row["operators"]),
            "yes" if row["batched"] else "no",
            "yes" if row["spmd"] else "no",
            "yes" if row["overlapping"] else "no",
            ",".join(row["dtypes"]),
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    for i, r in enumerate(table):
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))
    print()
    print(availability_note())
    for row in rows:
        if not row["available"]:
            print(f"  {row['name']}: {row['unavailable_reason']}")
    return 0


def _cmd_kernels(args) -> int:
    """Print the kernel-backend capability matrix (registry-derived)."""
    from repro.kernels import availability_note, capability_matrix

    rows = capability_matrix()
    header = ("backend", "prio", "available", "operators", "batched",
              "split", "dtypes")
    table = [header]
    for row in rows:
        table.append((
            row["name"],
            str(row["priority"]),
            "yes" if row["available"] else "no",
            ",".join(row["operators"]),
            "yes" if row["batched"] else "no",
            "yes" if row["split"] else "no",
            ",".join(d.replace("complex", "c") for d in row["dtypes"]),
        ))
    widths = [max(len(r[i]) for r in table) for i in range(len(header))]
    for i, r in enumerate(table):
        print("  ".join(c.ljust(w) for c, w in zip(r, widths)).rstrip())
        if i == 0:
            print("  ".join("-" * w for w in widths))
    print()
    print(availability_note())
    unavailable = [r for r in rows if not r["available"]]
    for row in unavailable:
        print(f"  {row['name']}: {row['unavailable_reason']}")
    return 0


def _cmd_info(args) -> int:
    from repro import __version__
    from repro.perfmodel.machines import CPU_MACHINES, EDGE

    print(f"repro {__version__} — 'Scaling Lattice QCD beyond 100 GPUs' "
          "(SC'11) reproduction")
    print(f"modeled GPU cluster: {EDGE.name}, up to {EDGE.max_gpus} x "
          f"{EDGE.gpu.name}")
    net = EDGE.interconnect
    print(f"  PCI-E {net.pcie_GBs} GB/s, host copies {net.host_copy_GBs} "
          f"GB/s, IB {net.ib_GBs} GB/s per GPU")
    print("comparison machines: " + ", ".join(m.name for m in CPU_MACHINES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True,
                                metavar="command")
    registered: list[tuple[str, str]] = []

    def add_command(name: str, help_: str):
        """Register a subcommand; the --help table derives from this
        registry, so a command cannot be added without a help line."""
        registered.append((name, help_))
        return sub.add_parser(name, help=help_, description=help_)

    for n in (5, 6, 7, 8, 9, 10):
        p = add_command(f"fig{n}", f"print the Fig. {n} model table")
        p.set_defaults(func=_cmd_fig, figure=n)

    p = add_command("solve", "run a real Wilson-clover solve")
    p.add_argument("--dims", type=int, nargs=4, default=[8, 8, 8, 16],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--csw", type=float, default=1.0)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="gauge disorder of the synthetic configuration")
    p.add_argument("--method", choices=["bicgstab", "gcr-dd"],
                   default="bicgstab")
    p.add_argument("--blocks", type=int, default=4,
                   help="Schwarz blocks (gcr-dd)")
    p.add_argument("--mr-steps", type=int, default=10,
                   help="preconditioner block-solve MR steps (gcr-dd)")
    p.add_argument("--precond", type=str, default="auto",
                   help="gcr-dd preconditioner (see 'repro precond'; "
                        "default auto)")
    p.add_argument("--precond-overlap", type=int, default=1,
                   help="domain overlap depth for the overlapping "
                        "preconditioners (ras/multisplit; default 1)")
    p.add_argument("--backend",
                   choices=["sequential", "threads", "processes"],
                   default=None,
                   help="run gcr-dd as SPMD rank programs under this "
                        "execution backend (default: global-view driver)")
    p.add_argument("--overlap", action="store_true",
                   help="overlapped halo schedule (gcr-dd + --backend): "
                        "interior kernel runs while faces are in flight")
    p.add_argument("--kernel", type=str, default="auto",
                   help="dslash kernel backend (see 'repro kernels'; "
                        "default auto)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--report", type=str, default="",
                   help="write the SolveReport JSON artifact here")
    p.set_defaults(func=_cmd_solve)

    p = add_command(
        "bench",
        "benchmark the SPMD execution backends on a GCR-DD solve",
    )
    p.add_argument("--dims", type=int, nargs=4, default=[8, 8, 8, 16],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--ranks", type=int, default=4,
                   help="virtual ranks / Schwarz blocks (default 4)")
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--csw", type=float, default=1.0)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--mr-steps", type=int, default=10,
                   help="preconditioner block-solve MR steps")
    p.add_argument("--precond", dest="preconds", action="append",
                   default=None,
                   help="sweep GCR-DD preconditioners instead of "
                        "backends; repeatable (see 'repro precond')")
    p.add_argument("--precond-overlap", type=int, default=1,
                   help="domain overlap depth for the overlapping "
                        "preconditioners (ras/multisplit; default 1)")
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="gauge disorder of the synthetic configuration")
    p.add_argument("--backend", dest="backends", action="append",
                   choices=["sequential", "threads", "processes"],
                   help="backend to benchmark; repeatable (default: all)")
    p.add_argument("--overlap", action="store_true",
                   help="also benchmark the overlapped halo schedule on "
                        "each backend (asserted bitwise against blocking)")
    p.add_argument("--kernel", type=str, default="auto",
                   help="dslash kernel backend (see 'repro kernels'; "
                        "default auto)")
    p.add_argument("--repeats", type=int, default=3,
                   help="timing repeats per backend; best is kept")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-wait deadlock timeout under threads/processes")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=str, default="BENCH_spmd.json",
                   help="JSON report path")
    p.set_defaults(func=_cmd_bench_spmd)

    p = add_command(
        "bench-multirhs",
        "benchmark batched multi-RHS solves vs sequential",
    )
    p.add_argument("--dims", type=int, nargs=4, default=[4, 4, 4, 4],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--csw", type=float, default=1.0)
    p.add_argument("--tol", type=float, default=1e-8)
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="gauge disorder of the synthetic configuration")
    p.add_argument("--batches", type=int, nargs="+", default=[1, 4, 12],
                   help="batch sizes to benchmark (default 1 4 12)")
    p.add_argument("--repeats", type=int, default=5,
                   help="timing repeats per measurement; best is kept")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=str, default="BENCH_multirhs.json",
                   help="JSON report path")
    p.set_defaults(func=_cmd_bench_multirhs)

    p = add_command("generate", "heatbath gauge generation")
    p.add_argument("--dims", type=int, nargs=4, default=[4, 4, 4, 8],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--beta", type=float, default=5.7)
    p.add_argument("--sweeps", type=int, default=24)
    p.add_argument("--or-steps", type=int, default=1)
    p.add_argument("--start", choices=["hot", "cold"], default="cold")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=str, default="",
                   help="save the final configuration (.npz)")
    p.set_defaults(func=_cmd_generate)

    p = add_command(
        "trace",
        "capture a Perfetto trace of a distributed GCR-DD solve",
    )
    p.add_argument("--dims", type=int, nargs=4, default=[8, 8, 8, 16],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--grid", type=int, nargs=4, default=[2, 1, 1, 1],
                   metavar=("PX", "PY", "PZ", "PT"),
                   help="virtual rank grid (default 2 1 1 1)")
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--csw", type=float, default=1.0)
    p.add_argument("--tol", type=float, default=1e-5)
    p.add_argument("--mr-steps", type=int, default=4,
                   help="preconditioner block-solve MR steps")
    p.add_argument("--precond", type=str, default="auto",
                   help="rank-local preconditioner for the traced solve "
                        "(schwarz/none; default auto)")
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="gauge disorder of the synthetic configuration")
    p.add_argument("--backend",
                   choices=["sequential", "threads", "processes"],
                   default=None,
                   help="trace the SPMD rank programs under this backend "
                        "(default: global-view driver)")
    p.add_argument("--overlap", action="store_true",
                   help="overlapped halo schedule (needs --backend)")
    p.add_argument("--kernel", type=str, default="auto",
                   help="dslash kernel backend (see 'repro kernels'; "
                        "default auto)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=str, default="trace.json",
                   help="trace_event JSON output path")
    p.add_argument("--top", type=int, default=12,
                   help="rows in the printed summary table (0 = all)")
    p.add_argument("--ascii", action="store_true",
                   help="also print an ASCII timeline")
    p.add_argument("--no-model", action="store_true",
                   help="omit the modeled Fig. 4 track")
    p.add_argument("--model-repeat", type=int, default=1,
                   help="tiled modeled dslash applications (default 1)")
    p.set_defaults(func=_cmd_trace)

    p = add_command(
        "report",
        "figs: ASCII charts of Figs. 5/7; show/diff: solve-report tools",
    )
    p.add_argument("action", nargs="?", choices=["figs", "show", "diff"],
                   default="figs",
                   help="figs (default): model charts; show: render a "
                        "SolveReport JSON; diff: regression-gate two")
    p.add_argument("path", nargs="?", default="",
                   help="solve-report JSON (the current one for diff)")
    p.add_argument("--baseline", type=str, default="",
                   help="baseline solve-report JSON to diff against")
    p.add_argument("--tolerance", type=float, default=0.2,
                   help="allowed relative increase for measured timings "
                        "(default 0.2)")
    p.add_argument("--count-tolerance", type=float, default=0.0,
                   help="allowed relative increase for deterministic "
                        "counters (default 0: any growth fails)")
    p.set_defaults(func=_cmd_report)

    p = add_command(
        "serve",
        "run the coalescing solve daemon (HTTP/JSONL front)",
    )
    p.add_argument("--host", type=str, default="127.0.0.1",
                   help="interface to bind (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=8787,
                   help="TCP port (0 picks a free port; default 8787)")
    p.add_argument("--max-batch", type=int, default=4,
                   help="lanes per batched solve (default 4)")
    p.add_argument("--max-wait", type=float, default=0.05,
                   help="coalescing window in seconds (default 0.05)")
    p.add_argument("--queue-limit", type=int, default=64,
                   help="bounded queue capacity; submits beyond it are "
                        "rejected with 429 (default 64)")
    p.add_argument("--pad-to", type=int, default=None,
                   help="canonical padded batch size for bit-reproducible "
                        "results (default: max-batch; 0 disables padding)")
    p.add_argument("--default-timeout", type=float, default=0.0,
                   help="queue deadline in seconds for requests without "
                        "their own timeout_seconds (0 = none)")
    p.add_argument("--verbose", action="store_true",
                   help="per-request access logs on stderr")
    p.set_defaults(func=_cmd_serve)

    p = add_command(
        "bench-serve",
        "load-bench the daemon: req/s and latency vs max_batch",
    )
    p.add_argument("--dims", type=int, nargs=4, default=[4, 4, 4, 4],
                   metavar=("X", "Y", "Z", "T"),
                   help="lattice dims of the served problem "
                        "(default 4 4 4 4)")
    p.add_argument("--max-batch", type=int, action="append",
                   dest="max_batch_values", metavar="N",
                   help="a max_batch value to sweep (repeatable; "
                        "default 1 2 4 8)")
    p.add_argument("--concurrency", type=int, default=8,
                   help="concurrent client threads per point (default 8)")
    p.add_argument("--requests-per-client", type=int, default=4,
                   help="solves each client issues per point (default 4)")
    p.add_argument("--max-wait", type=float, default=0.02,
                   help="coalescing window in seconds (default 0.02)")
    p.add_argument("--seed", type=int, default=5,
                   help="gauge/rhs seed of the served problem (default 5)")
    p.add_argument("--output", type=str, default="BENCH_serve.json",
                   help="bench artifact path (default BENCH_serve.json)")
    p.set_defaults(func=_cmd_bench_serve)

    p = add_command(
        "scaling-sweep",
        "measured-vs-model strong-scaling sweep across rank counts",
    )
    p.add_argument("--dims", type=int, nargs=4, default=[4, 4, 4, 8],
                   metavar=("X", "Y", "Z", "T"),
                   help="fixed lattice dims for every point "
                        "(default 4 4 4 8)")
    p.add_argument("--ranks", type=int, nargs="+", default=[1, 2, 4],
                   metavar="N",
                   help="rank counts to sweep (default 1 2 4)")
    p.add_argument("--tol", type=float, default=1e-6,
                   help="outer solver tolerance (default 1e-6)")
    p.add_argument("--mr-steps", type=int, default=4,
                   help="MR smoother steps in the domain preconditioner "
                        "(default 4)")
    p.add_argument("--seed", type=int, default=11,
                   help="gauge seed (default 11)")
    p.add_argument("--backend", type=str, default="threads",
                   choices=("threads", "processes"),
                   help="SPMD backend for the measured track "
                        "(default threads)")
    p.add_argument("--repeats", type=int, default=1,
                   help="timed repeats per point; best is kept (default 1)")
    p.add_argument("--timeout", type=float, default=120.0,
                   help="per-solve SPMD timeout in seconds (default 120)")
    p.add_argument("--output", type=str, default="BENCH_scaling.json",
                   help="bench artifact path (default BENCH_scaling.json)")
    p.add_argument("--plot-output", type=str, default=None,
                   help="also write the ASCII knee/efficiency chart to "
                        "this file (CI uploads it as an artifact)")
    p.set_defaults(func=_cmd_scaling_sweep)

    p = add_command("precond", "print the preconditioner capability matrix")
    p.set_defaults(func=_cmd_precond)

    p = add_command("kernels", "print the kernel-backend capability matrix")
    p.set_defaults(func=_cmd_kernels)

    p = add_command("info", "print version and model summary")
    p.set_defaults(func=_cmd_info)

    from repro.kernels import availability_note
    from repro.precond import availability_note as precond_note

    width = max(len(name) for name, _ in registered)
    parser.epilog = "commands:\n" + "\n".join(
        f"  {name:<{width}}  {help_}" for name, help_ in registered
    ) + f"\n\n{availability_note()}\n{precond_note()}"
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
