"""Command-line driver: ``python -m repro <command>``.

A small application shell over the library, in the spirit of the QUDA
test/benchmark executables:

* ``figN`` commands print the model-regenerated table for the paper's
  figure N;
* ``solve`` runs a real Wilson-clover solve on a synthetic configuration;
* ``generate`` runs heatbath gauge generation and reports plaquettes;
* ``info`` prints the hardware/calibration summary.
"""

from __future__ import annotations

import argparse
import sys


def _cmd_fig(args) -> int:
    from repro.core.scaling import (
        DslashScalingStudy,
        MultishiftScalingStudy,
        WilsonSolverScalingStudy,
    )
    from repro.perfmodel.kernels import OperatorKind
    from repro.perfmodel.machines import CPU_MACHINES
    from repro.precision import DOUBLE, HALF, SINGLE

    fig = args.figure
    if fig == 5:
        gpus = [8, 16, 32, 64, 128, 256]
        print("Fig. 5 — Wilson-clover dslash (Gflops/GPU), V=32^3x256")
        for prec, label in [(SINGLE, "SP"), (HALF, "HP")]:
            study = DslashScalingStudy(
                (32, 32, 32, 256), OperatorKind.WILSON_CLOVER, prec, 12
            )
            rates = "  ".join(
                f"{p.gflops_per_gpu:7.1f}" for p in study.run(gpus)
            )
            print(f"  {label}: {rates}")
    elif fig == 6:
        gpus = [32, 64, 128, 256]
        print("Fig. 6 — asqtad dslash (Gflops/GPU), V=64^3x192")
        for label, dims in [("ZT", (3, 2)), ("YZT", (3, 2, 1)),
                            ("XYZT", (3, 2, 1, 0))]:
            for prec, pl in [(DOUBLE, "DP"), (SINGLE, "SP")]:
                study = DslashScalingStudy(
                    (64, 64, 64, 192), OperatorKind.ASQTAD, prec, 18,
                    partition_dims=dims,
                )
                rates = "  ".join(
                    f"{p.gflops_per_gpu:6.1f}" for p in study.run(gpus)
                )
                print(f"  {label:>4} {pl}: {rates}")
    elif fig in (7, 8):
        study = WilsonSolverScalingStudy()
        print("Figs. 7-8 — BiCGstab vs GCR-DD, V=32^3x256")
        print("  GPUs  bicg-Tf  gcr-Tf  bicg-s  gcr-s  speedup")
        for n in [4, 8, 16, 32, 64, 128, 256]:
            b, g = study.bicgstab_point(n), study.gcr_point(n)
            print(
                f"  {n:4d}  {b.tflops:7.2f} {g.tflops:7.2f}"
                f"  {b.seconds:6.2f} {g.seconds:6.2f}"
                f"  {b.seconds / g.seconds:6.2f}x"
            )
    elif fig == 9:
        print("Fig. 9 — CPU capability machines (Tflops), V=32^3x256")
        cores = [4096, 8192, 16384, 32768]
        print("  cores: " + "  ".join(f"{c:>7d}" for c in cores))
        for m in CPU_MACHINES:
            rates = "  ".join(f"{m.sustained_tflops(c):7.2f}" for c in cores)
            print(f"  {m.name}: {rates}")
    elif fig == 10:
        ms = MultishiftScalingStudy()
        print("Fig. 10 — asqtad multi-shift (total Tflops), V=64^3x192")
        for label, dims in [("ZT", (3, 2)), ("YZT", (3, 2, 1)),
                            ("XYZT", (3, 2, 1, 0))]:
            rates = "  ".join(
                f"{ms.point(n, dims).tflops:5.2f}" for n in (64, 128, 256)
            )
            print(f"  {label:>4}: {rates}")
    else:
        print(f"no such figure: {fig}", file=sys.stderr)
        return 2
    return 0


def _cmd_solve(args) -> int:
    import numpy as np

    from repro.comm.grid import ProcessGrid, choose_grid
    from repro.core import GCRDDConfig, GCRDDSolver
    from repro.core.api import solve_wilson_clover
    from repro.dirac import WilsonCloverOperator
    from repro.lattice import GaugeField, Geometry, SpinorField

    geometry = Geometry(tuple(args.dims))
    gauge = GaugeField.weak(geometry, epsilon=args.epsilon, rng=args.seed)
    b = SpinorField.random(geometry, rng=args.seed + 1).data
    if args.method == "gcr-dd":
        grid = choose_grid(args.blocks, (3, 2, 1, 0), geometry.dims)
        op = WilsonCloverOperator(gauge, mass=args.mass, csw=args.csw)
        res = GCRDDSolver(
            op, grid, GCRDDConfig(tol=args.tol, mr_steps=args.mr_steps)
        ).solve(b)
        extra = f" grid={grid.label} blocks={grid.size}"
    else:
        res = solve_wilson_clover(
            gauge, b, mass=args.mass, csw=args.csw, tol=args.tol,
            method="bicgstab",
        )
        extra = ""
    status = "converged" if res.converged else "FAILED"
    print(
        f"{args.method} on {geometry!r}: {status} in {res.iterations} "
        f"iterations, residual {res.residual:.2e}{extra}"
    )
    return 0 if res.converged else 1


def _cmd_generate(args) -> int:
    from repro.gauge.heatbath import HeatbathUpdater
    from repro.lattice import GaugeField, Geometry
    from repro import io as repro_io

    geometry = Geometry(tuple(args.dims))
    start = (
        GaugeField.hot(geometry, rng=args.seed)
        if args.start == "hot"
        else GaugeField.unit(geometry)
    )
    updater = HeatbathUpdater(
        beta=args.beta, or_steps=args.or_steps, rng_seed=args.seed
    )
    gauge, history = updater.thermalize(
        start, sweeps=args.sweeps, measure_every=max(args.sweeps // 8, 1)
    )
    print(f"beta={args.beta} {args.start}-start on {geometry!r}")
    for i, plaq in enumerate(history):
        print(f"  measurement {i}: plaquette = {plaq:.5f}")
    if args.output:
        repro_io.save_gauge(
            args.output, gauge,
            extra={"beta": args.beta, "sweeps": args.sweeps},
        )
        print(f"saved configuration to {args.output}")
    return 0


def _cmd_report(args) -> int:
    """ASCII log-log charts of the headline figures."""
    from repro.core.scaling import DslashScalingStudy, WilsonSolverScalingStudy
    from repro.perfmodel.kernels import OperatorKind
    from repro.precision import HALF, SINGLE
    from repro.report import loglog_chart

    gpus = [8, 16, 32, 64, 128, 256]
    sp = DslashScalingStudy((32, 32, 32, 256), OperatorKind.WILSON_CLOVER,
                            SINGLE, 12)
    hp = DslashScalingStudy((32, 32, 32, 256), OperatorKind.WILSON_CLOVER,
                            HALF, 12)
    print(loglog_chart(
        "Fig. 5 — Wilson-clover dslash strong scaling (model)",
        "GPUs", "Gf/GPU",
        {
            "SP": (gpus, [p.gflops_per_gpu for p in sp.run(gpus)]),
            "HP": (gpus, [p.gflops_per_gpu for p in hp.run(gpus)]),
        },
    ))
    print()
    study = WilsonSolverScalingStudy()
    solver_gpus = [4, 8, 16, 32, 64, 128, 256]
    print(loglog_chart(
        "Fig. 7 — solver sustained Tflops (model)",
        "GPUs", "Tflops",
        {
            "BiCGstab": (
                solver_gpus,
                [study.bicgstab_point(n).tflops for n in solver_gpus],
            ),
            "GCR-DD": (
                solver_gpus,
                [study.gcr_point(n).tflops for n in solver_gpus],
            ),
        },
    ))
    return 0


def _cmd_info(args) -> int:
    from repro import __version__
    from repro.perfmodel.machines import CPU_MACHINES, EDGE

    print(f"repro {__version__} — 'Scaling Lattice QCD beyond 100 GPUs' "
          "(SC'11) reproduction")
    print(f"modeled GPU cluster: {EDGE.name}, up to {EDGE.max_gpus} x "
          f"{EDGE.gpu.name}")
    net = EDGE.interconnect
    print(f"  PCI-E {net.pcie_GBs} GB/s, host copies {net.host_copy_GBs} "
          f"GB/s, IB {net.ib_GBs} GB/s per GPU")
    print("comparison machines: " + ", ".join(m.name for m in CPU_MACHINES))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    sub = parser.add_subparsers(dest="command", required=True)

    for n in (5, 6, 7, 8, 9, 10):
        p = sub.add_parser(f"fig{n}", help=f"print the Fig. {n} model table")
        p.set_defaults(func=_cmd_fig, figure=n)

    p = sub.add_parser("solve", help="run a real Wilson-clover solve")
    p.add_argument("--dims", type=int, nargs=4, default=[8, 8, 8, 16],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--mass", type=float, default=0.1)
    p.add_argument("--csw", type=float, default=1.0)
    p.add_argument("--tol", type=float, default=1e-6)
    p.add_argument("--epsilon", type=float, default=0.25,
                   help="gauge disorder of the synthetic configuration")
    p.add_argument("--method", choices=["bicgstab", "gcr-dd"],
                   default="bicgstab")
    p.add_argument("--blocks", type=int, default=4,
                   help="Schwarz blocks (gcr-dd)")
    p.add_argument("--mr-steps", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser("generate", help="heatbath gauge generation")
    p.add_argument("--dims", type=int, nargs=4, default=[4, 4, 4, 8],
                   metavar=("NX", "NY", "NZ", "NT"))
    p.add_argument("--beta", type=float, default=5.7)
    p.add_argument("--sweeps", type=int, default=24)
    p.add_argument("--or-steps", type=int, default=1)
    p.add_argument("--start", choices=["hot", "cold"], default="cold")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", type=str, default="",
                   help="save the final configuration (.npz)")
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("report", help="ASCII charts of Figs. 5 and 7")
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("info", help="print version and model summary")
    p.set_defaults(func=_cmd_info)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
