"""Dynamical-fermion HMC: gauge generation with the solver in the loop.

This is the workload the whole paper exists for.  "Configuration
generation is inherently sequential ... the focused power of capability
computing systems has been essential" (Sec. 2) — because every molecular-
dynamics step of dynamical HMC requires a Dirac solve for the fermion
force, and those solves must strong-scale.

Implemented here for naive staggered quarks (thin links; the asqtad force
adds the fattening chain rule but no new structure):

* pseudofermion action ``S_pf = phi^+ (M^+ M)^{-1} phi`` with the heat
  bath ``phi = M^+ xi``, xi Gaussian;
* the fermion force via the standard two-vector formula: with
  ``X = (M^+M)^{-1} phi`` and ``Y = M X``,
  ``dS_pf/dt = -2 Re <Y, dM X>``, and ``dM = -1/2 dD`` localizes onto
  per-link outer products of X and Y at neighboring sites;
* :class:`DynamicalHMC`: leapfrog over the combined gauge + fermion
  force (one CG solve per force evaluation), exact Metropolis.

The force implementation is validated against the numerical directional
derivative of the action — the same discipline as the gauge force.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.dirac.staggered import NaiveStaggeredOperator, StaggeredNormalOperator
from repro.gauge.action import (
    algebra_norm2,
    gauge_force,
    random_algebra_field,
    traceless_antihermitian,
    wilson_gauge_action,
)
from repro.gauge.hmc import expm_su3
from repro.lattice.fields import GaugeField, SpinorField
from repro.lattice.geometry import Geometry
from repro.solvers.cg import cg
from repro.solvers.space import STAGGERED_SPACE
from repro.util.rng import make_rng


@dataclass
class PseudofermionAction:
    """``S_pf = phi^+ (M^+M)^{-1} phi`` for naive staggered quarks.

    Every evaluation (action or force) rebuilds the operator from the
    current links and performs a CG solve — the "solver accounts for
    80-99%" structure of real gauge generation.
    """

    mass: float
    tol: float = 1e-10
    maxiter: int = 2000

    def operator(self, gauge: GaugeField) -> NaiveStaggeredOperator:
        return NaiveStaggeredOperator(gauge, mass=self.mass)

    # ------------------------------------------------------------------
    def refresh(self, gauge: GaugeField, rng) -> np.ndarray:
        """Pseudofermion heat bath: ``phi = M^+ xi`` with Gaussian xi,
        which makes ``S_pf = |xi|^2`` exactly chi-squared distributed."""
        rng = make_rng(rng)
        geom = gauge.geometry
        shape = geom.shape + (3,)
        xi = (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        ) / np.sqrt(2.0)
        return self.operator(gauge).apply_dagger(xi)

    def solve(self, gauge: GaugeField, phi: np.ndarray):
        """X = (M^+M)^{-1} phi (and the operator used, for reuse)."""
        op = self.operator(gauge)
        normal = StaggeredNormalOperator(op)
        result = cg(
            normal.apply, phi, tol=self.tol, maxiter=self.maxiter,
            space=STAGGERED_SPACE,
        )
        if not result.converged:
            raise RuntimeError(
                f"pseudofermion solve failed (residual {result.residual:.2e})"
            )
        return op, result.x

    def action(self, gauge: GaugeField, phi: np.ndarray) -> float:
        _, x = self.solve(gauge, phi)
        return float(np.vdot(phi, x).real)

    # ------------------------------------------------------------------
    def force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        """The fermion MD force (traceless anti-Hermitian, per link).

        With X the solution and Y = M X:

        ``dS/dt = -2 Re <Y, dM X> = Re <Y, dD X>``  (dM = -1/2 dD)

        and for the flow ``U_mu(y, t) = exp(t P) U_mu(y)`` the derivative
        localizes to

        ``dS/dt = sum_y eta_mu(y) Re tr[ P ( U_mu(y) X(y+mu) Y(y)^+
                                    + (U_mu(y) Y(y+mu) X(y)^+)^+ ) ]``

        (first term: the forward hop; second: the backward hop, entering
        daggered).  Using ``Re tr(P B) = tr(P TA(B))/2`` for traceless
        anti-Hermitian P and ``TA(B) = TA(eta U (fwd - bwd))``, the force
        with the convention ``dS/dt = -sum Re tr(P F)`` is

        ``F_mu(y) = -1/2 TA( eta U (X(y+mu) Y(y)^+ - Y(y+mu) X(y)^+) )``.
        """
        op, x = self.solve(gauge, phi)
        y = op.apply(x)
        geom = gauge.geometry
        eta = op.eta
        force = np.empty_like(gauge.data)
        for mu in range(4):
            u = gauge.data[mu]
            x_fwd = geom.shift(x, mu, +1)
            y_fwd = geom.shift(y, mu, +1)
            # Outer products over color at every site: (3,) x (3,)^* -> 3x3.
            fwd = np.einsum("...a,...b->...ab", x_fwd, np.conj(y))
            bwd = np.einsum("...a,...b->...ab", y_fwd, np.conj(x))
            bracket = u @ ((fwd - bwd) * eta[mu][..., None, None])
            force[mu] = -0.5 * traceless_antihermitian(bracket)
        return force


@dataclass
class AsqtadPseudofermionAction:
    """``S_pf = phi^+ (M^+M)^{-1} phi`` for *asqtad* quarks.

    The action depends on the thin links only through the fat/long
    fields, so the force runs the fattening chain rule of
    :mod:`repro.gauge.asqtad_force` — the heaviest of QUDA's "force term
    computations" (Sec. 5).  Same interface as
    :class:`PseudofermionAction`; fat/long links are rebuilt from the
    current thin links at every evaluation, as an MD integrator must.
    """

    mass: float
    u0: float = 1.0
    tol: float = 1e-10
    maxiter: int = 3000

    def operator(self, gauge: GaugeField):
        from repro.dirac.staggered import AsqtadOperator

        return AsqtadOperator.from_gauge(gauge, mass=self.mass, u0=self.u0)

    def refresh(self, gauge: GaugeField, rng) -> np.ndarray:
        rng = make_rng(rng)
        geom = gauge.geometry
        shape = geom.shape + (3,)
        xi = (
            rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        ) / np.sqrt(2.0)
        return self.operator(gauge).apply_dagger(xi)

    def solve(self, gauge: GaugeField, phi: np.ndarray):
        op = self.operator(gauge)
        normal = StaggeredNormalOperator(op)
        result = cg(
            normal.apply, phi, tol=self.tol, maxiter=self.maxiter,
            space=STAGGERED_SPACE,
        )
        if not result.converged:
            raise RuntimeError(
                f"asqtad pseudofermion solve failed "
                f"(residual {result.residual:.2e})"
            )
        return op, result.x

    def action(self, gauge: GaugeField, phi: np.ndarray) -> float:
        _, x = self.solve(gauge, phi)
        return float(np.vdot(phi, x).real)

    def force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        from repro.gauge.asqtad_force import asqtad_fermion_force

        op, x = self.solve(gauge, phi)
        y = op.apply(x)
        return asqtad_fermion_force(gauge, x, y, op.eta, u0=self.u0)


@dataclass
class DynamicalTrajectoryResult:
    gauge: GaugeField
    accepted: bool
    delta_h: float
    plaquette: float
    solver_iterations: int


@dataclass
class DynamicalHMC:
    """Two-flavor-style HMC with gauge + pseudofermion forces.

    Parameters mirror :class:`repro.gauge.hmc.PureGaugeHMC` plus the quark
    mass of the pseudofermion action.  Heavier quarks mean better-
    conditioned solves (fewer CG iterations per force) — the coupling
    between physics and solver cost that drives the paper's Sec. 3.1
    discussion.
    """

    beta: float
    mass: float
    step_size: float = 0.05
    n_steps: int = 10
    solver_tol: float = 1e-10
    #: "naive" (thin links) or "asqtad" (fattened, with the chain-rule
    #: force of :mod:`repro.gauge.asqtad_force`).
    discretization: str = "naive"
    rng_seed: "int | np.random.Generator | None" = None
    history: list[DynamicalTrajectoryResult] = field(default_factory=list)

    def __post_init__(self):
        self.rng = make_rng(self.rng_seed)
        if self.discretization == "naive":
            self.pseudofermion = PseudofermionAction(
                mass=self.mass, tol=self.solver_tol
            )
        elif self.discretization == "asqtad":
            self.pseudofermion = AsqtadPseudofermionAction(
                mass=self.mass, tol=self.solver_tol
            )
        else:
            raise ValueError(
                f"unknown discretization {self.discretization!r}; "
                "expected naive/asqtad"
            )
        self._solve_count = 0

    # ------------------------------------------------------------------
    def total_force(self, gauge: GaugeField, phi: np.ndarray) -> np.ndarray:
        self._solve_count += 1
        return gauge_force(gauge, self.beta) + self.pseudofermion.force(
            gauge, phi
        )

    def hamiltonian(
        self, gauge: GaugeField, momenta: np.ndarray, phi: np.ndarray
    ) -> float:
        return (
            algebra_norm2(momenta)
            + wilson_gauge_action(gauge, self.beta)
            + self.pseudofermion.action(gauge, phi)
        )

    def leapfrog(
        self, gauge: GaugeField, momenta: np.ndarray, phi: np.ndarray
    ) -> tuple[GaugeField, np.ndarray]:
        eps = self.step_size
        u = gauge.copy()
        p = momenta - 0.5 * eps * self.total_force(u, phi)
        for step in range(self.n_steps):
            u = GaugeField(u.geometry, expm_su3(eps * p) @ u.data)
            kick = 0.5 * eps if step == self.n_steps - 1 else eps
            p = p - kick * self.total_force(u, phi)
        return u, p

    def trajectory(self, gauge: GaugeField) -> DynamicalTrajectoryResult:
        from repro.linalg import su3

        iters_before = self._solve_count
        momenta = random_algebra_field((4,) + gauge.geometry.shape, self.rng)
        phi = self.pseudofermion.refresh(gauge, self.rng)
        h_start = self.hamiltonian(gauge, momenta, phi)
        proposal, p_end = self.leapfrog(gauge, momenta, phi)
        proposal = GaugeField(proposal.geometry, su3.project_su3(proposal.data))
        h_end = self.hamiltonian(proposal, p_end, phi)
        delta_h = h_end - h_start
        accept = delta_h <= 0 or self.rng.random() < np.exp(-delta_h)
        out = proposal if accept else gauge
        result = DynamicalTrajectoryResult(
            gauge=out,
            accepted=bool(accept),
            delta_h=float(delta_h),
            plaquette=out.plaquette(),
            solver_iterations=self._solve_count - iters_before,
        )
        self.history.append(result)
        return result

    def run(self, gauge: GaugeField, trajectories: int) -> GaugeField:
        for _ in range(int(trajectories)):
            gauge = self.trajectory(gauge).gauge
        return gauge

    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(r.accepted for r in self.history) / len(self.history)
