"""Pure-gauge hybrid Monte Carlo (HMC).

The gauge-generation algorithm whose "single streams of Monte Carlo Markov
chains ... require strong scaling" (Sec. 1) — the reason the paper needs
O(100)-GPU solvers at all.  This is the quenched (pure Wilson gauge
action) version: Gaussian momenta, leapfrog molecular dynamics on the
group manifold, and a Metropolis accept/reject that makes the algorithm
exact.

Full dynamical-fermion HMC would add the fermion determinant through
pseudofermion solves — precisely the solver workload of Secs. 3 and 8;
:class:`PureGaugeHMC` exposes the trajectory machinery those solves would
plug into.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
import scipy.linalg

from repro.gauge.action import (
    algebra_norm2,
    gauge_force,
    random_algebra_field,
    wilson_gauge_action,
)
from repro.lattice.fields import GaugeField
from repro.linalg import su3
from repro.util.rng import make_rng


def expm_su3(p: np.ndarray) -> np.ndarray:
    """Matrix exponential of stacked su(3) elements (exact to rounding)."""
    return scipy.linalg.expm(p)


@dataclass
class TrajectoryResult:
    """One HMC trajectory's bookkeeping."""

    gauge: GaugeField
    accepted: bool
    delta_h: float
    action: float
    plaquette: float


@dataclass
class PureGaugeHMC:
    """Leapfrog HMC for the Wilson gauge action.

    Parameters
    ----------
    beta:
        Gauge coupling.
    step_size / n_steps:
        Leapfrog integration step and count (trajectory length =
        step_size * n_steps; 1.0 is customary).
    """

    beta: float
    step_size: float = 0.1
    n_steps: int = 10
    rng_seed: "int | np.random.Generator | None" = None
    history: list[TrajectoryResult] = field(default_factory=list)

    def __post_init__(self):
        self.rng = make_rng(self.rng_seed)

    # ------------------------------------------------------------------
    def hamiltonian(self, gauge: GaugeField, momenta: np.ndarray) -> float:
        return algebra_norm2(momenta) + wilson_gauge_action(gauge, self.beta)

    def leapfrog(
        self, gauge: GaugeField, momenta: np.ndarray
    ) -> tuple[GaugeField, np.ndarray]:
        """Integrate Hamilton's equations: U' = exp(eps P) U, P' = P - eps F.

        The integrator is reversible and area-preserving, so Metropolis
        with dH = H(end) - H(start) is exact.
        """
        eps = self.step_size
        u = gauge.copy()
        # Half kick, then alternating full drifts/kicks, ending on a half
        # kick: the standard reversible leapfrog.
        p = momenta - 0.5 * eps * gauge_force(u, self.beta)
        for step in range(self.n_steps):
            u = GaugeField(u.geometry, expm_su3(eps * p) @ u.data)
            kick = 0.5 * eps if step == self.n_steps - 1 else eps
            p = p - kick * gauge_force(u, self.beta)
        return u, p

    def trajectory(self, gauge: GaugeField) -> TrajectoryResult:
        """One momentum refresh + leapfrog + Metropolis step."""
        momenta = random_algebra_field((4,) + gauge.geometry.shape, self.rng)
        h_start = self.hamiltonian(gauge, momenta)
        proposal, p_end = self.leapfrog(gauge, momenta)
        # Guard against integrator drift off the group manifold.
        proposal = GaugeField(
            proposal.geometry, su3.project_su3(proposal.data)
        )
        h_end = self.hamiltonian(proposal, p_end)
        delta_h = h_end - h_start
        accept = delta_h <= 0 or self.rng.random() < np.exp(-delta_h)
        out = proposal if accept else gauge
        result = TrajectoryResult(
            gauge=out,
            accepted=bool(accept),
            delta_h=float(delta_h),
            action=wilson_gauge_action(out, self.beta),
            plaquette=out.plaquette(),
        )
        self.history.append(result)
        return result

    def run(self, gauge: GaugeField, trajectories: int) -> GaugeField:
        for _ in range(int(trajectories)):
            gauge = self.trajectory(gauge).gauge
        return gauge

    @property
    def acceptance_rate(self) -> float:
        if not self.history:
            return 0.0
        return sum(r.accepted for r in self.history) / len(self.history)
