"""Asqtad fat and long (Naik) link construction, Sec. 2.3 of the paper.

The improved staggered operator of Eq. (3) uses two derived gauge fields,
precomputed once per solve:

* the **fat** link ``U-hat``: a local average of the thin link over the
  fat7 + Lepage path set (one-link, 3-, 5-, 7-link staples and the
  double-detour Lepage term);
* the **long** link ``U-check``: the straight 3-hop product
  ``U_mu(x) U_mu(x+mu) U_mu(x+2mu)`` carrying the Naik coefficient.

Path coefficients are the standard asqtad values (the ones in the MILC
code), with tadpole factors ``1/u0^(L-1)`` for a path of length L:

==========  ==============  =========
term        paths per mu    coefficient
==========  ==============  =========
one-link    1               5/8
3-staple    6               -1/16
5-staple    24              +1/64
7-staple    48              -1/384
Lepage      6               -1/16
Naik        1               -1/24
==========  ==============  =========

The fattened links are *not* SU(3) matrices (they are sums of group
elements); this is expected and the staggered operator uses them as-is.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from repro.gauge.paths import Step, path_product
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import Geometry

#: Standard asqtad path coefficients at u0 = 1.
ONE_LINK_COEFF = 5.0 / 8.0
THREE_STAPLE_COEFF = -1.0 / 16.0
FIVE_STAPLE_COEFF = 1.0 / 64.0
SEVEN_STAPLE_COEFF = -1.0 / 384.0
LEPAGE_COEFF = -1.0 / 16.0
NAIK_COEFF = -1.0 / 24.0


@dataclass
class AsqtadLinks:
    """The precomputed smeared fields consumed by the asqtad operator.

    Attributes
    ----------
    fat:
        Fat links, shape ``(4,) + geometry.shape + (3, 3)``; coefficients
        folded in.
    long:
        Long (3-hop Naik) links, same shape; the Naik coefficient is folded
        in, so the operator applies them with unit weight.
    """

    geometry: Geometry
    fat: np.ndarray
    long: np.ndarray


def _staple_paths(mu: int, detours: tuple[int, ...]) -> list[list[Step]]:
    """All signed staple paths for the mu link with the given ordered detour
    directions: out along each detour, across mu, back in reverse order."""
    paths: list[list[Step]] = []
    for signs in itertools.product((+1, -1), repeat=len(detours)):
        outward = [(nu, s) for nu, s in zip(detours, signs)]
        inward = [(nu, -s) for nu, s in reversed(list(zip(detours, signs)))]
        paths.append(outward + [(mu, +1)] + inward)
    return paths


def fattening_paths(mu: int) -> list[tuple[float, list[Step]]]:
    """The full asqtad fat-link path set for direction mu: 85 weighted paths."""
    others = [nu for nu in range(4) if nu != mu]
    weighted: list[tuple[float, list[Step]]] = [(ONE_LINK_COEFF, [(mu, +1)])]
    # 3-staples: one orthogonal detour direction.
    for nu in others:
        for path in _staple_paths(mu, (nu,)):
            weighted.append((THREE_STAPLE_COEFF, path))
    # 5-staples: two distinct orthogonal detours (ordered).
    for nu, rho in itertools.permutations(others, 2):
        for path in _staple_paths(mu, (nu, rho)):
            weighted.append((FIVE_STAPLE_COEFF, path))
    # 7-staples: all three orthogonal detours (ordered).
    for detours in itertools.permutations(others, 3):
        for path in _staple_paths(mu, detours):
            weighted.append((SEVEN_STAPLE_COEFF, path))
    # Lepage: double detour in a single direction.
    for nu in others:
        for sign in (+1, -1):
            path = [(nu, sign), (nu, sign), (mu, +1), (nu, -sign), (nu, -sign)]
            weighted.append((LEPAGE_COEFF, path))
    return weighted


def build_fat_links(gauge: GaugeField, u0: float = 1.0) -> np.ndarray:
    """Compute the asqtad fat links for all four directions."""
    geom = gauge.geometry
    fat = np.zeros_like(gauge.data)
    for mu in range(4):
        for coeff, path in fattening_paths(mu):
            tadpole = u0 ** (1 - len(path))  # 1/u0^(L-1)
            fat[mu] += (coeff * tadpole) * path_product(geom, gauge.data, path)
    return fat


def build_long_links(gauge: GaugeField, u0: float = 1.0) -> np.ndarray:
    """Compute the Naik long links (3-hop straight products, coefficient in)."""
    geom = gauge.geometry
    long_links = np.empty_like(gauge.data)
    for mu in range(4):
        product = path_product(geom, gauge.data, [(mu, +1)] * 3)
        long_links[mu] = (NAIK_COEFF / u0**2) * product
    return long_links


def build_asqtad_links(gauge: GaugeField, u0: float = 1.0) -> AsqtadLinks:
    """Precompute fat + long links (done once per solve, as in Sec. 2.3)."""
    if min(gauge.geometry.dims) < 4:
        raise ValueError(
            "asqtad links need every lattice extent >= 4 (3-hop Naik term); "
            f"got {gauge.geometry.dims}"
        )
    return AsqtadLinks(
        geometry=gauge.geometry,
        fat=build_fat_links(gauge, u0=u0),
        long=build_long_links(gauge, u0=u0),
    )
