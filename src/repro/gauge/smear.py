"""APE link smearing.

Not used by the asqtad construction (which has its own fattening paths) but
provided as the generic "gauge field smearing routine" the QUDA library
ships (Sec. 5), and exercised by tests/examples as a source of mildly
smoothed configurations.
"""

from __future__ import annotations

import numpy as np

from repro.gauge.paths import path_product
from repro.lattice.fields import GaugeField
from repro.linalg import su3


def staple_sum(gauge: GaugeField, mu: int) -> np.ndarray:
    """Sum of the six 3-link staples around the mu link at every site."""
    g, d = gauge.geometry, gauge.data
    total: np.ndarray | None = None
    for nu in range(4):
        if nu == mu:
            continue
        up = path_product(g, d, [(nu, +1), (mu, +1), (nu, -1)])
        down = path_product(g, d, [(nu, -1), (mu, +1), (nu, +1)])
        contrib = up + down
        total = contrib if total is None else total + contrib
    assert total is not None
    return total


def ape_smear(
    gauge: GaugeField, alpha: float = 0.5, iterations: int = 1
) -> GaugeField:
    """APE smearing: ``U' = proj_SU3((1 - alpha) U + alpha/6 * staples)``.

    Raises the average plaquette toward 1 while preserving gauge covariance.
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"alpha must be in [0, 1], got {alpha}")
    out = gauge
    for _ in range(int(iterations)):
        new_links = np.empty_like(out.data)
        for mu in range(4):
            blended = (1.0 - alpha) * out.data[mu] + (alpha / 6.0) * staple_sum(
                out, mu
            )
            new_links[mu] = su3.project_su3(blended)
        out = GaugeField(out.geometry, new_links)
    return out
