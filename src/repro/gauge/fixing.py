"""Landau and Coulomb gauge fixing.

Gauge fixing is another member of QUDA's kernel family (it ships Landau/
Coulomb fixing for analysis pipelines that need gauge-dependent
quantities: gluon propagators, some smearing kernels, matching to
perturbation theory).

Landau gauge maximizes the functional

``F[g] = (1/(4*3*V)) sum_{x,mu} Re tr[ g(x) U_mu(x) g(x+mu)^+ ]``

over gauge transformations g; Coulomb gauge uses spatial links only.  The
relaxation sweep updates, on a checkerboard, each site's g(x) to the
exact local maximizer — the SU(3) polar factor of the sum of adjacent
(current) links — and applies the transformation.  The standard quality
measure ``theta = (1/(3V)) sum_x |Delta(x)|^2`` (the lattice divergence
of the gauge field) decreases toward zero as the configuration approaches
the gauge condition.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gauge.action import traceless_antihermitian
from repro.lattice.fields import GaugeField
from repro.linalg import su3


def _fixing_directions(mode: str) -> range:
    if mode == "landau":
        return range(4)
    if mode == "coulomb":
        return range(3)
    raise ValueError(f"unknown gauge {mode!r}; expected landau/coulomb")


def gauge_functional(gauge: GaugeField, mode: str = "landau") -> float:
    """The normalized fixing functional F in [~-1, 1]; 1 for unit links."""
    dirs = _fixing_directions(mode)
    total = 0.0
    for mu in dirs:
        total += float(su3.trace(gauge.data[mu]).real.sum())
    return total / (len(dirs) * 3 * gauge.geometry.volume)


def gauge_divergence(gauge: GaugeField, mode: str = "landau") -> float:
    """``theta``: mean squared lattice divergence of A (0 when fixed)."""
    geom = gauge.geometry
    dirs = _fixing_directions(mode)
    delta = np.zeros(geom.shape + (3, 3), dtype=np.complex128)
    for mu in dirs:
        a_here = traceless_antihermitian(gauge.data[mu])
        a_back = geom.shift(a_here, mu, -1)
        delta += a_here - a_back
    return float((np.abs(delta) ** 2).sum()) / (3 * geom.volume)


@dataclass
class GaugeFixingResult:
    gauge: GaugeField
    transformation: np.ndarray  # g(x), the accumulated transformation
    functional: float
    theta: float
    sweeps: int
    converged: bool


def fix_gauge(
    gauge: GaugeField,
    mode: str = "landau",
    max_sweeps: int = 200,
    theta_tol: float = 1e-6,
) -> GaugeFixingResult:
    """Relaxation gauge fixing to Landau or Coulomb gauge.

    Returns the fixed configuration, the accumulated transformation g
    (so ``U_fixed = g U g^+(x+mu)``), the final functional, and theta.
    """
    dirs = _fixing_directions(mode)
    geom = gauge.geometry
    current = gauge.copy()
    g_total = su3.identity(geom.shape, dtype=gauge.data.dtype)

    sweeps = 0
    converged = gauge_divergence(current, mode) <= theta_tol
    while not converged and sweeps < max_sweeps:
        for parity in (0, 1):
            mask = geom.parity_mask(parity)
            # w(x) = sum_mu [U_mu(x) + U_mu(x-mu)^+] over fixing dirs.
            w = np.zeros(geom.shape + (3, 3), dtype=current.data.dtype)
            for mu in dirs:
                w += current.data[mu]
                w += geom.shift(su3.dagger(current.data[mu]), mu, -1)
            # Local maximizer of Re tr(g w): the SU(3) polar factor of w^+.
            g_new = su3.project_su3(su3.dagger(w[mask]))
            g_site = su3.identity(geom.shape, dtype=current.data.dtype)
            g_site[mask] = g_new
            _apply_transformation(current, g_site)
            g_total = g_site @ g_total
        sweeps += 1
        converged = gauge_divergence(current, mode) <= theta_tol

    return GaugeFixingResult(
        gauge=current,
        transformation=g_total,
        functional=gauge_functional(current, mode),
        theta=gauge_divergence(current, mode),
        sweeps=sweeps,
        converged=converged,
    )


def _apply_transformation(gauge: GaugeField, g: np.ndarray) -> None:
    """In-place gauge transformation U_mu(x) <- g(x) U_mu(x) g(x+mu)^+."""
    geom = gauge.geometry
    for mu in range(4):
        g_fwd = geom.shift(g, mu, +1)
        gauge.data[mu] = g @ gauge.data[mu] @ su3.dagger(g_fwd)


def random_gauge_transform(
    gauge: GaugeField, rng=None
) -> tuple[GaugeField, np.ndarray]:
    """Apply a random gauge transformation (testing utility; gauge-
    invariant observables must not change)."""
    g = su3.random_su3(gauge.geometry.shape, rng=rng)
    out = gauge.copy()
    _apply_transformation(out, g)
    return out, g
