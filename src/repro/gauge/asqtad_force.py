"""The asqtad fermion force: fat/long-link chain rule.

Sec. 5 lists "force term computations required for gauge field generation"
among QUDA's kernels; for improved staggered quarks this is the hardest
one, because the action depends on the thin links only *through* the
fattened fields — every one of the 85 fattening paths (and the 3-hop Naik
product) must be differentiated with respect to every link it traverses.

The machinery here is generic: :func:`accumulate_path_derivative` takes
one weighted path and a per-site "derivative seed" G (with
``dS/dt = Re sum_y tr(d path(y)/dt * G(y))``) and scatters the per-link
contributions ``A P L B`` -> bracket terms into a force accumulator.  The
asqtad force is then: build the one-hop and three-hop seeds from the
solver vectors X and Y (identical structure to the naive staggered
force, without the link factor), and run the chain rule over the path
table of :mod:`repro.gauge.asqtad`.

Everything is validated against the numerical directional derivative of
the pseudofermion action — the only spec that cannot lie.
"""

from __future__ import annotations

import numpy as np

from repro.gauge.action import traceless_antihermitian
from repro.gauge.asqtad import NAIK_COEFF, fattening_paths
from repro.gauge.paths import Step, shift_field
from repro.lattice.fields import GaugeField
from repro.lattice.geometry import Geometry
from repro.linalg import su3


def accumulate_path_derivative(
    geometry: Geometry,
    gauge_data: np.ndarray,
    path: list[Step],
    weight: float,
    seed: np.ndarray,
    bracket: np.ndarray,
) -> None:
    """Add d(weight * path_product)/d(links) contributions to ``bracket``.

    ``seed`` is G(y) (shape ``geometry.shape + (3, 3)``); ``bracket`` is
    the per-link accumulator ``(4,) + geometry.shape + (3, 3)`` receiving,
    for each link the path traverses, the matrix M such that the flow
    derivative is ``Re tr(P M)``:

    * forward step i at site z = y + offset_i:
      ``M(z) += w * U(z) [B_i G A_i](z - offset_i)``
    * backward step i (link at z = y + offset_{i+1}):
      ``M(z) -= w * [B_i G A_i](z - offset_{i+1}) U(z)^+``

    with A_i/B_i the prefix/suffix products of the path around step i.
    """
    n = len(path)
    # Prefix products A_i (product of steps 0..i-1, starting at y) and the
    # offsets reached before each step.
    prefixes: list[np.ndarray | None] = [None] * (n + 1)
    offsets: list[list[int]] = [[0, 0, 0, 0]]
    prod: np.ndarray | None = None
    off = [0, 0, 0, 0]
    for mu, sign in path:
        if sign == +1:
            link = shift_field(geometry, gauge_data[mu], off)
            off = off.copy()
            off[mu] += 1
        else:
            off = off.copy()
            off[mu] -= 1
            link = su3.dagger(shift_field(geometry, gauge_data[mu], off))
        prod = link if prod is None else prod @ link
        prefixes[len(offsets)] = prod
        offsets.append(off)
    # Suffix products B_i (steps i+1..n-1 as a field over the start site y).
    # Build them by dividing the full product: B_i = A_i_step^{-1} ... —
    # cheaper and stabler to rebuild from the right.
    suffixes: list[np.ndarray | None] = [None] * (n + 1)
    prod = None
    off = offsets[n]
    for i in range(n - 1, -1, -1):
        mu, sign = path[i]
        if sign == +1:
            link_off = offsets[i]
            link = shift_field(geometry, gauge_data[mu], link_off)
        else:
            link = su3.dagger(
                shift_field(geometry, gauge_data[mu], offsets[i + 1])
            )
        prod = link if prod is None else link @ prod
        suffixes[i + 1] = prod  # product of steps i.. ; shift below
    # suffixes[i+1] currently holds steps i..n-1; we want steps i+1..n-1
    # as B_i, i.e. suffixes index shifted by one step.

    eye = su3.identity(geometry.shape, dtype=gauge_data.dtype)
    for i, (mu, sign) in enumerate(path):
        a = prefixes[i] if i > 0 else eye
        b = suffixes[i + 2] if i + 1 < n else eye
        core = b @ seed @ a  # [B_i G A_i](y)
        if sign == +1:
            z_offset = offsets[i]
            shifted = shift_field(
                geometry, core, [-o for o in z_offset]
            )
            link = gauge_data[mu]
            bracket[mu] += weight * (link @ shifted)
        else:
            z_offset = offsets[i + 1]
            shifted = shift_field(
                geometry, core, [-o for o in z_offset]
            )
            link = gauge_data[mu]
            bracket[mu] -= weight * (shifted @ su3.dagger(link))


def _hop_seed(
    geometry: Geometry,
    eta_mu: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    mu: int,
    hops: int,
) -> np.ndarray:
    """The derivative seed of one hopping term:
    ``G(y) = eta_mu(y) (X(y + hops*mu) Y(y)^+ - Y(y + hops*mu) X(y)^+)``."""
    x_f = geometry.shift(x, mu, hops)
    y_f = geometry.shift(y, mu, hops)
    fwd = np.einsum("...a,...b->...ab", x_f, np.conj(y))
    bwd = np.einsum("...a,...b->...ab", y_f, np.conj(x))
    return (fwd - bwd) * eta_mu[..., None, None]


def asqtad_fermion_force(
    gauge: GaugeField,
    x: np.ndarray,
    y: np.ndarray,
    eta: np.ndarray,
    u0: float = 1.0,
) -> np.ndarray:
    """The full asqtad pseudofermion force on the *thin* links.

    Parameters
    ----------
    gauge:
        Thin-link configuration (the fattening inputs).
    x, y:
        Solver vectors: ``X = (M^+M)^{-1} phi`` and ``Y = M X``.
    eta:
        Staggered phases, shape ``(4,) + geometry.shape``.

    Returns traceless anti-Hermitian force matrices per link, with the
    convention ``dS_pf/dt = -sum Re tr(P F)``.
    """
    geometry = gauge.geometry
    bracket = np.zeros_like(gauge.data)
    for mu in range(4):
        seed_fat = _hop_seed(geometry, eta[mu], x, y, mu, 1)
        for coeff, path in fattening_paths(mu):
            tadpole = u0 ** (1 - len(path))
            accumulate_path_derivative(
                geometry, gauge.data, path, coeff * tadpole, seed_fat, bracket
            )
        seed_long = _hop_seed(geometry, eta[mu], x, y, mu, 3)
        naik_path = [(mu, +1)] * 3
        accumulate_path_derivative(
            geometry, gauge.data, naik_path, NAIK_COEFF / u0**2, seed_long,
            bracket,
        )
    return -0.5 * traceless_antihermitian(bracket)
