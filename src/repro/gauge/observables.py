"""Basic gauge observables: plaquettes and the clover-leaf field strength.

The clover-leaf ``F_{mu nu}`` built here is the input to the Wilson-clover
term ``A_x`` of Eq. (2) (see :mod:`repro.dirac.clover`).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.gauge.paths import path_product
from repro.lattice.fields import GaugeField
from repro.linalg import su3


def plaquette_field(gauge: GaugeField, mu: int, nu: int) -> np.ndarray:
    """The mu-nu plaquette ``U_mu(x) U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+``
    at every site, shape ``geometry.shape + (3, 3)``."""
    return path_product(
        gauge.geometry, gauge.data, [(mu, +1), (nu, +1), (mu, -1), (nu, -1)]
    )


def average_plaquette(gauge: GaugeField) -> float:
    """Average of ``Re tr P / 3`` over sites and the 6 plaquette planes.

    1.0 for the free field; ~0 for a hot start.  This is the standard sanity
    observable for generated configurations.
    """
    total = 0.0
    count = 0
    for mu, nu in itertools.combinations(range(4), 2):
        p = plaquette_field(gauge, mu, nu)
        total += float(su3.trace(p).real.mean()) / 3.0
        count += 1
    return total / count


def clover_leaf_sum(gauge: GaugeField, mu: int, nu: int) -> np.ndarray:
    """Sum ``Q_{mu nu}`` of the four plaquette "leaves" around each site.

    The four leaves are the plaquettes in the (mu, nu) plane touching x in
    each quadrant, all path-ordered to start and end at x.
    """
    g, d = gauge.geometry, gauge.data
    leaves = [
        [(mu, +1), (nu, +1), (mu, -1), (nu, -1)],
        [(nu, +1), (mu, -1), (nu, -1), (mu, +1)],
        [(mu, -1), (nu, -1), (mu, +1), (nu, +1)],
        [(nu, -1), (mu, +1), (nu, +1), (mu, -1)],
    ]
    q = path_product(g, d, leaves[0])
    for leaf in leaves[1:]:
        q = q + path_product(g, d, leaf)
    return q


def field_strength(gauge: GaugeField, mu: int, nu: int) -> np.ndarray:
    """Clover-leaf field strength ``F_{mu nu} = (Q - Q^+)/8`` (anti-Hermitian).

    Antisymmetric under mu <-> nu; vanishes on the free field.
    """
    q = clover_leaf_sum(gauge, mu, nu)
    return (q - su3.dagger(q)) / 8.0
