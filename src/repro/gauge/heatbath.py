"""Quenched gauge-field generation: Cabibbo-Marinari heatbath with
overrelaxation.

This is the Monte Carlo "configuration generation" stage of Sec. 2 —
"inherently sequential as one configuration is generated from the previous
one" — implemented for the pure Wilson gauge action.  Each sweep updates
every link by cycling through the three SU(2) subgroups of SU(3)
(Cabibbo-Marinari), drawing each subgroup element from its exact local
distribution with the Kennedy-Pendleton heatbath; microcanonical
overrelaxation sweeps decorrelate at no acceptance cost.

Updates are vectorized over a (parity, direction) checkerboard: the staple
of link (x, mu) involves no other mu-link of the same site parity, so half
of each direction's links update simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gauge.action import staple_sum_for_link
from repro.lattice.fields import GaugeField
from repro.linalg import su3
from repro.util.rng import make_rng

#: The (row, column) index pairs of the three SU(2) subgroups of SU(3).
SU2_SUBGROUPS = ((0, 1), (0, 2), (1, 2))


def _su2_project(w: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Project stacked 2x2 complex matrices onto the quaternion basis.

    Any 2x2 complex m has a unique decomposition ``m = q + (non-SU(2)
    part)`` with ``q = a0*1 + i a_k sigma_k`` real quaternion coefficients
    ``a = (a0, a1, a2, a3)``:

        a0 =  Re(m00 + m11) / 2      a1 = Im(m01 + m10) / 2
        a2 =  Re(m01 - m10) / 2      a3 = Im(m00 - m11) / 2

    Returns (a, k) with k = |a| (so q/k is in SU(2) where k > 0).
    """
    a = np.empty(w.shape[:-2] + (4,), dtype=np.float64)
    a[..., 0] = 0.5 * (w[..., 0, 0].real + w[..., 1, 1].real)
    a[..., 1] = 0.5 * (w[..., 0, 1].imag + w[..., 1, 0].imag)
    a[..., 2] = 0.5 * (w[..., 0, 1].real - w[..., 1, 0].real)
    a[..., 3] = 0.5 * (w[..., 0, 0].imag - w[..., 1, 1].imag)
    k = np.sqrt(np.sum(a * a, axis=-1))
    return a, k


def _quaternion_to_su2(a: np.ndarray) -> np.ndarray:
    """Build 2x2 matrices ``a0*1 + i a_k sigma_k`` from quaternions."""
    out = np.empty(a.shape[:-1] + (2, 2), dtype=np.complex128)
    out[..., 0, 0] = a[..., 0] + 1j * a[..., 3]
    out[..., 0, 1] = a[..., 2] + 1j * a[..., 1]
    out[..., 1, 0] = -a[..., 2] + 1j * a[..., 1]
    out[..., 1, 1] = a[..., 0] - 1j * a[..., 3]
    return out


def _kennedy_pendleton(k: np.ndarray, beta_eff: float, rng) -> np.ndarray:
    """Sample a0 in [-1, 1] with density ~ sqrt(1-a0^2) exp(beta_eff*k*a0).

    Vectorized Kennedy-Pendleton accept/reject; ``k`` may contain zeros
    (free directions), which return uniform a0.
    """
    alpha = np.maximum(beta_eff * k, 1e-12)
    a0 = np.empty_like(alpha)
    todo = np.ones(alpha.shape, dtype=bool)
    # A bounded retry loop: acceptance is > 0.5 for relevant couplings.
    for _ in range(200):
        n = int(todo.sum())
        if n == 0:
            break
        al = alpha[todo]
        r1 = np.clip(rng.random(n), 1e-12, None)
        r2 = rng.random(n)
        r3 = np.clip(rng.random(n), 1e-12, None)
        x = -(np.log(r1) + (np.cos(2 * np.pi * r2) ** 2) * np.log(r3)) / al
        accept = (rng.random(n) ** 2) <= 1.0 - 0.5 * x
        vals = 1.0 - x
        candidates = np.where(accept & (vals >= -1.0), vals, np.nan)
        idx = np.flatnonzero(todo)
        got = ~np.isnan(candidates)
        a0.flat[idx[got]] = candidates[got]
        todo.flat[idx[got]] = False
    if todo.any():  # pragma: no cover - statistical fallback
        a0[todo] = 1.0 - rng.random(int(todo.sum()))
    return a0


def _random_unit_3vector(shape, rng) -> np.ndarray:
    v = rng.standard_normal(shape + (3,))
    norm = np.linalg.norm(v, axis=-1, keepdims=True)
    return v / np.clip(norm, 1e-30, None)


def _embed_su2(g2: np.ndarray, pair: tuple[int, int], dtype) -> np.ndarray:
    """Embed 2x2 matrices into SU(3) as the identity elsewhere."""
    i, j = pair
    out = su3.identity(g2.shape[:-2], dtype=dtype)
    out[..., i, i] = g2[..., 0, 0]
    out[..., i, j] = g2[..., 0, 1]
    out[..., j, i] = g2[..., 1, 0]
    out[..., j, j] = g2[..., 1, 1]
    return out


@dataclass
class HeatbathUpdater:
    """Cabibbo-Marinari heatbath + overrelaxation for the Wilson action.

    Parameters
    ----------
    beta:
        Gauge coupling (6/g^2).  beta ~ 5.7-6.2 are production-like
        couplings; beta -> 0 is strong coupling (plaquette ~ beta/18),
        beta -> infinity is free field (plaquette -> 1).
    or_steps:
        Overrelaxation sweeps per heatbath sweep.
    """

    beta: float
    or_steps: int = 1
    rng_seed: "int | np.random.Generator | None" = None

    def __post_init__(self):
        self.rng = make_rng(self.rng_seed)

    # ------------------------------------------------------------------
    def sweep(self, gauge: GaugeField) -> GaugeField:
        """One full update sweep (heatbath + or_steps overrelaxations).

        Returns a new GaugeField; the input is unmodified.
        """
        out = gauge.copy()
        self._sweep_links(out, self._heatbath_subgroup)
        for _ in range(self.or_steps):
            self._sweep_links(out, self._overrelax_subgroup)
        return out

    def thermalize(
        self, gauge: GaugeField, sweeps: int, measure_every: int = 0
    ) -> tuple[GaugeField, list[float]]:
        """Run ``sweeps`` updates; optionally record the plaquette history."""
        history: list[float] = []
        for i in range(sweeps):
            gauge = self.sweep(gauge)
            if measure_every and (i + 1) % measure_every == 0:
                history.append(gauge.plaquette())
        return gauge, history

    # ------------------------------------------------------------------
    def _sweep_links(self, gauge: GaugeField, subgroup_update) -> None:
        geom = gauge.geometry
        for mu in range(4):
            for parity in (0, 1):
                mask = geom.parity_mask(parity)
                staples = staple_sum_for_link(gauge, mu)
                links = gauge.data[mu][mask]
                k_stap = staples[mask]
                for pair in SU2_SUBGROUPS:
                    w = links @ k_stap  # the local action is Re tr(U K)
                    sub = np.empty(w.shape[:-2] + (2, 2), dtype=w.dtype)
                    i, j = pair
                    sub[..., 0, 0] = w[..., i, i]
                    sub[..., 0, 1] = w[..., i, j]
                    sub[..., 1, 0] = w[..., j, i]
                    sub[..., 1, 1] = w[..., j, j]
                    g2 = subgroup_update(sub)
                    g3 = _embed_su2(g2, pair, w.dtype)
                    links = g3 @ links
                gauge.data[mu][mask] = links

    def _heatbath_subgroup(self, w: np.ndarray) -> np.ndarray:
        """Kennedy-Pendleton heatbath for one SU(2) subgroup.

        The local action restricted to the subgroup is ``Re tr(g q)`` with
        q the quaternion part of the 2x2 block w; the heatbath draws
        ``g ~ exp((beta/3) * Re tr(g q))`` exactly.
        """
        a, k = _su2_project(w)
        beta_eff = 2.0 * self.beta / 3.0
        a0 = _kennedy_pendleton(k, beta_eff, self.rng)
        # Direction uniform on the sphere of radius sqrt(1 - a0^2).
        r = np.sqrt(np.clip(1.0 - a0 * a0, 0.0, None))
        nvec = _random_unit_3vector(a0.shape, self.rng)
        g_new = np.concatenate(
            [a0[..., None], r[..., None] * nvec], axis=-1
        )
        # The sampled g is for the normalized staple; compose with the
        # inverse of the current quaternion: g_update = g_new * q^+ / k.
        safe_k = np.clip(k, 1e-30, None)
        q_dag = a.copy()
        q_dag[..., 1:] *= -1.0
        upd = _quat_mul(g_new, q_dag / safe_k[..., None])
        return _quaternion_to_su2(upd)

    def _overrelax_subgroup(self, w: np.ndarray) -> np.ndarray:
        """Microcanonical reflection: g -> q^+ g^+ q^+ / k^2 keeps
        ``Re tr(g q)`` fixed while moving maximally far in the subgroup."""
        a, k = _su2_project(w)
        safe_k = np.clip(k, 1e-30, None)
        q_dag = a.copy()
        q_dag[..., 1:] *= -1.0
        q_dag = q_dag / safe_k[..., None]
        # Current subgroup element is implicit in w; the reflection that
        # preserves Re tr(g q) is g_update = q^+ q^+ (acting from the
        # left this maps q -> q^+).
        upd = _quat_mul(q_dag, q_dag)
        return _quaternion_to_su2(upd)


def _quat_mul(p: np.ndarray, q: np.ndarray) -> np.ndarray:
    """Quaternion product in the (a0, a1, a2, a3) parametrization of
    ``a0 + i a_k sigma_k``."""
    p0, p1, p2, p3 = (p[..., i] for i in range(4))
    q0, q1, q2, q3 = (q[..., i] for i in range(4))
    out = np.empty(np.broadcast(p0, q0).shape + (4,), dtype=np.float64)
    out[..., 0] = p0 * q0 - p1 * q1 - p2 * q2 - p3 * q3
    out[..., 1] = p0 * q1 + p1 * q0 - p2 * q3 + p3 * q2
    out[..., 2] = p0 * q2 + p2 * q0 - p3 * q1 + p1 * q3
    out[..., 3] = p0 * q3 + p3 * q0 - p1 * q2 + p2 * q1
    return out
