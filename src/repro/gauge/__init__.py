"""Gauge-field sector: Wilson-line path products, observables, smearing,
and the asqtad fat/long link construction (Sec. 2.3 of the paper)."""

from repro.gauge.paths import path_product, shift_field
from repro.gauge.observables import average_plaquette, plaquette_field
from repro.gauge.asqtad import AsqtadLinks, build_asqtad_links
from repro.gauge.smear import ape_smear
from repro.gauge.fixing import fix_gauge, gauge_divergence, gauge_functional

__all__ = [
    "path_product",
    "shift_field",
    "average_plaquette",
    "plaquette_field",
    "AsqtadLinks",
    "build_asqtad_links",
    "ape_smear",
    "fix_gauge",
    "gauge_functional",
    "gauge_divergence",
]
