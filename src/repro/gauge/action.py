"""The Wilson gauge action and its force.

Gauge *generation* — the capability-class phase the paper's scaling work
exists to serve (Sec. 1-2) — updates the gauge field under the Wilson
plaquette action

``S[U] = beta * sum_plaq (1 - Re tr P / 3)``.

This module provides the action value, the per-link staple sums, and the
molecular-dynamics force (the "force term computations required for gauge
field generation" listed among QUDA's kernels in Sec. 5), consumed by the
heatbath (:mod:`repro.gauge.heatbath`) and HMC (:mod:`repro.gauge.hmc`)
updaters.
"""

from __future__ import annotations

import numpy as np

from repro.gauge.paths import path_product
from repro.lattice.fields import GaugeField
from repro.linalg import su3


def staple_sum_for_link(gauge: GaugeField, mu: int) -> np.ndarray:
    """Sum of the six staples K such that every plaquette containing
    ``U_mu(x)`` appears as ``tr(U_mu(x) K(x))``.

    The returned staples are the *daggered* closures: the up staple of the
    (mu, nu) plane is ``U_nu(x+mu) U_mu(x+nu)^+ U_nu(x)^+`` and the down
    staple ``U_nu(x+mu-nu)^+ U_mu(x-nu)^+ U_nu(x-nu)``.
    """
    geom, data = gauge.geometry, gauge.data
    total: np.ndarray | None = None
    for nu in range(4):
        if nu == mu:
            continue
        # Paths starting at x+mu and ending at x: build them as paths from
        # x (shifted products).  Up: +nu at x+mu, -mu at x+mu+nu, -nu at
        # x+nu; expressed as a path product starting at x+mu.
        up = path_product(geom, data, [(nu, +1), (mu, -1), (nu, -1)])
        up = np.roll(up, -1, axis=3 - mu)  # evaluate at x+mu
        down = path_product(geom, data, [(nu, -1), (mu, -1), (nu, +1)])
        down = np.roll(down, -1, axis=3 - mu)
        contrib = up + down
        total = contrib if total is None else total + contrib
    assert total is not None
    return total


def wilson_gauge_action(gauge: GaugeField, beta: float) -> float:
    """``S[U] = beta * sum_plaq (1 - Re tr P / 3)`` (6 V plaquettes)."""
    from repro.gauge.observables import average_plaquette

    n_plaq = 6 * gauge.geometry.volume
    return beta * n_plaq * (1.0 - average_plaquette(gauge))


def gauge_force(gauge: GaugeField, beta: float) -> np.ndarray:
    """The MD force: traceless anti-Hermitian matrices F[mu, x] with
    ``dS/dt = -sum Re tr(P F)`` ... concretely the derivative of the
    Wilson action along left-invariant flows, normalized so that the
    leapfrog momentum update is ``P -= eps * F``.

    ``F = (beta/6) * TA(U K)`` where K is the staple sum and ``TA(W) =
    (W - W^+) - tr(W - W^+)/3`` is the traceless anti-Hermitian projection.
    """
    out = np.empty_like(gauge.data)
    for mu in range(4):
        k = staple_sum_for_link(gauge, mu)
        w = gauge.data[mu] @ k
        out[mu] = (beta / 6.0) * traceless_antihermitian(w)
    return out


def traceless_antihermitian(w: np.ndarray) -> np.ndarray:
    """Project onto the Lie algebra su(3): ``(W - W^+) - tr/3``."""
    a = w - su3.dagger(w)
    tr = np.trace(a, axis1=-2, axis2=-1)
    return a - (tr / 3.0)[..., None, None] * np.eye(3, dtype=w.dtype)


def algebra_norm2(p: np.ndarray) -> float:
    """The kinetic term ``sum -tr(P^2)/2``? — here ``sum |P|_F^2 / 2``.

    For anti-Hermitian P, ``-tr(P^2) = |P|_F^2 >= 0``; HMC's Hamiltonian
    uses ``H_kin = sum_links |P|_F^2 / 2``.
    """
    return float(np.sum(np.abs(p) ** 2)) / 2.0


#: Gell-Mann matrices (Hermitian, traceless, tr(l_a l_b) = 2 delta_ab).
_GELL_MANN = np.array(
    [
        [[0, 1, 0], [1, 0, 0], [0, 0, 0]],
        [[0, -1j, 0], [1j, 0, 0], [0, 0, 0]],
        [[1, 0, 0], [0, -1, 0], [0, 0, 0]],
        [[0, 0, 1], [0, 0, 0], [1, 0, 0]],
        [[0, 0, -1j], [0, 0, 0], [1j, 0, 0]],
        [[0, 0, 0], [0, 0, 1], [0, 1, 0]],
        [[0, 0, 0], [0, 0, -1j], [0, 1j, 0]],
        [
            [1 / np.sqrt(3), 0, 0],
            [0, 1 / np.sqrt(3), 0],
            [0, 0, -2 / np.sqrt(3)],
        ],
    ],
    dtype=np.complex128,
)

#: Orthonormal su(3) basis under the Frobenius inner product:
#: T_a = i l_a / sqrt(2), |T_a|_F^2 = 1.
ALGEBRA_BASIS = 1j * _GELL_MANN / np.sqrt(2.0)


def random_algebra_field(shape: tuple[int, ...], rng) -> np.ndarray:
    """Gaussian momenta ``P = sum_a c_a T_a`` with c_a ~ N(0,1) in the
    orthonormal su(3) basis, so the kinetic term ``|P|_F^2 / 2`` is a sum
    of 8 unit Gaussians per link — the exact HMC heat bath."""
    coeffs = rng.standard_normal(shape + (8,))
    return np.einsum("...a,aij->...ij", coeffs, ALGEBRA_BASIS)
