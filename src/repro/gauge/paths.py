"""Wilson-line path products on the lattice.

A *path* is a sequence of signed direction steps, e.g.
``[(Y, +1), (X, +1), (Y, -1)]`` is the upper 3-staple contributing to the
fat X link.  :func:`path_product` evaluates, for every starting site x at
once, the ordered product of link matrices along the path:

* a ``(mu, +1)`` step multiplies ``U_mu(p)`` and advances p to p + mu-hat;
* a ``(mu, -1)`` step retreats p to p - mu-hat and multiplies
  ``U_mu(p)^dagger``.

These products are the building blocks of the plaquette, the clover-leaf
field strength, APE smearing, and the asqtad fattening paths.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.lattice.geometry import Geometry, axis_of_mu
from repro.linalg import su3

Step = tuple[int, int]  # (direction mu, sign +1/-1)


def shift_field(
    geometry: Geometry, array: np.ndarray, offset: Sequence[int]
) -> np.ndarray:
    """Shift a site field by an integer 4-vector: ``out[x] = array[x + offset]``.

    ``offset`` is in physics order ``(dx, dy, dz, dt)``; periodic wrap.
    """
    out = array
    for mu, steps in enumerate(offset):
        if steps:
            out = np.roll(out, -steps, axis=axis_of_mu(mu))
    return out


def path_product(
    geometry: Geometry, gauge_data: np.ndarray, steps: Sequence[Step]
) -> np.ndarray:
    """Ordered product of links along ``steps``, for every starting site.

    Parameters
    ----------
    gauge_data:
        Link field ``U[mu, t, z, y, x, a, b]`` (``GaugeField.data``).
    steps:
        Sequence of ``(mu, sign)`` moves.

    Returns
    -------
    Array of shape ``geometry.shape + (3, 3)``: the path-ordered product
    starting at each site.
    """
    offset = [0, 0, 0, 0]
    product: np.ndarray | None = None
    for mu, sign in steps:
        if sign == +1:
            link = shift_field(geometry, gauge_data[mu], offset)
            offset[mu] += 1
        elif sign == -1:
            offset[mu] -= 1
            link = su3.dagger(shift_field(geometry, gauge_data[mu], offset))
        else:
            raise ValueError(f"invalid step sign {sign}")
        product = link if product is None else product @ link
    if product is None:
        return su3.identity(geometry.shape, dtype=gauge_data.dtype)
    return product


def path_displacement(steps: Sequence[Step]) -> tuple[int, int, int, int]:
    """Net lattice displacement of a path (useful for validating path sets)."""
    disp = [0, 0, 0, 0]
    for mu, sign in steps:
        disp[mu] += sign
    return tuple(disp)
