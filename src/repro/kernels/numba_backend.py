"""The opt-in compiled tier: Numba-jitted dslash kernels.

This module always imports — when numba is missing the backend still
registers, reporting ``available = False`` with the import error as its
reason, so ``"auto"`` resolution falls through to NumPy and an explicit
``kernel="numba"`` request fails with an actionable message instead of
an ImportError from deep inside an operator.

The backend adapts the whole-lattice operators to the flat-site kernels
of :mod:`repro.kernels._numba_kernels`: per operator and dtype it builds
(once, cached on the operator instance)

* flattened ``(4, V, 3, 3)`` link and daggered-link arrays,
* ``(4, V)`` int64 neighbor tables from ``np.roll`` of the site index,
* ``(4, V)`` boundary-phase tables obtained by shifting a ones-field
  through :meth:`Geometry.shift` — which reproduces the NumPy tier's
  boundary semantics (antiperiodic sign, Dirichlet zero) *by
  construction* rather than by re-implementing them.

The kernels evaluate the identical contraction as the reference NumPy
stencils (same association order per site), so agreement is at rounding
level, ~1e-15 in double precision.
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend, KernelCapabilities
from repro.lattice.geometry import axis_of_mu

try:  # pragma: no cover - exercised only where numba is installed
    from repro.kernels import _numba_kernels as _kernels

    _IMPORT_ERROR: Exception | None = None
except Exception as exc:  # pragma: no cover - the no-numba environment
    _kernels = None
    _IMPORT_ERROR = exc

#: Per-operator cache attribute (lives on the operator so the tables die
#: with it and ``with_boundary`` copies never share stale phases).
_CACHE_ATTR = "_numba_kernel_cache"


def _neighbor_table(geometry, mu: int, steps: int) -> np.ndarray:
    """Flat index of ``site + steps * mu-hat`` for every site, int64 (V,)."""
    idx = np.arange(geometry.volume, dtype=np.int64).reshape(geometry.shape)
    return np.ascontiguousarray(
        np.roll(idx, -steps, axis=axis_of_mu(mu)).ravel()
    )


def _phase_table(geometry, mu: int, steps: int, bc: str, real_dtype):
    """Boundary factor of the ``steps``-hop in direction ``mu`` at every
    destination site: shift a ones-field exactly as the field itself is
    shifted, so wrap faces pick up the same -1/0 factor."""
    ones = np.ones(geometry.shape, dtype=np.float64)
    ph = geometry.shift(ones, mu, steps, boundary=bc)
    return np.ascontiguousarray(ph.ravel().astype(real_dtype))


def _flat_links(links: np.ndarray, volume: int, dtype) -> tuple:
    """``(4, V, 3, 3)`` links and site-indexed daggered links."""
    lk = np.ascontiguousarray(links.reshape(4, volume, 3, 3).astype(dtype))
    lkdag = np.ascontiguousarray(np.conj(np.swapaxes(lk, -1, -2)))
    return lk, lkdag


def _hop_tables(op, steps: int, real_dtype) -> tuple:
    """Neighbor and phase tables for a +-``steps`` hop family, (4, V)."""
    geom = op.geometry
    nfwd = np.stack([_neighbor_table(geom, mu, +steps) for mu in range(4)])
    nbwd = np.stack([_neighbor_table(geom, mu, -steps) for mu in range(4)])
    phf = np.stack(
        [_phase_table(geom, mu, +steps, op.boundary[mu], real_dtype)
         for mu in range(4)]
    )
    phb = np.stack(
        [_phase_table(geom, mu, -steps, op.boundary[mu], real_dtype)
         for mu in range(4)]
    )
    return nfwd, nbwd, phf, phb


class NumbaBackend(KernelBackend):
    """``@njit(parallel=True, cache=True)`` site-loop stencils."""

    name = "numba"
    priority = 10
    capabilities = KernelCapabilities(
        operators=("wilson", "staggered"),
        batched=True,
        split=True,
        dtypes=("complex128", "complex64"),
    )

    @property
    def available(self) -> bool:
        return _kernels is not None

    @property
    def unavailable_reason(self) -> str | None:
        if _kernels is not None:
            return None
        return (
            "numba is not installed — pip install the 'compiled' extra "
            f"({type(_IMPORT_ERROR).__name__}: {_IMPORT_ERROR})"
        )

    # ------------------------------------------------------------------
    def _cache(self, op, dtype, build):
        caches = getattr(op, _CACHE_ATTR, None)
        if caches is None:
            caches = {}
            setattr(op, _CACHE_ATTR, caches)
        key = np.dtype(dtype).name
        if key not in caches:
            caches[key] = build()
        return caches[key]

    def _wilson_cache(self, op, dtype) -> dict:
        def build():
            real = np.zeros(0, dtype=dtype).real.dtype
            u, udag = _flat_links(op.gauge.data, op.geometry.volume, dtype)
            nfwd, nbwd, phf, phb = _hop_tables(op, 1, real)
            return {
                "u": u,
                "udag": udag,
                "nfwd": nfwd,
                "nbwd": nbwd,
                "phf": phf,
                "phb": phb,
                "pf": np.ascontiguousarray(
                    np.stack(op._proj_fwd).astype(dtype)
                ),
                "pb": np.ascontiguousarray(
                    np.stack(op._proj_bwd).astype(dtype)
                ),
            }

        return self._cache(op, dtype, build)

    def _staggered_cache(self, op, dtype) -> dict:
        def build():
            real = np.zeros(0, dtype=dtype).real.dtype
            vol = op.geometry.volume
            fat, fatdag = _flat_links(op.fat, vol, dtype)
            nfwd, nbwd, phf, phb = _hop_tables(op, 1, real)
            cache = {
                "fat": fat,
                "fatdag": fatdag,
                "nfwd": nfwd,
                "nbwd": nbwd,
                "phf": phf,
                "phb": phb,
                "eta": np.ascontiguousarray(
                    op.eta.reshape(4, vol).astype(real)
                ),
                "long": None,
            }
            if op.long is not None:
                lng, lngdag = _flat_links(op.long, vol, dtype)
                n3f, n3b, p3f, p3b = _hop_tables(op, 3, real)
                cache["long"] = {
                    "lk": lng,
                    "lkdag": lngdag,
                    "nfwd": n3f,
                    "nbwd": n3b,
                    "phf": p3f,
                    "phb": p3b,
                }
            return cache

        return self._cache(op, dtype, build)

    # ------------------------------------------------------------------
    def wilson_dslash(self, op, x: np.ndarray) -> np.ndarray:
        cache = self._wilson_cache(op, x.dtype)
        vol = op.geometry.volume
        xr = np.ascontiguousarray(x).reshape(-1, vol, 4, 3)
        out = np.empty_like(xr)
        _kernels.wilson_dslash(
            cache["u"], cache["udag"], xr,
            cache["nfwd"], cache["nbwd"], cache["phf"], cache["phb"],
            cache["pf"], cache["pb"], out,
        )
        return out.reshape(x.shape)

    def staggered_dslash(self, op, x: np.ndarray) -> np.ndarray:
        cache = self._staggered_cache(op, x.dtype)
        vol = op.geometry.volume
        xr = np.ascontiguousarray(x).reshape(-1, vol, 3)
        out = np.zeros_like(xr)
        _kernels.staggered_hops(
            cache["fat"], cache["fatdag"], xr,
            cache["nfwd"], cache["nbwd"], cache["phf"], cache["phb"],
            cache["eta"], out,
        )
        lng = cache["long"]
        if lng is not None:
            _kernels.staggered_hops(
                lng["lk"], lng["lkdag"], xr,
                lng["nfwd"], lng["nbwd"], lng["phf"], lng["phb"],
                cache["eta"], out,
            )
        return out.reshape(x.shape)


__all__ = ["NumbaBackend"]
