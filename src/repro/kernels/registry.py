"""Kernel-backend registry and resolver.

One global registry maps backend names to :class:`KernelBackend`
instances.  Operators and the request validators resolve through
:func:`resolve_kernel`:

* ``"auto"`` picks the highest-priority *available* backend that
  supports the requested operator family (NumPy registers at priority 0
  and always supports everything, so ``"auto"`` degrades to the
  bit-reference when nothing faster is installed);
* a concrete name must exist, be available, and support the family —
  otherwise :class:`~repro.kernels.base.KernelUnavailableError` is
  raised carrying the names that *would* work, so field-named
  validation errors can list actionable choices.

:func:`capability_matrix` derives the ``python -m repro kernels`` table
from the same registry the resolver reads, so the printed matrix cannot
drift from what resolution actually does.
"""

from __future__ import annotations

from repro.kernels.base import KernelBackend, KernelUnavailableError

_REGISTRY: dict[str, KernelBackend] = {}

#: The resolver wildcard; always a valid ``kernel=`` value.
AUTO = "auto"


def register_backend(backend: KernelBackend) -> KernelBackend:
    """Register (or replace) a backend under ``backend.name``."""
    if not backend.name or backend.name == AUTO:
        raise ValueError(f"invalid backend name {backend.name!r}")
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> KernelBackend:
    """The registered backend, available or not (KeyError when absent)."""
    return _REGISTRY[name]


def backend_names() -> tuple[str, ...]:
    """All registered backend names, resolution order (priority desc)."""
    return tuple(
        b.name
        for b in sorted(
            _REGISTRY.values(), key=lambda b: (-b.priority, b.name)
        )
    )


def available_backends(operator: str | None = None) -> tuple[str, ...]:
    """Names of available backends (optionally for one family), in
    resolution order."""
    return tuple(
        name
        for name in backend_names()
        if _REGISTRY[name].available and _REGISTRY[name].supports(operator)
    )


def kernel_choices() -> tuple[str, ...]:
    """Valid ``kernel=`` values: ``"auto"`` plus every registered name
    (including unavailable ones — selecting those fails with a reason)."""
    return (AUTO,) + backend_names()


def resolve_kernel(
    name: str = AUTO, operator: str | None = None
) -> KernelBackend:
    """Resolve a ``kernel=`` value to a live backend.

    Args:
        name: ``"auto"`` or a registered backend name.
        operator: Operator family the kernels must serve (``"wilson"``
            or ``"staggered"``); ``None`` skips the family check.

    Returns:
        The resolved :class:`KernelBackend` (always available).

    Raises:
        KernelUnavailableError: Unknown name, unavailable backend, or a
            backend that does not serve ``operator``.  The error's
            ``choices`` lists the values that would have worked.
    """
    usable = (AUTO,) + available_backends(operator)
    if name == AUTO:
        for candidate in backend_names():
            backend = _REGISTRY[candidate]
            if backend.available and backend.supports(operator):
                return backend
        raise KernelUnavailableError(
            f"no available kernel backend supports operator {operator!r}",
            choices=usable,
        )
    if name not in _REGISTRY:
        raise KernelUnavailableError(
            f"unknown kernel {name!r}", choices=usable
        )
    backend = _REGISTRY[name]
    if not backend.available:
        raise KernelUnavailableError(
            f"kernel {name!r} is not available on this host "
            f"({backend.unavailable_reason})",
            choices=usable,
        )
    if not backend.supports(operator):
        raise KernelUnavailableError(
            f"kernel {name!r} does not support operator {operator!r}",
            choices=usable,
        )
    return backend


def capability_matrix() -> list[dict]:
    """One row per registered backend, resolution order — the data
    behind ``python -m repro kernels`` (and therefore drift-proof)."""
    rows = []
    for name in backend_names():
        b = _REGISTRY[name]
        rows.append(
            {
                "name": b.name,
                "priority": b.priority,
                "available": b.available,
                "unavailable_reason": b.unavailable_reason,
                "operators": list(b.capabilities.operators),
                "batched": b.capabilities.batched,
                "split": b.capabilities.split,
                "dtypes": list(b.capabilities.dtypes),
                "fused_batched_apply": b.fuses_batched_wilson_apply,
            }
        )
    return rows


def availability_note() -> str:
    """One line summarizing backend availability (``--help`` epilog)."""
    parts = []
    for name in backend_names():
        b = _REGISTRY[name]
        parts.append(
            name if b.available else f"{name} (unavailable: "
            f"{b.unavailable_reason})"
        )
    return "kernel backends: " + ", ".join(parts)


__all__ = [
    "AUTO",
    "KernelUnavailableError",
    "availability_note",
    "available_backends",
    "backend_names",
    "capability_matrix",
    "get_backend",
    "kernel_choices",
    "register_backend",
    "resolve_kernel",
]
