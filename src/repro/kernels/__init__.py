"""Pluggable dslash kernel backends (the solver/kernel seam of PR 8).

Importing this package registers the built-in tiers:

* ``"numpy"`` — the vectorized bit-reference (always available),
* ``"numpy_ref"`` — the seed's full-spinor Wilson formulation,
* ``"numba"`` — opt-in compiled site loops; registers as unavailable
  (and ``"auto"`` falls back to NumPy) when numba is not installed.

``SolveRequest(kernel=...)``, the operators' ``kernel=`` parameter, and
the CLI ``--kernel`` flag all resolve through :func:`resolve_kernel`.
"""

from repro.kernels.base import (
    KernelBackend,
    KernelCapabilities,
    KernelUnavailableError,
    OPERATOR_FAMILIES,
)
from repro.kernels.numba_backend import NumbaBackend
from repro.kernels.numpy_backend import NumpyBackend, NumpyReferenceBackend
from repro.kernels.registry import (
    AUTO,
    availability_note,
    available_backends,
    backend_names,
    capability_matrix,
    get_backend,
    kernel_choices,
    register_backend,
    resolve_kernel,
)

register_backend(NumpyBackend())
register_backend(NumpyReferenceBackend())
register_backend(NumbaBackend())

__all__ = [
    "AUTO",
    "KernelBackend",
    "KernelCapabilities",
    "KernelUnavailableError",
    "NumbaBackend",
    "NumpyBackend",
    "NumpyReferenceBackend",
    "OPERATOR_FAMILIES",
    "availability_note",
    "available_backends",
    "backend_names",
    "capability_matrix",
    "get_backend",
    "kernel_choices",
    "register_backend",
    "resolve_kernel",
]
