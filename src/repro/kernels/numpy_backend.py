"""The NumPy backends: the bit-reference tier every other tier is
equivalence-tested against.

Two backends wrap the two in-tree NumPy dslash paths:

* ``"numpy"`` — the spin-projected Wilson fast path of PR 1 (cached
  daggered links, half-spinor hops, stacked-GEMM batching) plus the
  vectorized staggered stencil.  This is the default resolution target
  and the numerical baseline: with no compiled tier installed,
  ``kernel="auto"`` solves are bitwise identical to this path.
* ``"numpy_ref"`` — the seed's full-4-spin Wilson formulation, kept as
  the slow cross-check the fast path itself is equivalence-tested
  against (it subsumes the old ``use_projection=False`` knob).
"""

from __future__ import annotations

import numpy as np

from repro.kernels.base import KernelBackend, KernelCapabilities


class NumpyBackend(KernelBackend):
    """Vectorized NumPy stencils (the PR 1 fast path) — always available."""

    name = "numpy"
    priority = 0
    capabilities = KernelCapabilities(
        operators=("wilson", "staggered"),
        batched=True,
        split=True,
        dtypes=("complex128", "complex64"),
    )
    fuses_batched_wilson_apply = True

    def wilson_dslash(self, op, x: np.ndarray) -> np.ndarray:
        return op._dslash_projected(x)

    def staggered_dslash(self, op, x: np.ndarray) -> np.ndarray:
        return op._dslash_numpy(x)


class NumpyReferenceBackend(KernelBackend):
    """The seed's full-spinor Wilson path: slow, maximally transparent."""

    name = "numpy_ref"
    priority = -10
    capabilities = KernelCapabilities(
        operators=("wilson",),
        batched=True,
        split=True,
        dtypes=("complex128", "complex64"),
    )

    def wilson_dslash(self, op, x: np.ndarray) -> np.ndarray:
        return op._dslash_reference(x)


__all__ = ["NumpyBackend", "NumpyReferenceBackend"]
