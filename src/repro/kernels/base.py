"""The kernel-backend protocol: what a dslash implementation declares.

The paper's software stack (QUDA under Chroma/MILC) separates the
*solver* layer — Krylov iterations, domain decomposition, precision
policy — from the *kernel* layer that actually evaluates the stencil on
a device.  This module is that seam for the reproduction: a
:class:`KernelBackend` wraps one implementation of the Wilson and/or
staggered hopping terms and declares, via :class:`KernelCapabilities`,
exactly what it can do (which operator families, whether it vectorizes a
leading multi-RHS batch axis, whether it is valid under the
interior/exterior split schedule, which complex dtypes it accepts).

Backends register with :mod:`repro.kernels.registry`; operators resolve
a name (``"auto"``, ``"numpy"``, ``"numba"``, ...) to a backend once at
construction and route every ``_dslash`` through it.  A backend whose
runtime dependency is missing still registers — with ``available`` False
and a human-readable ``unavailable_reason`` — so the capability matrix
(``python -m repro kernels``) and validation errors can say *why* a tier
cannot be selected instead of pretending it does not exist.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Operator families a backend may implement.  ``"wilson"`` covers the
#: Wilson and Wilson-clover hopping term (the clover/diagonal parts are
#: site-local and stay with the operator); ``"staggered"`` covers the
#: naive 1-hop and asqtad 1+3-hop derivative.
OPERATOR_FAMILIES = ("wilson", "staggered")


class KernelUnavailableError(ValueError):
    """A kernel backend was requested but cannot serve the request.

    Carries the list of backend names that *could* serve it, so callers
    (``validate_request``, the serve layer) can surface actionable
    choices in their field-named error messages.
    """

    def __init__(self, message: str, choices: tuple[str, ...] = ()):
        super().__init__(message)
        self.choices = tuple(choices)


@dataclass(frozen=True)
class KernelCapabilities:
    """What one backend's kernels can execute.

    Attributes
    ----------
    operators:
        Operator families served, from :data:`OPERATOR_FAMILIES`.
    batched:
        Accepts fields with a leading multi-RHS batch axis.
    split:
        Valid under the interior/exterior split schedule (the kernel
        must honor ``"zero"`` boundary cuts exactly, so ghost-zeroed and
        ghost-only applications sum to the fused result).
    dtypes:
        Complex dtype names the kernels accept (e.g. ``"complex128"``).
    """

    operators: tuple[str, ...]
    batched: bool = True
    split: bool = True
    dtypes: tuple[str, ...] = ("complex128", "complex64")

    def supports_dtype(self, dtype) -> bool:
        return np.dtype(dtype).name in self.dtypes


class KernelBackend:
    """One dslash implementation tier.

    Subclasses set ``name``, ``priority`` and ``capabilities`` and
    implement the hop-term hooks for the families they declare.  The
    hooks receive the *operator* (which owns the gauge/link fields,
    boundary conditions and any per-operator caches) and the input
    field, and return the bare derivative term — ``D x`` for Wilson,
    ``D_IS x`` for staggered — exactly as the in-tree NumPy stencils do;
    scaling by ``-1/2`` and adding diagonal terms stays in the operator.
    """

    #: Registry key and the value of ``SolveRequest.kernel``.
    name: str = ""
    #: ``"auto"`` resolution picks the highest-priority available
    #: backend that supports the request; ties break by name.
    priority: int = 0
    capabilities: KernelCapabilities = KernelCapabilities(operators=())
    #: True when the backend's batched Wilson path fuses the diagonal,
    #: clover and hopping terms in one layout round-trip (the stacked-
    #: GEMM fast path); the operator then routes whole applications —
    #: not just the hop term — through the backend-side fused kernel.
    fuses_batched_wilson_apply: bool = False

    @property
    def available(self) -> bool:
        """Whether the backend can actually run on this host."""
        return True

    @property
    def unavailable_reason(self) -> str | None:
        """Why ``available`` is False (``None`` when available)."""
        return None

    # ------------------------------------------------------------------
    # hop-term hooks
    # ------------------------------------------------------------------
    def wilson_dslash(self, op, x: np.ndarray) -> np.ndarray:
        """Evaluate the Wilson hopping term ``D x`` (Eq. 2's stencil)."""
        raise NotImplementedError(
            f"backend {self.name!r} does not implement the wilson family"
        )

    def staggered_dslash(self, op, x: np.ndarray) -> np.ndarray:
        """Evaluate the staggered derivative ``D_IS x`` (Eq. 3)."""
        raise NotImplementedError(
            f"backend {self.name!r} does not implement the staggered family"
        )

    # ------------------------------------------------------------------
    def supports(self, operator: str | None = None) -> bool:
        """Whether this backend serves the given operator family."""
        return operator is None or operator in self.capabilities.operators

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "available" if self.available else "unavailable"
        return f"<KernelBackend {self.name!r} ({state})>"


__all__ = [
    "KernelBackend",
    "KernelCapabilities",
    "KernelUnavailableError",
    "OPERATOR_FAMILIES",
]
