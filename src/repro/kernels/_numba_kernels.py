"""Numba-jitted dslash stencils (imported only when numba is present).

The kernels are deliberately written as flat site loops over
precomputed neighbor/phase tables — the shape a compiled device kernel
takes (one thread per site, gather from neighbor indices, boundary
factors folded into per-site phases) rather than the whole-array rolls
of the NumPy tier.  ``prange`` parallelizes over sites; ``cache=True``
persists the compiled machine code across processes, which is why these
live at module level in their own module.

Index conventions (built by :mod:`repro.kernels.numba_backend`):

* fields are flattened to ``(B, V, ...site)`` with ``V`` the lattice
  volume in ``(T, Z, Y, X)`` C order;
* ``nfwd[mu, s]`` / ``nbwd[mu, s]`` are the flat indices of ``s +
  mu-hat`` / ``s - mu-hat`` (periodically wrapped);
* ``phf[mu, s]`` / ``phb[mu, s]`` are the fermion boundary factors of
  that hop at destination site ``s`` (1 interior, -1 antiperiodic wrap,
  0 Dirichlet cut) — multiplying the whole hop contribution reproduces
  :meth:`repro.lattice.geometry.Geometry.shift` exactly.

Each kernel evaluates the bare derivative term (``D x`` / ``D_IS x``);
the operator applies the ``-1/2`` hop scale and diagonal terms.
"""

from __future__ import annotations

import numpy as np
from numba import njit, prange


@njit(parallel=True, cache=True)
def wilson_dslash(u, udag, x, nfwd, nbwd, phf, phb, pf, pb, out):
    """Wilson hopping term ``D x`` on flattened fields.

    ``u``/``udag``: ``(4, V, 3, 3)`` links and site-indexed daggered
    links; ``x``/``out``: ``(B, V, 4, 3)``; ``pf``/``pb``: the ``(4, 4,
    4)`` spin matrices ``1 -+ gamma_mu``.
    """
    nb = x.shape[0]
    nv = x.shape[1]
    for s in prange(nv):
        t = np.empty((4, 3), x.dtype)
        for b in range(nb):
            for sp in range(4):
                for c in range(3):
                    out[b, s, sp, c] = 0.0
            for mu in range(4):
                j = nfwd[mu, s]
                ph = phf[mu, s]
                if ph != 0.0:
                    # t = U_mu(s) @ x(s + mu)  (color contraction)
                    for sp in range(4):
                        for c in range(3):
                            t[sp, c] = (
                                u[mu, s, c, 0] * x[b, j, sp, 0]
                                + u[mu, s, c, 1] * x[b, j, sp, 1]
                                + u[mu, s, c, 2] * x[b, j, sp, 2]
                            )
                    # out += ph * (1 - gamma_mu) @ t  (spin contraction)
                    for sp in range(4):
                        for c in range(3):
                            acc = pf[mu, sp, 0] * t[0, c]
                            acc += pf[mu, sp, 1] * t[1, c]
                            acc += pf[mu, sp, 2] * t[2, c]
                            acc += pf[mu, sp, 3] * t[3, c]
                            out[b, s, sp, c] += ph * acc
                j = nbwd[mu, s]
                ph = phb[mu, s]
                if ph != 0.0:
                    # t = U_mu(s - mu)^+ @ x(s - mu)
                    for sp in range(4):
                        for c in range(3):
                            t[sp, c] = (
                                udag[mu, j, c, 0] * x[b, j, sp, 0]
                                + udag[mu, j, c, 1] * x[b, j, sp, 1]
                                + udag[mu, j, c, 2] * x[b, j, sp, 2]
                            )
                    # out += ph * (1 + gamma_mu) @ t
                    for sp in range(4):
                        for c in range(3):
                            acc = pb[mu, sp, 0] * t[0, c]
                            acc += pb[mu, sp, 1] * t[1, c]
                            acc += pb[mu, sp, 2] * t[2, c]
                            acc += pb[mu, sp, 3] * t[3, c]
                            out[b, s, sp, c] += ph * acc
    return out


@njit(parallel=True, cache=True)
def staggered_hops(lk, lkdag, x, nfwd, nbwd, phf, phb, eta, out):
    """Accumulate one staggered hop family into ``out``:

    ``out(s) += sum_mu eta_mu(s) [ ph_f L_mu(s) x(s+k mu)
                                 - ph_b L_mu(s-k mu)^+ x(s-k mu) ]``

    Called once with the fat links and 1-hop tables, and (for asqtad)
    again with the long links and 3-hop tables — the caller zeroes
    ``out`` before the first call.  ``x``/``out``: ``(B, V, 3)``;
    ``eta``: ``(4, V)`` Kogut-Susskind phases.
    """
    nb = x.shape[0]
    nv = x.shape[1]
    for s in prange(nv):
        for b in range(nb):
            a0 = out[b, s, 0]
            a1 = out[b, s, 1]
            a2 = out[b, s, 2]
            for mu in range(4):
                e = eta[mu, s]
                j = nfwd[mu, s]
                ph = e * phf[mu, s]
                if ph != 0.0:
                    a0 += ph * (
                        lk[mu, s, 0, 0] * x[b, j, 0]
                        + lk[mu, s, 0, 1] * x[b, j, 1]
                        + lk[mu, s, 0, 2] * x[b, j, 2]
                    )
                    a1 += ph * (
                        lk[mu, s, 1, 0] * x[b, j, 0]
                        + lk[mu, s, 1, 1] * x[b, j, 1]
                        + lk[mu, s, 1, 2] * x[b, j, 2]
                    )
                    a2 += ph * (
                        lk[mu, s, 2, 0] * x[b, j, 0]
                        + lk[mu, s, 2, 1] * x[b, j, 1]
                        + lk[mu, s, 2, 2] * x[b, j, 2]
                    )
                j = nbwd[mu, s]
                ph = e * phb[mu, s]
                if ph != 0.0:
                    a0 -= ph * (
                        lkdag[mu, j, 0, 0] * x[b, j, 0]
                        + lkdag[mu, j, 0, 1] * x[b, j, 1]
                        + lkdag[mu, j, 0, 2] * x[b, j, 2]
                    )
                    a1 -= ph * (
                        lkdag[mu, j, 1, 0] * x[b, j, 0]
                        + lkdag[mu, j, 1, 1] * x[b, j, 1]
                        + lkdag[mu, j, 1, 2] * x[b, j, 2]
                    )
                    a2 -= ph * (
                        lkdag[mu, j, 2, 0] * x[b, j, 0]
                        + lkdag[mu, j, 2, 1] * x[b, j, 1]
                        + lkdag[mu, j, 2, 2] * x[b, j, 2]
                    )
            out[b, s, 0] = a0
            out[b, s, 1] = a1
            out[b, s, 2] = a2
    return out
