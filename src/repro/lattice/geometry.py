"""4-dimensional periodic lattice geometry.

A :class:`Geometry` fixes the global lattice extents and provides the site
indexing, parity masks and covariant shift operations that every Dirac
operator and halo-exchange routine is built on.

Conventions (matching the paper and QUDA):

* Physics extents are given as ``dims = (nx, ny, nz, nt)``.
* Arrays are stored ``(T, Z, Y, X, ...)`` so X is fastest-varying in memory
  ("the standard T-slowest mapping", Sec. 6.2 of the paper).
* Direction indices: ``mu = 0 -> x, 1 -> y, 2 -> z, 3 -> t``.
* ``shift(a, mu, +1)[x] == a[x + mu-hat]`` with periodic wrap by default;
  a ``"zero"`` boundary implements the Dirichlet cuts used by the additive
  Schwarz preconditioner (Sec. 3.2).
"""

from __future__ import annotations

from functools import cached_property

import numpy as np

#: Direction indices (physics convention).
X, Y, Z, T = 0, 1, 2, 3
DIRECTIONS = (X, Y, Z, T)

#: Names for pretty-printing partitionings, e.g. "XYZT".
DIR_NAMES = "XYZT"


def axis_of_mu(mu: int) -> int:
    """Array axis corresponding to direction ``mu`` for ``(T,Z,Y,X)`` layout."""
    if mu not in DIRECTIONS:
        raise ValueError(f"invalid direction {mu!r}")
    return 3 - mu


class Geometry:
    """Global (or local sub-) lattice geometry.

    Parameters
    ----------
    dims:
        Physics-order extents ``(nx, ny, nz, nt)``.  Extents must be even so
        the lattice admits an exact even-odd checkerboarding (all production
        lattices, including the paper's 32^3x256 and 64^3x192, are even).

    Examples
    --------
    >>> g = Geometry((4, 4, 4, 8))
    >>> g.volume
    512
    >>> g.shape
    (8, 4, 4, 4)
    """

    def __init__(self, dims: tuple[int, int, int, int]):
        dims = tuple(int(d) for d in dims)
        if len(dims) != 4:
            raise ValueError(f"need 4 extents (nx,ny,nz,nt), got {dims}")
        if any(d < 2 for d in dims):
            raise ValueError(f"extents must be >= 2, got {dims}")
        if any(d % 2 for d in dims):
            raise ValueError(f"extents must be even for even-odd order, got {dims}")
        self.dims = dims
        #: Array shape, T slowest: (nt, nz, ny, nx).
        self.shape: tuple[int, int, int, int] = tuple(reversed(dims))
        self.volume = int(np.prod(dims))
        #: Number of sites per parity (half the volume).
        self.half_volume = self.volume // 2

    # ------------------------------------------------------------------
    # identity / comparison
    # ------------------------------------------------------------------
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        nx, ny, nz, nt = self.dims
        return f"Geometry({nx}x{ny}x{nz}x{nt})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Geometry) and other.dims == self.dims

    def __hash__(self) -> int:
        return hash(("Geometry", self.dims))

    # ------------------------------------------------------------------
    # coordinates and parity
    # ------------------------------------------------------------------
    @cached_property
    def _coords(self) -> np.ndarray:
        # index arrays ordered (t, z, y, x)
        return np.indices(self.shape)

    def coordinate(self, mu: int) -> np.ndarray:
        """Integer coordinate array for direction ``mu`` over all sites."""
        return self._coords[axis_of_mu(mu)]

    @cached_property
    def parity(self) -> np.ndarray:
        """Site parity array: 0 for even sites, 1 for odd, shape ``self.shape``."""
        t, z, y, x = self._coords
        return ((x + y + z + t) % 2).astype(np.int8)

    @cached_property
    def even_mask(self) -> np.ndarray:
        return self.parity == 0

    @cached_property
    def odd_mask(self) -> np.ndarray:
        return self.parity == 1

    def parity_mask(self, parity: int) -> np.ndarray:
        if parity == 0:
            return self.even_mask
        if parity == 1:
            return self.odd_mask
        raise ValueError(f"parity must be 0 or 1, got {parity}")

    # ------------------------------------------------------------------
    # shifts
    # ------------------------------------------------------------------
    def shift(
        self,
        array: np.ndarray,
        mu: int,
        steps: int = 1,
        boundary: str = "periodic",
        lead: int = 0,
    ) -> np.ndarray:
        """Return the array of neighbor values ``result[x] = array[x + steps*mu]``.

        ``boundary="periodic"`` wraps around the lattice; ``boundary="zero"``
        implements Dirichlet conditions (sites whose neighbor falls outside
        the lattice read zero), which is exactly the communication-free cut
        the additive Schwarz preconditioner imposes at block boundaries;
        ``boundary="antiperiodic"`` flips the sign of wrapped values (the
        physical fermion boundary condition in time).

        ``lead`` leading axes (e.g. a multi-RHS batch axis) pass through
        unshifted; the lattice axes then start at ``array.shape[lead]``.
        """
        lead = int(lead)
        if array.ndim < lead + 4 or array.shape[lead : lead + 4] != self.shape:
            raise ValueError(
                f"array lattice shape {array.shape[lead:lead + 4]} does not "
                f"match lattice {self.shape}"
            )
        axis = lead + axis_of_mu(mu)
        out = np.roll(array, -steps, axis=axis)
        if boundary == "periodic":
            return out
        if boundary not in ("zero", "antiperiodic"):
            raise ValueError(f"unknown boundary {boundary!r}")
        out = out.copy() if out is array else out
        n = self.shape[axis_of_mu(mu)]
        if abs(steps) >= n:
            # Every site's neighbor crossed the boundary at least once; for
            # simplicity only single-crossing shifts are supported beyond
            # the zero case.
            if boundary == "zero":
                out[...] = 0
                return out
            raise ValueError(
                f"antiperiodic shift by {steps} exceeds extent {n}"
            )
        sl: list[slice] = [slice(None)] * array.ndim
        if steps > 0:
            sl[axis] = slice(n - steps, n)
        else:
            sl[axis] = slice(0, -steps)
        if boundary == "zero":
            out[tuple(sl)] = 0
        else:
            out[tuple(sl)] = -out[tuple(sl)]
        return out

    # ------------------------------------------------------------------
    # face / boundary helpers (used by the halo-exchange engine)
    # ------------------------------------------------------------------
    def face_slice(self, mu: int, side: int, depth: int = 1) -> tuple[slice, ...]:
        """Slicing tuple selecting the boundary slab of thickness ``depth``.

        ``side=+1`` selects the slab at the maximal coordinate in ``mu``
        (the face whose sites need ghosts from the forward neighbor);
        ``side=-1`` the minimal-coordinate slab.
        """
        if side not in (+1, -1):
            raise ValueError("side must be +1 or -1")
        axis = axis_of_mu(mu)
        n = self.shape[axis]
        if not 1 <= depth <= n:
            raise ValueError(f"depth {depth} out of range for extent {n}")
        sl: list[slice] = [slice(None)] * 4
        sl[axis] = slice(n - depth, n) if side == +1 else slice(0, depth)
        return tuple(sl)

    def face_volume(self, mu: int, depth: int = 1) -> int:
        """Number of sites in a boundary slab of thickness ``depth``."""
        axis = axis_of_mu(mu)
        return depth * self.volume // self.shape[axis]

    def surface_to_volume(self, partitioned: tuple[int, ...], depth: int = 1) -> float:
        """Total two-sided halo surface over local volume, for scaling analysis."""
        surface = sum(2 * self.face_volume(mu, depth) for mu in partitioned)
        return surface / self.volume
