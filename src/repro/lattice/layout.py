"""Field memory layout: the pad + ghost-zone maps of Figs. 2-3.

QUDA stores each field as a structure-of-arrays over the *half* (single
parity) lattice: ``Vh`` sites of body, a tunable pad (to break partition
camping on pre-Fermi GPUs), then the ghost zones of every partitioned
dimension packed consecutively.  Gauge fields reuse their pad region for
the link ghosts.

This module computes those offsets exactly, so that layout decisions are
explicit, testable objects rather than arithmetic scattered through the
halo code.  The performance model charges gather/scatter traffic against
these sizes, and the tests cross-check them against the halo engine's
actual message sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lattice.geometry import Geometry
from repro.precision import Precision, precision


@dataclass(frozen=True)
class GhostSegment:
    """One dimension's ghost allocation within a field buffer."""

    mu: int
    sign: int  # +1 forward face, -1 backward
    offset_reals: int
    length_reals: int

    @property
    def end(self) -> int:
        return self.offset_reals + self.length_reals


@dataclass(frozen=True)
class FieldLayout:
    """Memory map of one parity of a lattice field (Fig. 2 / Fig. 3).

    Parameters
    ----------
    geometry:
        The *local* (per-GPU) lattice.
    reals_per_site:
        24 for Wilson spinors, 6 for staggered, 72 for a clover term,
        18/12/8 per link for gauge fields.
    partitioned:
        Directions with ghost zones.
    ghost_depth:
        Stencil reach (1, or 3 for asqtad).
    precision:
        Storage precision (sets byte sizes).
    pad_sites:
        Pad between body and ghosts, in sites ("of adjustable length and
        serves to reduce partition camping"; 0 is fine on Fermi).
    """

    geometry: Geometry
    reals_per_site: int
    partitioned: tuple[int, ...] = ()
    ghost_depth: int = 1
    precision: Precision = None  # type: ignore[assignment]
    pad_sites: int = 0

    def __post_init__(self):
        object.__setattr__(
            self, "precision", precision(self.precision or "single")
        )

    # -- body ---------------------------------------------------------------
    @property
    def body_sites(self) -> int:
        """Vh: sites per parity."""
        return self.geometry.half_volume

    @property
    def body_reals(self) -> int:
        return self.body_sites * self.reals_per_site

    @property
    def pad_reals(self) -> int:
        return self.pad_sites * self.reals_per_site

    # -- ghosts ---------------------------------------------------------------
    def ghost_face_sites(self, mu: int) -> int:
        """Sites of one parity in one face slab of thickness ghost_depth."""
        return self.geometry.face_volume(mu, self.ghost_depth) // 2

    def ghost_segments(self) -> list[GhostSegment]:
        """Ghost allocations, packed after body+pad, ordered (mu, sign) —
        "ghost zones for the spinor field are placed in memory after the
        local spinor field"."""
        segments: list[GhostSegment] = []
        offset = self.body_reals + self.pad_reals
        for mu in self.partitioned:
            for sign in (-1, +1):
                length = self.ghost_face_sites(mu) * self.reals_per_site
                segments.append(GhostSegment(mu, sign, offset, length))
                offset += length
        return segments

    @property
    def ghost_reals(self) -> int:
        return sum(s.length_reals for s in self.ghost_segments())

    # -- totals ---------------------------------------------------------------
    @property
    def total_reals(self) -> int:
        return self.body_reals + self.pad_reals + self.ghost_reals

    @property
    def total_bytes(self) -> int:
        return self.total_reals * self.precision.bytes_per_real

    @property
    def ghost_fraction(self) -> float:
        """Ghost storage over body storage — the memory side of the
        surface-to-volume ratio."""
        return self.ghost_reals / self.body_reals if self.body_reals else 0.0

    def segment_for(self, mu: int, sign: int) -> GhostSegment:
        for s in self.ghost_segments():
            if s.mu == mu and s.sign == sign:
                return s
        raise KeyError(f"no ghost segment for dimension {mu}, sign {sign}")


def spinor_layout(
    geometry: Geometry,
    nspin: int = 4,
    partitioned: tuple[int, ...] = (),
    ghost_depth: int = 1,
    precision_name="single",
    pad_sites: int = 0,
) -> FieldLayout:
    """The Fig. 2 spinor layout (24 or 6 reals per site)."""
    return FieldLayout(
        geometry=geometry,
        reals_per_site=6 * nspin,
        partitioned=partitioned,
        ghost_depth=ghost_depth,
        precision=precision(precision_name),
        pad_sites=pad_sites,
    )


def gauge_layout(
    geometry: Geometry,
    reconstruct: int = 18,
    partitioned: tuple[int, ...] = (),
    ghost_depth: int = 1,
    precision_name="single",
    pad_sites: int = 0,
) -> FieldLayout:
    """The Fig. 3 gauge layout: 4 directions x reals-per-link per site
    (the ghost links live in the pad region; here they are modeled as the
    ghost segments of the combined field)."""
    return FieldLayout(
        geometry=geometry,
        reals_per_site=4 * reconstruct,
        partitioned=partitioned,
        ghost_depth=ghost_depth,
        precision=precision(precision_name),
        pad_sites=pad_sites,
    )
