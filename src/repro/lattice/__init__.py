"""Lattice geometry and field containers.

The conventions mirror QUDA's: sites are stored with X fastest-varying and T
slowest (array shape ``(T, Z, Y, X)``), directions are numbered
``mu = 0,1,2,3 -> x,y,z,t``, and even-odd (red-black) checkerboarding uses
parity ``(x+y+z+t) mod 2``.
"""

from repro.lattice.geometry import Geometry, X, Y, Z, T, DIRECTIONS
from repro.lattice.fields import (
    GaugeField,
    SpinorField,
    WILSON_SPINS,
    STAGGERED_SPINS,
)
from repro.lattice.layout import FieldLayout, gauge_layout, spinor_layout

__all__ = [
    "Geometry",
    "GaugeField",
    "SpinorField",
    "WILSON_SPINS",
    "STAGGERED_SPINS",
    "FieldLayout",
    "spinor_layout",
    "gauge_layout",
    "X",
    "Y",
    "Z",
    "T",
    "DIRECTIONS",
]
