"""Field containers: color-spinor fields and gauge (link) fields.

A :class:`SpinorField` holds one complex color-spinor per site — 4 spins x 3
colors (24 reals/site) for Wilson-clover, or 3 colors (6 reals/site) for
staggered, exactly the layouts of Fig. 2 of the paper.  A
:class:`GaugeField` holds one SU(3) matrix per site per direction (Fig. 3).

The containers are thin, explicit wrappers around numpy arrays: the heavy
kernels in :mod:`repro.dirac` operate on the raw ``.data`` arrays, while
these classes carry geometry metadata, constructors and the BLAS-level
convenience methods the public API exposes.
"""

from __future__ import annotations

import numpy as np

from repro.lattice.geometry import Geometry
from repro.linalg import blas, su3
from repro.util.rng import make_rng

#: Spin degrees of freedom per site for each discretization.
WILSON_SPINS = 4
STAGGERED_SPINS = 1


class SpinorField:
    """A lattice color-spinor field ("spinor field" in the paper's language).

    Parameters
    ----------
    geometry:
        The lattice the field lives on.
    data:
        Complex array of shape ``geometry.shape + (4, 3)`` (Wilson) or
        ``geometry.shape + (3,)`` (staggered).  If omitted a zero field of
        the requested ``nspin``/``dtype`` is created.
    nspin:
        4 for Wilson-type fields, 1 for staggered.
    """

    def __init__(
        self,
        geometry: Geometry,
        data: np.ndarray | None = None,
        nspin: int = WILSON_SPINS,
        dtype=np.complex128,
    ):
        if nspin not in (WILSON_SPINS, STAGGERED_SPINS):
            raise ValueError(f"nspin must be 1 or 4, got {nspin}")
        self.geometry = geometry
        self.nspin = nspin
        expected = geometry.shape + self.site_shape(nspin)
        if data is None:
            data = np.zeros(expected, dtype=dtype)
        else:
            data = np.asarray(data)
            if data.shape != expected:
                raise ValueError(
                    f"data shape {data.shape} does not match expected {expected}"
                )
        self.data = data

    @staticmethod
    def site_shape(nspin: int) -> tuple[int, ...]:
        return (nspin, 3) if nspin == WILSON_SPINS else (3,)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def zeros(
        cls, geometry: Geometry, nspin: int = WILSON_SPINS, dtype=np.complex128
    ) -> "SpinorField":
        return cls(geometry, nspin=nspin, dtype=dtype)

    @classmethod
    def random(
        cls,
        geometry: Geometry,
        nspin: int = WILSON_SPINS,
        rng=None,
        dtype=np.complex128,
    ) -> "SpinorField":
        """Gaussian random source (the standard stochastic-source filling)."""
        rng = make_rng(rng)
        shape = geometry.shape + cls.site_shape(nspin)
        data = (rng.standard_normal(shape) + 1j * rng.standard_normal(shape)).astype(
            dtype
        )
        return cls(geometry, data, nspin=nspin)

    @classmethod
    def point_source(
        cls,
        geometry: Geometry,
        site: tuple[int, int, int, int],
        spin: int = 0,
        color: int = 0,
        nspin: int = WILSON_SPINS,
        dtype=np.complex128,
    ) -> "SpinorField":
        """Unit source at lattice site ``(x, y, z, t)`` (propagator source)."""
        out = cls.zeros(geometry, nspin=nspin, dtype=dtype)
        x, y, z, t = site
        if nspin == WILSON_SPINS:
            out.data[t, z, y, x, spin, color] = 1.0
        else:
            out.data[t, z, y, x, color] = 1.0
        return out

    # ------------------------------------------------------------------
    # arithmetic / BLAS facade
    # ------------------------------------------------------------------
    def like(self, data: np.ndarray) -> "SpinorField":
        """Wrap a raw array with this field's metadata."""
        return SpinorField(self.geometry, data, nspin=self.nspin)

    def copy(self) -> "SpinorField":
        return self.like(blas.copy(self.data))

    def norm2(self) -> float:
        return blas.norm2(self.data)

    def dot(self, other: "SpinorField") -> complex:
        return blas.cdot(self.data, other.data)

    def __add__(self, other: "SpinorField") -> "SpinorField":
        return self.like(self.data + other.data)

    def __sub__(self, other: "SpinorField") -> "SpinorField":
        return self.like(self.data - other.data)

    def __mul__(self, scalar) -> "SpinorField":
        return self.like(self.data * scalar)

    __rmul__ = __mul__

    def __neg__(self) -> "SpinorField":
        return self.like(-self.data)

    # ------------------------------------------------------------------
    # layout metadata (Fig. 2): reals per site and ghost-face sizes
    # ------------------------------------------------------------------
    @property
    def reals_per_site(self) -> int:
        return 2 * 3 * self.nspin

    def ghost_face_reals(self, mu: int, depth: int = 1) -> int:
        """Reals in one ghost face of thickness ``depth`` in direction mu."""
        return self.reals_per_site * self.geometry.face_volume(mu, depth)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "wilson" if self.nspin == WILSON_SPINS else "staggered"
        return f"SpinorField({kind}, {self.geometry!r}, dtype={self.data.dtype})"


class GaugeField:
    """An SU(3) gauge (link) field: ``U[mu, t, z, y, x]`` is a 3x3 matrix.

    Link ``U[mu]`` at site x connects x to x + mu-hat, as in Fig. 1.
    """

    def __init__(self, geometry: Geometry, data: np.ndarray | None = None,
                 dtype=np.complex128):
        self.geometry = geometry
        expected = (4,) + geometry.shape + (3, 3)
        if data is None:
            data = su3.identity((4,) + geometry.shape, dtype=dtype)
        else:
            data = np.asarray(data)
            if data.shape != expected:
                raise ValueError(
                    f"data shape {data.shape} does not match expected {expected}"
                )
        self.data = data

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def unit(cls, geometry: Geometry, dtype=np.complex128) -> "GaugeField":
        """Free-field (identity links) configuration."""
        return cls(geometry, dtype=dtype)

    @classmethod
    def hot(cls, geometry: Geometry, rng=None, dtype=np.complex128) -> "GaugeField":
        """Maximally disordered start: independent Haar-random links."""
        data = su3.random_su3((4,) + geometry.shape, rng=rng, dtype=dtype)
        return cls(geometry, data)

    @classmethod
    def weak(
        cls, geometry: Geometry, epsilon: float = 0.2, rng=None, dtype=np.complex128
    ) -> "GaugeField":
        """Weak-coupling-like configuration: links near the identity.

        ``U = proj_SU3(1 + epsilon * A)`` with A anti-Hermitian Gaussian.
        Stands in for the paper's production (importance-sampled) gauge
        configurations: solvers on weak fields show the realistic
        condition-number behaviour without a full HMC evolution.
        """
        rng = make_rng(rng)
        shape = (4,) + geometry.shape + (3, 3)
        z = rng.standard_normal(shape) + 1j * rng.standard_normal(shape)
        a = 0.5 * (z - su3.dagger(z))
        data = su3.project_su3(
            su3.identity((4,) + geometry.shape) + epsilon * a
        ).astype(dtype)
        return cls(geometry, data)

    # ------------------------------------------------------------------
    def copy(self) -> "GaugeField":
        return GaugeField(self.geometry, self.data.copy())

    def link(self, mu: int) -> np.ndarray:
        """Links in direction mu, shape ``geometry.shape + (3, 3)``."""
        return self.data[mu]

    def unitarity_error(self) -> float:
        return su3.unitarity_error(self.data)

    def plaquette(self) -> float:
        """Average plaquette Re tr P / 3 (delegates to the gauge sector)."""
        from repro.gauge.observables import average_plaquette

        return average_plaquette(self)

    @property
    def reals_per_site_per_link(self) -> int:
        return 18

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"GaugeField({self.geometry!r}, dtype={self.data.dtype})"
